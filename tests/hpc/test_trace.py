"""Trace recording, persistence, and replay."""

import numpy as np
import pytest

from repro.hpc.events import ALL_EVENTS
from repro.hpc.lxc import ContainerPool
from repro.hpc.microarch import ApplicationBehavior, PhaseMix, PhaseParameters
from repro.hpc.trace import TraceRecording, record_application, replay


def _app():
    return ApplicationBehavior("traced", [PhaseMix(PhaseParameters(), 1.0)])


@pytest.fixture(scope="module")
def recording():
    return record_application(
        _app(), ALL_EVENTS[:6], n_windows=12, pool=ContainerPool(seed=0),
        is_malware=False,
    )


def test_record_shapes(recording):
    assert recording.n_windows == 12
    assert recording.samples.shape == (12, 6)
    assert recording.app_name == "traced"
    assert recording.n_runs == 2  # 6 events / 4 counters


def test_duration(recording):
    assert recording.duration_ms == pytest.approx(120.0)


def test_project_orders_columns(recording):
    sub = recording.project([recording.events[2], recording.events[0]])
    np.testing.assert_allclose(sub[:, 0], recording.samples[:, 2])
    np.testing.assert_allclose(sub[:, 1], recording.samples[:, 0])


def test_project_missing_event(recording):
    with pytest.raises(KeyError):
        recording.project(["not_recorded"])


def test_save_load_round_trip(recording, tmp_path):
    path = tmp_path / "trace.jsonl"
    recording.save(path)
    loaded = TraceRecording.load(path)
    assert loaded.app_name == recording.app_name
    assert loaded.events == recording.events
    assert loaded.window_ms == recording.window_ms
    assert loaded.n_runs == recording.n_runs
    np.testing.assert_allclose(loaded.samples, recording.samples)


def test_load_rejects_foreign_file(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"format": "something-else"}\n')
    with pytest.raises(ValueError):
        TraceRecording.load(path)


def test_load_rejects_ragged_rows(tmp_path):
    path = tmp_path / "ragged.jsonl"
    path.write_text(
        '{"format": "repro-hpc-trace-v1", "app_name": "x", '
        '"events": ["a", "b"], "window_ms": 10, "n_runs": 1}\n[1.0, 2.0, 3.0]\n'
    )
    with pytest.raises(ValueError):
        TraceRecording.load(path)


def test_replay_matches_live_prediction(small_split):
    """Replaying a recording must give the same flags as predicting the
    projected windows directly."""
    from repro.core import DetectorConfig, HMDDetector

    detector = HMDDetector(DetectorConfig("REPTree", "general", 4))
    detector.fit(small_split.train)
    recording = record_application(
        _app(), ALL_EVENTS, n_windows=10, pool=ContainerPool(seed=5),
        is_malware=False,
    )
    flags = replay(recording, detector)
    direct = detector.predict_windows(recording.project(detector.monitored_events))
    np.testing.assert_array_equal(flags, direct)


def test_replay_requires_monitored_events(small_split):
    from repro.core import DetectorConfig, HMDDetector

    detector = HMDDetector(DetectorConfig("REPTree", "general", 4))
    detector.fit(small_split.train)
    partial = record_application(
        _app(), ALL_EVENTS[:2], n_windows=5, pool=ContainerPool(seed=6),
        is_malware=False,
    )
    with pytest.raises(KeyError):
        replay(partial, detector)
