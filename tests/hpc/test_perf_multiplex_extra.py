"""Extra collection-fidelity properties of the Perf substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpc.events import ALL_EVENTS
from repro.hpc.lxc import ContainerPool
from repro.hpc.microarch import ApplicationBehavior, PhaseMix, PhaseParameters
from repro.hpc.perf import BatchedCollection, MultiplexedCollection, batch_events


def _app(ipc=1.2):
    return ApplicationBehavior("p", [PhaseMix(PhaseParameters(ipc=ipc), 1.0)])


@settings(max_examples=20, deadline=None)
@given(n_events=st.integers(1, 44), n_counters=st.integers(1, 8))
def test_batches_cover_all_events_exactly_once(n_events, n_counters):
    events = list(ALL_EVENTS[:n_events])
    batches = batch_events(events, n_counters)
    flattened = [e for batch in batches for e in batch]
    assert flattened == events
    assert all(len(batch) <= n_counters for batch in batches)


def test_batched_and_multiplexed_agree_on_scale():
    """Both collection strategies must estimate the same average rates;
    multiplexing adds staleness error, not bias."""
    events = tuple(ALL_EVENTS[:8])
    batched = BatchedCollection(n_counters=4).collect(
        _app(), events, 60, ContainerPool(seed=1), False
    )
    multiplexed = MultiplexedCollection(n_counters=4).collect(
        _app(), events, 60, ContainerPool(seed=1), False
    )
    ratio = batched.samples.mean(axis=0) / multiplexed.samples.mean(axis=0)
    assert np.all(ratio > 0.7)
    assert np.all(ratio < 1.4)


def test_more_counters_fewer_runs():
    events = tuple(ALL_EVENTS[:12])
    runs = {}
    for n_counters in (2, 4, 6):
        result = BatchedCollection(n_counters=n_counters).collect(
            _app(), events, 5, ContainerPool(seed=2), False
        )
        runs[n_counters] = result.n_runs
    assert runs[2] > runs[4] > runs[6]


def test_event_magnitudes_plausible_for_nehalem():
    """10 ms at 2.67 GHz: cycles ~26.7M, instructions = cycles * IPC."""
    result = BatchedCollection(n_counters=4).collect(
        _app(ipc=1.0), ("cpu_cycles", "instructions"), 30, ContainerPool(seed=3), False
    )
    cycles = result.samples[:, 0].mean()
    instructions = result.samples[:, 1].mean()
    assert 1.5e7 < cycles < 4e7
    assert 0.5 < instructions / cycles < 2.0


def test_collection_result_metadata():
    events = tuple(ALL_EVENTS[:5])
    result = BatchedCollection(n_counters=4).collect(
        _app(), events, 3, ContainerPool(seed=4), True
    )
    assert result.app_name == "p"
    assert result.events == events
    assert result.n_runs == 2
