"""Microarchitecture model: synthesis shapes, correlations, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpc.events import ALL_EVENTS
from repro.hpc.microarch import (
    ApplicationBehavior,
    PhaseMix,
    PhaseParameters,
    synthesize_windows,
)

COL = {name: i for i, name in enumerate(ALL_EVENTS)}


def test_synthesize_shape():
    trace = synthesize_windows(PhaseParameters(), 25, np.random.default_rng(0))
    assert trace.shape == (25, 44)


def test_synthesize_zero_windows():
    trace = synthesize_windows(PhaseParameters(), 0, np.random.default_rng(0))
    assert trace.shape == (0, 44)


def test_synthesize_negative_windows_rejected():
    with pytest.raises(ValueError):
        synthesize_windows(PhaseParameters(), -1, np.random.default_rng(0))


def test_counts_non_negative():
    trace = synthesize_windows(PhaseParameters(), 50, np.random.default_rng(1))
    assert np.all(trace >= 0)


def test_counts_finite():
    trace = synthesize_windows(PhaseParameters(), 50, np.random.default_rng(1))
    assert np.all(np.isfinite(trace))


def test_instructions_scale_with_ipc():
    rng = np.random.default_rng(2)
    low = synthesize_windows(PhaseParameters(ipc=0.5), 40, rng)
    rng = np.random.default_rng(2)
    high = synthesize_windows(PhaseParameters(ipc=2.0), 40, rng)
    assert high[:, COL["instructions"]].mean() > 2 * low[:, COL["instructions"]].mean()


def test_llc_loads_downstream_of_l1_misses():
    """LLC demand traffic must be bounded by what misses upstream."""
    trace = synthesize_windows(PhaseParameters(), 200, np.random.default_rng(3))
    upstream = (
        trace[:, COL["L1_dcache_load_misses"]] + trace[:, COL["L1_icache_load_misses"]]
    )
    # correlated within noise: ratio concentrated around 1
    ratio = trace[:, COL["LLC_loads"]] / np.maximum(upstream, 1e-9)
    assert 0.5 < np.median(ratio) < 2.0


def test_branch_misses_below_branches():
    trace = synthesize_windows(PhaseParameters(), 100, np.random.default_rng(4))
    assert np.all(
        trace[:, COL["branch_misses"]] < trace[:, COL["branch_instructions"]]
    )


def test_node_traffic_split_by_locality():
    params = PhaseParameters(node_remote_ratio=0.5)
    trace = synthesize_windows(params, 300, np.random.default_rng(5))
    local = trace[:, COL["node_loads"]].mean()
    remote = trace[:, COL["node_load_misses"]].mean()
    assert 0.5 < local / remote < 2.0


def test_window_length_scales_counts():
    rng = np.random.default_rng(6)
    short = synthesize_windows(PhaseParameters(), 50, rng, window_ms=1.0)
    rng = np.random.default_rng(6)
    long = synthesize_windows(PhaseParameters(), 50, rng, window_ms=100.0)
    assert long[:, COL["cpu_cycles"]].mean() > 50 * short[:, COL["cpu_cycles"]].mean()


def test_perturbed_clips_rates_to_unit_interval():
    params = PhaseParameters(branch_ratio=0.9, llc_miss_rate=0.99)
    rng = np.random.default_rng(7)
    for _ in range(30):
        jittered = params.perturbed(rng, sigma=0.8)
        assert 0 < jittered.branch_ratio <= 1.0
        assert 0 < jittered.llc_miss_rate <= 1.0
        assert 0 < jittered.ipc <= 4.0


def test_perturbed_keeps_noise_sigma():
    params = PhaseParameters(noise_sigma=0.13)
    assert params.perturbed(np.random.default_rng(8)).noise_sigma == 0.13


def test_perturbed_changes_values():
    params = PhaseParameters()
    jittered = params.perturbed(np.random.default_rng(9), sigma=0.3)
    assert jittered.ipc != params.ipc


def test_phase_mix_rejects_nonpositive_weight():
    with pytest.raises(ValueError):
        PhaseMix(PhaseParameters(), 0.0)


def test_application_requires_phases():
    with pytest.raises(ValueError):
        ApplicationBehavior("empty", [])


def test_application_rejects_tiny_dwell():
    with pytest.raises(ValueError):
        ApplicationBehavior("x", [PhaseMix(PhaseParameters(), 1.0)], mean_dwell_windows=0.5)


def test_phase_schedule_dwell_structure():
    app = ApplicationBehavior(
        "two_phase",
        [PhaseMix(PhaseParameters(ipc=0.5), 1.0), PhaseMix(PhaseParameters(ipc=2.0), 1.0)],
        mean_dwell_windows=20.0,
    )
    schedule = app.phase_schedule(200, np.random.default_rng(10))
    switches = int(np.sum(np.diff(schedule) != 0))
    # with mean dwell 20 over 200 windows, expect on the order of 10 switches
    assert switches < 40


def test_execute_shape_and_positivity():
    app = ApplicationBehavior("one", [PhaseMix(PhaseParameters(), 1.0)])
    trace = app.execute(30, np.random.default_rng(11))
    assert trace.shape == (30, 44)
    assert np.all(trace >= 0)


def test_execute_rejects_zero_windows():
    app = ApplicationBehavior("one", [PhaseMix(PhaseParameters(), 1.0)])
    with pytest.raises(ValueError):
        app.execute(0, np.random.default_rng(12))


def test_execute_deterministic_given_rng_seed():
    app = ApplicationBehavior("one", [PhaseMix(PhaseParameters(), 1.0)])
    a = app.execute(10, np.random.default_rng(13))
    b = app.execute(10, np.random.default_rng(13))
    np.testing.assert_allclose(a, b)


def test_execute_varies_across_runs():
    app = ApplicationBehavior("one", [PhaseMix(PhaseParameters(), 1.0)])
    a = app.execute(10, np.random.default_rng(14))
    b = app.execute(10, np.random.default_rng(15))
    assert not np.allclose(a, b)


@settings(max_examples=25, deadline=None)
@given(
    ipc=st.floats(0.1, 3.5),
    branch_ratio=st.floats(0.01, 0.45),
    n=st.integers(1, 30),
)
def test_synthesize_always_valid(ipc, branch_ratio, n):
    """Property: any sane phase parameters yield finite non-negative counts."""
    params = PhaseParameters(ipc=ipc, branch_ratio=branch_ratio)
    trace = synthesize_windows(params, n, np.random.default_rng(0))
    assert trace.shape == (n, 44)
    assert np.all(np.isfinite(trace))
    assert np.all(trace >= 0)
