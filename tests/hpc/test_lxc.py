"""LXC-style container contexts: isolation, destruction, contamination."""

import numpy as np
import pytest

from repro.hpc.lxc import Container, ContainerDestroyedError, ContainerPool
from repro.hpc.microarch import ApplicationBehavior, PhaseMix, PhaseParameters


def _app(name="app"):
    return ApplicationBehavior(name, [PhaseMix(PhaseParameters(), 1.0)])


def test_container_executes_and_returns_trace():
    container = Container(container_id=0, seed=1)
    trace = container.execute(_app(), 5, is_malware=False)
    assert trace.shape == (5, 44)


def test_destroyed_container_refuses_execution():
    container = Container(container_id=0, seed=1)
    container.destroy()
    with pytest.raises(ContainerDestroyedError):
        container.execute(_app(), 3, is_malware=False)


def test_malware_run_contaminates():
    container = Container(container_id=0, seed=1)
    container.execute(_app(), 3, is_malware=True)
    assert container.contamination_level == 1


def test_benign_run_does_not_contaminate():
    container = Container(container_id=0, seed=1)
    container.execute(_app(), 3, is_malware=False)
    assert container.contamination_level == 0


def test_runs_executed_increments():
    container = Container(container_id=0, seed=1)
    container.execute(_app(), 3, is_malware=False)
    container.execute(_app(), 3, is_malware=False)
    assert container.runs_executed == 2


def test_repeated_runs_differ():
    container = Container(container_id=0, seed=1)
    a = container.execute(_app(), 5, is_malware=False)
    b = container.execute(_app(), 5, is_malware=False)
    assert not np.allclose(a, b)


def test_pool_destroy_after_run_creates_fresh_containers():
    pool = ContainerPool(seed=0, destroy_after_run=True)
    pool.run(_app(), 3, is_malware=True)
    pool.run(_app(), 3, is_malware=True)
    assert pool.containers_created == 2


def test_pool_reuse_keeps_single_container():
    pool = ContainerPool(seed=0, destroy_after_run=False)
    pool.run(_app(), 3, is_malware=True)
    pool.run(_app(), 3, is_malware=False)
    assert pool.containers_created == 1


def test_reused_pool_accumulates_contamination():
    pool = ContainerPool(seed=0, destroy_after_run=False)
    pool.run(_app(), 3, is_malware=True)
    pool.run(_app(), 3, is_malware=True)
    assert pool._reused is not None
    assert pool._reused.contamination_level == 2


def test_contamination_increases_variability():
    """The paper destroys containers to avoid exactly this effect."""
    clean = Container(container_id=0, seed=5)
    dirty = Container(container_id=1, seed=5, contamination_level=6)
    spread_clean = np.std([clean.execute(_app(), 20, False).mean() for _ in range(8)])
    spread_dirty = np.std([dirty.execute(_app(), 20, False).mean() for _ in range(8)])
    assert spread_dirty > spread_clean


def test_pool_deterministic_given_seed():
    a = ContainerPool(seed=3, destroy_after_run=True).run(_app(), 4, False)
    b = ContainerPool(seed=3, destroy_after_run=True).run(_app(), 4, False)
    np.testing.assert_allclose(a, b)
