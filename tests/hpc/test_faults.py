"""Deterministic fault injection on the measurement substrate."""

import numpy as np
import pytest

from repro.hpc.counters import CounterRegisterFile
from repro.hpc.events import ALL_EVENTS
from repro.hpc.faults import (
    NO_FAULTS,
    ContainerCrashError,
    CounterReadGlitchError,
    FaultDraw,
    FaultPlan,
    FaultyContainerPool,
    GlitchyCounterRegisterFile,
    PermanentHostError,
    ServiceFaultPlan,
)
from repro.hpc.lxc import ContainerPool
from repro.workloads.benign import BENIGN_FAMILIES

N_WINDOWS = 12


@pytest.fixture()
def app():
    return BENIGN_FAMILIES[0].instantiate(np.random.default_rng(3))[0]


def test_rates_validated():
    with pytest.raises(ValueError):
        FaultPlan(crash_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(drop_rate=-0.1)


def test_zero_rates_draw_clean():
    plan = FaultPlan(seed=1)
    for attempt in range(3):
        assert plan.draw("some_app", attempt, N_WINDOWS).is_clean
    assert NO_FAULTS.is_clean


def test_draw_is_deterministic():
    a = FaultPlan(seed=9, crash_rate=0.5, glitch_rate=0.5, drop_rate=0.3)
    b = FaultPlan(seed=9, crash_rate=0.5, glitch_rate=0.5, drop_rate=0.3)
    for attempt in range(4):
        assert a.draw("app_x", attempt, N_WINDOWS) == b.draw(
            "app_x", attempt, N_WINDOWS
        )


def test_draw_varies_with_seed_app_and_attempt():
    plan = FaultPlan(seed=0, crash_rate=0.5, glitch_rate=0.5, drop_rate=0.5)
    other_seed = FaultPlan(seed=1, crash_rate=0.5, glitch_rate=0.5, drop_rate=0.5)
    apps = [f"app_{i}" for i in range(40)]
    assert any(
        plan.draw(a, 0, N_WINDOWS) != other_seed.draw(a, 0, N_WINDOWS) for a in apps
    )
    assert any(
        plan.draw(a, 0, N_WINDOWS) != plan.draw(a, 1, N_WINDOWS) for a in apps
    )
    assert len({plan.draw(a, 0, N_WINDOWS) for a in apps}) > 1


def test_drawn_faults_stay_in_range():
    plan = FaultPlan(seed=5, crash_rate=1.0, glitch_rate=1.0, drop_rate=0.5)
    for attempt in range(5):
        draw = plan.draw("app", attempt, N_WINDOWS)
        assert 0 <= draw.crash_after < N_WINDOWS
        assert 0 <= draw.glitch_read < N_WINDOWS
        assert all(0 <= i < N_WINDOWS for i in draw.dropped)
        assert list(draw.dropped) == sorted(set(draw.dropped))


def test_permanent_is_per_app_not_per_attempt():
    plan = FaultPlan(seed=2, permanent_rate=0.5)
    apps = [f"app_{i}" for i in range(40)]
    flags = {a: plan.is_permanent(a) for a in apps}
    assert any(flags.values()) and not all(flags.values())
    for a in apps:
        for attempt in range(3):
            assert plan.draw(a, attempt, N_WINDOWS).permanent == flags[a]


def test_faulty_pool_clean_run_matches_plain_pool(app):
    plain = ContainerPool(seed=7).run(app, N_WINDOWS, False)
    faulty = FaultyContainerPool(ContainerPool(seed=7), FaultPlan(seed=1))
    assert np.array_equal(faulty.run(app, N_WINDOWS, False), plain)


def test_faulty_pool_crash_carries_partial_trace(app):
    plan = FaultPlan(seed=3, crash_rate=1.0)
    pool = FaultyContainerPool(ContainerPool(seed=7), plan)
    draw = plan.draw(app.name, 0, N_WINDOWS)
    with pytest.raises(ContainerCrashError) as excinfo:
        pool.run(app, N_WINDOWS, False)
    partial = excinfo.value.partial_trace
    assert partial.shape == (draw.crash_after, len(ALL_EVENTS))
    full = ContainerPool(seed=7).run(app, N_WINDOWS, False)
    assert np.array_equal(partial, full[: draw.crash_after])


def test_faulty_pool_permanent_raises_every_attempt(app):
    pool = FaultyContainerPool(
        ContainerPool(seed=7), FaultPlan(seed=0, permanent_rate=1.0)
    )
    for attempt in range(3):
        with pytest.raises(PermanentHostError):
            pool.run(app, N_WINDOWS, False, attempt=attempt)


def test_glitchy_register_file_without_glitch_matches_plain():
    events = list(ALL_EVENTS[:2])
    window = {events[0]: 10.0, events[1]: 20.0}
    plain = CounterRegisterFile(4)
    plain.program(events)
    plain.observe_window(window)
    glitchy = GlitchyCounterRegisterFile(4, glitch_read=None)
    glitchy.program(events)
    glitchy.observe_window(window)
    assert glitchy.read() == plain.read()
    assert glitchy.reads_completed == 1


def test_glitchy_register_file_raises_at_configured_read():
    events = list(ALL_EVENTS[:1])
    glitchy = GlitchyCounterRegisterFile(4, glitch_read=2)
    glitchy.program(events)
    for _ in range(2):
        glitchy.observe_window({events[0]: 1.0})
        glitchy.read()
    with pytest.raises(CounterReadGlitchError) as excinfo:
        glitchy.read()
    assert excinfo.value.windows_read == 2


def test_fault_draw_defaults():
    assert FaultDraw() == NO_FAULTS
    assert not FaultDraw(crash_after=3).is_clean


# -- ServiceFaultPlan --------------------------------------------------


def test_service_fault_plan_validation():
    with pytest.raises(ValueError):
        ServiceFaultPlan(worker_crash_rate=1.5)
    with pytest.raises(ValueError):
        ServiceFaultPlan(worker_crash_rate=-0.1)
    with pytest.raises(ValueError):
        ServiceFaultPlan(max_crashes_per_worker=-1)
    with pytest.raises(ValueError):
        ServiceFaultPlan().crash_after(-1, 0)
    with pytest.raises(ValueError):
        ServiceFaultPlan().crash_after(0, -1)


def test_service_fault_plan_draws_are_deterministic():
    plan = ServiceFaultPlan(seed=3, worker_crash_rate=0.7)
    again = ServiceFaultPlan(seed=3, worker_crash_rate=0.7)
    draws = [plan.crash_after(w, i) for w in range(4) for i in range(4)]
    assert draws == [again.crash_after(w, i) for w in range(4) for i in range(4)]
    # A different seed gives a different schedule somewhere.
    other = ServiceFaultPlan(seed=4, worker_crash_rate=0.7)
    assert draws != [other.crash_after(w, i) for w in range(4) for i in range(4)]


def test_service_fault_plan_zero_rate_never_crashes():
    plan = ServiceFaultPlan(seed=0, worker_crash_rate=0.0)
    assert all(plan.crash_after(w, i) is None for w in range(8) for i in range(8))


def test_service_fault_plan_crashes_stop_at_max():
    """Liveness guard: incarnations at or past the cap never crash, so
    every stream eventually drains even at crash rate 1.0."""
    plan = ServiceFaultPlan(seed=1, worker_crash_rate=1.0, max_crashes_per_worker=3)
    for worker in range(4):
        for incarnation in range(3):
            assert plan.crash_after(worker, incarnation) is not None
        for incarnation in range(3, 8):
            assert plan.crash_after(worker, incarnation) is None


def test_service_fault_plan_draws_make_progress():
    """Every crashing incarnation consumes at least one message."""
    plan = ServiceFaultPlan(seed=2, worker_crash_rate=1.0)
    for worker in range(8):
        for scale in (1, 2, 64):
            draw = plan.crash_after(worker, 0, scale=scale)
            assert draw is not None and draw >= 1
