"""Perf-style collection: batching, multi-run stitching, multiplexing."""

import numpy as np
import pytest

from repro.hpc.events import ALL_EVENTS
from repro.hpc.lxc import ContainerPool
from repro.hpc.microarch import ApplicationBehavior, PhaseMix, PhaseParameters
from repro.hpc.perf import (
    BatchedCollection,
    MultiplexedCollection,
    batch_events,
    runs_required,
)


def _app(name="app"):
    return ApplicationBehavior(name, [PhaseMix(PhaseParameters(), 1.0)])


def test_batch_events_paper_numbers():
    batches = batch_events(ALL_EVENTS, 4)
    assert len(batches) == 11
    assert all(len(b) == 4 for b in batches)


def test_batch_events_partial_final_batch():
    batches = batch_events(list(ALL_EVENTS[:6]), 4)
    assert [len(b) for b in batches] == [4, 2]


def test_batch_events_rejects_zero_counters():
    with pytest.raises(ValueError):
        batch_events(["cpu_cycles"], 0)


def test_runs_required_matches_paper():
    assert runs_required(44, 4) == 11


def test_runs_required_exact_fit():
    assert runs_required(8, 4) == 2


def test_runs_required_rejects_zero_events():
    with pytest.raises(ValueError):
        runs_required(0, 4)


def test_batched_collection_shapes():
    collector = BatchedCollection(n_counters=4)
    result = collector.collect(_app(), ALL_EVENTS, 6, ContainerPool(seed=1), False)
    assert result.samples.shape == (6, 44)
    assert result.n_runs == 11
    assert result.events == ALL_EVENTS


def test_batched_collection_single_run_when_events_fit():
    collector = BatchedCollection(n_counters=4)
    result = collector.collect(
        _app(), ("cpu_cycles", "instructions"), 6, ContainerPool(seed=1), False
    )
    assert result.n_runs == 1


def test_batched_collection_counts_positive():
    collector = BatchedCollection(n_counters=4)
    result = collector.collect(_app(), ALL_EVENTS[:8], 5, ContainerPool(seed=2), False)
    assert np.all(result.samples > 0)


def test_batched_stitching_uses_different_runs():
    """Columns from different batches come from different executions, so
    a deterministic cross-event relation (ref_cycles ~ cpu_cycles) is
    broken across the batch boundary — the paper's stitching artifact."""
    app = _app()
    collector = BatchedCollection(n_counters=1)
    result = collector.collect(
        app, ("cpu_cycles", "ref_cycles"), 30, ContainerPool(seed=3), False
    )
    stitched_ratio = result.samples[:, 1] / result.samples[:, 0]
    single = BatchedCollection(n_counters=2).collect(
        app, ("cpu_cycles", "ref_cycles"), 30, ContainerPool(seed=3), False
    )
    same_run_ratio = single.samples[:, 1] / single.samples[:, 0]
    assert np.std(stitched_ratio) > np.std(same_run_ratio)


def test_multiplexed_collection_single_run():
    collector = MultiplexedCollection(n_counters=4)
    result = collector.collect(_app(), ALL_EVENTS, 40, ContainerPool(seed=4), False)
    assert result.n_runs == 1
    assert result.samples.shape == (40, 44)
    assert np.all(np.isfinite(result.samples))


def test_multiplexed_backfills_first_rotation():
    collector = MultiplexedCollection(n_counters=2)
    result = collector.collect(
        _app(), ("cpu_cycles", "instructions", "branch_instructions", "branch_misses"),
        10, ContainerPool(seed=5), False,
    )
    assert np.all(result.samples > 0)


def test_multiplexed_short_trace_raises():
    collector = MultiplexedCollection(n_counters=1)
    with pytest.raises(RuntimeError):
        collector.collect(_app(), ALL_EVENTS, 5, ContainerPool(seed=6), False)


def test_multiplexed_estimates_are_stale_between_rotations():
    collector = MultiplexedCollection(n_counters=1)
    events = ("cpu_cycles", "instructions")
    result = collector.collect(_app(), events, 12, ContainerPool(seed=7), False)
    # cpu_cycles is live on even windows; odd windows repeat the estimate
    column = result.samples[:, 0]
    assert column[1] == column[0]
    assert column[3] == column[2]
