"""Differential tests: vectorized phase-mixture sampler vs scalar paths.

The workload model's two rng-consuming hot spots — the per-window phase
schedule and the per-application parameter perturbation — were rewritten
to draw in bulk.  Both must be *bit identical* to the retained scalar
references: same outputs from the same generator state AND the same
stream position afterwards, so everything sampled later in a corpus
build (weight jitter, window noise, sibling applications) is untouched.
Stream position is asserted by drawing one more uniform after each path
and comparing it, which fails if the fast path over- or under-consumes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import fitmode
from repro.hpc.microarch import ApplicationBehavior, PhaseMix, PhaseParameters


def _behavior(weights, mean_dwell):
    phases = [PhaseMix(PhaseParameters(ipc=0.5 + 0.1 * k), w) for k, w in enumerate(weights)]
    return ApplicationBehavior("app", phases, mean_dwell_windows=mean_dwell)


def _both_paths(call, seed):
    """Run ``call(rng)`` through both fit modes from identical states.

    Returns ``(fast, scalar)`` pairs of ``(result, next_uniform)``.
    """
    rng = np.random.default_rng(seed)
    fast = (call(rng), rng.random())
    with fitmode.scalar_fit():
        rng = np.random.default_rng(seed)
        ref = (call(rng), rng.random())
    return fast, ref


# ------------------------------------------------------- phase schedule
@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    n_phases=st.integers(1, 6),
    n_windows=st.integers(1, 80),
    mean_dwell=st.floats(1.0, 20.0, allow_nan=False),
)
def test_phase_schedule_matches_scalar(seed, n_phases, n_windows, mean_dwell):
    rng = np.random.default_rng(seed + 7)
    weights = rng.uniform(0.05, 1.0, size=n_phases)
    app = _behavior(weights, mean_dwell)
    (fast, fast_next), (ref, ref_next) = _both_paths(
        lambda r: app.phase_schedule(n_windows, r), seed
    )
    assert np.array_equal(fast, ref)
    assert fast.dtype == ref.dtype
    assert fast_next == ref_next  # identical stream position afterwards


def test_phase_schedule_spans_all_phases_eventually():
    app = _behavior([1.0, 1.0, 1.0], mean_dwell=2.0)
    schedule = app.phase_schedule(500, np.random.default_rng(3))
    assert set(np.unique(schedule)) == {0, 1, 2}


def test_phase_schedule_zero_windows_consumes_no_draws():
    """Regression: an empty schedule used to burn one phase draw, which
    shifted every subsequent draw of the corpus build."""
    app = _behavior([0.7, 0.3], mean_dwell=4.0)
    first_draw = np.random.default_rng(9).random()
    rng = np.random.default_rng(9)
    schedule = app.phase_schedule(0, rng)
    assert schedule.size == 0
    assert rng.random() == first_draw
    with fitmode.scalar_fit():
        rng = np.random.default_rng(9)
        assert app.phase_schedule(0, rng).size == 0
        assert rng.random() == first_draw


# ------------------------------------------------------------ perturbed
@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000), sigma=st.floats(0.0, 0.5, allow_nan=False))
def test_perturbed_matches_scalar(seed, sigma):
    params = PhaseParameters()
    (fast, fast_next), (ref, ref_next) = _both_paths(
        lambda r: params.perturbed(r, sigma), seed
    )
    assert fast == ref  # dataclass equality: every field bit-identical
    assert fast_next == ref_next


def test_perturbed_respects_field_ceilings():
    params = PhaseParameters()
    out = params.perturbed(np.random.default_rng(0), sigma=50.0)
    for field, value in vars(out).items():
        if field == "noise_sigma":
            continue
        ceiling = 4.0 if field in ("ipc", "prefetch_intensity") else 1.0
        assert 1e-6 <= value <= ceiling, field


# ----------------------------------------------------- corpus-level sweep
def test_corpus_build_identical_across_fit_modes():
    """End-to-end: the full corpus builder draws the same windows on both
    paths (families -> apps -> perturbed params -> schedules -> traces)."""
    from repro.workloads import default_corpus

    fast = default_corpus(seed=77, windows_per_app=3)
    with fitmode.scalar_fit():
        ref = default_corpus(seed=77, windows_per_app=3)
    assert np.array_equal(fast.features, ref.features)
    assert np.array_equal(fast.labels, ref.labels)
