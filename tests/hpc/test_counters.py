"""Counter register file: programming, capacity, saturation, sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpc.counters import (
    COUNTER_BITS,
    CounterCapacityError,
    CounterRegister,
    CounterRegisterFile,
    CounterStateError,
    sample_trace,
)
from repro.hpc.events import ALL_EVENTS


def test_default_has_four_counters():
    assert CounterRegisterFile().n_counters == 4


def test_rejects_zero_counters():
    with pytest.raises(ValueError):
        CounterRegisterFile(0)


def test_program_binds_events_in_order():
    rf = CounterRegisterFile(4)
    rf.program(["cpu_cycles", "instructions"])
    assert rf.programmed_events == ("cpu_cycles", "instructions")


def test_program_too_many_events_raises_capacity_error():
    rf = CounterRegisterFile(4)
    with pytest.raises(CounterCapacityError):
        rf.program(list(ALL_EVENTS[:5]))


def test_program_unknown_event_rejected():
    rf = CounterRegisterFile(2)
    with pytest.raises(KeyError):
        rf.program(["not_an_event"])


def test_program_duplicate_events_rejected():
    rf = CounterRegisterFile(4)
    with pytest.raises(ValueError):
        rf.program(["cpu_cycles", "cpu_cycles"])


def test_observe_and_read():
    rf = CounterRegisterFile(2)
    rf.program(["cpu_cycles", "instructions"])
    rf.observe_window({"cpu_cycles": 100.0, "instructions": 250.0, "branch_misses": 9.0})
    assert rf.read() == {"cpu_cycles": 100, "instructions": 250}


def test_unprogrammed_events_invisible():
    rf = CounterRegisterFile(1)
    rf.program(["cpu_cycles"])
    rf.observe_window({"instructions": 999.0})
    assert rf.read() == {"cpu_cycles": 0}


def test_accumulation_across_windows():
    rf = CounterRegisterFile(1)
    rf.program(["cpu_cycles"])
    rf.observe_window({"cpu_cycles": 10})
    rf.observe_window({"cpu_cycles": 20})
    assert rf.read()["cpu_cycles"] == 30


def test_register_saturates_at_width():
    reg = CounterRegister(index=0)
    reg.program("cpu_cycles")
    reg.accumulate(2.0 ** COUNTER_BITS + 5)
    assert reg.value == (1 << COUNTER_BITS) - 1
    assert reg.overflowed


def test_register_rejects_negative_counts():
    reg = CounterRegister(index=0)
    reg.program("cpu_cycles")
    with pytest.raises(ValueError):
        reg.accumulate(-1.0)


def test_unprogrammed_register_accumulate_raises():
    reg = CounterRegister(index=0)
    with pytest.raises(CounterStateError):
        reg.accumulate(1.0)


def test_release_clears_state():
    reg = CounterRegister(index=0)
    reg.program("cpu_cycles")
    reg.accumulate(5)
    reg.release()
    assert reg.event is None
    assert reg.value == 0
    assert not reg.enabled


def test_reprogram_resets_count():
    rf = CounterRegisterFile(1)
    rf.program(["cpu_cycles"])
    rf.observe_window({"cpu_cycles": 50})
    rf.program(["instructions"])
    assert rf.read() == {"instructions": 0}


def test_sample_trace_requires_programming():
    rf = CounterRegisterFile(2)
    with pytest.raises(CounterStateError):
        sample_trace(rf, np.ones((3, 44)), ALL_EVENTS)


def test_sample_trace_extracts_programmed_columns():
    rf = CounterRegisterFile(2)
    rf.program(["cpu_cycles", "branch_instructions"])
    trace = np.arange(3 * 44, dtype=float).reshape(3, 44)
    readings = sample_trace(rf, trace, ALL_EVENTS)
    assert readings.shape == (3, 2)
    cyc = ALL_EVENTS.index("cpu_cycles")
    bi = ALL_EVENTS.index("branch_instructions")
    np.testing.assert_allclose(readings[:, 0], np.round(trace[:, cyc]))
    np.testing.assert_allclose(readings[:, 1], np.round(trace[:, bi]))


def test_sample_trace_rows_are_window_deltas():
    """Sampling mode resets registers between windows."""
    rf = CounterRegisterFile(1)
    rf.program(["cpu_cycles"])
    trace = np.zeros((2, 44))
    trace[:, ALL_EVENTS.index("cpu_cycles")] = [7.0, 9.0]
    readings = sample_trace(rf, trace, ALL_EVENTS)
    np.testing.assert_allclose(readings[:, 0], [7.0, 9.0])


@settings(max_examples=30, deadline=None)
@given(counts=st.lists(st.floats(0, 1e12), min_size=1, max_size=10))
def test_accumulate_never_exceeds_width(counts):
    reg = CounterRegister(index=0)
    reg.program("cpu_cycles")
    for c in counts:
        reg.accumulate(c)
    assert 0 <= reg.value <= (1 << COUNTER_BITS) - 1
