"""Event catalogue invariants."""

import pytest

from repro.hpc.events import (
    ALL_EVENTS,
    EVENT_DESCRIPTORS,
    EVENT_INDEX,
    TABLE1_RANKED_EVENTS,
    EventClass,
    events_of_class,
    validate_catalogue,
)


def test_catalogue_has_44_events():
    assert len(ALL_EVENTS) == 44


def test_event_names_unique():
    assert len(set(ALL_EVENTS)) == 44


def test_index_covers_all_events():
    assert set(EVENT_INDEX) == set(ALL_EVENTS)


def test_descriptor_order_matches_all_events():
    assert tuple(d.name for d in EVENT_DESCRIPTORS) == ALL_EVENTS


def test_table1_has_16_events():
    assert len(TABLE1_RANKED_EVENTS) == 16


def test_table1_events_exist_in_catalogue():
    assert set(TABLE1_RANKED_EVENTS) <= set(ALL_EVENTS)


def test_table1_first_event_is_branch_instructions():
    assert TABLE1_RANKED_EVENTS[0] == "branch_instructions"


def test_every_descriptor_has_description():
    assert all(d.description for d in EVENT_DESCRIPTORS)


def test_events_of_class_partition():
    total = sum(len(events_of_class(c)) for c in EventClass)
    assert total == 44


def test_events_of_class_branch():
    branch_events = events_of_class(EventClass.BRANCH)
    assert "branch_instructions" in branch_events
    assert "branch_misses" in branch_events
    assert "branch_loads" in branch_events


def test_events_of_class_tlb_has_both_tlbs():
    tlb = events_of_class(EventClass.TLB)
    assert any(name.startswith("dTLB") for name in tlb)
    assert any(name.startswith("iTLB") for name in tlb)


def test_validate_catalogue_passes():
    validate_catalogue()  # must not raise


def test_cache_events_include_llc_and_l1():
    cache = events_of_class(EventClass.CACHE)
    assert "LLC_load_misses" in cache
    assert "L1_dcache_load_misses" in cache
