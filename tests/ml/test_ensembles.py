"""AdaBoost.M1 and Bagging behaviour."""

import numpy as np
import pytest

from repro.ml import (
    SGD,
    SMO,
    AdaBoostM1,
    Bagging,
    J48,
    NotFittedError,
    OneR,
    REPTree,
    accuracy,
    roc_auc,
)
from tests.conftest import train_test


def test_boosting_lifts_weak_learner_on_xor(xor_data):
    """The paper's central claim in miniature: a linear learner that
    fails the multimodal layout is substantially improved by boosting."""
    xtr, ytr, xte, yte = train_test(*xor_data)
    weak = SMO().fit(xtr, ytr)
    boosted = AdaBoostM1(SMO(), n_estimators=15, seed=3).fit(xtr, ytr)
    weak_acc = accuracy(yte, weak.predict(xte))
    boosted_acc = accuracy(yte, boosted.predict(xte))
    assert boosted_acc > weak_acc + 0.08


def test_boosting_lifts_hard_vote_auc(xor_data):
    """Boosted SMO has graded scores -> AUC jumps (paper Table 2's
    0.65 -> 0.88 effect)."""
    xtr, ytr, xte, yte = train_test(*xor_data)
    weak = SMO().fit(xtr, ytr)
    boosted = AdaBoostM1(SMO(), n_estimators=15, seed=3).fit(xtr, ytr)
    assert roc_auc(yte, boosted.decision_scores(xte)) > roc_auc(
        yte, weak.decision_scores(xte)
    )


def test_boosting_oner_on_xor(xor_data):
    xtr, ytr, xte, yte = train_test(*xor_data)
    weak_acc = accuracy(yte, OneR().fit(xtr, ytr).predict(xte))
    boosted = AdaBoostM1(OneR(), n_estimators=20, seed=1).fit(xtr, ytr)
    assert accuracy(yte, boosted.predict(xte)) > weak_acc


def test_adaboost_stops_on_perfect_member(blobs):
    features, labels = blobs
    boosted = AdaBoostM1(J48(), n_estimators=10).fit(features, labels)
    # J48 separates the blobs perfectly, so boosting stops early
    assert boosted.n_models < 10


def test_adaboost_weight_aware_learner_uses_weights(blobs):
    features, labels = blobs
    boosted = AdaBoostM1(REPTree(), n_estimators=5, use_resampling=False)
    boosted.fit(features, labels)
    assert boosted.n_models >= 1


def test_adaboost_estimator_weights_positive(xor_data):
    features, labels = xor_data
    boosted = AdaBoostM1(SGD(epochs=20), n_estimators=8).fit(features, labels)
    assert all(w > 0 for w in boosted.estimator_weights_)


def test_adaboost_rejects_zero_estimators():
    with pytest.raises(ValueError):
        AdaBoostM1(OneR(), n_estimators=0)


def test_adaboost_clone_clones_base():
    boosted = AdaBoostM1(OneR(min_bucket_size=9), n_estimators=7)
    cloned = boosted.clone()
    assert cloned.n_estimators == 7
    assert cloned.base.params == {"min_bucket_size": 9}
    assert cloned.base is not boosted.base


def test_adaboost_unfitted_raises():
    with pytest.raises(NotFittedError):
        AdaBoostM1(OneR()).predict(np.zeros((1, 2)))


def test_bagging_reduces_variance_of_unpruned_trees(xor_data):
    xtr, ytr, xte, yte = train_test(*xor_data)
    rng = np.random.default_rng(5)
    noisy = ytr.copy()
    flip = rng.random(len(noisy)) < 0.15
    noisy[flip] = 1 - noisy[flip]
    single = J48(unpruned=True).fit(xtr, noisy)
    bagged = Bagging(J48(unpruned=True), n_estimators=15, seed=2).fit(xtr, noisy)
    assert accuracy(yte, bagged.predict(xte)) >= accuracy(yte, single.predict(xte))


def test_bagging_oob_accuracy_tracked(blobs):
    features, labels = blobs
    bagged = Bagging(REPTree(), n_estimators=10).fit(features, labels)
    assert bagged.oob_accuracy_ is not None
    assert 0.5 < bagged.oob_accuracy_ <= 1.0


def test_bagging_probability_is_member_average(blobs):
    features, labels = blobs
    bagged = Bagging(OneR(), n_estimators=4, seed=0).fit(features, labels)
    manual = np.mean(
        [m.predict_proba(features[:10]) for m in bagged.estimators_], axis=0
    )
    np.testing.assert_allclose(bagged.predict_proba(features[:10]), manual)


def test_bagging_bag_fraction_validated():
    with pytest.raises(ValueError):
        Bagging(OneR(), bag_fraction=0.0)


def test_bagging_n_models(blobs):
    features, labels = blobs
    bagged = Bagging(OneR(), n_estimators=6).fit(features, labels)
    assert bagged.n_models == 6


def test_bagging_deterministic_given_seed(blobs):
    features, labels = blobs
    a = Bagging(REPTree(), n_estimators=5, seed=9).fit(features, labels)
    b = Bagging(REPTree(), n_estimators=5, seed=9).fit(features, labels)
    np.testing.assert_allclose(
        a.predict_proba(features[:20]), b.predict_proba(features[:20])
    )


def test_ensembles_work_with_nonweight_learners(blobs):
    """SMO/JRip do not accept weights; AdaBoost must fall back to
    resampling transparently."""
    features, labels = blobs
    from repro.ml import JRip

    for base in (SMO(), JRip()):
        model = AdaBoostM1(base, n_estimators=3).fit(features[:150], labels[:150])
        assert model.n_models >= 1
