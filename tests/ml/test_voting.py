"""Heterogeneous voting ensemble."""

import numpy as np
import pytest

from repro.ml import SGD, BayesNet, J48, OneR, REPTree, VotingEnsemble, accuracy
from tests.conftest import train_test


def _committee():
    return [BayesNet(), J48(), REPTree(), OneR()]


def test_soft_vote_aces_separable(blobs):
    xtr, ytr, xte, yte = train_test(*blobs)
    model = VotingEnsemble(_committee()).fit(xtr, ytr)
    assert accuracy(yte, model.predict(xte)) > 0.93


def test_hard_vote_mode(blobs):
    xtr, ytr, xte, yte = train_test(*blobs)
    model = VotingEnsemble(_committee(), voting="hard").fit(xtr, ytr)
    assert accuracy(yte, model.predict(xte)) > 0.9


def test_committee_beats_its_weakest_member(xor_data):
    xtr, ytr, xte, yte = train_test(*xor_data)
    members = [SGD(epochs=20), J48(), REPTree()]
    committee = VotingEnsemble([m.clone() for m in members]).fit(xtr, ytr)
    weakest = min(
        accuracy(yte, m.clone().fit(xtr, ytr).predict(xte)) for m in members
    )
    assert accuracy(yte, committee.predict(xte)) > weakest


def test_uniform_weights_by_default(blobs):
    features, labels = blobs
    model = VotingEnsemble(_committee()).fit(features, labels)
    np.testing.assert_allclose(model.member_weights, 0.25)


def test_explicit_weights_normalized(blobs):
    features, labels = blobs
    model = VotingEnsemble([J48(), OneR()], weights=[3.0, 1.0]).fit(features, labels)
    np.testing.assert_allclose(model.member_weights, [0.75, 0.25])


def test_oob_weighting_downweights_weak_member(xor_data):
    """On XOR, the linear member is near chance; OOB weighting must give
    it (much) less say than the trees."""
    features, labels = xor_data
    model = VotingEnsemble(
        [SGD(epochs=20), J48(), REPTree()], holdout_fraction=0.25, seed=1
    ).fit(features, labels)
    weights = model.member_weights
    assert weights[0] < weights[1]
    assert weights[0] < weights[2]


def test_validation_errors():
    with pytest.raises(ValueError):
        VotingEnsemble([])
    with pytest.raises(ValueError):
        VotingEnsemble([OneR()], voting="ranked")
    with pytest.raises(ValueError):
        VotingEnsemble([OneR()], weights=[1.0, 2.0])
    with pytest.raises(ValueError):
        VotingEnsemble([OneR()], holdout_fraction=0.95)


def test_negative_weights_rejected(blobs):
    features, labels = blobs
    with pytest.raises(ValueError):
        VotingEnsemble([J48(), OneR()], weights=[1.0, -1.0]).fit(features, labels)


def test_clone_clones_members(blobs):
    model = VotingEnsemble(_committee(), voting="hard")
    cloned = model.clone()
    assert cloned.voting == "hard"
    assert len(cloned.members) == 4
    assert all(a is not b for a, b in zip(cloned.members, model.members))


def test_probabilities_valid(blobs):
    xtr, ytr, xte, yte = train_test(*blobs)
    model = VotingEnsemble(_committee()).fit(xtr, ytr)
    proba = model.predict_proba(xte)
    np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
    assert np.all(proba >= 0)


def test_degenerate_holdout_falls_back_to_uniform_weights():
    """Regression: when the post-holdout training rows are single-class,
    fit used to evaluate member weights on the *training* data itself,
    rewarding whichever member overfits hardest.  The degenerate case
    must fall back to uniform weights instead.
    """
    seed, n = 0, 20
    order = np.random.default_rng(seed).permutation(n)
    rng = np.random.default_rng(42)
    features = rng.normal(size=(n, 3))
    labels = np.zeros(n, dtype=np.intp)
    labels[order[:2]] = 1  # all positives land in the holdout slice
    model = VotingEnsemble(
        members=[REPTree(no_pruning=True, min_instances=1), OneR()],
        holdout_fraction=0.1,
        seed=seed,
    ).fit(features, labels)
    assert len(np.unique(labels[order[2:]])) == 1  # the branch really fired
    np.testing.assert_array_equal(model.member_weights, [0.5, 0.5])
