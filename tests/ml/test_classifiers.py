"""Behavioural tests for each of the eight WEKA-style base learners."""

import numpy as np
import pytest

from repro.ml import (
    MLP,
    SGD,
    SMO,
    BayesNet,
    J48,
    JRip,
    OneR,
    REPTree,
    accuracy,
    roc_auc,
)
from tests.conftest import train_test

SEPARABLE_MIN_ACC = 0.93


@pytest.mark.parametrize(
    "factory",
    [
        BayesNet,
        J48,
        JRip,
        lambda: MLP(epochs=60),
        OneR,
        REPTree,
        lambda: SGD(epochs=60),
        SMO,
    ],
    ids=["BayesNet", "J48", "JRip", "MLP", "OneR", "REPTree", "SGD", "SMO"],
)
def test_all_learners_ace_separable_blobs(factory, blobs):
    xtr, ytr, xte, yte = train_test(*blobs)
    model = factory().fit(xtr, ytr)
    assert accuracy(yte, model.predict(xte)) >= SEPARABLE_MIN_ACC


@pytest.mark.parametrize(
    "factory",
    [J48, JRip, lambda: MLP(hidden_units=8, epochs=300), REPTree],
    ids=["J48", "JRip", "MLP", "REPTree"],
)
def test_nonlinear_learners_handle_xor(factory, xor_data):
    """XOR layout: learners with nonlinear capacity must beat chance well."""
    xtr, ytr, xte, yte = train_test(*xor_data)
    model = factory().fit(xtr, ytr)
    assert accuracy(yte, model.predict(xte)) >= 0.80


@pytest.mark.parametrize(
    "factory",
    [lambda: SGD(epochs=40), SMO, OneR, BayesNet],
    ids=["SGD", "SMO", "OneR", "BayesNet"],
)
def test_weak_learners_fail_xor(factory, xor_data):
    """Linear/one-rule learners cannot express XOR — that underfitting is
    the gap the paper closes with boosting.  BayesNet fails too: MDL
    discretization is univariate, and XOR has no marginal class signal,
    so every attribute collapses to one bin (WEKA behaves identically).
    """
    xtr, ytr, xte, yte = train_test(*xor_data)
    model = factory().fit(xtr, ytr)
    assert accuracy(yte, model.predict(xte)) <= 0.70


# ---------------------------------------------------------------- OneR
def test_oner_picks_most_discriminative_feature():
    rng = np.random.default_rng(0)
    noise = rng.normal(size=(200, 1))
    signal = np.concatenate([rng.normal(0, 0.3, 100), rng.normal(3, 0.3, 100)])[:, None]
    features = np.hstack([noise, signal])
    labels = np.array([0] * 100 + [1] * 100)
    model = OneR().fit(features, labels)
    assert model.chosen_attribute == 1


def test_oner_bucket_merging_keeps_few_buckets():
    rng = np.random.default_rng(1)
    values = np.concatenate([rng.normal(0, 1, 300), rng.normal(6, 1, 300)])[:, None]
    labels = np.array([0] * 300 + [1] * 300)
    model = OneR().fit(values, labels)
    assert model.bucket_counts_.shape[0] <= 4


def test_oner_min_bucket_size_validated():
    with pytest.raises(ValueError):
        OneR(min_bucket_size=0)


def test_oner_handles_constant_feature():
    features = np.ones((20, 1))
    labels = np.array([0, 1] * 10)
    model = OneR().fit(features, labels)
    assert model.predict(features).shape == (20,)


# ------------------------------------------------------------ BayesNet
def test_bayesnet_learns_tan_edge_on_dependent_attributes():
    """When one attribute is a near-copy of another, conditioning on the
    parent explains it far better than the class alone — the K2 search
    must add the attribute-parent edge."""
    rng = np.random.default_rng(10)
    labels = np.array([0] * 300 + [1] * 300)
    x0 = labels * 2.0 + rng.normal(0, 0.5, 600)
    x1 = x0 * 3.0 + rng.normal(0, 0.1, 600)
    features = np.column_stack([x0, x1])
    model = BayesNet(max_parents=2).fit(features, labels)
    assert model.network_edges


def test_bayesnet_naive_mode_has_no_edges(blobs):
    features, labels = blobs
    model = BayesNet(max_parents=1).fit(features, labels)
    assert model.network_edges == []


def test_bayesnet_rejects_bad_max_parents():
    with pytest.raises(ValueError):
        BayesNet(max_parents=3)


# ----------------------------------------------------------------- J48
def test_j48_pruning_shrinks_tree(blobs):
    features, labels = blobs
    rng = np.random.default_rng(2)
    noisy_labels = labels.copy()
    flip = rng.random(len(labels)) < 0.2
    noisy_labels[flip] = 1 - noisy_labels[flip]
    pruned = J48().fit(features, noisy_labels)
    unpruned = J48(unpruned=True).fit(features, noisy_labels)
    assert pruned.tree_size < unpruned.tree_size


def test_j48_exposes_structure(blobs):
    features, labels = blobs
    model = J48().fit(features, labels)
    assert model.tree_size >= model.n_leaves
    assert model.depth >= 1


def test_j48_validates_confidence():
    with pytest.raises(ValueError):
        J48(confidence=0.7)


def test_j48_pessimistic_error_monotone_in_errors():
    from repro.ml.j48 import pessimistic_errors

    assert pessimistic_errors(100, 10, 0.69) < pessimistic_errors(100, 30, 0.69)


def test_j48_pessimistic_error_exceeds_observed():
    from repro.ml.j48 import pessimistic_errors

    assert pessimistic_errors(50, 5, 0.69) > 5


def test_j48_z_quantile_accuracy():
    from repro.ml.j48 import _z_from_confidence

    # z for one-sided 75% confidence (CF=0.25) is about 0.6745
    assert _z_from_confidence(0.25) == pytest.approx(0.6745, abs=1e-3)


# ------------------------------------------------------------- REPTree
def test_reptree_pruning_shrinks_tree(blobs):
    features, labels = blobs
    rng = np.random.default_rng(3)
    noisy = labels.copy()
    flip = rng.random(len(labels)) < 0.25
    noisy[flip] = 1 - noisy[flip]
    pruned = REPTree(seed=5).fit(features, noisy)
    grown = REPTree(no_pruning=True, seed=5).fit(features, noisy)
    assert pruned.tree_size <= grown.tree_size


def test_reptree_max_depth_respected(blobs):
    features, labels = blobs
    model = REPTree(max_depth=2, no_pruning=True).fit(features, labels)
    assert model.depth <= 2


def test_reptree_validates_folds():
    with pytest.raises(ValueError):
        REPTree(num_folds=1)


def test_reptree_leaf_routing(blobs):
    features, labels = blobs
    model = REPTree().fit(features, labels)
    leaf = model.predict_leaf(features[0])
    assert leaf.is_leaf


# ---------------------------------------------------------------- JRip
def test_jrip_produces_rules_on_separable_data(blobs):
    features, labels = blobs
    model = JRip().fit(features, labels)
    assert model.n_rules >= 1
    assert model.n_conditions >= model.n_rules


def test_jrip_targets_minority_class(blobs):
    features, labels = blobs
    minority = np.concatenate([features[labels == 1][:40], features[labels == 0]])
    min_labels = np.array([1] * 40 + [0] * int((labels == 0).sum()))
    model = JRip().fit(minority, min_labels)
    assert model.positive_class_ == 1


def test_jrip_describe_lists_rules(blobs):
    features, labels = blobs
    model = JRip().fit(features, labels)
    text = model.describe()
    assert "=> class" in text
    assert "default" in text


def test_jrip_validates_folds():
    with pytest.raises(ValueError):
        JRip(folds=1)


def test_jrip_foil_gain_positive_for_purifying_condition():
    from repro.ml.jrip import _foil_gain

    gain = _foil_gain(50.0, 50.0, np.array([40.0]), np.array([5.0]))
    assert gain[0] > 0


# ----------------------------------------------------------------- MLP
def test_mlp_default_hidden_units_weka_rule(blobs):
    features, labels = blobs
    model = MLP(epochs=5).fit(features, labels)
    d, h, o = model.layer_sizes
    assert d == features.shape[1]
    assert h == (features.shape[1] + 2) // 2
    assert o == 2


def test_mlp_deterministic_given_seed(blobs):
    features, labels = blobs
    a = MLP(epochs=10, seed=3).fit(features, labels)
    b = MLP(epochs=10, seed=3).fit(features, labels)
    np.testing.assert_allclose(a.w_hidden_, b.w_hidden_)


def test_mlp_validates_momentum():
    with pytest.raises(ValueError):
        MLP(momentum=1.0)


# ----------------------------------------------------------------- SGD
def test_sgd_decision_function_sign_matches_prediction(blobs):
    features, labels = blobs
    model = SGD(epochs=30).fit(features, labels)
    margins = model.decision_function(features[:50])
    np.testing.assert_array_equal(model.predict(features[:50]), (margins >= 0))


def test_sgd_logistic_loss_supported(blobs):
    xtr, ytr, xte, yte = train_test(*blobs)
    model = SGD(loss="logistic", epochs=30).fit(xtr, ytr)
    assert accuracy(yte, model.predict(xte)) > 0.9


def test_sgd_rejects_unknown_loss():
    with pytest.raises(ValueError):
        SGD(loss="poisson")


# ----------------------------------------------------------------- SMO
def test_smo_default_scores_are_hard_votes(blobs):
    """WEKA default: no logistic model -> degenerate 0/1 probabilities,
    the artifact behind the paper's low SMO AUC."""
    xtr, ytr, xte, yte = train_test(*blobs)
    model = SMO().fit(xtr, ytr)
    proba = model.predict_proba(xte)
    assert set(np.unique(proba[:, 1])) <= {0.0, 1.0}


def test_smo_logistic_model_gives_graded_scores(blobs):
    xtr, ytr, xte, yte = train_test(*blobs)
    model = SMO(build_logistic_model=True).fit(xtr, ytr)
    proba = model.predict_proba(xte)[:, 1]
    assert len(np.unique(np.round(proba, 6))) > 2
    assert roc_auc(yte, proba) > 0.95


def test_smo_rbf_kernel(blobs):
    xtr, ytr, xte, yte = train_test(*blobs)
    model = SMO(kernel="rbf", gamma=0.5).fit(xtr[:150], ytr[:150])
    assert accuracy(yte, model.predict(xte)) > 0.9
    assert model.n_support_vectors > 0


def test_smo_rejects_unknown_kernel():
    with pytest.raises(ValueError):
        SMO(kernel="poly7")


def test_smo_support_vectors_subset(blobs):
    features, labels = blobs
    model = SMO().fit(features[:200], labels[:200])
    assert 0 < model.n_support_vectors <= 200


def test_oner_value_on_cut_point_stays_in_its_training_bucket():
    """Regression: a value exactly equal to a cut point must land in the
    bucket ``fit`` counted it in.  When two adjacent float runs midpoint
    to the *left* run's value, ``side="right"`` bucketing sent that
    training value into the right bucket at predict time.
    """
    a, b = 1.0, np.nextafter(1.0, 2.0)
    assert (a + b) / 2.0 == a  # the midpoint collides with the left value
    values = np.array([[a]] * 3 + [[b]] * 3)
    labels = np.array([0] * 3 + [1] * 3)
    model = OneR(min_bucket_size=2).fit(values, labels)
    assert model.predict([[a]]) == [0]
    assert model.predict([[b]]) == [1]


def test_oner_cut_never_rounds_onto_right_bucket_value():
    """The mirror collision: when the midpoint rounds up onto the *right*
    run's value, the cut falls back to the left value so both training
    values keep their buckets under value<=cut semantics."""
    a, b = np.nextafter(1.0, 0.0), 1.0
    assert (a + b) / 2.0 == b  # the midpoint collides with the right value
    values = np.array([[a]] * 3 + [[b]] * 3)
    labels = np.array([0] * 3 + [1] * 3)
    model = OneR(min_bucket_size=2).fit(values, labels)
    assert model.cut_points_[0] == a
    assert model.predict([[a]]) == [0]
    assert model.predict([[b]]) == [1]


def test_oner_boundary_convention_is_leq_left():
    """A query exactly on a (non-colliding) cut belongs to the left
    bucket: the framework-wide convention is ``value <= threshold`` goes
    left, as in the decision trees."""
    values = np.array([[0.0]] * 6 + [[1.0]] * 6)
    labels = np.array([0] * 6 + [1] * 6)
    model = OneR().fit(values, labels)
    np.testing.assert_array_equal(model.cut_points_, [0.5])
    assert model.predict([[0.5]]) == [0]
    assert model.predict([[0.5 + 1e-9]]) == [1]
