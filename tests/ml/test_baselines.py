"""Related-work baseline detectors: logistic, KNN, anomaly."""

import numpy as np
import pytest

from repro.ml import (
    GaussianAnomalyDetector,
    KNearestNeighbors,
    LogisticRegression,
    accuracy,
    roc_auc,
)
from tests.conftest import train_test


# ----------------------------------------------------- LogisticRegression
def test_logistic_aces_separable(blobs):
    xtr, ytr, xte, yte = train_test(*blobs)
    model = LogisticRegression().fit(xtr, ytr)
    assert accuracy(yte, model.predict(xte)) > 0.95


def test_logistic_probabilities_calibrated_direction(blobs):
    xtr, ytr, xte, yte = train_test(*blobs)
    model = LogisticRegression().fit(xtr, ytr)
    proba = model.predict_proba(xte)[:, 1]
    assert proba[yte == 1].mean() > proba[yte == 0].mean()


def test_logistic_converges_quickly(blobs):
    features, labels = blobs
    model = LogisticRegression().fit(features, labels)
    assert model.n_iterations_ <= 25


def test_logistic_coefficients_shape(blobs):
    features, labels = blobs
    model = LogisticRegression().fit(features, labels)
    assert model.coefficients.shape == (features.shape[1],)


def test_logistic_supports_weights(blobs):
    features, labels = blobs
    weights = np.where(labels == 1, 5.0, 1.0)
    model = LogisticRegression().fit(features, labels, sample_weight=weights)
    # up-weighting malware raises the malware rate of predictions
    base = LogisticRegression().fit(features, labels)
    assert model.predict(features).mean() >= base.predict(features).mean()


def test_logistic_validates_params():
    with pytest.raises(ValueError):
        LogisticRegression(reg_lambda=-1.0)
    with pytest.raises(ValueError):
        LogisticRegression(max_iterations=0)


def test_logistic_fails_xor(xor_data):
    """Linear baseline — same blind spot the paper's SGD/SMO rows have."""
    xtr, ytr, xte, yte = train_test(*xor_data)
    model = LogisticRegression().fit(xtr, ytr)
    assert accuracy(yte, model.predict(xte)) < 0.7


# ----------------------------------------------------- KNearestNeighbors
def test_knn_aces_separable(blobs):
    xtr, ytr, xte, yte = train_test(*blobs)
    model = KNearestNeighbors(k=5).fit(xtr, ytr)
    assert accuracy(yte, model.predict(xte)) > 0.95


def test_knn_handles_xor(xor_data):
    """Demme et al.'s offline result: instance-based methods handle the
    multimodal layout that linear models cannot."""
    xtr, ytr, xte, yte = train_test(*xor_data)
    model = KNearestNeighbors(k=7).fit(xtr, ytr)
    assert accuracy(yte, model.predict(xte)) > 0.9


def test_knn_stores_training_set(blobs):
    features, labels = blobs
    model = KNearestNeighbors().fit(features[:123], labels[:123])
    assert model.n_stored == 123


def test_knn_k_larger_than_train():
    features = np.array([[0.0], [1.0], [10.0]])
    labels = np.array([0, 0, 1])
    model = KNearestNeighbors(k=50).fit(features, labels)
    assert model.predict(np.array([[0.5]])).shape == (1,)


def test_knn_unweighted_mode(blobs):
    xtr, ytr, xte, yte = train_test(*blobs)
    model = KNearestNeighbors(k=5, weighted=False).fit(xtr, ytr)
    assert accuracy(yte, model.predict(xte)) > 0.9


def test_knn_validates_k():
    with pytest.raises(ValueError):
        KNearestNeighbors(k=0)


# ----------------------------------------------- GaussianAnomalyDetector
def _shifted_anomaly_data():
    rng = np.random.default_rng(0)
    benign = np.vstack([
        rng.normal([0, 0, 0], 0.5, (150, 3)),
        rng.normal([4, 1, 0], 0.5, (150, 3)),
    ])
    malware = rng.normal([2, 5, 4], 0.7, (100, 3))
    features = np.expm1(np.vstack([benign, malware]) / 2.0 + 2.0)  # positive counts
    labels = np.array([0] * 300 + [1] * 100)
    return features, labels


def test_anomaly_detector_separates_shifted_malware():
    features, labels = _shifted_anomaly_data()
    model = GaussianAnomalyDetector(n_components=3, seed=1).fit(features, labels)
    assert roc_auc(labels, model.anomaly_scores(features)) > 0.9


def test_anomaly_detector_trains_on_benign_only():
    """Malware rows must not influence the model: moving them leaves the
    benign density unchanged."""
    features, labels = _shifted_anomaly_data()
    a = GaussianAnomalyDetector(n_components=3, seed=1).fit(features, labels)
    moved = features.copy()
    moved[labels == 1] *= 100.0
    b = GaussianAnomalyDetector(n_components=3, seed=1).fit(moved, labels)
    benign_rows = features[labels == 0]
    np.testing.assert_allclose(
        a.anomaly_scores(benign_rows), b.anomaly_scores(benign_rows)
    )


def test_anomaly_threshold_matches_contamination():
    features, labels = _shifted_anomaly_data()
    model = GaussianAnomalyDetector(
        n_components=3, contamination=0.1, seed=2
    ).fit(features, labels)
    benign_flagged = model.predict(features[labels == 0]).mean()
    assert benign_flagged < 0.25


def test_anomaly_validates_params():
    with pytest.raises(ValueError):
        GaussianAnomalyDetector(n_components=0)
    with pytest.raises(ValueError):
        GaussianAnomalyDetector(contamination=0.7)


def test_anomaly_needs_enough_benign():
    features = np.ones((4, 2))
    labels = np.array([1, 1, 1, 0])
    with pytest.raises(ValueError):
        GaussianAnomalyDetector(n_components=3).fit(features, labels)
