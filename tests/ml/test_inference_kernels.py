"""Differential tests: vectorized inference kernels vs scalar references.

The batch kernels (``FlatTree`` descent, ``CompiledRuleList`` rule
application, stacked ensemble probability reduction) must be *bit
identical* to the retained scalar paths — same leaf, same counts, same
probabilities — on any input, including single-row and empty batches and
rows that sit exactly on split thresholds.  Every test here asserts
exact equality (``np.array_equal``), never closeness.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import SGD, AdaBoostM1, Bagging, BayesNet, J48, JRip, OneR, REPTree
from repro.ml.base import proba_from_counts
from repro.ml.ensemble.voting import VotingEnsemble
from repro.ml.jrip import CompiledRuleList, Condition, Rule
from repro.ml.reptree import REPTree as REPTreeClass
from repro.ml.tree import (
    FlatTree,
    grow_tree,
    leaf_counts_matrix,
    leaf_counts_matrix_scalar,
    route,
)


def _random_tree(seed: int, n_rows: int, n_cols: int, max_depth: int = -1):
    """Grow a tree on random data; returns (root, features, labels, weights)."""
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n_rows, n_cols)).round(2)  # ties on purpose
    labels = (features.sum(axis=1) + rng.normal(scale=0.5, size=n_rows) > 0).astype(
        np.intp
    )
    weights = rng.uniform(0.5, 2.0, size=n_rows)
    root = grow_tree(features, labels, weights, 2.0, use_gain_ratio=seed % 2 == 0,
                     max_depth=max_depth)
    return root, features, labels, weights


def _boundary_queries(flat: FlatTree, features: np.ndarray, seed: int) -> np.ndarray:
    """Query rows that include exact split thresholds in every column."""
    rng = np.random.default_rng(seed)
    thresholds = flat.threshold[~np.isnan(flat.threshold)]
    queries = [features, rng.normal(size=(37, features.shape[1]))]
    if thresholds.size:
        picks = rng.choice(thresholds, size=(29, features.shape[1]))
        queries.append(picks)
    return np.vstack(queries)


# ------------------------------------------------------------ FlatTree
@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_rows=st.integers(10, 200),
    n_cols=st.integers(1, 6),
    max_depth=st.sampled_from([-1, 1, 3]),
)
def test_flat_tree_descent_matches_scalar_route(seed, n_rows, n_cols, max_depth):
    root, features, _, _ = _random_tree(seed, n_rows, n_cols, max_depth)
    flat = FlatTree(root)
    queries = _boundary_queries(flat, features, seed + 1)
    got = flat.leaf_counts(queries)
    want = leaf_counts_matrix_scalar(root, queries)
    assert np.array_equal(got, want)
    # the descend indices resolve to the same node objects route() finds
    leaves = flat.descend(queries)
    for i in (0, len(queries) // 2, len(queries) - 1):
        assert flat.nodes[leaves[i]] is route(root, queries[i])


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_flat_tree_path_mass_matches_scalar_accumulation(seed):
    root_vec, features, labels, weights = _random_tree(seed, 150, 4)
    root_ref, _, _, _ = _random_tree(seed, 150, 4)  # identical second copy
    rng = np.random.default_rng(seed + 7)
    held_x = rng.normal(size=(60, 4)).round(2)
    held_y = rng.integers(0, 2, size=60).astype(np.intp)
    held_w = rng.uniform(0.1, 3.0, size=60)

    REPTreeClass._accumulate_prune_counts_scalar(root_ref, held_x, held_y, held_w)
    flat = FlatTree(root_vec)
    mass = flat.path_class_mass(held_x, held_y, held_w)
    for i, node in enumerate(flat.nodes):
        node.prune_counts += mass[i]

    def walk(a, b):
        assert np.array_equal(a.prune_counts, b.prune_counts)
        if not a.is_leaf:
            walk(a.left, b.left)
            walk(a.right, b.right)

    walk(root_vec, root_ref)


def test_flat_tree_single_row_and_empty_batch():
    root, features, _, _ = _random_tree(3, 80, 3)
    flat = FlatTree(root)
    one = flat.leaf_counts(features[:1])
    assert np.array_equal(one, leaf_counts_matrix_scalar(root, features[:1]))
    empty = flat.leaf_counts(np.empty((0, 3)))
    assert empty.shape == (0, 2)
    assert flat.path_class_mass(
        np.empty((0, 3)), np.empty(0, dtype=np.intp), np.empty(0)
    ).shape == (flat.n_nodes, 2)


def test_flat_tree_of_leaf_only_root():
    root = grow_tree(np.zeros((4, 2)), np.array([1, 1, 1, 1]), np.ones(4), 2.0, False)
    flat = FlatTree(root)
    assert flat.n_nodes == 1
    queries = np.random.default_rng(0).normal(size=(5, 2))
    assert np.array_equal(flat.leaf_counts(queries),
                          leaf_counts_matrix_scalar(root, queries))


def test_leaf_counts_matrix_wrapper_is_vectorized_path():
    root, features, _, _ = _random_tree(11, 100, 4)
    assert np.array_equal(
        leaf_counts_matrix(root, features), leaf_counts_matrix_scalar(root, features)
    )


def test_fitted_trees_predict_empty_batch():
    rng = np.random.default_rng(5)
    features = rng.normal(size=(60, 3))
    labels = (features[:, 0] > 0).astype(np.intp)
    for model in (J48(), REPTree()):
        model.fit(features, labels)
        assert model.predict_proba(np.empty((0, 3))).shape == (0, 2)


# ---------------------------------------------------------------- JRip
def _random_rule_list(seed: int, n_cols: int):
    rng = np.random.default_rng(seed)
    rules = []
    for _ in range(rng.integers(1, 6)):
        conditions = [
            Condition(
                attribute=int(rng.integers(0, n_cols)),
                op="<=" if rng.random() < 0.5 else ">",
                threshold=round(float(rng.normal()), 2),
            )
            for _ in range(rng.integers(1, 4))
        ]
        rules.append(Rule(conditions=conditions,
                          class_counts=rng.uniform(0, 20, size=2)))
    return rules


def _jrip_reference_counts(rules, default_counts, features):
    """The pre-vectorization first-match loop, verbatim."""
    counts = np.tile(default_counts, (features.shape[0], 1))
    unassigned = np.ones(features.shape[0], dtype=bool)
    for rule in rules:
        hit = rule.covers(features) & unassigned
        counts[hit] = rule.class_counts
        unassigned &= ~hit
    return counts


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n_rows=st.integers(0, 150), n_cols=st.integers(1, 5))
def test_compiled_rules_match_mask_loop(seed, n_rows, n_cols):
    rules = _random_rule_list(seed, n_cols)
    default = np.array([7.0, 3.0])
    rng = np.random.default_rng(seed + 1)
    # thresholds are drawn from the same rounded grid as the features, so
    # exact value==threshold collisions occur and pin the <= / > boundary
    features = rng.normal(size=(n_rows, n_cols)).round(2)
    compiled = CompiledRuleList(rules)
    assert np.array_equal(
        compiled.apply(features, default),
        _jrip_reference_counts(rules, default, features),
    )


def test_compiled_rules_empty_rule_list_uses_default():
    compiled = CompiledRuleList([])
    features = np.random.default_rng(0).normal(size=(9, 3))
    default = np.array([2.0, 5.0])
    got = compiled.apply(features, default)
    assert np.array_equal(got, np.tile(default, (9, 1)))


def test_fitted_jrip_matches_scalar_reference_and_empty_batch():
    rng = np.random.default_rng(8)
    features = rng.normal(size=(300, 4))
    labels = ((features[:, 0] > 0.3) & (features[:, 1] < 0.5)).astype(np.intp)
    model = JRip(seed=1).fit(features, labels)
    queries = rng.normal(size=(120, 4))
    counts = model._counts_scalar(queries)
    smoothed = counts + 1.0
    want = smoothed / smoothed.sum(axis=1, keepdims=True)
    assert np.array_equal(model.predict_proba(queries), want)
    assert model.predict_proba(np.empty((0, 4))).shape == (0, 2)


# ----------------------------------------------------------- ensembles
@pytest.fixture(scope="module")
def ensemble_data():
    rng = np.random.default_rng(21)
    features = rng.normal(size=(240, 4))
    labels = (features[:, 0] + 0.5 * features[:, 1] > 0).astype(np.intp)
    queries = np.vstack([rng.normal(size=(90, 4)), features[:10]])
    return features, labels, queries


def test_adaboost_stacked_votes_match_loop(ensemble_data):
    features, labels, queries = ensemble_data
    model = AdaBoostM1(REPTree(seed=2), n_estimators=8, seed=3).fit(features, labels)
    votes = np.zeros((queries.shape[0], 2))
    for member, alpha in zip(model.estimators_, model.estimator_weights_):
        predictions = member.predict(queries)
        votes[np.arange(len(predictions)), predictions] += alpha
    total = votes.sum(axis=1, keepdims=True)
    want = votes / np.where(total > 0, total, 1.0)
    assert np.array_equal(model.predict_proba(queries), want)


def test_bagging_stacked_probas_match_loop(ensemble_data):
    features, labels, queries = ensemble_data
    model = Bagging(J48(), n_estimators=7, seed=4).fit(features, labels)
    total = np.zeros((queries.shape[0], 2))
    for member in model.estimators_:
        total += member.predict_proba(queries)
    want = total / len(model.estimators_)
    assert np.array_equal(model.predict_proba(queries), want)


@pytest.mark.parametrize("voting", ["soft", "hard"])
def test_voting_stacked_probas_match_loop(ensemble_data, voting):
    features, labels, queries = ensemble_data
    model = VotingEnsemble(
        members=[REPTree(seed=5), OneR(), BayesNet(), SGD(epochs=30)],
        voting=voting,
        weights=[3.0, 1.0, 2.0, 0.5],
    ).fit(features, labels)
    total = np.zeros((queries.shape[0], 2))
    for weight, member in zip(model.fitted_weights_, model.fitted_members_):
        if voting == "soft":
            total += weight * member.predict_proba(queries)
        else:
            predictions = member.predict(queries)
            total[np.arange(len(predictions)), predictions] += weight
    sums = total.sum(axis=1, keepdims=True)
    want = total / np.where(sums > 0, sums, 1.0)
    assert np.array_equal(model.predict_proba(queries), want)


def test_ensembles_predict_empty_batch(ensemble_data):
    features, labels, _ = ensemble_data
    empty = np.empty((0, 4))
    for model in (
        AdaBoostM1(REPTree(seed=2), n_estimators=3, seed=3),
        Bagging(REPTree(seed=2), n_estimators=3, seed=4),
        VotingEnsemble(members=[REPTree(seed=5), OneR()]),
    ):
        model.fit(features, labels)
        assert model.predict_proba(empty).shape == (0, 2)
