"""Statistical comparison utilities: McNemar, bootstrap CIs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import accuracy, roc_auc
from repro.ml.stats import bootstrap_metric_ci, mcnemar_test


def test_mcnemar_identical_predictions():
    y = np.array([0, 1, 0, 1])
    result = mcnemar_test(y, y, y)
    assert result.p_value == 1.0
    assert not result.significant


def test_mcnemar_counts_disagreements():
    y = np.zeros(10, dtype=int)
    a = y.copy()
    b = y.copy()
    b[:3] = 1  # b wrong on 3 that a gets right
    result = mcnemar_test(y, a, b)
    assert result.b == 3
    assert result.c == 0


def test_mcnemar_large_asymmetry_significant():
    rng = np.random.default_rng(0)
    y = rng.integers(0, 2, 400)
    good = y.copy()
    wrong = rng.random(400) < 0.05
    good[wrong] = 1 - good[wrong]
    bad = y.copy()
    wrong = rng.random(400) < 0.35
    bad[wrong] = 1 - bad[wrong]
    result = mcnemar_test(y, good, bad)
    assert result.significant


def test_mcnemar_symmetric_disagreement_not_significant():
    y = np.zeros(100, dtype=int)
    a = y.copy()
    b = y.copy()
    a[:10] = 1
    b[10:20] = 1
    result = mcnemar_test(y, a, b)
    assert result.b == result.c == 10
    assert not result.significant


def test_mcnemar_exact_small_sample():
    y = np.zeros(8, dtype=int)
    a = y.copy()
    b = y.copy()
    b[:2] = 1
    result = mcnemar_test(y, a, b)
    assert 0.0 < result.p_value <= 1.0


def test_mcnemar_shape_mismatch():
    with pytest.raises(ValueError):
        mcnemar_test(np.zeros(3), np.zeros(3), np.zeros(4))


def test_bootstrap_ci_contains_point():
    rng = np.random.default_rng(1)
    y = rng.integers(0, 2, 300)
    y[0], y[1] = 0, 1
    scores = y + rng.normal(0, 0.8, 300)
    ci = bootstrap_metric_ci(roc_auc, y, scores, n_resamples=200, seed=2)
    assert ci.low <= ci.point <= ci.high
    assert 0.0 <= ci.low <= ci.high <= 1.0


def test_bootstrap_ci_narrows_with_more_data():
    rng = np.random.default_rng(3)

    def ci_width(n):
        y = rng.integers(0, 2, n)
        y[0], y[1] = 0, 1
        scores = y + rng.normal(0, 0.8, n)
        ci = bootstrap_metric_ci(roc_auc, y, scores, n_resamples=200, seed=4)
        return ci.high - ci.low

    assert ci_width(2000) < ci_width(60)


def test_bootstrap_grouped_respects_applications():
    """Group resampling must produce wider intervals than IID resampling
    when windows within an app are perfectly correlated."""
    rng = np.random.default_rng(5)
    n_apps, windows = 30, 20
    app_effect = rng.normal(0, 1.0, n_apps)
    labels = np.repeat(rng.integers(0, 2, n_apps), windows)
    groups = np.repeat(np.arange(n_apps), windows)
    scores = labels + np.repeat(app_effect, windows)
    iid = bootstrap_metric_ci(roc_auc, labels, scores, n_resamples=200, seed=6)
    grouped = bootstrap_metric_ci(
        roc_auc, labels, scores, groups=groups, n_resamples=200, seed=6
    )
    assert (grouped.high - grouped.low) >= (iid.high - iid.low)


def test_bootstrap_ci_accuracy_metric():
    y = np.array([0, 1] * 50)
    pred = y.copy()
    pred[:10] = 1 - pred[:10]
    ci = bootstrap_metric_ci(accuracy, y, pred, n_resamples=100, seed=7)
    assert ci.point == pytest.approx(0.9)


def test_bootstrap_validates_confidence():
    y = np.array([0, 1, 0, 1])
    with pytest.raises(ValueError):
        bootstrap_metric_ci(accuracy, y, y, confidence=1.5)


def test_bootstrap_str_format():
    y = np.array([0, 1] * 20)
    ci = bootstrap_metric_ci(accuracy, y, y, n_resamples=50)
    assert "95% CI" in str(ci)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 1000))
def test_mcnemar_p_value_valid(seed):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, 60)
    a = rng.integers(0, 2, 60)
    b = rng.integers(0, 2, 60)
    result = mcnemar_test(y, a, b)
    assert 0.0 <= result.p_value <= 1.0
