"""Train/test protocols: application-level split, k-fold, leakage split."""

import numpy as np
import pytest

from repro.ml.validation import app_level_kfold, app_level_split, sample_level_split
from repro.workloads.dataset import BENIGN, MALWARE


def test_app_split_no_app_overlap(small_corpus):
    split = app_level_split(small_corpus, 0.7, seed=0)
    assert not set(split.train_apps) & set(split.test_apps)


def test_app_split_covers_all_apps(small_corpus):
    split = app_level_split(small_corpus, 0.7, seed=0)
    assert set(split.train_apps) | set(split.test_apps) == set(
        int(a) for a in np.unique(small_corpus.app_ids)
    )


def test_app_split_stratified_by_class(small_corpus):
    split = app_level_split(small_corpus, 0.7, seed=0)
    train_labels = [small_corpus.app_label(a) for a in split.train_apps]
    benign = sum(1 for lab in train_labels if lab == BENIGN)
    malware = sum(1 for lab in train_labels if lab == MALWARE)
    assert abs(benign - malware) <= 5


def test_app_split_fraction_respected(small_corpus):
    split = app_level_split(small_corpus, 0.7, seed=0)
    frac = len(split.train_apps) / small_corpus.n_apps
    assert 0.65 < frac < 0.75


def test_app_split_samples_follow_apps(small_corpus):
    split = app_level_split(small_corpus, 0.7, seed=0)
    assert set(np.unique(split.train.app_ids)) == set(split.train_apps)
    assert set(np.unique(split.test.app_ids)) == set(split.test_apps)


def test_app_split_seed_changes_assignment(small_corpus):
    a = app_level_split(small_corpus, 0.7, seed=0)
    b = app_level_split(small_corpus, 0.7, seed=1)
    assert a.train_apps != b.train_apps


def test_app_split_deterministic(small_corpus):
    a = app_level_split(small_corpus, 0.7, seed=3)
    b = app_level_split(small_corpus, 0.7, seed=3)
    assert a.train_apps == b.train_apps


def test_app_split_invalid_fraction(small_corpus):
    with pytest.raises(ValueError):
        app_level_split(small_corpus, 1.0)


def test_sample_split_sizes(small_corpus):
    split = sample_level_split(small_corpus, 0.7, seed=0)
    assert split.train.n_samples + split.test.n_samples == small_corpus.n_samples
    frac = split.train.n_samples / small_corpus.n_samples
    assert 0.68 < frac < 0.72


def test_sample_split_leaks_applications(small_corpus):
    """The leakage the paper's protocol avoids: same app on both sides."""
    split = sample_level_split(small_corpus, 0.7, seed=0)
    assert set(split.train_apps) & set(split.test_apps)


def test_kfold_test_sets_partition_apps(small_corpus):
    folds = app_level_kfold(small_corpus, n_folds=4, seed=0)
    seen: list[int] = []
    for fold in folds:
        seen.extend(fold.test_apps)
    assert sorted(seen) == sorted(int(a) for a in np.unique(small_corpus.app_ids))


def test_kfold_train_test_disjoint(small_corpus):
    for fold in app_level_kfold(small_corpus, n_folds=3, seed=1):
        assert not set(fold.train_apps) & set(fold.test_apps)


def test_kfold_rejects_single_fold(small_corpus):
    with pytest.raises(ValueError):
        app_level_kfold(small_corpus, n_folds=1)


def test_kfold_both_classes_in_every_fold(small_corpus):
    for fold in app_level_kfold(small_corpus, n_folds=4, seed=2):
        labels = {small_corpus.app_label(a) for a in fold.test_apps}
        assert labels == {BENIGN, MALWARE}
