"""Classifier base API: validation, weights, cloning, fitted checks."""

import numpy as np
import pytest

from repro.ml import BASE_CLASSIFIERS, NotFittedError, make_classifier
from repro.ml.base import check_features, check_training_set, proba_from_counts
from repro.ml.oner import OneR


def test_check_features_requires_2d():
    with pytest.raises(ValueError):
        check_features(np.zeros(5))


def test_check_features_rejects_nan():
    bad = np.zeros((2, 2))
    bad[0, 0] = np.nan
    with pytest.raises(ValueError):
        check_features(bad)


def test_check_features_rejects_inf():
    bad = np.zeros((2, 2))
    bad[1, 1] = np.inf
    with pytest.raises(ValueError):
        check_features(bad)


def test_check_training_set_rejects_empty():
    with pytest.raises(ValueError):
        check_training_set(np.zeros((0, 2)), np.zeros(0))


def test_check_training_set_rejects_nonbinary():
    with pytest.raises(ValueError):
        check_training_set(np.zeros((2, 1)), np.array([0, 2]))


def test_check_training_set_rejects_misaligned_weights():
    with pytest.raises(ValueError):
        check_training_set(np.zeros((2, 1)), np.array([0, 1]), np.ones(3))


def test_check_training_set_rejects_negative_weights():
    with pytest.raises(ValueError):
        check_training_set(np.zeros((2, 1)), np.array([0, 1]), np.array([1.0, -1.0]))


def test_check_training_set_rejects_zero_weight_sum():
    with pytest.raises(ValueError):
        check_training_set(np.zeros((2, 1)), np.array([0, 1]), np.zeros(2))


def test_weights_normalized_to_sample_count():
    _, _, w = check_training_set(
        np.zeros((4, 1)), np.array([0, 1, 0, 1]), np.array([1.0, 1.0, 2.0, 4.0])
    )
    assert w.sum() == pytest.approx(4.0)


def test_default_weights_are_ones():
    _, _, w = check_training_set(np.zeros((3, 1)), np.array([0, 1, 0]))
    np.testing.assert_allclose(w, np.ones(3))


def test_proba_from_counts_rows_sum_to_one():
    probs = proba_from_counts(np.array([[3.0, 1.0], [0.0, 0.0]]))
    np.testing.assert_allclose(probs.sum(axis=1), [1.0, 1.0])


def test_proba_from_counts_laplace_smoothing():
    probs = proba_from_counts(np.array([0.0, 0.0]), prior=1.0)
    np.testing.assert_allclose(probs, [0.5, 0.5])


@pytest.mark.parametrize("name", sorted(BASE_CLASSIFIERS))
def test_unfitted_classifier_raises(name):
    model = make_classifier(name)
    with pytest.raises(NotFittedError):
        model.predict(np.zeros((1, 2)))


@pytest.mark.parametrize("name", sorted(BASE_CLASSIFIERS))
def test_clone_is_unfitted_with_same_params(name):
    model = make_classifier(name)
    cloned = model.clone()
    assert type(cloned) is type(model)
    assert cloned.params == model.params
    assert not cloned.fitted_


def test_make_classifier_unknown_name():
    with pytest.raises(KeyError):
        make_classifier("RandomForest")


def test_repr_contains_params():
    assert "min_bucket_size=6" in repr(OneR())


@pytest.mark.parametrize("name", sorted(BASE_CLASSIFIERS))
def test_predict_consistent_with_proba(name, blobs):
    features, labels = blobs
    model = make_classifier(name)
    if name == "MLP":
        model = type(model)(epochs=30)
    model.fit(features[:200], labels[:200])
    proba = model.predict_proba(features[200:260])
    pred = model.predict(features[200:260])
    np.testing.assert_array_equal(pred, (proba[:, 1] >= 0.5).astype(int))
    np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
    assert np.all(proba >= 0)
