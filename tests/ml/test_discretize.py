"""Fayyad–Irani MDL discretization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.discretize import (
    Discretizer,
    equal_frequency_cuts,
    mdl_cut_points,
)


def test_separable_attribute_gets_a_cut():
    values = np.concatenate([np.linspace(0, 1, 50), np.linspace(5, 6, 50)])
    labels = np.array([0] * 50 + [1] * 50)
    cuts = mdl_cut_points(values, labels)
    assert len(cuts) >= 1
    assert 1 < cuts[0] < 5


def test_uninformative_attribute_gets_no_cut():
    rng = np.random.default_rng(0)
    values = rng.normal(size=200)
    labels = rng.integers(0, 2, 200)
    assert mdl_cut_points(values, labels) == []


def test_constant_attribute_gets_no_cut():
    values = np.ones(50)
    labels = np.array([0, 1] * 25)
    assert mdl_cut_points(values, labels) == []


def test_cuts_are_sorted():
    rng = np.random.default_rng(1)
    values = np.concatenate([
        rng.normal(0, 0.2, 60), rng.normal(2, 0.2, 60), rng.normal(4, 0.2, 60)
    ])
    labels = np.array([0] * 60 + [1] * 60 + [0] * 60)
    cuts = mdl_cut_points(values, labels)
    assert cuts == sorted(cuts)
    assert len(cuts) >= 2


def test_weighted_cuts_respect_mass():
    """Down-weighting one class's cluster should not change separability
    detection, but zero-weighting removes it."""
    values = np.concatenate([np.zeros(30), np.ones(30)])
    labels = np.array([0] * 30 + [1] * 30)
    weights = np.concatenate([np.ones(30), np.full(30, 1e-9)])
    assert mdl_cut_points(values, labels, weights) == []


def test_discretizer_transform_bins():
    features = np.array([[0.0], [1.0], [10.0], [11.0]])
    labels = np.array([0, 0, 1, 1])
    disc = Discretizer.fit(features, labels)
    binned = disc.transform(features)
    assert binned[0, 0] == binned[1, 0] == 0
    assert binned[2, 0] == binned[3, 0] == 1


def test_discretizer_n_bins():
    features = np.array([[0.0], [1.0], [10.0], [11.0]])
    labels = np.array([0, 0, 1, 1])
    disc = Discretizer.fit(features, labels)
    assert disc.n_bins == (2,)


def test_discretizer_feature_count_mismatch():
    disc = Discretizer(cut_points=((1.0,),))
    with pytest.raises(ValueError):
        disc.transform(np.zeros((2, 3)))


def test_transform_out_of_range_values_clamp_to_edge_bins():
    disc = Discretizer(cut_points=((0.0, 1.0),))
    binned = disc.transform(np.array([[-100.0], [0.5], [100.0]]))
    assert list(binned[:, 0]) == [0, 1, 2]


def test_equal_frequency_cuts_count():
    values = np.arange(100, dtype=float)
    cuts = equal_frequency_cuts(values, 4)
    assert len(cuts) == 3


def test_equal_frequency_single_bin_no_cuts():
    assert equal_frequency_cuts(np.arange(10.0), 1) == []


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 1000))
def test_transform_bins_within_range(seed):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(60, 3))
    labels = rng.integers(0, 2, 60)
    disc = Discretizer.fit(features, labels)
    binned = disc.transform(rng.normal(size=(20, 3)))
    for j, nb in enumerate(disc.n_bins):
        assert binned[:, j].min() >= 0
        assert binned[:, j].max() < nb
