"""Shared decision-tree machinery (split search, growth, routing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.tree import (
    TreeNode,
    best_split_for_attribute,
    entropy,
    find_split,
    grow_tree,
    leaf_counts_matrix,
    route,
)


def test_entropy_pure_is_zero():
    assert entropy(np.array([10.0, 0.0])) == 0.0


def test_entropy_uniform_is_log2():
    assert entropy(np.array([5.0, 5.0])) == pytest.approx(np.log(2))


def test_entropy_empty_is_zero():
    assert entropy(np.array([0.0, 0.0])) == 0.0


def test_best_split_finds_clean_boundary():
    values = np.array([1.0, 2.0, 3.0, 10.0, 11.0, 12.0])
    labels = np.array([0, 0, 0, 1, 1, 1])
    weights = np.ones(6)
    threshold, gain, ratio = best_split_for_attribute(values, labels, weights, 1.0)
    assert 3.0 < threshold < 10.0
    assert gain == pytest.approx(np.log(2))
    assert ratio > 0


def test_best_split_constant_attribute_none():
    assert best_split_for_attribute(
        np.ones(4), np.array([0, 1, 0, 1]), np.ones(4), 1.0
    ) is None


def test_best_split_respects_min_leaf_weight():
    values = np.array([1.0, 2.0, 3.0, 4.0])
    labels = np.array([1, 0, 0, 0])
    # a min leaf weight of 2 forbids isolating the single positive
    result = best_split_for_attribute(values, labels, np.ones(4), 2.0)
    if result is not None:
        threshold, _, _ = result
        assert threshold > 1.5


def test_find_split_picks_informative_attribute():
    rng = np.random.default_rng(0)
    noise = rng.normal(size=100)
    signal = np.concatenate([np.zeros(50), np.ones(50)])
    features = np.column_stack([noise, signal])
    labels = signal.astype(np.intp)
    split = find_split(features, labels, np.ones(100), 1.0, use_gain_ratio=True)
    assert split is not None
    assert split.attribute == 1


def test_find_split_none_on_noise():
    features = np.ones((10, 2))
    labels = np.array([0, 1] * 5)
    assert find_split(features, labels, np.ones(10), 1.0, True) is None


def test_grow_tree_pure_node_is_leaf():
    features = np.random.default_rng(1).normal(size=(20, 2))
    labels = np.zeros(20, dtype=np.intp)
    node = grow_tree(features, labels, np.ones(20), 1.0, True)
    assert node.is_leaf
    assert node.majority == 0


def test_grow_tree_max_depth():
    rng = np.random.default_rng(2)
    features = rng.normal(size=(200, 3))
    labels = (features[:, 0] + features[:, 1] > 0).astype(np.intp)
    node = grow_tree(features, labels, np.ones(200), 1.0, False, max_depth=2)
    assert node.depth() <= 2


def test_route_reaches_leaf():
    rng = np.random.default_rng(3)
    features = rng.normal(size=(100, 2))
    labels = (features[:, 0] > 0).astype(np.intp)
    root = grow_tree(features, labels, np.ones(100), 1.0, True)
    leaf = route(root, features[0])
    assert leaf.is_leaf


def test_leaf_counts_matrix_rows_match_routes():
    rng = np.random.default_rng(4)
    features = rng.normal(size=(60, 2))
    labels = (features[:, 1] > 0).astype(np.intp)
    root = grow_tree(features, labels, np.ones(60), 1.0, False)
    matrix = leaf_counts_matrix(root, features[:5])
    for i in range(5):
        np.testing.assert_allclose(matrix[i], route(root, features[i]).counts)


def test_make_leaf_collapses_subtree():
    node = TreeNode(counts=np.array([3.0, 7.0]))
    node.attribute = 0
    node.threshold = 1.0
    node.left = TreeNode(counts=np.array([3.0, 0.0]))
    node.right = TreeNode(counts=np.array([0.0, 7.0]))
    node.make_leaf()
    assert node.is_leaf
    assert node.majority == 1
    assert node.n_nodes() == 1


def test_node_statistics():
    root = TreeNode(counts=np.array([5.0, 5.0]))
    root.attribute = 0
    root.threshold = 0.0
    root.left = TreeNode(counts=np.array([5.0, 0.0]))
    root.right = TreeNode(counts=np.array([0.0, 5.0]))
    assert root.n_nodes() == 3
    assert root.n_leaves() == 2
    assert root.depth() == 1


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2000))
def test_grown_tree_routes_all_training_rows(seed):
    """Property: every training row routes to a leaf whose counts are
    non-empty (the row contributed somewhere)."""
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(40, 2))
    labels = rng.integers(0, 2, 40).astype(np.intp)
    root = grow_tree(features, labels, np.ones(40), 2.0, True)
    for i in range(features.shape[0]):
        leaf = route(root, features[i])
        assert leaf.counts.sum() > 0
