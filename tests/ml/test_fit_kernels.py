"""Differential tests: vectorized fit paths vs scalar references.

PR 5 pinned the *inference* kernels to their scalar references; this file
does the same for *training*.  Every learner whose ``fit`` consults
:mod:`repro.fitmode` is fitted twice on the same data — once through the
vectorized path, once through the retained scalar reference — and the
fitted parameters AND the predictions must be *bit identical* (``
np.array_equal``, never closeness).  The same harness runs each learner
under AdaBoost.M1 and Bagging so ensemble resampling, reweighting, and
member cloning cannot hide a divergence, plus hypothesis-driven random
corpora with deliberately awkward shapes: constant feature columns,
duplicated rows, single-row sets, and single-class labels.

A golden-digest regression layer pins the SHA-256 of every fitted model
on a fixed seeded corpus (see ``golden_fit_digests.json``), so a change
that alters *both* paths in lockstep — invisible to the differential
comparison — still trips a test.  Regenerate after an intentional
protocol change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/ml/test_fit_kernels.py

Digests cover float arithmetic bit-for-bit, so they are specific to the
BLAS/libm build; CI and the regeneration run must share an environment.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import fitmode
from repro.ml import (
    MLP,
    SGD,
    SMO,
    AdaBoostM1,
    Bagging,
    BayesNet,
    J48,
    JRip,
    OneR,
    REPTree,
)

GOLDEN_PATH = Path(__file__).parent / "golden_fit_digests.json"

#: Cheap configurations of every dual-path learner (plus BayesNet, whose
#: discretizer routes through the dual-path MDL cut search).  Epochs and
#: round caps are lowered so the whole matrix stays fast; the protocol
#: under test is identical at any setting.
LEARNERS = {
    "BayesNet": lambda: BayesNet(),
    "J48": lambda: J48(),
    "JRip": lambda: JRip(),
    "MLP": lambda: MLP(epochs=15, seed=5),
    "OneR": lambda: OneR(),
    "REPTree": lambda: REPTree(),
    "SGD": lambda: SGD(epochs=25, seed=5),
    "SMO": lambda: SMO(max_rounds=5),
}

MODES = {
    "general": lambda make: make(),
    "boosted": lambda make: AdaBoostM1(make(), n_estimators=3, seed=1),
    "bagging": lambda make: Bagging(make(), n_estimators=3, seed=1),
}


def _update_digest(h, value) -> None:
    """Feed one fitted-model component into a hash, canonically."""
    if isinstance(value, np.ndarray):
        h.update(f"ndarray:{value.dtype}:{value.shape}".encode())
        h.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (list, tuple)):
        h.update(f"seq:{len(value)}".encode())
        for item in value:
            _update_digest(h, item)
    elif isinstance(value, dict):
        h.update(f"dict:{len(value)}".encode())
        for key in sorted(value):
            h.update(repr(key).encode())
            _update_digest(h, value[key])
    elif isinstance(value, (bool, np.bool_)):
        h.update(repr(bool(value)).encode())
    elif isinstance(value, (float, np.floating)):
        # canonical bit pattern: float and np.float64 repr differently
        h.update(np.float64(value).tobytes())
    elif isinstance(value, (int, np.integer)):
        h.update(repr(int(value)).encode())
    elif isinstance(value, (str, bytes)) or value is None:
        h.update(repr(value).encode())
    elif dataclasses.is_dataclass(value):
        h.update(type(value).__name__.encode())
        for f in dataclasses.fields(value):
            h.update(f.name.encode())
            _update_digest(h, getattr(value, f.name))
    elif hasattr(value, "__dict__") or hasattr(value, "__slots__"):
        h.update(type(value).__name__.encode())
        state = getattr(value, "__dict__", None) or {
            slot: getattr(value, slot)
            for slot in value.__slots__
            if hasattr(value, slot)
        }
        for key in sorted(state):
            h.update(key.encode())
            _update_digest(h, state[key])
    else:  # pragma: no cover - no fitted attribute should land here
        raise TypeError(f"cannot fingerprint {type(value)!r}")


def fingerprint(model) -> str:
    """SHA-256 over every fitted attribute of a trained model.

    Walks ``vars(model)`` (which covers nested ensembles, tree nodes,
    rule lists, and scalers recursively), so two models fingerprint
    equal iff every learned parameter is bit-identical.
    """
    h = hashlib.sha256()
    _update_digest(h, vars(model))
    return h.hexdigest()


def _corpus(seed: int, n: int = 90, d: int = 5):
    """Two overlapping Gaussian classes with a constant and a duplicated
    column, weighted — the shapes fit paths historically get wrong."""
    rng = np.random.default_rng(seed)
    labels = (rng.random(n) < 0.5).astype(np.intp)
    features = rng.normal(size=(n, d)) + labels[:, None] * 0.8
    features[:, -1] = 3.25  # constant column: no valid split/cut/bucket
    if d >= 3:
        features[:, -2] = features[:, 0]  # duplicated column: split ties
    weights = rng.uniform(0.25, 2.0, size=n)
    queries = np.vstack([features, rng.normal(size=(33, d))])
    return features, labels, weights, queries


def fit_both(build, features, labels, sample_weight=None):
    """Fit through both paths; return ``(fast, scalar)`` models."""
    fast = build()
    fast.fit(features, labels, sample_weight=sample_weight)
    with fitmode.scalar_fit():
        ref = build()
        ref.fit(features, labels, sample_weight=sample_weight)
    return fast, ref


def assert_identical(fast, ref, queries) -> None:
    assert fingerprint(fast) == fingerprint(ref)
    assert np.array_equal(fast.predict_proba(queries), ref.predict_proba(queries))
    assert np.array_equal(fast.predict(queries), ref.predict(queries))


# ------------------------------------------------- learner x mode matrix
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("learner", LEARNERS)
def test_fit_matches_scalar_reference(learner, mode):
    features, labels, weights, queries = _corpus(seed=2018)
    build = lambda: MODES[mode](LEARNERS[learner])
    sample_weight = weights if build().supports_sample_weight else None
    fast, ref = fit_both(build, features, labels, sample_weight)
    assert_identical(fast, ref, queries)


# ------------------------------------------------------- property tests
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(4, 60), d=st.integers(1, 6))
@pytest.mark.parametrize("learner", LEARNERS)
def test_fit_matches_on_random_corpora(learner, seed, n, d):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, d)).round(1)  # coarse grid: many ties
    labels = (rng.random(n) < 0.5).astype(np.intp)
    if seed % 3 == 0:
        features[:, 0] = -1.5  # constant attribute
    fast, ref = fit_both(LEARNERS[learner], features, labels)
    assert_identical(fast, ref, rng.normal(size=(16, d)))


@pytest.mark.parametrize("learner", LEARNERS)
def test_fit_matches_on_single_row(learner):
    """Regression: SMO's partner draw used to crash on one-row sets
    (``rng.integers(0)`` raises); a pair step needs two rows."""
    features = np.array([[0.5, -1.0, 2.0]])
    labels = np.array([1], dtype=np.intp)
    fast, ref = fit_both(LEARNERS[learner], features, labels)
    assert_identical(fast, ref, np.array([[0.5, -1.0, 2.0], [9.0, 9.0, 9.0]]))


@pytest.mark.parametrize("learner", LEARNERS)
def test_fit_matches_when_one_class_is_absent(learner):
    rng = np.random.default_rng(11)
    features = rng.normal(size=(25, 4))
    labels = np.zeros(25, dtype=np.intp)  # single-class training set
    fast, ref = fit_both(LEARNERS[learner], features, labels)
    assert_identical(fast, ref, rng.normal(size=(10, 4)))


# -------------------------------------------------------- golden digests
def test_golden_fit_digests():
    """Pin the exact fitted parameters of every learner x mode cell.

    The differential tests above cannot see a change that alters the
    vectorized and scalar paths in lockstep; this regression layer can.
    On an intentional protocol change, regenerate with
    ``REPRO_REGEN_GOLDEN=1`` and review the diff of the JSON.
    """
    features, labels, weights, _ = _corpus(seed=2018)
    digests = {}
    for mode, wrap in MODES.items():
        for learner, make in LEARNERS.items():
            model = wrap(make)
            sw = weights if model.supports_sample_weight else None
            model.fit(features, labels, sample_weight=sw)
            digests[f"{learner}/{mode}"] = fingerprint(model)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_PATH.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH.name}")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert digests == golden
