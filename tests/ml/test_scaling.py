"""Feature standardization."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.scaling import StandardScaler


def test_transform_zero_mean_unit_std():
    rng = np.random.default_rng(0)
    features = rng.normal(5.0, 3.0, size=(500, 4))
    scaler = StandardScaler.fit(features)
    scaled = scaler.transform(features)
    np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
    np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-9)


def test_constant_feature_maps_to_zero():
    features = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
    scaler = StandardScaler.fit(features)
    scaled = scaler.transform(features)
    np.testing.assert_allclose(scaled[:, 0], 0.0)


def test_transform_new_data_uses_fit_statistics():
    train = np.zeros((4, 1)) + np.array([[0.0], [2.0], [0.0], [2.0]])
    scaler = StandardScaler.fit(train)
    out = scaler.transform(np.array([[1.0]]))
    assert out[0, 0] == 0.0  # (1 - mean 1) / std 1


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 3000))
def test_transform_is_affine_invertible(seed):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(30, 3)) * rng.uniform(0.5, 10)
    scaler = StandardScaler.fit(features)
    recovered = scaler.transform(features) * scaler.scale + scaler.mean
    np.testing.assert_allclose(recovered, features, rtol=1e-10, atol=1e-10)
