"""Metrics: accuracy, confusion matrix, ROC/AUC properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    acc_times_auc,
    accuracy,
    classification_report,
    confusion_matrix,
    evaluate_detector,
    roc_auc,
    roc_curve,
)


def test_accuracy_perfect():
    y = np.array([0, 1, 1, 0])
    assert accuracy(y, y) == 1.0


def test_accuracy_half():
    assert accuracy(np.array([0, 0, 1, 1]), np.array([0, 1, 1, 0])) == 0.5


def test_accuracy_empty_rejected():
    with pytest.raises(ValueError):
        accuracy(np.array([]), np.array([]))


def test_accuracy_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        accuracy(np.array([0, 1]), np.array([0]))


def test_confusion_matrix_layout():
    y_true = np.array([0, 0, 1, 1, 1])
    y_pred = np.array([0, 1, 1, 0, 1])
    matrix = confusion_matrix(y_true, y_pred)
    assert matrix[0, 0] == 1  # TN
    assert matrix[0, 1] == 1  # FP
    assert matrix[1, 0] == 1  # FN
    assert matrix[1, 1] == 2  # TP


def test_classification_report_values():
    y_true = np.array([0, 0, 0, 1, 1, 1])
    y_pred = np.array([0, 0, 1, 1, 1, 0])
    report = classification_report(y_true, y_pred)
    assert report.accuracy == pytest.approx(4 / 6)
    assert report.precision == pytest.approx(2 / 3)
    assert report.recall == pytest.approx(2 / 3)
    assert report.false_positive_rate == pytest.approx(1 / 3)


def test_report_degenerate_no_positives_predicted():
    y_true = np.array([0, 1])
    y_pred = np.array([0, 0])
    report = classification_report(y_true, y_pred)
    assert report.precision == 0.0
    assert report.f1 == 0.0


def test_roc_curve_endpoints():
    y = np.array([0, 0, 1, 1])
    scores = np.array([0.1, 0.4, 0.35, 0.8])
    fpr, tpr, thresholds = roc_curve(y, scores)
    assert fpr[0] == 0.0 and tpr[0] == 0.0
    assert fpr[-1] == 1.0 and tpr[-1] == 1.0
    assert thresholds[0] == np.inf


def test_roc_curve_monotone():
    rng = np.random.default_rng(0)
    y = rng.integers(0, 2, 200)
    y[0], y[1] = 0, 1
    scores = rng.normal(size=200)
    fpr, tpr, _ = roc_curve(y, scores)
    assert np.all(np.diff(fpr) >= 0)
    assert np.all(np.diff(tpr) >= 0)


def test_roc_requires_both_classes():
    with pytest.raises(ValueError):
        roc_curve(np.array([1, 1]), np.array([0.1, 0.2]))


def test_auc_perfect_separation():
    y = np.array([0, 0, 1, 1])
    assert roc_auc(y, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0


def test_auc_inverted_scores():
    y = np.array([0, 0, 1, 1])
    assert roc_auc(y, np.array([0.9, 0.8, 0.2, 0.1])) == 0.0


def test_auc_constant_scores_is_half():
    y = np.array([0, 1, 0, 1])
    assert roc_auc(y, np.zeros(4)) == pytest.approx(0.5)


def test_auc_known_value_with_tie():
    y = np.array([0, 1, 1])
    scores = np.array([0.5, 0.5, 0.9])
    # P(malware outscores benign) = 1/2*(1) + 1/2 tie*(0.5) -> 0.75
    assert roc_auc(y, scores) == pytest.approx(0.75)


def test_auc_equals_pairwise_probability():
    rng = np.random.default_rng(3)
    y = np.array([0] * 40 + [1] * 60)
    scores = np.concatenate([rng.normal(0, 1, 40), rng.normal(1, 1, 60)])
    fpr_auc = roc_auc(y, scores)
    pos, neg = scores[y == 1], scores[y == 0]
    wins = (pos[:, None] > neg[None, :]).sum() + 0.5 * (pos[:, None] == neg[None, :]).sum()
    assert fpr_auc == pytest.approx(wins / (len(pos) * len(neg)))


def test_hard_scores_auc_is_balanced_accuracy():
    """The WEKA-SMO artifact the paper's Table 2 shows: 0/1 scores."""
    y = np.array([0] * 50 + [1] * 50)
    pred = y.copy()
    pred[:10] = 1  # 10 FP
    pred[50:30 + 50 - 10] = 1
    pred[50 + 30 :] = 0  # 20 FN -> TPR 0.6, FPR 0.2
    auc = roc_auc(y, pred.astype(float))
    tpr = pred[50:].mean()
    fpr = pred[:50].mean()
    assert auc == pytest.approx((tpr + 1 - fpr) / 2)


def test_acc_times_auc():
    y = np.array([0, 0, 1, 1])
    pred = np.array([0, 0, 1, 0])
    scores = np.array([0.1, 0.2, 0.9, 0.4])
    assert acc_times_auc(y, pred, scores) == pytest.approx(0.75 * 1.0)


def test_evaluate_detector_performance_property():
    y = np.array([0, 0, 1, 1])
    scores = np.array([0.2, 0.3, 0.6, 0.9])
    result = evaluate_detector(y, (scores >= 0.5).astype(int), scores)
    assert result.performance == pytest.approx(result.accuracy * result.auc)


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 60), st.integers(0, 10_000))
def test_auc_always_in_unit_interval(n, seed):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    y[0], y[-1] = 0, 1
    scores = rng.normal(size=n)
    assert 0.0 <= roc_auc(y, scores) <= 1.0


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 60), st.integers(0, 10_000))
def test_auc_symmetric_under_score_negation(n, seed):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    y[0], y[-1] = 0, 1
    scores = rng.normal(size=n)
    assert roc_auc(y, scores) == pytest.approx(1.0 - roc_auc(y, -scores))
