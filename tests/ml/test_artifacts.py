"""Compiled-artifact round trips: export → rebuild → byte-equal predictions.

The model registry (``repro.registry``) persists exactly what
``export_classifier`` emits, so these tests pin the contract it depends
on: every learner and ensemble round-trips through
``(spec, arrays) → classifier_from_artifact`` with **bit-identical**
``predict_proba`` output, the spec survives JSON, and the arrays survive
an ``.npz`` save/load.  A drifting bit here means a registry-loaded
detector silently disagrees with the detector that was saved.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.ioutil import to_jsonable
from repro.ml import (
    MLP,
    SGD,
    SMO,
    AdaBoostM1,
    ArtifactError,
    BayesNet,
    J48,
    JRip,
    OneR,
    REPTree,
    VotingEnsemble,
    Bagging,
    classifier_from_artifact,
    export_classifier,
)
from repro.ml.base import Classifier

from ..conftest import train_test

LEARNERS = [
    pytest.param(lambda: BayesNet(), id="BayesNet"),
    pytest.param(lambda: J48(), id="J48"),
    pytest.param(lambda: JRip(), id="JRip"),
    pytest.param(lambda: MLP(hidden_units=4, epochs=40), id="MLP"),
    pytest.param(lambda: OneR(), id="OneR"),
    pytest.param(lambda: REPTree(), id="REPTree"),
    pytest.param(lambda: SGD(epochs=20), id="SGD"),
    pytest.param(lambda: SMO(), id="SMO"),
]

ENSEMBLES = [
    pytest.param(lambda: AdaBoostM1(J48(), n_estimators=3), id="AdaBoost-J48"),
    pytest.param(lambda: AdaBoostM1(SMO(), n_estimators=2), id="AdaBoost-SMO"),
    pytest.param(
        lambda: Bagging(REPTree(), n_estimators=3, bag_fraction=0.8, seed=3),
        id="Bagging-REPTree",
    ),
    pytest.param(
        lambda: VotingEnsemble(
            [OneR(), REPTree(), SGD(epochs=15)],
            voting="soft",
            holdout_fraction=0.2,
            seed=5,
        ),
        id="Voting-mixed",
    ),
]


def round_trip(model: Classifier) -> Classifier:
    """Serialize through the exact media the registry uses: JSON + npz."""
    spec, arrays = export_classifier(model)
    spec = json.loads(json.dumps(to_jsonable(spec)))
    buffer = io.BytesIO()
    np.savez(buffer, **{k: np.ascontiguousarray(v) for k, v in arrays.items()})
    buffer.seek(0)
    loaded = np.load(buffer)
    arrays = {k: loaded[k] for k in loaded.files}
    return classifier_from_artifact(spec, arrays)


@pytest.mark.parametrize("make", LEARNERS + ENSEMBLES)
def test_round_trip_is_bit_identical(make, blobs):
    features, labels = blobs
    train_x, train_y, test_x, _ = train_test(features, labels)
    model = make().fit(train_x, train_y)
    rebuilt = round_trip(model)
    original = model.predict_proba(test_x)
    recovered = rebuilt.predict_proba(test_x)
    assert original.tobytes() == recovered.tobytes()
    assert np.array_equal(model.predict(test_x), rebuilt.predict(test_x))


@pytest.mark.parametrize("make", LEARNERS)
def test_round_trip_on_hpc_windows(make, small_split):
    """Same contract on the real corpus feature distribution."""
    train = small_split.train
    test = small_split.test
    model = make().fit(train.features[:, :3], train.labels)
    rebuilt = round_trip(model)
    probe = test.features[:, :3]
    assert (
        model.predict_proba(probe).tobytes()
        == rebuilt.predict_proba(probe).tobytes()
    )


def test_unfitted_export_raises(blobs):
    with pytest.raises(Exception):
        export_classifier(J48())


def test_unknown_kind_raises(blobs):
    features, labels = blobs
    model = OneR().fit(features, labels)
    spec, arrays = export_classifier(model)
    spec["kind"] = "NoSuchLearner"
    with pytest.raises(ArtifactError):
        classifier_from_artifact(spec, arrays)


def test_missing_array_raises(blobs):
    features, labels = blobs
    model = REPTree().fit(features, labels)
    spec, arrays = export_classifier(model)
    del arrays["tree_threshold"]
    with pytest.raises(ArtifactError):
        classifier_from_artifact(spec, arrays)


def test_truncated_member_stack_raises(blobs):
    """An ensemble stack shorter than its layout claims is corruption."""
    features, labels = blobs
    model = Bagging(REPTree(), n_estimators=3, seed=1).fit(features, labels)
    spec, arrays = export_classifier(model)
    key = next(k for k in arrays if k.startswith("member_"))
    arrays[key] = arrays[key][:-1]
    with pytest.raises(ArtifactError):
        classifier_from_artifact(spec, arrays)


def test_spec_is_pure_json(blobs):
    """Specs must hold only JSON-native types — no numpy leakage."""
    features, labels = blobs
    for make in (lambda: JRip(), lambda: AdaBoostM1(OneR(), n_estimators=2)):
        model = make().fit(features, labels)
        spec, _ = export_classifier(model)
        text = json.dumps(to_jsonable(spec))

        def check(node):
            if isinstance(node, dict):
                for v in node.values():
                    check(v)
            elif isinstance(node, list):
                for v in node:
                    check(v)
            else:
                assert node is None or isinstance(node, (str, int, float, bool))

        check(json.loads(text))
