"""The shipped benign/malware family definitions and phase archetypes."""

import dataclasses

import numpy as np
import pytest

from repro.hpc.microarch import PhaseParameters
from repro.workloads.benign import BENIGN_FAMILIES
from repro.workloads.dataset import BENIGN, MALWARE
from repro.workloads.malware import MALWARE_FAMILIES
from repro.workloads.phases import (
    beacon_idle_phase,
    branchy_phase,
    compute_phase,
    crypto_phase,
    idle_phase,
    interpreter_phase,
    mining_phase,
    network_loop_phase,
    pointer_chasing_phase,
    scanning_phase,
    store_heavy_phase,
    streaming_phase,
    syscall_phase,
    tinted,
)

ALL_PHASE_FACTORIES = (
    beacon_idle_phase,
    branchy_phase,
    compute_phase,
    crypto_phase,
    idle_phase,
    interpreter_phase,
    mining_phase,
    network_loop_phase,
    pointer_chasing_phase,
    scanning_phase,
    store_heavy_phase,
    streaming_phase,
    syscall_phase,
)


def test_benign_families_all_benign():
    assert all(f.label == BENIGN for f in BENIGN_FAMILIES)


def test_malware_families_all_malware():
    assert all(f.label == MALWARE for f in MALWARE_FAMILIES)


def test_corpus_exceeds_100_applications():
    """The paper executes 'more than 100' applications."""
    total = sum(f.n_apps for f in BENIGN_FAMILIES + MALWARE_FAMILIES)
    assert total > 100


def test_classes_roughly_balanced():
    benign = sum(f.n_apps for f in BENIGN_FAMILIES)
    malware = sum(f.n_apps for f in MALWARE_FAMILIES)
    assert 0.8 < benign / malware < 1.25


def test_family_names_unique():
    names = [f.name for f in BENIGN_FAMILIES + MALWARE_FAMILIES]
    assert len(names) == len(set(names))


def test_all_families_have_descriptions():
    assert all(f.description for f in BENIGN_FAMILIES + MALWARE_FAMILIES)


def test_malware_covers_script_payloads():
    """VirusTotal corpus had ELF + python/perl/bash payloads."""
    names = {f.name for f in MALWARE_FAMILIES}
    assert any("python" in n for n in names)
    assert any("shell" in n for n in names)


@pytest.mark.parametrize("factory", ALL_PHASE_FACTORIES, ids=lambda f: f.__name__)
def test_phase_rates_in_physical_range(factory):
    params = factory()
    for field in dataclasses.fields(params):
        value = getattr(params, field.name)
        ceiling = 4.0 if field.name in ("ipc", "prefetch_intensity") else 1.0
        assert 0 < value <= ceiling, f"{field.name}={value}"


def test_tinted_scales_named_field():
    base = syscall_phase()
    shifted = tinted(base, itlb_miss_rate=2.0)
    assert shifted.itlb_miss_rate == pytest.approx(2.0 * base.itlb_miss_rate)
    assert shifted.branch_ratio == base.branch_ratio


def test_tinted_clips_to_physical_range():
    base = branchy_phase()
    shifted = tinted(base, branch_ratio=100.0)
    assert shifted.branch_ratio == 1.0


def test_tinted_rejects_unknown_field():
    with pytest.raises(AttributeError):
        tinted(compute_phase(), not_a_rate=2.0)


def test_mining_phase_thrashes_llc_unlike_crypto():
    assert mining_phase().llc_miss_rate > 3 * crypto_phase().llc_miss_rate


def test_beacon_idle_busier_than_idle():
    assert beacon_idle_phase().utilization > idle_phase().utilization


def test_interpreter_phase_is_branch_dense():
    assert interpreter_phase().branch_ratio > compute_phase().branch_ratio


def test_family_instantiation_smoke():
    rng = np.random.default_rng(0)
    for family in BENIGN_FAMILIES + MALWARE_FAMILIES:
        apps = family.instantiate(rng)
        assert len(apps) == family.n_apps
        trace = apps[0].execute(3, np.random.default_rng(1))
        assert trace.shape == (3, 44)
        assert np.all(np.isfinite(trace))
