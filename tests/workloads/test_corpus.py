"""Corpus builder: family instantiation, collection, determinism."""

import numpy as np
import pytest

from repro.hpc.events import ALL_EVENTS
from repro.hpc.microarch import PhaseMix, PhaseParameters
from repro.workloads.corpus import CorpusBuilder, FamilySpec
from repro.workloads.dataset import BENIGN, MALWARE


def _family(name="fam", label=BENIGN, n_apps=3):
    return FamilySpec(
        name=name,
        label=label,
        n_apps=n_apps,
        phases=[PhaseMix(PhaseParameters(), 1.0)],
    )


def test_family_rejects_bad_label():
    with pytest.raises(ValueError):
        FamilySpec(name="x", label=7, n_apps=1,
                   phases=[PhaseMix(PhaseParameters(), 1.0)])


def test_family_rejects_zero_apps():
    with pytest.raises(ValueError):
        FamilySpec(name="x", label=BENIGN, n_apps=0,
                   phases=[PhaseMix(PhaseParameters(), 1.0)])


def test_family_rejects_empty_phases():
    with pytest.raises(ValueError):
        FamilySpec(name="x", label=BENIGN, n_apps=1, phases=[])


def test_instantiate_produces_named_apps():
    apps = _family().instantiate(np.random.default_rng(0))
    assert [a.name for a in apps] == ["fam_00", "fam_01", "fam_02"]


def test_instantiated_apps_differ_within_family():
    apps = _family().instantiate(np.random.default_rng(0))
    p0 = apps[0].phases[0].params
    p1 = apps[1].phases[0].params
    assert p0.ipc != p1.ipc


def test_builder_rejects_empty_families():
    with pytest.raises(ValueError):
        CorpusBuilder(families=[])


def test_builder_rejects_bad_collection_mode():
    with pytest.raises(ValueError):
        CorpusBuilder(families=[_family()], collection="magic")


def test_builder_rejects_zero_windows():
    with pytest.raises(ValueError):
        CorpusBuilder(families=[_family()], windows_per_app=0)


def test_build_shapes_and_labels():
    builder = CorpusBuilder(
        families=[_family("good", BENIGN, 2), _family("evil", MALWARE, 3)],
        windows_per_app=4,
    )
    ds = builder.build()
    assert ds.n_samples == 5 * 4
    assert ds.n_apps == 5
    assert ds.feature_names == ALL_EVENTS
    assert ds.class_counts() == {"benign": 8, "malware": 12}


def test_build_family_provenance():
    builder = CorpusBuilder(
        families=[_family("good", BENIGN, 1), _family("evil", MALWARE, 1)],
        windows_per_app=2,
    )
    ds = builder.build()
    assert ds.app_families == ("good", "evil")


def test_build_deterministic():
    families = [_family("good", BENIGN, 2), _family("evil", MALWARE, 2)]
    a = CorpusBuilder(families, seed=5, windows_per_app=3).build()
    b = CorpusBuilder(families, seed=5, windows_per_app=3).build()
    np.testing.assert_allclose(a.features, b.features)


def test_build_seed_changes_data():
    families = [_family("good", BENIGN, 2)]
    a = CorpusBuilder(families, seed=5, windows_per_app=3).build()
    b = CorpusBuilder(families, seed=6, windows_per_app=3).build()
    assert not np.allclose(a.features, b.features)


def test_build_event_subset():
    builder = CorpusBuilder([_family()], windows_per_app=2)
    ds = builder.build(events=("cpu_cycles", "branch_instructions"))
    assert ds.feature_names == ("cpu_cycles", "branch_instructions")
    assert ds.n_features == 2


def test_multiplexed_collection_mode():
    builder = CorpusBuilder([_family()], windows_per_app=15, collection="multiplexed")
    ds = builder.build(events=tuple(ALL_EVENTS[:8]))
    assert ds.n_samples == 45
    assert np.all(np.isfinite(ds.features))
