"""Evasive malware variants."""

import dataclasses

import numpy as np
import pytest

from repro.workloads.dataset import MALWARE
from repro.workloads.evasion import (
    blend_phases,
    evasive_families,
    evasive_variant,
    payload_throughput,
)
from repro.workloads.malware import MALWARE_FAMILIES
from repro.workloads.phases import branchy_phase, network_loop_phase


def test_blend_zero_is_identity():
    payload = network_loop_phase(1.2)
    blended = blend_phases(payload, branchy_phase(), 0.0)
    for field in dataclasses.fields(payload):
        assert getattr(blended, field.name) == pytest.approx(
            getattr(payload, field.name)
        )


def test_blend_one_is_cover():
    cover = branchy_phase()
    blended = blend_phases(network_loop_phase(1.2), cover, 1.0)
    for field in dataclasses.fields(cover):
        assert getattr(blended, field.name) == pytest.approx(
            getattr(cover, field.name)
        )


def test_blend_monotone_between_endpoints():
    payload = network_loop_phase(1.2)
    cover = branchy_phase()
    mid = blend_phases(payload, cover, 0.5)
    low, high = sorted([payload.branch_ratio, cover.branch_ratio])
    assert low <= mid.branch_ratio <= high


def test_blend_validates_strength():
    with pytest.raises(ValueError):
        blend_phases(network_loop_phase(), branchy_phase(), 1.5)


def test_evasive_variant_renames_family():
    flooder = MALWARE_FAMILIES[0]
    evasive = evasive_variant(flooder, 0.5)
    assert evasive.name == f"{flooder.name}_evasive50"
    assert evasive.label == MALWARE
    assert "evasion strength 50%" in evasive.description


def test_evasive_variant_preserves_structure():
    family = MALWARE_FAMILIES[2]
    evasive = evasive_variant(family, 0.3)
    assert len(evasive.phases) == len(family.phases)
    assert evasive.n_apps == family.n_apps
    for orig, moved in zip(family.phases, evasive.phases):
        assert moved.weight == orig.weight


def test_evasive_families_covers_all():
    evaded = evasive_families(MALWARE_FAMILIES, 0.4)
    assert len(evaded) == len(MALWARE_FAMILIES)
    assert all(f.name.endswith("_evasive40") for f in evaded)


def test_stronger_evasion_closer_to_cover():
    cover = branchy_phase()
    family = MALWARE_FAMILIES[0]  # flooder, branch-dense
    weak = evasive_variant(family, 0.2, cover).phases[0].params
    strong = evasive_variant(family, 0.8, cover).phases[0].params
    target = cover.branch_ratio
    assert abs(strong.branch_ratio - target) < abs(weak.branch_ratio - target)


def test_payload_throughput_tradeoff():
    assert payload_throughput(0.0) == 1.0
    assert payload_throughput(1.0) == 0.0
    assert payload_throughput(0.3) == pytest.approx(0.7)
    with pytest.raises(ValueError):
        payload_throughput(-0.1)


def test_evasion_degrades_detection(small_corpus):
    """End-to-end: a detector trained on honest malware loses accuracy
    against strongly evasive variants of the same families."""
    from repro.core import DetectorConfig, HMDDetector
    from repro.ml import app_level_split
    from repro.workloads.benign import BENIGN_FAMILIES
    from repro.workloads.corpus import CorpusBuilder

    split = app_level_split(small_corpus, 0.7, seed=7)
    detector = HMDDetector(DetectorConfig("REPTree", "general", 8)).fit(split.train)

    def malware_recall(strength):
        families = BENIGN_FAMILIES + evasive_families(MALWARE_FAMILIES, strength)
        corpus = CorpusBuilder(families, seed=99, windows_per_app=8).build()
        malware_rows = corpus.labels == 1
        flags = detector.predict(corpus)
        return flags[malware_rows].mean()

    assert malware_recall(0.0) > malware_recall(0.8) + 0.1
