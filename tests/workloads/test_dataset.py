"""Dataset container: validation, projection, provenance, persistence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.dataset import BENIGN, MALWARE, Dataset, concatenate


def _dataset(n_apps=4, windows=3, n_features=5):
    rng = np.random.default_rng(0)
    features = rng.uniform(0, 100, size=(n_apps * windows, n_features))
    labels = np.repeat([i % 2 for i in range(n_apps)], windows).astype(np.intp)
    app_ids = np.repeat(np.arange(n_apps), windows)
    return Dataset(
        features=features,
        labels=labels,
        feature_names=tuple(f"e{i}" for i in range(n_features)),
        app_ids=app_ids,
        app_names=tuple(f"app{i}" for i in range(n_apps)),
        app_families=tuple("fam_even" if i % 2 == 0 else "fam_odd" for i in range(n_apps)),
    )


def test_basic_properties():
    ds = _dataset()
    assert ds.n_samples == 12
    assert ds.n_features == 5
    assert ds.n_apps == 4


def test_misaligned_labels_rejected():
    ds = _dataset()
    with pytest.raises(ValueError):
        Dataset(ds.features, ds.labels[:-1], ds.feature_names, ds.app_ids,
                ds.app_names, ds.app_families)


def test_misaligned_app_ids_rejected():
    ds = _dataset()
    with pytest.raises(ValueError):
        Dataset(ds.features, ds.labels, ds.feature_names, ds.app_ids[:-1],
                ds.app_names, ds.app_families)


def test_unknown_app_reference_rejected():
    ds = _dataset()
    bad_ids = ds.app_ids.copy()
    bad_ids[0] = 99
    with pytest.raises(ValueError):
        Dataset(ds.features, ds.labels, ds.feature_names, bad_ids,
                ds.app_names, ds.app_families)


def test_nonbinary_labels_rejected():
    ds = _dataset()
    bad = ds.labels.copy()
    bad[0] = 3
    with pytest.raises(ValueError):
        Dataset(ds.features, bad, ds.feature_names, ds.app_ids,
                ds.app_names, ds.app_families)


def test_feature_name_mismatch_rejected():
    ds = _dataset()
    with pytest.raises(ValueError):
        Dataset(ds.features, ds.labels, ("only", "two"), ds.app_ids,
                ds.app_names, ds.app_families)


def test_app_label_constant_per_app():
    ds = _dataset()
    assert ds.app_label(0) == BENIGN
    assert ds.app_label(1) == MALWARE


def test_app_label_unknown_app():
    ds = _dataset()
    with pytest.raises(KeyError):
        ds.app_label(77)


def test_select_features_projects_and_orders():
    ds = _dataset()
    sub = ds.select_features(["e3", "e0"])
    assert sub.feature_names == ("e3", "e0")
    np.testing.assert_allclose(sub.features[:, 0], ds.features[:, 3])
    np.testing.assert_allclose(sub.features[:, 1], ds.features[:, 0])


def test_select_features_unknown_name():
    with pytest.raises(KeyError):
        _dataset().select_features(["nope"])


def test_select_apps_filters_rows():
    ds = _dataset()
    sub = ds.select_apps([1, 3])
    assert sub.n_samples == 6
    assert set(np.unique(sub.app_ids)) == {1, 3}


def test_class_counts():
    counts = _dataset().class_counts()
    assert counts == {"benign": 6, "malware": 6}


def test_summary_mentions_sizes():
    text = _dataset().summary()
    assert "12 samples" in text
    assert "4 applications" in text


def test_csv_round_trip(tmp_path):
    ds = _dataset()
    path = tmp_path / "corpus.csv"
    ds.to_csv(path)
    loaded = Dataset.from_csv(path)
    np.testing.assert_allclose(loaded.features, ds.features)
    np.testing.assert_array_equal(loaded.labels, ds.labels)
    assert loaded.feature_names == ds.feature_names
    assert loaded.app_names == ds.app_names
    assert loaded.app_families == ds.app_families


def test_from_csv_rejects_foreign_file(tmp_path):
    path = tmp_path / "other.csv"
    path.write_text("a,b,c\n1,2,3\n")
    with pytest.raises(ValueError):
        Dataset.from_csv(path)


def test_arff_export(tmp_path):
    ds = _dataset()
    path = tmp_path / "corpus.arff"
    ds.to_arff(path, relation="unit_test")
    text = path.read_text()
    assert "@RELATION unit_test" in text
    assert "@ATTRIBUTE e0 NUMERIC" in text
    assert "@ATTRIBUTE class {benign,malware}" in text
    assert text.count("\n") >= ds.n_samples


def test_concatenate_renumbers_apps():
    a, b = _dataset(), _dataset()
    merged = concatenate([a, b])
    assert merged.n_apps == 8
    assert merged.n_samples == 24
    assert merged.app_label(4) == BENIGN


def test_concatenate_rejects_mismatched_features():
    a = _dataset()
    b = _dataset(n_features=3)
    with pytest.raises(ValueError):
        concatenate([a, b])


def test_concatenate_empty_rejected():
    with pytest.raises(ValueError):
        concatenate([])


@settings(max_examples=20, deadline=None)
@given(n_apps=st.integers(2, 6), windows=st.integers(1, 5))
def test_select_apps_preserves_labels(n_apps, windows):
    ds = _dataset(n_apps=n_apps, windows=windows)
    keep = list(range(0, n_apps, 2))
    sub = ds.select_apps(keep)
    for app in keep:
        assert sub.app_label(app) == ds.app_label(app)
