"""Co-running interference model."""

import numpy as np
import pytest

from repro.hpc.events import ALL_EVENTS
from repro.hpc.microarch import ApplicationBehavior, PhaseMix, PhaseParameters
from repro.workloads.interference import InterferenceModel, perturb_dataset_features


def _trace(n=10, seed=0):
    app = ApplicationBehavior("x", [PhaseMix(PhaseParameters(), 1.0)])
    return app.execute(n, np.random.default_rng(seed))


def test_validation():
    with pytest.raises(ValueError):
        InterferenceModel(memory_intensity=1.5)
    with pytest.raises(ValueError):
        InterferenceModel(timeslice_bleed=0.9)


def test_zero_interference_is_nearly_identity():
    model = InterferenceModel(memory_intensity=0.0, timeslice_bleed=0.0)
    trace = _trace()
    out = model.apply(trace, _trace(seed=1))
    np.testing.assert_allclose(out, trace, rtol=0.15)  # only small jitter


def test_contention_inflates_miss_events():
    model = InterferenceModel(memory_intensity=1.0, timeslice_bleed=0.0, seed=2)
    trace = _trace(50)
    out = model.apply(trace, _trace(50, seed=3))
    miss_col = ALL_EVENTS.index("LLC_load_misses")
    branch_col = ALL_EVENTS.index("branch_instructions")
    miss_ratio = out[:, miss_col].mean() / trace[:, miss_col].mean()
    branch_ratio = out[:, branch_col].mean() / trace[:, branch_col].mean()
    assert miss_ratio > 1.7  # roughly doubled
    assert 0.9 < branch_ratio < 1.1  # core-private events untouched


def test_contention_factor_classification():
    model = InterferenceModel(memory_intensity=0.5)
    assert model.contention_factor("dTLB_load_misses") == pytest.approx(1.5)
    assert model.contention_factor("cache_misses") == pytest.approx(1.5)
    assert model.contention_factor("branch_instructions") == 1.0
    assert model.contention_factor("cpu_cycles") == 1.0


def test_timeslice_bleed_adds_neighbour_counts():
    model = InterferenceModel(memory_intensity=0.0, timeslice_bleed=0.2, seed=4)
    trace = np.zeros((5, 44))
    neighbour = np.full((5, 44), 100.0)
    out = model.apply(trace, neighbour)
    np.testing.assert_allclose(out, 20.0, rtol=1e-6)


def test_short_neighbour_is_cycled():
    model = InterferenceModel(timeslice_bleed=0.1, memory_intensity=0.0, seed=5)
    out = model.apply(_trace(10), _trace(3, seed=6))
    assert out.shape == (10, 44)


def test_mismatched_columns_rejected():
    model = InterferenceModel()
    with pytest.raises(ValueError):
        model.apply(_trace(3), np.ones((3, 10)))


def test_perturb_dataset_features_shape(small_corpus):
    model = InterferenceModel(memory_intensity=0.4, timeslice_bleed=0.1)
    neighbour = _trace(30, seed=7)
    out = perturb_dataset_features(
        small_corpus.features, small_corpus.feature_names, model, neighbour
    )
    assert out.shape == small_corpus.features.shape
    assert np.all(out >= 0)


def test_interference_degrades_detection(small_split):
    """A detector trained clean loses accuracy under heavy interference
    — the deployment-robustness motivation for modelling this at all."""
    from repro.core import DetectorConfig, HMDDetector
    from repro.ml import accuracy

    detector = HMDDetector(DetectorConfig("J48", "general", 8)).fit(small_split.train)
    clean_acc = detector.evaluate(small_split.test).accuracy
    heavy = InterferenceModel(memory_intensity=1.0, timeslice_bleed=0.4, seed=8)
    neighbour = _trace(50, seed=9)
    noisy_features = perturb_dataset_features(
        small_split.test.features, small_split.test.feature_names, heavy, neighbour
    )
    reduced_cols = [
        small_split.test.feature_names.index(e) for e in detector.monitored_events
    ]
    noisy_acc = accuracy(
        small_split.test.labels,
        detector.model.predict(noisy_features[:, reduced_cols]),
    )
    assert noisy_acc < clean_acc
