"""Table/figure renderers."""

import pytest

from repro.analysis.records import EvalRecord, HardwareRecord, RocRecord
from repro.analysis.report import (
    figure3_table,
    figure4_report,
    figure5_table,
    improvement_summary,
    roc_ascii,
    table1_table,
    table2_table,
    table3_table,
)
from repro.core.config import CLASSIFIER_NAMES
from repro.features.correlation import FeatureRanking


@pytest.fixture(scope="module")
def records():
    out = []
    for i, classifier in enumerate(CLASSIFIER_NAMES):
        for n_hpcs in (16, 8, 4, 2):
            for ensemble in ("general", "boosted", "bagging"):
                out.append(
                    EvalRecord(classifier, ensemble, n_hpcs,
                               accuracy=0.70 + 0.01 * i, auc=0.80)
                )
    return out


def test_figure3_lists_all_classifiers(records):
    text = figure3_table(records)
    for name in CLASSIFIER_NAMES:
        assert name in text


def test_figure3_shows_percentages(records):
    assert "71.0" in figure3_table(records)


def test_table2_shows_auc(records):
    text = table2_table(records)
    assert "0.80" in text
    assert "Table 2" in text


def test_figure5_shows_products(records):
    text = figure5_table(records)
    assert "Figure 5" in text
    # 0.70 * 0.80 = 56.0%
    assert "56.0" in text


def test_missing_cells_render_as_dash():
    text = figure3_table([EvalRecord("J48", "general", 16, 0.8, 0.9)])
    assert "-" in text


def test_improvement_summary_relative_deltas(records):
    text = improvement_summary(records)
    assert "8HPC-general" in text
    assert "%" in text


def test_table1_lists_ranked_events():
    ranking = FeatureRanking(
        names=("branch_instructions", "cache_misses", "cpu_cycles"),
        scores=(0.9, 0.5, 0.1),
        method="correlation",
    )
    text = table1_table(ranking, k=2)
    assert "1. branch_instructions" in text
    assert "cpu_cycles" not in text


def test_table3_renders_costs():
    records = [
        HardwareRecord("MLP", "general", 8, 300, 61.1, 1000, 1000, 10, 2),
        HardwareRecord("MLP", "boosted", 4, 591, 61.7, 1000, 1000, 10, 2),
    ]
    text = table3_table(records)
    assert "300" in text
    assert "61.1" in text
    assert "MLP" in text


def test_roc_ascii_draws_curve():
    record = RocRecord("J48", "general", 4,
                       fpr=(0.0, 0.2, 1.0), tpr=(0.0, 0.9, 1.0), auc=0.93)
    art = roc_ascii(record)
    assert "AUC=0.930" in art
    assert "*" in art


def test_figure4_report_joins_curves():
    a = RocRecord("J48", "general", 4, (0.0, 1.0), (0.0, 1.0), 0.5)
    b = RocRecord("JRip", "bagging", 4, (0.0, 1.0), (0.0, 1.0), 0.5)
    text = figure4_report([a, b])
    assert "4HPC-J48" in text
    assert "4HPC-Bagging-JRip" in text
