"""Report rendering against real (small) evaluation records."""

import pytest

from repro.analysis.matrix import MatrixRunner
from repro.analysis.report import (
    figure3_table,
    figure5_table,
    improvement_summary,
    table2_table,
    table3_table,
)
from repro.core.config import DetectorConfig


@pytest.fixture(scope="module")
def records(small_corpus):
    runner = MatrixRunner(small_corpus, seeds=(7,))
    configs = [
        DetectorConfig("OneR", "general", 4),
        DetectorConfig("OneR", "boosted", 2, n_estimators=3),
        DetectorConfig("REPTree", "general", 8),
    ]
    return runner.evaluate_grid(configs)


def test_figure3_values_are_percentages(records):
    text = figure3_table(records)
    for record in records:
        assert f"{100 * record.accuracy:.1f}" in text


def test_table2_values_are_auc(records):
    text = table2_table(records)
    for record in records:
        assert f"{record.auc:.2f}" in text


def test_figure5_values_are_products(records):
    text = figure5_table(records)
    for record in records:
        assert f"{100 * record.performance:.1f}" in text


def test_improvement_summary_needs_8hpc_base(records):
    text = improvement_summary(records)
    # only REPTree has an 8HPC general record to compare against
    assert "REPTree" in text
    assert "OneR" not in text.replace("8HPC-general", "")


def test_table3_with_real_hardware_records(small_corpus):
    runner = MatrixRunner(small_corpus, seeds=(7,))
    records = [
        runner.hardware(DetectorConfig("OneR", "general", 8)),
        runner.hardware(DetectorConfig("OneR", "boosted", 4, n_estimators=3)),
    ]
    text = table3_table(records)
    assert "OneR" in text
    assert str(records[0].latency_cycles) in text
