"""Matrix runner, records, and JSON caching."""

import pytest

from repro.analysis.cache import CacheError
from repro.analysis.matrix import MatrixRunner, MatrixTiming, load_records, paper_grid, save_records, table3_grid
from repro.obs import Registry, Tracer
from repro.analysis.records import EvalRecord, HardwareRecord, RocRecord
from repro.core.config import DetectorConfig


@pytest.fixture(scope="module")
def runner(small_corpus):
    return MatrixRunner(small_corpus, seeds=(7,))


def test_paper_grid_size():
    assert len(paper_grid()) == 8 * 4 * 3


def test_table3_grid_size():
    assert len(table3_grid()) == 8 * 3


def test_runner_requires_seeds(small_corpus):
    with pytest.raises(ValueError):
        MatrixRunner(small_corpus, seeds=())


def test_evaluate_returns_record(runner):
    record = runner.evaluate(DetectorConfig("OneR", "general", 2))
    assert isinstance(record, EvalRecord)
    assert 0.0 <= record.accuracy <= 1.0
    assert 0.0 <= record.auc <= 1.0
    assert record.performance == pytest.approx(record.accuracy * record.auc)


def test_evaluate_multi_seed_averages(small_corpus):
    runner = MatrixRunner(small_corpus, seeds=(1, 2))
    record = runner.evaluate(DetectorConfig("OneR", "general", 2))
    assert record.n_seeds == 2


def test_evaluate_grid(runner):
    configs = [DetectorConfig("OneR", "general", k) for k in (4, 2)]
    records = runner.evaluate_grid(configs)
    assert len(records) == 2
    assert {r.n_hpcs for r in records} == {4, 2}


def test_roc_record(runner):
    record = runner.roc(DetectorConfig("REPTree", "general", 4))
    assert isinstance(record, RocRecord)
    assert record.fpr[0] == 0.0 and record.fpr[-1] == 1.0
    assert record.tpr[0] == 0.0 and record.tpr[-1] == 1.0
    assert 0.0 <= record.auc <= 1.0


def test_hardware_record(runner):
    record = runner.hardware(DetectorConfig("OneR", "general", 2))
    assert isinstance(record, HardwareRecord)
    assert record.latency_cycles == 1
    assert record.latency_ns == 10.0
    assert record.area_percent > 0


def test_record_names():
    r = EvalRecord("SMO", "boosted", 2, 0.7, 0.8)
    assert r.name == "2HPC-Boosted-SMO"
    r = EvalRecord("SMO", "general", 8, 0.7, 0.8)
    assert r.name == "8HPC-SMO"


def test_save_load_round_trip(tmp_path, runner):
    records = [
        runner.evaluate(DetectorConfig("OneR", "general", 2)),
        runner.hardware(DetectorConfig("OneR", "general", 2)),
        runner.roc(DetectorConfig("OneR", "general", 2)),
    ]
    path = tmp_path / "records.json"
    save_records(path, records)
    loaded = load_records(path)
    assert loaded == records


def test_save_records_is_atomic(tmp_path, runner):
    """Saving leaves no temp files and survives overwriting in place."""
    records = [runner.evaluate(DetectorConfig("OneR", "general", 2))]
    path = tmp_path / "records.json"
    save_records(path, records)
    save_records(path, records)  # overwrite must not truncate-then-fail
    assert load_records(path) == records
    assert list(tmp_path.glob("*.tmp")) == []


def test_load_records_corrupt_file_raises_clear_error(tmp_path):
    path = tmp_path / "records.json"
    path.write_text('[{"kind": "EvalRecord", "data"')  # truncated write
    with pytest.raises(CacheError, match="corrupt or partially written"):
        load_records(path)


def test_load_records_wrong_shape_raises_clear_error(tmp_path):
    path = tmp_path / "records.json"
    path.write_text('{"not": "a list"}')
    with pytest.raises(CacheError, match="does not contain a record list"):
        load_records(path)


def test_load_records_unknown_kind_raises_clear_error(tmp_path):
    path = tmp_path / "records.json"
    path.write_text('[{"kind": "Mystery", "data": {}}]')
    with pytest.raises(CacheError, match="unknown record kind"):
        load_records(path)


def test_fit_respects_feature_method(runner):
    """Regression: the shared ranking must honour config.feature_method,
    not silently fall back to the default correlation ranking."""
    config = DetectorConfig(
        "OneR", "general", 4, feature_method="information_gain"
    )
    detector = runner._fit_detector(config, 7)
    assert detector.reducer.ranking_.method == "information_gain"
    assert runner.ranking(7, "information_gain").method == "information_gain"
    assert runner.ranking(7, "correlation").method == "correlation"


def test_fit_reuses_shared_ranking_per_method(runner):
    first = runner.ranking(7, "correlation")
    assert runner.ranking(7, "correlation") is first  # computed once


def test_timings_recorded(small_corpus):
    runner = MatrixRunner(small_corpus, seeds=(7,))
    runner.evaluate(DetectorConfig("OneR", "general", 2))
    runner.hardware(DetectorConfig("OneR", "general", 2))
    assert [t.kind for t in runner.timings] == ["eval", "hardware"]
    assert all(t.fit_seconds > 0.0 and not t.cached for t in runner.timings)
    assert runner.n_fits == 2


# ----------------------------------------------------------------------
# MatrixTiming aggregation
# ----------------------------------------------------------------------

def test_matrix_timing_total_seconds_sums_fit_and_eval():
    timing = MatrixTiming("2HPC-OneR", "eval", 1.25, 0.75)
    assert timing.total_seconds == pytest.approx(2.0)


def test_matrix_timing_cached_cell_totals_zero():
    timing = MatrixTiming("2HPC-OneR", "eval", 0.0, 0.0, cached=True)
    assert timing.total_seconds == 0.0


def test_matrix_timing_aggregation_over_a_run():
    """Summing total_seconds over a timing list equals summing parts —
    the invariant the CLI timing table's 'compute' footer relies on."""
    timings = [
        MatrixTiming("a", "eval", 0.5, 0.25),
        MatrixTiming("b", "hardware", 1.0, 0.5, cached=False),
        MatrixTiming("c", "roc", 0.0, 0.0, cached=True),
    ]
    total = sum(t.total_seconds for t in timings)
    assert total == pytest.approx(
        sum(t.fit_seconds for t in timings) + sum(t.eval_seconds for t in timings)
    )
    compute = sum(t.total_seconds for t in timings if not t.cached)
    assert compute == pytest.approx(2.25)


def test_load_records_truncated_mid_crash(tmp_path, runner):
    """A legacy whole-file cache cut off mid-write (partial JSON) must
    raise CacheError, not return a short record list."""
    records = [
        runner.evaluate(DetectorConfig("OneR", "general", 2)),
        runner.hardware(DetectorConfig("OneR", "general", 2)),
    ]
    path = tmp_path / "records.json"
    save_records(path, records)
    full = path.read_text()
    path.write_text(full[: int(len(full) * 0.6)])  # simulate crash mid-write
    with pytest.raises(CacheError, match="corrupt or partially written"):
        load_records(path)


# ----------------------------------------------------------------------
# observability instrumentation
# ----------------------------------------------------------------------

def test_runner_traces_fit_eval_and_ranking_spans(small_corpus):
    tracer = Tracer()
    runner = MatrixRunner(small_corpus, seeds=(7,), tracer=tracer)
    runner.evaluate(DetectorConfig("OneR", "general", 2))
    names = [e["name"] for e in tracer.events]
    assert "matrix.ranking" in names
    assert "matrix.fit" in names
    assert "matrix.eval" in names
    fit = next(e for e in tracer.events if e["name"] == "matrix.fit")
    assert fit["attrs"]["config"] == "2HPC-OneR"


def test_runner_counts_cached_vs_computed_cells(small_corpus, tmp_path):
    from repro.analysis.cache import ResultCache

    metrics = Registry()
    cache = ResultCache(tmp_path / "cache")
    runner = MatrixRunner(small_corpus, seeds=(7,), cache=cache, metrics=metrics)
    config = DetectorConfig("OneR", "general", 2)
    runner.evaluate(config)
    runner2 = MatrixRunner(small_corpus, seeds=(7,), cache=cache, metrics=metrics)
    runner2.evaluate(config)
    snap = metrics.snapshot()
    assert snap["counters"]["matrix_cells_computed_total"]["value"] == 1.0
    assert snap["counters"]["matrix_cells_cached_total"]["value"] == 1.0
    assert snap["counters"]["matrix_rankings_computed_total"]["value"] == 1.0
    assert snap["histograms"]["matrix_fit_seconds"]["count"] == 1


def test_runner_without_obs_records_nothing(small_corpus):
    """Default construction uses the shared disabled singletons."""
    runner = MatrixRunner(small_corpus, seeds=(7,))
    runner.evaluate(DetectorConfig("OneR", "general", 2))
    assert runner.tracer.enabled is False
    assert runner.metrics.enabled is False
    assert runner.tracer.events == []
