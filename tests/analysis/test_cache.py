"""Content-addressed result cache: keys, atomicity, corruption handling."""

import json

import pytest

from repro.analysis.cache import (
    CacheError,
    ResultCache,
    atomic_write_text,
    dataset_fingerprint,
    record_cache_key,
)
from repro.analysis.records import EvalRecord, HardwareRecord, RocRecord
from repro.core.config import DetectorConfig
from repro.workloads.benign import BENIGN_FAMILIES
from repro.workloads.corpus import CorpusBuilder
from repro.workloads.malware import MALWARE_FAMILIES

EVAL = EvalRecord("OneR", "general", 2, 0.8, 0.75)
HARDWARE = HardwareRecord("OneR", "general", 2, 1, 2.5, 10, 5, 0, 0)
ROC = RocRecord("OneR", "general", 2, (0.0, 1.0), (0.0, 1.0), 0.5)


def _key(**overrides):
    defaults = dict(
        corpus="abc",
        train_fraction=0.7,
        seeds=(7,),
        config=DetectorConfig("OneR", "general", 2),
        kind="eval",
    )
    defaults.update(overrides)
    return record_cache_key(**defaults)


# ----------------------------------------------------------------------
# fingerprint / key sensitivity
# ----------------------------------------------------------------------

def test_fingerprint_deterministic(small_corpus):
    assert dataset_fingerprint(small_corpus) == dataset_fingerprint(small_corpus)


def test_fingerprint_tracks_content():
    build = lambda windows: CorpusBuilder(
        families=BENIGN_FAMILIES + MALWARE_FAMILIES, seed=2018,
        windows_per_app=windows,
    ).build()
    assert dataset_fingerprint(build(4)) != dataset_fingerprint(build(5))


def test_key_is_stable():
    assert _key() == _key()


@pytest.mark.parametrize(
    "override",
    [
        {"corpus": "other"},
        {"train_fraction": 0.8},
        {"seeds": (7, 8)},
        {"config": DetectorConfig("OneR", "general", 4)},
        {"config": DetectorConfig("OneR", "boosted", 2)},
        {"config": DetectorConfig("OneR", "general", 2, feature_method="information_gain")},
        {"config": DetectorConfig("OneR", "general", 2, seed=1)},
        {"kind": "hardware"},
        {"extra": {"max_points": 100}},
    ],
)
def test_key_tracks_every_dependency(override):
    assert _key(**override) != _key()


# ----------------------------------------------------------------------
# atomic writes
# ----------------------------------------------------------------------

def test_atomic_write_creates_parents_and_no_tmp_leftovers(tmp_path):
    target = tmp_path / "a" / "b.json"
    atomic_write_text(target, "hello")
    assert target.read_text() == "hello"
    atomic_write_text(target, "world")  # overwrite in place
    assert target.read_text() == "world"
    assert list(tmp_path.rglob("*.tmp")) == []


# ----------------------------------------------------------------------
# ResultCache behaviour
# ----------------------------------------------------------------------

@pytest.mark.parametrize("record", [EVAL, HARDWARE, ROC])
def test_round_trip_all_kinds(tmp_path, record):
    cache = ResultCache(tmp_path / "cache")
    key = _key(kind=type(record).__name__)
    assert cache.get(key) is None
    cache.put(key, record)
    assert key in cache
    assert cache.get(key) == record


def test_miss_and_hit_stats(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = _key()
    cache.get(key)
    cache.put(key, EVAL)
    cache.get(key)
    assert cache.stats.misses == 1
    assert cache.stats.writes == 1
    assert cache.stats.hits == 1


def test_root_must_be_a_directory(tmp_path):
    not_a_dir = tmp_path / "plain-file"
    not_a_dir.write_text("occupied")
    with pytest.raises(CacheError, match="not a directory"):
        ResultCache(not_a_dir)


def test_corrupt_entry_is_a_miss_and_removed(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = _key()
    cache.put(key, EVAL)
    cache.path_of(key).write_text('{"kind": "EvalRecord", "data": {"class')
    assert cache.get(key) is None
    assert cache.stats.corrupt == 1
    assert key not in cache
    # The slot is reusable after corruption.
    cache.put(key, EVAL)
    assert cache.get(key) == EVAL


def test_schema_mismatch_is_corrupt(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = _key()
    payload = {"kind": "EvalRecord", "data": {"not_a_field": 1}}
    cache.path_of(key).parent.mkdir(parents=True)
    cache.path_of(key).write_text(json.dumps(payload))
    assert cache.get(key) is None
    assert cache.stats.corrupt == 1


def test_len_and_clear(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert len(cache) == 0
    cache.put(_key(), EVAL)
    cache.put(_key(kind="hardware"), HARDWARE)
    assert len(cache) == 2
    assert cache.clear() == 2
    assert len(cache) == 0


def test_cache_error_is_runtime_error():
    assert issubclass(CacheError, RuntimeError)


# ----------------------------------------------------------------------
# cache metrics
# ----------------------------------------------------------------------

def test_cache_publishes_hit_miss_corrupt_and_write_metrics(tmp_path):
    from repro.obs import Registry

    metrics = Registry()
    cache = ResultCache(tmp_path / "cache", metrics=metrics)
    record = EvalRecord("OneR", "general", 2, 0.7, 0.8)
    key = "ab" + "0" * 62

    assert cache.get(key) is None          # miss
    cache.put(key, record)                 # write
    assert cache.get(key) == record        # hit
    cache.path_of(key).write_text("{ torn")  # corrupt -> miss + discard
    assert cache.get(key) is None

    snap = metrics.snapshot()
    counters = {name: data["value"] for name, data in snap["counters"].items()}
    assert counters["cache_hits_total"] == 1.0
    assert counters["cache_misses_total"] == 2.0
    assert counters["cache_corrupt_total"] == 1.0
    assert counters["cache_writes_total"] == 1.0
    assert counters["cache_bytes_written_total"] > 0
    write_hist = snap["histograms"]["cache_write_seconds"]
    assert write_hist["count"] == 1
    assert write_hist["sum"] > 0.0
    # The registry view agrees with the in-process CacheStats.
    assert cache.stats.hits == 1 and cache.stats.misses == 2
    assert cache.stats.corrupt == 1 and cache.stats.writes == 1


def test_cache_without_metrics_still_tracks_stats(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    record = EvalRecord("OneR", "general", 2, 0.7, 0.8)
    key = "cd" + "1" * 62
    cache.put(key, record)
    assert cache.get(key) == record
    assert cache.stats.hits == 1 and cache.stats.writes == 1
