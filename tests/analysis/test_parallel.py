"""Parallel matrix runner: determinism, cache resume, warm re-render."""

import pytest

from repro.analysis.cache import ResultCache
from repro.analysis.matrix import MatrixRunner
from repro.analysis.parallel import ParallelMatrixRunner, make_matrix_runner
from repro.analysis.records import EvalRecord, HardwareRecord, RocRecord
from repro.analysis.report import figure3_table, table2_table, table3_table
from repro.core.config import DetectorConfig

#: Cheap grid slice: two fast classifiers, two modes, two budgets.
SLICE = [
    DetectorConfig(classifier, ensemble, n_hpcs)
    for classifier in ("OneR", "REPTree")
    for ensemble in ("general", "boosted")
    for n_hpcs in (4, 2)
]

HW_SLICE = [
    DetectorConfig("OneR", "general", 8),
    DetectorConfig("OneR", "boosted", 2),
]


@pytest.fixture(scope="module")
def serial_records(small_corpus):
    return MatrixRunner(small_corpus, seeds=(7,)).evaluate_grid(SLICE)


def test_parallel_identical_to_serial(small_corpus, serial_records):
    runner = ParallelMatrixRunner(small_corpus, seeds=(7,), workers=4)
    assert runner.evaluate_grid(SLICE) == serial_records


def test_single_worker_runs_inline(small_corpus, serial_records):
    runner = ParallelMatrixRunner(small_corpus, seeds=(7,), workers=1)
    assert runner.evaluate_grid(SLICE) == serial_records


def test_rejects_bad_worker_count(small_corpus):
    with pytest.raises(ValueError):
        ParallelMatrixRunner(small_corpus, workers=0)
    with pytest.raises(ValueError):
        make_matrix_runner(small_corpus, workers=0)


def test_make_matrix_runner_dispatch(small_corpus):
    assert isinstance(make_matrix_runner(small_corpus, workers=1), MatrixRunner)
    assert isinstance(
        make_matrix_runner(small_corpus, workers=2), ParallelMatrixRunner
    )


def test_hardware_and_roc_grids_match_serial(small_corpus):
    serial = MatrixRunner(small_corpus, seeds=(7,))
    parallel = ParallelMatrixRunner(small_corpus, seeds=(7,), workers=2)
    assert parallel.hardware_grid(HW_SLICE) == serial.hardware_grid(HW_SLICE)
    assert parallel.roc_grid(HW_SLICE) == serial.roc_grid(HW_SLICE)


def test_warm_cache_rerenders_with_zero_fits(small_corpus, serial_records, tmp_path):
    cache_dir = tmp_path / "cache"
    cold = ParallelMatrixRunner(
        small_corpus, seeds=(7,), workers=2, cache=ResultCache(cache_dir)
    )
    cold_records = cold.evaluate_grid(SLICE)
    cold_hw = cold.hardware_grid(HW_SLICE)
    assert cold_records == serial_records
    assert cold.n_fits == len(SLICE) + len(HW_SLICE)

    warm = ParallelMatrixRunner(
        small_corpus, seeds=(7,), workers=2, cache=ResultCache(cache_dir)
    )
    warm_records = warm.evaluate_grid(SLICE)
    warm_hw = warm.hardware_grid(HW_SLICE)
    assert warm_records == cold_records
    assert warm_hw == cold_hw
    assert warm.n_fits == 0
    assert warm.cache.stats.hits == len(SLICE) + len(HW_SLICE)
    assert all(t.cached for t in warm.timings)
    # Tables render straight from the cache.
    assert "Figure 3" in figure3_table(warm_records)
    assert "Table 2" in table2_table(warm_records)
    assert "Table 3" in table3_table(warm_hw)


def test_interrupted_run_resumes_from_partial_cache(small_corpus, tmp_path):
    """Simulate a crash after two cells: the rerun trains only the rest."""
    cache_dir = tmp_path / "cache"
    first = ParallelMatrixRunner(
        small_corpus, seeds=(7,), workers=1, cache=ResultCache(cache_dir)
    )
    first.evaluate_grid(SLICE[:2])  # the part that finished before the "crash"

    resumed = ParallelMatrixRunner(
        small_corpus, seeds=(7,), workers=2, cache=ResultCache(cache_dir)
    )
    records = resumed.evaluate_grid(SLICE)
    assert resumed.n_fits == len(SLICE) - 2
    assert records == MatrixRunner(small_corpus, seeds=(7,)).evaluate_grid(SLICE)


def test_corrupt_cache_entry_recomputed(small_corpus, tmp_path):
    """A truncated cache file degrades to a recompute, never an error."""
    cache_dir = tmp_path / "cache"
    cache = ResultCache(cache_dir)
    runner = ParallelMatrixRunner(
        small_corpus, seeds=(7,), workers=1, cache=cache
    )
    config = SLICE[0]
    record = runner.evaluate(config)
    key = runner._serial.cache_key(config, "eval")
    cache.path_of(key).write_text("{ truncated garbage")

    rerun = ParallelMatrixRunner(
        small_corpus, seeds=(7,), workers=1, cache=ResultCache(cache_dir)
    )
    assert rerun.evaluate(config) == record
    assert rerun.cache.stats.corrupt == 1
    assert rerun.n_fits > 0  # the cell was genuinely recomputed


def test_progress_callback_fires_in_parent(small_corpus, tmp_path):
    seen = []
    runner = ParallelMatrixRunner(
        small_corpus, seeds=(7,), workers=2,
        cache=ResultCache(tmp_path / "cache"), progress=seen.append,
    )
    runner.evaluate_grid(SLICE[:3])
    assert [t.kind for t in seen] == ["eval"] * 3
    assert all(t.fit_seconds >= 0.0 for t in seen)
    names = {t.name for t in seen}
    assert names == {c.name for c in SLICE[:3]}


def test_multi_seed_parallel_matches_serial(small_corpus):
    configs = SLICE[:2]
    serial = MatrixRunner(small_corpus, seeds=(1, 2)).evaluate_grid(configs)
    parallel = ParallelMatrixRunner(
        small_corpus, seeds=(1, 2), workers=2
    ).evaluate_grid(configs)
    assert parallel == serial
    assert all(isinstance(r, EvalRecord) and r.n_seeds == 2 for r in parallel)


def test_record_types(small_corpus):
    runner = ParallelMatrixRunner(small_corpus, seeds=(7,), workers=2)
    assert all(isinstance(r, HardwareRecord) for r in runner.hardware_grid(HW_SLICE))
    assert all(isinstance(r, RocRecord) for r in runner.roc_grid(HW_SLICE))


# ----------------------------------------------------------------------
# observability across the process pool
# ----------------------------------------------------------------------

def test_parallel_run_merges_worker_traces_and_metrics(small_corpus):
    from repro.obs import Registry, Tracer

    tracer = Tracer()
    metrics = Registry()
    runner = ParallelMatrixRunner(
        small_corpus, seeds=(7,), workers=2, tracer=tracer, metrics=metrics
    )
    records = runner.evaluate_grid(SLICE[:4])
    assert all(r is not None for r in records)

    # Worker spans were drained back and merged into the parent tracer.
    fit_spans = [e for e in tracer.events if e["name"] == "matrix.fit"]
    assert len(fit_spans) == 4
    import os

    assert all(e["pid"] != os.getpid() for e in fit_spans)

    # Cell counters are parent-side; they must match the grid exactly.
    snap = metrics.snapshot()
    assert snap["counters"]["matrix_cells_computed_total"]["value"] == 4.0
    assert snap["histograms"]["matrix_fit_seconds"]["count"] == 4
    # Each worker computed its shared ranking once; merged counts add up.
    assert 1.0 <= snap["counters"]["matrix_rankings_computed_total"]["value"] <= 2.0


def test_parallel_obs_disabled_ships_no_payloads(small_corpus):
    """The default path returns empty observability payloads (pickle-free)."""
    runner = ParallelMatrixRunner(small_corpus, seeds=(7,), workers=2)
    runner.evaluate_grid(SLICE[:2])
    assert runner.tracer.events == []
    assert runner.metrics.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {},
    }


def test_make_matrix_runner_threads_obs_through(small_corpus):
    from repro.obs import Registry, Tracer

    tracer, metrics = Tracer(), Registry()
    serial = make_matrix_runner(small_corpus, tracer=tracer, metrics=metrics)
    assert serial.tracer is tracer and serial.metrics is metrics
    parallel = make_matrix_runner(
        small_corpus, workers=2, tracer=tracer, metrics=metrics
    )
    assert parallel.tracer is tracer and parallel.metrics is metrics
