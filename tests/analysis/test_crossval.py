"""Cross-validated evaluation records."""

import pytest

from repro.analysis.crossval import CrossValRecord, cross_validated_record, stability_table
from repro.core.config import DetectorConfig


@pytest.fixture(scope="module")
def record(small_corpus):
    return cross_validated_record(
        small_corpus, DetectorConfig("OneR", "general", 2), n_folds=3, seed=1
    )


def test_record_fields(record):
    assert record.n_folds == 3
    assert 0.0 <= record.accuracy_mean <= 1.0
    assert record.accuracy_std >= 0.0
    assert 0.0 <= record.auc_mean <= 1.0


def test_performance_is_product(record):
    assert record.performance_mean == pytest.approx(
        record.accuracy_mean * record.auc_mean
    )


def test_str_contains_error_bars(record):
    text = str(record)
    assert "±" in text
    assert "2HPC-OneR" in text


def test_nontrivial_fold_variance(record):
    """Different test folds contain different unknown apps, so fold
    scores genuinely differ — the variance the single-split paper hides."""
    assert record.accuracy_std > 0.0


def test_stability_table_sorted(small_corpus):
    records = [
        cross_validated_record(
            small_corpus, DetectorConfig(name, "general", 4), n_folds=3, seed=1
        )
        for name in ("OneR", "REPTree")
    ]
    text = stability_table(records)
    assert text.index("REPTree") < text.index("OneR")  # stronger first
    assert "±" in text


def test_deterministic(small_corpus):
    a = cross_validated_record(
        small_corpus, DetectorConfig("OneR", "general", 2), n_folds=3, seed=2
    )
    b = cross_validated_record(
        small_corpus, DetectorConfig("OneR", "general", 2), n_folds=3, seed=2
    )
    assert a == b
