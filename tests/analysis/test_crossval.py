"""Cross-validated evaluation records."""

import numpy as np
import pytest

from repro.analysis.crossval import (
    CrossValRecord,
    cross_validated_record,
    sample_std,
    stability_table,
)
from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.ml.validation import app_level_kfold


@pytest.fixture(scope="module")
def record(small_corpus):
    return cross_validated_record(
        small_corpus, DetectorConfig("OneR", "general", 2), n_folds=3, seed=1
    )


def test_record_fields(record):
    assert record.n_folds == 3
    assert 0.0 <= record.accuracy_mean <= 1.0
    assert record.accuracy_std >= 0.0
    assert 0.0 <= record.auc_mean <= 1.0


def test_performance_is_product(record):
    assert record.performance_mean == pytest.approx(
        record.accuracy_mean * record.auc_mean
    )


def test_str_contains_error_bars(record):
    text = str(record)
    assert "±" in text
    assert "2HPC-OneR" in text


def test_nontrivial_fold_variance(record):
    """Different test folds contain different unknown apps, so fold
    scores genuinely differ — the variance the single-split paper hides."""
    assert record.accuracy_std > 0.0


def test_stability_table_sorted(small_corpus):
    records = [
        cross_validated_record(
            small_corpus, DetectorConfig(name, "general", 4), n_folds=3, seed=1
        )
        for name in ("OneR", "REPTree")
    ]
    text = stability_table(records)
    assert text.index("REPTree") < text.index("OneR")  # stronger first
    assert "±" in text


def test_sample_std_uses_ddof_1():
    values = [0.7, 0.8, 0.9]
    assert sample_std(values) == pytest.approx(float(np.std(values, ddof=1)))
    assert sample_std(values) > float(np.std(values))  # population std undershoots


def test_sample_std_guards_degenerate_samples():
    assert sample_std([0.8]) == 0.0
    assert sample_std([]) == 0.0


def test_record_std_is_sample_std(small_corpus, record):
    """Regression: fold spread must be the ddof=1 sample deviation."""
    config = DetectorConfig("OneR", "general", 2)
    accuracies = []
    for fold in app_level_kfold(small_corpus, n_folds=3, seed=1):
        detector = HMDDetector(config).fit(fold.train)
        accuracies.append(detector.evaluate(fold.test).accuracy)
    assert record.accuracy_std == pytest.approx(float(np.std(accuracies, ddof=1)))


def test_deterministic(small_corpus):
    a = cross_validated_record(
        small_corpus, DetectorConfig("OneR", "general", 2), n_folds=3, seed=2
    )
    b = cross_validated_record(
        small_corpus, DetectorConfig("OneR", "general", 2), n_folds=3, seed=2
    )
    assert a == b
