"""Pareto analysis over the performance/latency/area design space."""

import pytest

from repro.analysis.pareto import (
    DesignPoint,
    join_records,
    pareto_front,
    pareto_table,
    recommend_counters,
)
from repro.analysis.records import EvalRecord, HardwareRecord
from repro.features.correlation import FeatureRanking


def _point(name, perf, cycles, area):
    return DesignPoint(
        name=name, classifier=name, ensemble="general", n_hpcs=4,
        performance=perf, latency_cycles=cycles, area_percent=area,
    )


def test_dominates_strictly_better():
    assert _point("a", 0.9, 10, 5.0).dominates(_point("b", 0.8, 20, 6.0))


def test_no_domination_on_tradeoff():
    fast_weak = _point("a", 0.7, 1, 2.0)
    slow_strong = _point("b", 0.9, 100, 50.0)
    assert not fast_weak.dominates(slow_strong)
    assert not slow_strong.dominates(fast_weak)


def test_equal_points_do_not_dominate():
    a = _point("a", 0.8, 10, 5.0)
    b = _point("b", 0.8, 10, 5.0)
    assert not a.dominates(b)


def test_pareto_front_drops_dominated():
    points = [
        _point("best", 0.9, 5, 3.0),
        _point("dominated", 0.8, 10, 4.0),
        _point("cheap", 0.6, 1, 1.0),
    ]
    front = pareto_front(points)
    names = [p.name for p in front]
    assert "dominated" not in names
    assert "best" in names and "cheap" in names


def test_pareto_front_sorted_by_performance():
    points = [_point("a", 0.6, 1, 1.0), _point("b", 0.9, 100, 50.0)]
    front = pareto_front(points)
    assert front[0].performance >= front[-1].performance


def test_join_records_matches_keys():
    evals = [EvalRecord("J48", "general", 4, 0.8, 0.9),
             EvalRecord("SMO", "boosted", 2, 0.7, 0.8)]
    hardware = [HardwareRecord("J48", "general", 4, 20, 3.0, 1, 1, 0, 0)]
    points = join_records(evals, hardware)
    assert len(points) == 1
    assert points[0].classifier == "J48"
    assert points[0].performance == pytest.approx(0.8 * 0.9)


def test_pareto_table_marks_front():
    points = [_point("best", 0.9, 5, 3.0), _point("dominated", 0.8, 10, 4.0)]
    text = pareto_table(points)
    lines = {line.split()[0]: line for line in text.splitlines()[2:]}
    assert lines["best"].rstrip().endswith("*")
    assert not lines["dominated"].rstrip().endswith("*")


def test_recommend_counters_prefix():
    ranking = FeatureRanking(
        names=("branch_instructions", "iTLB_load_misses", "cache_misses"),
        scores=(0.9, 0.8, 0.7),
        method="correlation",
    )
    assert recommend_counters(ranking, 2) == ("branch_instructions", "iTLB_load_misses")


def test_recommend_counters_validates_budget():
    ranking = FeatureRanking(names=("a",), scores=(1.0,), method="correlation")
    with pytest.raises(ValueError):
        recommend_counters(ranking, 5)
