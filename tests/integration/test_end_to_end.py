"""Cross-module integration: the paper's pipeline end to end."""

import numpy as np
import pytest

from repro.core import DetectorConfig, HMDDetector, RuntimeMonitor
from repro.features import rank_features
from repro.hardware import lower
from repro.hpc import ALL_EVENTS, TABLE1_RANKED_EVENTS, ContainerPool
from repro.ml import app_level_split
from repro.workloads import default_corpus


@pytest.fixture(scope="module")
def corpus():
    return default_corpus(seed=77, windows_per_app=12)


@pytest.fixture(scope="module")
def split(corpus):
    return app_level_split(corpus, 0.7, seed=7)


def test_corpus_matches_paper_scale(corpus):
    assert corpus.n_apps > 100
    assert corpus.n_features == 44
    assert corpus.feature_names == ALL_EVENTS


def test_feature_ranking_matches_table1_categories(split):
    """The top 16 should be dominated by the same event categories as
    the paper's Table 1 (branch/TLB/cache/memory, not raw cycle counts)."""
    ranking = rank_features(split.train)
    top16 = set(ranking.top(16))
    overlap = top16 & set(TABLE1_RANKED_EVENTS)
    # the small integration corpus (12 windows/app) is sample-noisy;
    # the full corpus reaches 9+/16 (see EXPERIMENTS.md)
    assert len(overlap) >= 7
    assert "cpu_cycles" not in ranking.top(8)


def test_detectors_beat_chance_on_unknown_apps(split):
    for classifier in ("BayesNet", "J48", "REPTree"):
        detector = HMDDetector(DetectorConfig(classifier, "general", 8))
        detector.fit(split.train)
        result = detector.evaluate(split.test)
        assert result.accuracy > 0.65, classifier
        assert result.auc > 0.65, classifier


def test_accuracy_degrades_with_fewer_counters(split):
    """Figure 3's left-to-right trend, on the pooled tree detectors."""
    wide, narrow = [], []
    for classifier in ("J48", "REPTree", "BayesNet"):
        for seed_cfg in (0,):
            w = HMDDetector(DetectorConfig(classifier, "general", 16)).fit(split.train)
            n = HMDDetector(DetectorConfig(classifier, "general", 2)).fit(split.train)
            wide.append(w.evaluate(split.test).accuracy)
            narrow.append(n.evaluate(split.test).accuracy)
    assert np.mean(wide) > np.mean(narrow)


def test_ensemble_recovers_small_budget_accuracy(split):
    """The paper's central claim: ensembles at 2-4 HPCs close most of
    the gap to the 16-HPC general detector."""
    general16 = HMDDetector(DetectorConfig("REPTree", "general", 16)).fit(split.train)
    general2 = HMDDetector(DetectorConfig("REPTree", "general", 2)).fit(split.train)
    boosted2 = HMDDetector(DetectorConfig("REPTree", "boosted", 2)).fit(split.train)
    p16 = general16.evaluate(split.test).performance
    p2 = general2.evaluate(split.test).performance
    p2b = boosted2.evaluate(split.test).performance
    assert p2b >= p2  # boosting never hurts here
    assert p2b >= 0.85 * p16  # and closes most of the budget gap


def test_trained_detector_deploys_and_runs(split):
    detector = HMDDetector(DetectorConfig("J48", "general", 4)).fit(split.train)
    monitor = RuntimeMonitor(detector, n_counters=4)
    from repro.workloads import MALWARE_FAMILIES

    app = MALWARE_FAMILIES[0].instantiate(np.random.default_rng(5))[0]
    verdict = monitor.monitor(app, 15, ContainerPool(seed=6), is_malware=True)
    assert verdict.n_windows == 15


def test_trained_detector_lowers_to_hardware(split):
    detector = HMDDetector(DetectorConfig("JRip", "boosted", 4)).fit(split.train)
    design = lower(detector.model)
    assert design.latency_cycles > 0
    assert 0 < design.area_percent < 100


def test_full_grid_slice_is_consistent(corpus):
    from repro.analysis import MatrixRunner

    runner = MatrixRunner(corpus, seeds=(7,))
    record = runner.evaluate(DetectorConfig("OneR", "general", 2))
    detector_record = runner.evaluate(DetectorConfig("OneR", "general", 2))
    assert record == detector_record  # deterministic


def test_csv_round_trip_preserves_evaluation(tmp_path, corpus):
    from repro.workloads.dataset import Dataset

    path = tmp_path / "corpus.csv"
    corpus.to_csv(path)
    loaded = Dataset.from_csv(path)
    split_a = app_level_split(corpus, 0.7, seed=1)
    split_b = app_level_split(loaded, 0.7, seed=1)
    a = HMDDetector(DetectorConfig("OneR", "general", 2)).fit(split_a.train)
    b = HMDDetector(DetectorConfig("OneR", "general", 2)).fit(split_b.train)
    assert a.evaluate(split_a.test) == b.evaluate(split_b.test)
