"""The shipped examples must at least import and expose a main()."""

import ast
import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_at_least_five_examples_ship():
    assert len(EXAMPLE_FILES) >= 5


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    functions = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in functions
    assert any(
        isinstance(node, ast.If) and "__main__" in ast.dump(node.test)
        for node in tree.body
    ), f"{path.name} lacks an __main__ guard"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_docstring_explains_itself(path):
    tree = ast.parse(path.read_text())
    doc = ast.get_docstring(tree)
    assert doc and len(doc.splitlines()) >= 3
    assert "Run:" in doc


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Import each example as a module (without executing main)."""
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(module.main)
