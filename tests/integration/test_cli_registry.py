"""End-to-end registry warm-start: ``train`` → ``serve --model-id``.

The deployment contract the tentpole exists for: a model trained and
saved once is deployed by the serving commands with **zero fits** at
startup (proved from the trace — a ``cli.load_model`` span where
``cli.fit`` would be) and produces **bit-identical verdicts** to a
process that fit the same detector itself.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.cli import main

FAST = ["--windows", "8", "--seed", "11"]
CONFIG = ["--classifier", "REPTree", "--ensemble", "boosted", "--hpcs", "2"]


def _span_names(trace_path):
    return [json.loads(line).get("name") for line in open(trace_path)]


def _train(tmp_path, capsys, *extra):
    registry_dir = tmp_path / "registry"
    rc = main([
        "train", *FAST, *CONFIG,
        "--registry-dir", str(registry_dir), "--tag", "prod", *extra,
    ])
    assert rc == 0
    out = capsys.readouterr().out
    match = re.search(r"saved model ([0-9a-f]{64})", out)
    assert match, out
    return registry_dir, match.group(1)


def test_train_then_serve_by_model_id(tmp_path, capsys):
    registry_dir, model_id = _train(tmp_path, capsys)

    serve = [
        "serve", *FAST, "--stride", "6", "--rounds", "1",
        "--producers", "1", "--serve-workers", "1",
    ]
    warm_trace = tmp_path / "warm.jsonl"
    rc = main([
        *serve, "--registry-dir", str(registry_dir), "--model-id", "prod",
        "--trace-out", str(warm_trace),
    ])
    assert rc == 0
    warm_out = capsys.readouterr().out

    cold_trace = tmp_path / "cold.jsonl"
    rc = main([*serve, *CONFIG, "--trace-out", str(cold_trace)])
    assert rc == 0
    cold_out = capsys.readouterr().out

    # zero fits on the warm path, asserted from the spans themselves
    warm_spans = _span_names(warm_trace)
    assert "cli.fit" not in warm_spans
    assert "cli.load_model" in warm_spans
    assert "cli.fit" in _span_names(cold_trace)

    # identical verdict tables (strip the throughput line, which is
    # wall-clock and legitimately differs run to run)
    def verdict_lines(text):
        return [
            line for line in text.splitlines()
            if re.search(r"(malware|benign)\s+(malware|benign)", line)
        ]

    assert verdict_lines(warm_out) == verdict_lines(cold_out)
    assert verdict_lines(warm_out), "expected at least one verdict row"


def test_train_is_idempotent_and_models_lists_it(tmp_path, capsys):
    registry_dir, model_id = _train(tmp_path, capsys)
    registry_dir2, model_id2 = _train(tmp_path, capsys, "--tag", "canary")
    assert model_id2 == model_id  # content-addressed: same config, same id

    rc = main(["models", "--registry-dir", str(registry_dir)])
    assert rc == 0
    out = capsys.readouterr().out
    assert model_id[:12] in out
    assert "prod" in out and "canary" in out


def test_monitor_with_model_id(tmp_path, capsys):
    registry_dir, model_id = _train(tmp_path, capsys)
    trace = tmp_path / "monitor.jsonl"
    rc = main([
        "monitor", *FAST, "--stride", "8",
        "--registry-dir", str(registry_dir), "--model-id", model_id[:12],
        "--trace-out", str(trace),
    ])
    assert rc == 0
    assert "application-level accuracy" in capsys.readouterr().out
    spans = _span_names(trace)
    assert "cli.fit" not in spans and "cli.load_model" in spans


def test_fleet_with_model_id_archives_deployed_config(tmp_path, capsys):
    registry_dir, _ = _train(tmp_path, capsys)
    archive = tmp_path / "archive"
    rc = main([
        "fleet", *FAST, "--stride", "8",
        "--registry-dir", str(registry_dir), "--model-id", "prod",
        "--archive-dir", str(archive),
    ])
    assert rc == 0
    assert "fleet accuracy" in capsys.readouterr().out
    # the archived meta records the *deployed* model's config, not the
    # (unused) CLI defaults
    manifest = json.loads((archive / "manifest.json").read_text())
    (segment,) = manifest["segments"]
    meta = segment["run_meta"]
    assert meta["classifier"] == "REPTree"
    assert meta["ensemble"] == "boosted"
    assert meta["hpcs"] == 2


def test_missing_model_is_a_clean_cli_error(tmp_path):
    with pytest.raises(SystemExit, match="no model matches"):
        main([
            "serve", *FAST,
            "--registry-dir", str(tmp_path / "empty"), "--model-id", "ghost",
        ])
