"""Documentation invariants: the shipped docs match the shipped code."""

import ast
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"


def _public_modules():
    return [
        p for p in SRC.rglob("*.py")
        if not p.name.startswith("_") or p.name == "__init__.py"
    ]


def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE"):
        assert (REPO / name).exists(), name


def test_design_lists_every_experiment_bench():
    design = (REPO / "DESIGN.md").read_text()
    for bench in (REPO / "benchmarks").glob("bench_*.py"):
        stem = bench.name
        if "ablation" in stem or "extension" in stem:
            continue  # covered by wildcard rows
        assert stem in design, f"DESIGN.md does not reference {stem}"


def test_experiments_covers_every_paper_artifact():
    text = (REPO / "EXPERIMENTS.md").read_text()
    for artifact in ("Table 1", "Table 2", "Table 3", "Figure 3", "Figure 4", "Figure 5"):
        assert artifact in text, artifact


@pytest.mark.parametrize("path", _public_modules(), ids=lambda p: str(p.relative_to(SRC)))
def test_every_module_has_a_docstring(path):
    tree = ast.parse(path.read_text())
    doc = ast.get_docstring(tree)
    assert doc, f"{path} lacks a module docstring"
    assert len(doc) > 20


@pytest.mark.parametrize("path", _public_modules(), ids=lambda p: str(p.relative_to(SRC)))
def test_every_public_callable_has_a_docstring(path):
    tree = ast.parse(path.read_text())
    undocumented = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.ClassDef)):
            if node.name.startswith("_"):
                continue
            if not ast.get_docstring(node):
                undocumented.append(node.name)
    assert not undocumented, f"{path}: missing docstrings on {undocumented}"


def test_readme_quickstart_names_real_api():
    import repro

    readme = (REPO / "README.md").read_text()
    for symbol in ("default_corpus", "app_level_split", "HMDDetector", "DetectorConfig"):
        assert symbol in readme
        assert hasattr(repro, symbol)
