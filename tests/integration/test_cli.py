"""CLI smoke tests (fast settings)."""

import pytest

from repro.cli import build_parser, main

FAST = ["--windows", "6", "--seed", "11"]


def test_parser_builds():
    build_parser()


def test_corpus_command(capsys, tmp_path):
    csv = tmp_path / "c.csv"
    arff = tmp_path / "c.arff"
    rc = main(["corpus", *FAST, "--csv", str(csv), "--arff", str(arff)])
    assert rc == 0
    assert csv.exists() and arff.exists()
    assert "122 applications" in capsys.readouterr().out


def test_rank_command(capsys):
    rc = main(["rank", *FAST, "--top", "5"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert out.count(". ") >= 5


def test_evaluate_command(capsys):
    rc = main(["evaluate", *FAST, "--classifier", "OneR", "--hpcs", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "2HPC-OneR" in out
    assert "accuracy=" in out


def test_matrix_command(capsys):
    rc = main([
        "matrix", *FAST,
        "--classifiers", "OneR",
        "--budgets", "4", "2",
        "--ensembles", "general",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "Table 2" in out
    assert "Figure 5" in out


def test_monitor_command(capsys):
    rc = main([
        "monitor", *FAST,
        "--classifier", "OneR", "--ensemble", "general",
        "--hpcs", "2", "--stride", "6", "--windows", "8",
    ])
    assert rc == 0
    assert "application-level accuracy" in capsys.readouterr().out


def test_unknown_classifier_rejected():
    with pytest.raises(SystemExit):
        main(["evaluate", "--classifier", "XGBoost"])


def test_verilog_command(capsys, tmp_path):
    out = tmp_path / "detector.v"
    rc = main([
        "verilog", *FAST,
        "--classifier", "OneR", "--hpcs", "2", "--output", str(out),
    ])
    assert rc == 0
    text = out.read_text()
    assert "module oner_detector" in text
    assert "endmodule" in text
    assert "monitored events" in capsys.readouterr().out


def test_verilog_to_stdout(capsys):
    rc = main(["verilog", *FAST, "--classifier", "JRip", "--hpcs", "2",
               "--module", "custom_name"])
    assert rc == 0
    assert "module custom_name" in capsys.readouterr().out


def test_crossval_command(capsys):
    rc = main([
        "crossval", *FAST,
        "--classifiers", "OneR", "--hpcs", "2", "--folds", "3",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "±" in out
    assert "2HPC-OneR" in out


def test_evasion_command(capsys):
    rc = main([
        "evasion", *FAST,
        "--classifier", "OneR", "--hpcs", "2", "--strengths", "0", "0.6",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "payload kept" in out
    assert "60%" in out
