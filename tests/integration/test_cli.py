"""CLI smoke tests (fast settings)."""

import pytest

from repro.cli import build_parser, main

FAST = ["--windows", "6", "--seed", "11"]


def test_parser_builds():
    build_parser()


def test_corpus_command(capsys, tmp_path):
    csv = tmp_path / "c.csv"
    arff = tmp_path / "c.arff"
    rc = main(["corpus", *FAST, "--csv", str(csv), "--arff", str(arff)])
    assert rc == 0
    assert csv.exists() and arff.exists()
    assert "122 applications" in capsys.readouterr().out


def test_rank_command(capsys):
    rc = main(["rank", *FAST, "--top", "5"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert out.count(". ") >= 5


def test_evaluate_command(capsys):
    rc = main(["evaluate", *FAST, "--classifier", "OneR", "--hpcs", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "2HPC-OneR" in out
    assert "accuracy=" in out


def test_matrix_command(capsys):
    rc = main([
        "matrix", *FAST,
        "--classifiers", "OneR",
        "--budgets", "4", "2",
        "--ensembles", "general",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "Table 2" in out
    assert "Figure 5" in out


def test_monitor_command(capsys):
    rc = main([
        "monitor", *FAST,
        "--classifier", "OneR", "--ensemble", "general",
        "--hpcs", "2", "--stride", "6", "--windows", "8",
    ])
    assert rc == 0
    assert "application-level accuracy" in capsys.readouterr().out


def test_unknown_classifier_rejected():
    with pytest.raises(SystemExit):
        main(["evaluate", "--classifier", "XGBoost"])


def test_verilog_command(capsys, tmp_path):
    out = tmp_path / "detector.v"
    rc = main([
        "verilog", *FAST,
        "--classifier", "OneR", "--hpcs", "2", "--output", str(out),
    ])
    assert rc == 0
    text = out.read_text()
    assert "module oner_detector" in text
    assert "endmodule" in text
    assert "monitored events" in capsys.readouterr().out


def test_verilog_to_stdout(capsys):
    rc = main(["verilog", *FAST, "--classifier", "JRip", "--hpcs", "2",
               "--module", "custom_name"])
    assert rc == 0
    assert "module custom_name" in capsys.readouterr().out


def test_crossval_command(capsys):
    rc = main([
        "crossval", *FAST,
        "--classifiers", "OneR", "--hpcs", "2", "--folds", "3",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "±" in out
    assert "2HPC-OneR" in out


def test_evasion_command(capsys):
    rc = main([
        "evasion", *FAST,
        "--classifier", "OneR", "--hpcs", "2", "--strengths", "0", "0.6",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "payload kept" in out
    assert "60%" in out


def test_version_flag(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert f"repro-hmd {__version__}" in capsys.readouterr().out


def test_matrix_trace_and_metrics_out(capsys, tmp_path):
    """--trace-out/--metrics-out produce files stats can render, and the
    top-level stage spans account for the command's wall time."""
    import time

    from repro.obs import load_metrics, load_trace, toplevel_wall_seconds

    trace = tmp_path / "run.jsonl"
    metrics = tmp_path / "run.json"
    start = time.perf_counter()
    rc = main([
        "matrix", *FAST,
        "--classifiers", "OneR", "--budgets", "2", "--ensembles", "general",
        "--trace-out", str(trace), "--metrics-out", str(metrics),
    ])
    wall = time.perf_counter() - start
    assert rc == 0
    capsys.readouterr()

    events = load_trace(trace)
    names = {e["name"] for e in events}
    assert {"cli.corpus", "cli.grid", "cli.render", "matrix.fit",
            "matrix.cell"} <= names
    # Acceptance: root-span totals sum to within 5% of measured wall time.
    traced = toplevel_wall_seconds(events)
    assert traced <= wall * 1.01
    assert traced >= wall * 0.95

    snap = load_metrics(metrics)
    assert snap["counters"]["matrix_cells_computed_total"]["value"] == 1.0
    assert snap["histograms"]["matrix_fit_seconds"]["count"] == 1

    rc = main(["stats", "--trace", str(trace), "--metrics", str(metrics)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Trace summary" in out
    assert "cli.grid" in out
    assert "Metrics summary" in out
    assert "matrix_cells_computed_total" in out


def test_matrix_cache_metrics_via_cli(capsys, tmp_path):
    metrics = tmp_path / "m.json"
    args = [
        "matrix", *FAST,
        "--classifiers", "OneR", "--budgets", "2", "--ensembles", "general",
        "--cache-dir", str(tmp_path / "cache"), "--metrics-out", str(metrics),
    ]
    assert main(args) == 0
    assert main(args) == 0  # warm: all cells from cache
    capsys.readouterr()
    import json

    snap = json.loads(metrics.read_text())
    assert snap["counters"]["matrix_cells_cached_total"]["value"] == 1.0
    assert snap["counters"]["cache_hits_total"]["value"] == 1.0


def test_monitor_trace_and_metrics_out(capsys, tmp_path):
    from repro.obs import load_metrics, load_trace

    trace = tmp_path / "mon.jsonl"
    metrics = tmp_path / "mon.json"
    rc = main([
        "monitor", *FAST,
        "--classifier", "OneR", "--ensemble", "general",
        "--hpcs", "2", "--stride", "6", "--windows", "8",
        "--trace-out", str(trace), "--metrics-out", str(metrics),
    ])
    assert rc == 0
    capsys.readouterr()
    names = {e["name"] for e in load_trace(trace)}
    assert {"cli.fit", "cli.monitor", "monitor.app", "monitor.verdict"} <= names
    snap = load_metrics(metrics)
    assert snap["histograms"]["monitor_window_classify_seconds"]["count"] > 0
    assert "monitor_detection_latency_windows" in snap["gauges"]


def test_crossval_trace_out(capsys, tmp_path):
    from repro.obs import load_trace

    trace = tmp_path / "cv.jsonl"
    rc = main([
        "crossval", *FAST,
        "--classifiers", "OneR", "--hpcs", "2", "--folds", "3",
        "--trace-out", str(trace),
    ])
    assert rc == 0
    capsys.readouterr()
    names = {e["name"] for e in load_trace(trace)}
    assert {"cli.corpus", "cli.crossval", "crossval.record"} <= names


def test_stats_requires_an_input():
    with pytest.raises(SystemExit, match="needs --trace"):
        main(["stats"])


def test_stats_missing_file_is_a_clean_error(tmp_path):
    with pytest.raises(SystemExit, match="error"):
        main(["stats", "--trace", str(tmp_path / "nope.jsonl")])


def test_timings_progress_goes_through_the_sink(capsys):
    rc = main([
        "matrix", *FAST,
        "--classifiers", "OneR", "--budgets", "2", "--ensembles", "general",
        "--timings",
    ])
    assert rc == 0
    err = capsys.readouterr().err
    assert "[  1/1] 2HPC-OneR" in err


def test_monitor_vote_threshold_accepted(capsys):
    rc = main([
        "monitor", *FAST,
        "--classifier", "OneR", "--ensemble", "general",
        "--hpcs", "2", "--stride", "6", "--windows", "8",
        "--vote-threshold", "0.3",
    ])
    assert rc == 0
    assert "application-level accuracy" in capsys.readouterr().out


@pytest.mark.parametrize("bad", ["0", "0.0", "1.5", "-0.2", "nan", "x"])
@pytest.mark.parametrize("command", ["monitor", "fleet"])
def test_vote_threshold_validated(command, bad):
    with pytest.raises(SystemExit) as excinfo:
        main([command, *FAST, "--vote-threshold", bad])
    assert excinfo.value.code == 2  # argparse usage error


def test_fleet_command_pristine(capsys):
    rc = main([
        "fleet", *FAST,
        "--classifier", "OneR", "--ensemble", "general",
        "--hpcs", "2", "--stride", "6", "--windows", "8",
        "--fleet-workers", "2",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fleet accuracy" in out
    assert "degraded: 0" in out


def test_fleet_command_with_faults_and_obs(capsys, tmp_path):
    from repro.obs import load_metrics, load_trace

    trace = tmp_path / "fleet.jsonl"
    metrics = tmp_path / "fleet.json"
    rc = main([
        "fleet", *FAST,
        "--classifier", "OneR", "--ensemble", "general",
        "--hpcs", "2", "--stride", "4", "--windows", "8",
        "--fleet-workers", "3", "--retries", "2",
        "--faults", "crash=0.4,glitch=0.2,drop=0.2,permanent=0.1",
        "--vote-threshold", "0.4",
        "--trace-out", str(trace), "--metrics-out", str(metrics),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fleet accuracy" in out
    names = {e["name"] for e in load_trace(trace)}
    assert {"cli.fit", "fleet.run", "fleet.app", "fleet.verdict"} <= names
    snap = load_metrics(metrics)
    assert snap["counters"]["fleet_apps_total"]["value"] > 0
    assert "fleet_backoff_sleep_seconds" in snap["histograms"]


@pytest.mark.parametrize("bad", ["", "boom=0.1", "crash", "crash=x", "crash=2"])
def test_fleet_faults_spec_validated(bad):
    with pytest.raises(SystemExit) as excinfo:
        main(["fleet", *FAST, "--faults", bad])
    assert excinfo.value.code == 2


# -- health monitoring and watch ---------------------------------------


def test_fleet_health_out_pristine(capsys, tmp_path):
    import json

    health = tmp_path / "health.json"
    rc = main([
        "fleet", *FAST,
        "--classifier", "OneR", "--ensemble", "general",
        "--hpcs", "2", "--stride", "6", "--windows", "8",
        "--fleet-workers", "2",
        "--health-out", str(health),
        "--slo", "nondegraded>=0.95",
    ])
    assert rc == 0
    report = json.loads(health.read_text())
    assert report["schema"] == 1
    assert report["totals"]["verdicts"] > 0
    assert report["totals"]["degraded"] == 0
    assert report["critical_fired"] is False
    (slo,) = report["slos"]
    assert slo["ok"] is True
    assert "0 alert(s) firing" in capsys.readouterr().err


def test_fleet_faulted_health_fires_alert(capsys, tmp_path):
    import json

    health = tmp_path / "health.json"
    rc = main([
        "fleet", *FAST,
        "--classifier", "OneR", "--ensemble", "general",
        "--hpcs", "2", "--stride", "4", "--windows", "8",
        "--fleet-workers", "2", "--retries", "2",
        "--faults", "crash=0.4,glitch=0.3,drop=0.2",
        "--health-out", str(health),
        "--alert", "degraded_ratio>=0.05:critical",
    ])
    assert rc == 0  # the run itself succeeds; watch is the CI gate
    err = capsys.readouterr().err
    assert "FIRING" in err and "degraded_ratio" in err
    report = json.loads(health.read_text())
    assert report["critical_fired"] is True
    (alert,) = report["alerts"]
    assert alert["fired_count"] >= 1


def _faulted_fleet_trace(tmp_path):
    trace = tmp_path / "fleet.jsonl"
    metrics = tmp_path / "fleet.json"
    rc = main([
        "fleet", *FAST,
        "--classifier", "OneR", "--ensemble", "general",
        "--hpcs", "2", "--stride", "4", "--windows", "8",
        "--fleet-workers", "2", "--retries", "2",
        "--faults", "crash=0.4,glitch=0.3,drop=0.2",
        "--trace-out", str(trace), "--metrics-out", str(metrics),
    ])
    assert rc == 0
    return trace, metrics


def test_watch_once_exits_nonzero_on_critical(capsys, tmp_path):
    trace, metrics = _faulted_fleet_trace(tmp_path)
    rc = main([
        "watch", "--trace", str(trace), "--metrics", str(metrics),
        "--alert", "degraded_ratio>=0.05:critical",
        "--slo", "nondegraded>=0.95",
        "--once",
    ])
    assert rc == 1
    out = capsys.readouterr().out
    assert "Health — window" in out
    assert "degraded_ratio>=0.05" in out
    assert "firing" in out


def test_watch_once_is_deterministic(capsys, tmp_path):
    trace, _ = _faulted_fleet_trace(tmp_path)
    args = [
        "watch", "--trace", str(trace),
        "--alert", "degraded_ratio>=0.05:critical:0:0.01",
        "--once",
    ]
    first_out = tmp_path / "h1.json"
    second_out = tmp_path / "h2.json"
    assert main([*args, "--health-out", str(first_out)]) == 1
    assert main([*args, "--health-out", str(second_out)]) == 1
    capsys.readouterr()
    assert first_out.read_text() == second_out.read_text()


def test_watch_once_pristine_exits_zero(capsys, tmp_path):
    trace = tmp_path / "trace.jsonl"
    rc = main([
        "monitor", *FAST,
        "--classifier", "OneR", "--ensemble", "general",
        "--hpcs", "2", "--stride", "6", "--windows", "8",
        "--trace-out", str(trace),
    ])
    assert rc == 0
    rc = main([
        "watch", "--trace", str(trace),
        "--alert", "degraded_ratio>=0.05:critical",
        "--once",
    ])
    assert rc == 0
    assert "firing" not in capsys.readouterr().out.split("alerts:")[-1]


def test_watch_rules_file_and_bad_specs(tmp_path):
    import json

    rules = tmp_path / "rules.json"
    rules.write_text(json.dumps({"rules": [
        {"signal": "degraded_ratio", "op": ">=", "threshold": 0.05,
         "severity": "critical"},
    ]}))
    trace = tmp_path / "empty.jsonl"
    trace.write_text("")
    rc = main(["watch", "--trace", str(trace), "--alerts", str(rules), "--once"])
    assert rc == 0  # no verdicts -> NaN signals -> nothing fires
    with pytest.raises(SystemExit) as excinfo:
        main(["watch", "--trace", str(trace), "--alert", "bogus>>1", "--once"])
    assert excinfo.value.code == 2
    with pytest.raises(SystemExit) as excinfo:
        main(["watch", "--trace", str(trace), "--slo", "latency<=1", "--once"])
    assert excinfo.value.code == 2


def test_stats_merges_multiple_metrics_files(capsys, tmp_path):
    import json

    from repro.obs import Registry

    paths = []
    for i, n in enumerate((3, 4)):
        registry = Registry()
        registry.counter("monitor_apps_total").inc(n)
        registry.histogram("latency_seconds", buckets=(1.0,)).observe(0.5)
        path = tmp_path / f"metrics{i}.json"
        path.write_text(json.dumps(registry.snapshot()))
        paths.append(str(path))
    rc = main(["stats", "--metrics", *paths])
    assert rc == 0
    out = capsys.readouterr().out
    assert "monitor_apps_total" in out
    assert "7" in out  # 3 + 4 merged exactly


def test_stats_merges_multiple_trace_files(capsys, tmp_path):
    """Regression: --trace used to accept a single path only."""
    from repro.obs import Tracer

    first, second = Tracer(), Tracer()
    with first.span("stage.one"):
        pass
    with second.span("stage.two"):
        pass
    first.event("verdict", ts=5.0)
    second.event("verdict", ts=1.0)
    path_a = tmp_path / "a.jsonl"
    path_b = tmp_path / "b.jsonl"
    first.dump(path_a)
    second.dump(path_b)
    rc = main(["stats", "--trace", str(path_a), str(path_b)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "stage.one" in out and "stage.two" in out
    assert "2 point events" in out


# -- archive / report / replay -----------------------------------------


def test_serve_archive_report_replay_roundtrip(capsys, tmp_path):
    import json

    archive_dir = tmp_path / "arch"
    trace = tmp_path / "serve.jsonl"
    metrics = tmp_path / "serve-metrics.json"
    rc = main([
        "serve", *FAST,
        "--classifier", "OneR", "--ensemble", "general",
        "--hpcs", "2", "--stride", "7", "--rounds", "2",
        "--producers", "1", "--serve-workers", "1",
        "--trace-out", str(trace), "--metrics-out", str(metrics),
        "--archive-dir", str(archive_dir),
    ])
    assert rc == 0
    err = capsys.readouterr().err
    assert "archived segment" in err

    # re-ingesting the run's own dumped trace is a no-op (idempotent)
    rc = main([
        "report", "--archive-dir", str(archive_dir),
        "--ingest", str(trace), "--ingest-metrics", str(metrics), "--json",
    ])
    assert rc == 0
    captured = capsys.readouterr()
    assert "[already archived]" in captured.err
    data = json.loads(captured.out)
    assert data["segments"] == 1
    assert data["verdicts"] == 6  # 3 hosts (stride 7) x 2 rounds
    assert len(data["hosts"]) == 3
    assert data["detection_rate_trend"]
    assert "serve_window_classify_seconds" in data["latency_quantiles"]

    # replay at 1x asserts verdict bit-identity against the archive
    rc = main(["replay", "--archive-dir", str(archive_dir)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "6 verdicts matched bit-identical" in out


def test_fleet_archive_dir_alone_enables_obs_and_reports(capsys, tmp_path):
    archive_dir = tmp_path / "arch"
    rc = main([
        "fleet", *FAST,
        "--classifier", "OneR", "--ensemble", "general",
        "--hpcs", "2", "--stride", "6", "--windows", "8",
        "--fleet-workers", "2",
        "--archive-dir", str(archive_dir),
    ])
    assert rc == 0
    assert "archived segment" in capsys.readouterr().err
    rc = main(["report", "--archive-dir", str(archive_dir)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Fleet archive report" in out
    assert "segments: 1" in out
    # fleet runs are not replayable (no serve workload to reconstruct)
    with pytest.raises(SystemExit, match="no replayable"):
        main(["replay", "--archive-dir", str(archive_dir)])


def test_report_on_missing_archive_is_empty_not_an_error(capsys, tmp_path):
    rc = main(["report", "--archive-dir", str(tmp_path / "nowhere")])
    assert rc == 0
    assert "matched no verdicts" in capsys.readouterr().out


def test_report_host_filter(capsys, tmp_path):
    import json

    from repro.obs import Tracer
    from repro.obs.archive import Archive

    tracer = Tracer()
    for index, host in enumerate(("web-1", "web-2")):
        tracer.event(
            "serve.verdict", ts=float(index), app=host, host=host,
            index=index, is_malware=True, malware_fraction=1.0, n_windows=4,
        )
    Archive(tmp_path / "arch").ingest_events(tracer.events)
    rc = main([
        "report", "--archive-dir", str(tmp_path / "arch"),
        "--host", "web-1", "--json",
    ])
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert data["hosts"] == ["web-1"]
    assert data["verdicts"] == 1


def test_profile_command_writes_loadable_profile(capsys, tmp_path):
    from repro.obs import ReferenceProfile

    out = tmp_path / "profile.json"
    rc = main([
        "profile", *FAST, "--classifier", "OneR", "--hpcs", "2",
        "--out", str(out),
    ])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "wrote reference profile" in printed
    profile = ReferenceProfile.load(out)
    assert profile.n_features == 2
    assert profile.meta["command"] == "profile"
    assert profile.meta["seed"] == 11
    assert profile.profile_id[:12] in printed


def test_quality_flags_need_a_reference():
    with pytest.raises(SystemExit, match="--quality-ref"):
        main([
            "serve", *FAST, "--stride", "20",
            "--quality-out", "nope.json",
        ])


def test_serve_quality_drift_fires_and_stationary_stays_silent(capsys, tmp_path):
    """The quality-smoke recipe: shifted run alerts, control run doesn't."""
    import json

    profile = tmp_path / "profile.json"
    assert main([
        "profile", "--seed", "11", "--windows", "8", "--out", str(profile),
    ]) == 0
    serve = [
        "serve", "--seed", "11", "--windows", "8", "--stride", "1",
        "--rounds", "4", "--producers", "2", "--serve-workers", "2",
        "--queue-depth", "8",
        "--quality-ref", str(profile),
        "--quality-window", "3600",
        "--quality-alert", "max_feature_psi>=1.5:critical:0:0.5",
    ]

    shifted_quality = tmp_path / "shifted-quality.json"
    shifted_trace = tmp_path / "shifted-trace.jsonl"
    assert main([
        *serve, "--drift", "0.8",
        "--quality-out", str(shifted_quality),
        "--trace-out", str(shifted_trace),
    ]) == 0
    shifted = json.loads(shifted_quality.read_text())
    assert shifted["critical_fired"] is True
    assert shifted["signals"]["max_feature_psi"] >= 1.5
    assert "drift alerts fired: yes" in capsys.readouterr().err

    control_quality = tmp_path / "control-quality.json"
    control_trace = tmp_path / "control-trace.jsonl"
    assert main([
        *serve,
        "--quality-out", str(control_quality),
        "--trace-out", str(control_trace),
    ]) == 0
    control = json.loads(control_quality.read_text())
    assert control["critical_fired"] is False
    assert control["signals"]["max_feature_psi"] < 1.5
    assert "drift alerts fired: no" in capsys.readouterr().err

    # watch --once gates on the archived quality.alert events: exit 1
    # for the shifted run, 0 for the stationary control.
    assert main(["watch", "--trace", str(shifted_trace), "--once"]) == 1
    assert "critical firing" in capsys.readouterr().err
    assert main(["watch", "--trace", str(control_trace), "--once"]) == 0
