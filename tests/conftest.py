"""Shared fixtures: small corpora and synthetic classification data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.validation import app_level_split
from repro.workloads.benign import BENIGN_FAMILIES
from repro.workloads.corpus import CorpusBuilder
from repro.workloads.malware import MALWARE_FAMILIES


@pytest.fixture(scope="session")
def small_corpus():
    """Full family mix, few windows per app — fast but realistic."""
    builder = CorpusBuilder(
        families=BENIGN_FAMILIES + MALWARE_FAMILIES,
        seed=2018,
        windows_per_app=8,
    )
    return builder.build()


@pytest.fixture(scope="session")
def small_split(small_corpus):
    """The paper's 70/30 application-level split of the small corpus."""
    return app_level_split(small_corpus, train_fraction=0.7, seed=7)


@pytest.fixture(scope="session")
def blobs():
    """Well-separated 2-class blobs: any sane classifier should ace them."""
    rng = np.random.default_rng(0)
    n = 300
    x0 = rng.normal(loc=[-2.0, -2.0, 0.0], scale=0.6, size=(n, 3))
    x1 = rng.normal(loc=[2.0, 2.0, 0.5], scale=0.6, size=(n, 3))
    features = np.vstack([x0, x1])
    labels = np.concatenate([np.zeros(n, dtype=np.intp), np.ones(n, dtype=np.intp)])
    order = rng.permutation(2 * n)
    return features[order], labels[order]


@pytest.fixture(scope="session")
def xor_data():
    """Four-cluster XOR layout: linearly inseparable, multimodal."""
    rng = np.random.default_rng(1)
    n = 150
    centers0 = [(0.0, 0.0), (3.0, 3.0)]
    centers1 = [(0.0, 3.0), (3.0, 0.0)]
    xs, ys = [], []
    for label, centers in ((0, centers0), (1, centers1)):
        for cx, cy in centers:
            xs.append(rng.normal([cx, cy], 0.55, size=(n, 2)))
            ys.append(np.full(n, label, dtype=np.intp))
    features = np.vstack(xs)
    labels = np.concatenate(ys)
    order = rng.permutation(len(labels))
    return features[order], labels[order]


def train_test(features: np.ndarray, labels: np.ndarray, frac: float = 0.75):
    """Deterministic split helper for the synthetic fixtures."""
    cut = int(len(labels) * frac)
    return features[:cut], labels[:cut], features[cut:], labels[cut:]
