"""Feature extraction modes."""

import numpy as np
import pytest

from repro.features.extraction import (
    delta_features,
    extract,
    per_cycle,
    per_kilo_instruction,
    rolling_mean,
    rolling_std,
)
from repro.workloads.dataset import Dataset


def _dataset():
    # two apps x three windows, features: instructions, cpu_cycles, branches
    features = np.array(
        [
            [1000.0, 2000.0, 100.0],
            [2000.0, 4000.0, 300.0],
            [4000.0, 8000.0, 500.0],
            [1000.0, 1000.0, 50.0],
            [1000.0, 1000.0, 150.0],
            [1000.0, 1000.0, 250.0],
        ]
    )
    return Dataset(
        features=features,
        labels=np.array([0, 0, 0, 1, 1, 1]),
        feature_names=("instructions", "cpu_cycles", "branch_instructions"),
        app_ids=np.array([0, 0, 0, 1, 1, 1]),
        app_names=("benign0", "malware0"),
        app_families=("b", "m"),
    )


def test_pki_normalizes_by_instructions():
    out = per_kilo_instruction(_dataset())
    # branches per kilo-instruction: 100/1 = 100 for the first window
    branch_col = out.feature_names.index("branch_instructions_pki")
    assert out.features[0, branch_col] == pytest.approx(100.0)
    assert out.features[2, branch_col] == pytest.approx(125.0)


def test_pki_keeps_instructions_raw():
    out = per_kilo_instruction(_dataset())
    col = out.feature_names.index("instructions")
    np.testing.assert_allclose(out.features[:, col], _dataset().features[:, 0])


def test_pki_requires_instructions_column():
    ds = _dataset().select_features(["cpu_cycles", "branch_instructions"])
    with pytest.raises(KeyError):
        per_kilo_instruction(ds)


def test_per_cycle_normalizes():
    out = per_cycle(_dataset())
    col = out.feature_names.index("branch_instructions_pc")
    assert out.features[0, col] == pytest.approx(100.0 / 2000.0)


def test_per_cycle_requires_cycles_column():
    ds = _dataset().select_features(["instructions", "branch_instructions"])
    with pytest.raises(KeyError):
        per_cycle(ds)


def test_delta_zero_for_first_window_of_each_app():
    out = delta_features(_dataset())
    np.testing.assert_allclose(out.features[0], 0.0)
    np.testing.assert_allclose(out.features[3], 0.0)  # app boundary respected


def test_delta_values():
    out = delta_features(_dataset())
    col = out.feature_names.index("branch_instructions_delta")
    assert out.features[1, col] == pytest.approx(200.0)
    assert out.features[4, col] == pytest.approx(100.0)


def test_delta_does_not_cross_app_boundary():
    out = delta_features(_dataset())
    # window 3 is app 1's first; its delta must not reference app 0's last
    assert out.features[3, 0] == 0.0


def test_rolling_mean_warmup_and_window():
    out = rolling_mean(_dataset(), window=2)
    col = out.feature_names.index("branch_instructions_ma2")
    assert out.features[0, col] == pytest.approx(100.0)  # only itself
    assert out.features[1, col] == pytest.approx(200.0)  # (100+300)/2
    assert out.features[2, col] == pytest.approx(400.0)  # (300+500)/2


def test_rolling_mean_validates_window():
    with pytest.raises(ValueError):
        rolling_mean(_dataset(), window=0)


def test_rolling_std_zero_at_first_window():
    out = rolling_std(_dataset(), window=3)
    np.testing.assert_allclose(out.features[0], 0.0)


def test_rolling_std_measures_burstiness():
    out = rolling_std(_dataset(), window=3)
    col = out.feature_names.index("branch_instructions_sd3")
    assert out.features[2, col] > 0


def test_extract_dispatch():
    assert extract(_dataset(), "raw") is not None
    out = extract(_dataset(), "rolling_mean", window=3)
    assert out.feature_names[0].endswith("_ma3")
    with pytest.raises(ValueError):
        extract(_dataset(), "fourier")


def test_extraction_preserves_provenance():
    for mode in ("per_kilo_instruction", "per_cycle", "delta"):
        out = extract(_dataset(), mode)
        np.testing.assert_array_equal(out.app_ids, _dataset().app_ids)
        np.testing.assert_array_equal(out.labels, _dataset().labels)


def test_pki_improves_or_matches_on_real_corpus(small_split):
    """PKI features remove the utilization confound; a tree detector on
    them must stay competitive with raw counts."""
    from repro.ml import REPTree, accuracy

    raw_train, raw_test = small_split.train, small_split.test
    pki_train = per_kilo_instruction(raw_train)
    pki_test = per_kilo_instruction(raw_test)
    raw_model = REPTree().fit(raw_train.features, raw_train.labels)
    pki_model = REPTree().fit(pki_train.features, pki_train.labels)
    raw_acc = accuracy(raw_test.labels, raw_model.predict(raw_test.features))
    pki_acc = accuracy(pki_test.labels, pki_model.predict(pki_test.features))
    assert pki_acc > raw_acc - 0.1
