"""Correlation attribute evaluation and feature ranking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.correlation import (
    information_gain,
    pearson_correlation,
    rank_features,
)
from repro.features.reduction import FeatureReducer
from repro.workloads.dataset import Dataset


def _dataset(features, labels, names=None):
    n_apps = 2
    app_ids = (labels >= 0).astype(np.intp) * 0  # all app 0? need per label
    # map each sample to an app of its own class so app_label is consistent
    app_ids = labels.astype(np.intp)
    return Dataset(
        features=features,
        labels=labels.astype(np.intp),
        feature_names=tuple(names or (f"f{i}" for i in range(features.shape[1]))),
        app_ids=app_ids,
        app_names=("benign_app", "malware_app"),
        app_families=("b", "m"),
    )


def test_pearson_perfect_correlation():
    values = np.array([0.0, 0.0, 1.0, 1.0])
    labels = np.array([0, 0, 1, 1])
    assert pearson_correlation(values, labels) == pytest.approx(1.0)


def test_pearson_anticorrelation():
    values = np.array([1.0, 1.0, 0.0, 0.0])
    labels = np.array([0, 0, 1, 1])
    assert pearson_correlation(values, labels) == pytest.approx(-1.0)


def test_pearson_constant_feature_is_zero():
    assert pearson_correlation(np.ones(10), np.array([0, 1] * 5)) == 0.0


def test_information_gain_separable_positive():
    values = np.concatenate([np.zeros(50), np.ones(50)])
    labels = np.array([0] * 50 + [1] * 50)
    assert information_gain(values, labels) == pytest.approx(1.0, abs=0.05)


def test_information_gain_noise_is_zero():
    rng = np.random.default_rng(0)
    assert information_gain(rng.normal(size=100), rng.integers(0, 2, 100)) == 0.0


def test_rank_features_orders_by_score():
    rng = np.random.default_rng(1)
    labels = np.array([0] * 100 + [1] * 100)
    strong = labels + rng.normal(0, 0.1, 200)
    weak = labels + rng.normal(0, 2.0, 200)
    noise = rng.normal(size=200)
    ds = _dataset(np.column_stack([noise, weak, strong]), labels,
                  names=("noise", "weak", "strong"))
    ranking = rank_features(ds)
    assert ranking.names[0] == "strong"
    assert ranking.names[-1] == "noise"
    assert list(ranking.scores) == sorted(ranking.scores, reverse=True)


def test_rank_features_information_gain_method():
    rng = np.random.default_rng(2)
    labels = np.array([0] * 100 + [1] * 100)
    strong = labels * 3.0 + rng.normal(0, 0.1, 200)
    noise = rng.normal(size=200)
    ds = _dataset(np.column_stack([noise, strong]), labels, names=("noise", "strong"))
    ranking = rank_features(ds, method="information_gain")
    assert ranking.names[0] == "strong"
    assert ranking.method == "information_gain"


def test_rank_features_unknown_method():
    ds = _dataset(np.zeros((4, 2)), np.array([0, 0, 1, 1]))
    with pytest.raises(ValueError):
        rank_features(ds, method="chi2")


def test_ranking_top_k_validation():
    ds = _dataset(np.random.default_rng(0).normal(size=(10, 3)),
                  np.array([0] * 5 + [1] * 5))
    ranking = rank_features(ds)
    with pytest.raises(ValueError):
        ranking.top(0)
    with pytest.raises(ValueError):
        ranking.top(4)
    assert len(ranking.top(2)) == 2


def test_ranking_score_of():
    ds = _dataset(np.random.default_rng(0).normal(size=(10, 2)),
                  np.array([0] * 5 + [1] * 5), names=("a", "b"))
    ranking = rank_features(ds)
    assert ranking.score_of("a") >= 0
    with pytest.raises(KeyError):
        ranking.score_of("zzz")


def test_ranking_str_lists_all():
    ds = _dataset(np.random.default_rng(0).normal(size=(10, 2)),
                  np.array([0] * 5 + [1] * 5), names=("a", "b"))
    text = str(rank_features(ds))
    assert "a" in text and "b" in text


def test_reducer_fit_transform_selects_top(small_corpus):
    reducer = FeatureReducer(n_features=4)
    reduced = reducer.fit_transform(small_corpus)
    assert reduced.n_features == 4
    assert reduced.feature_names == reducer.selected


def test_reducer_transform_before_fit_raises(small_corpus):
    with pytest.raises(RuntimeError):
        FeatureReducer(n_features=4).transform(small_corpus)


def test_reducer_too_many_features_requested(small_corpus):
    reducer = FeatureReducer(n_features=small_corpus.n_features + 1)
    with pytest.raises(ValueError):
        reducer.fit(small_corpus)


def test_reducer_budgets_are_prefixes(small_corpus):
    """The paper's 8/4/2-HPC sets are prefixes of the 16-HPC ranking."""
    r16 = FeatureReducer(n_features=16).fit(small_corpus)
    r4 = FeatureReducer(n_features=4).fit(small_corpus)
    assert r16.selected[:4] == r4.selected


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 5000))
def test_pearson_bounded(seed):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=30)
    labels = rng.integers(0, 2, 30)
    assert -1.0 <= pearson_correlation(values, labels) <= 1.0
