"""Verilog code generation."""

import numpy as np
import pytest

from repro.hardware.verilog import CodegenError, generate
from repro.ml import MLP, SGD, SMO, BayesNet, J48, JRip, OneR, REPTree


@pytest.fixture(scope="module")
def data(blobs):
    features, labels = blobs
    return features[:200], labels[:200]


def _balanced_parens(text: str) -> bool:
    depth = 0
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                return False
    return depth == 0


@pytest.mark.parametrize(
    "factory,keyword",
    [
        (OneR, "oner_detector"),
        (J48, "tree_detector"),
        (REPTree, "tree_detector"),
        (JRip, "jrip_detector"),
        (lambda: SGD(epochs=15), "linear_detector"),
        (SMO, "linear_detector"),
    ],
    ids=["OneR", "J48", "REPTree", "JRip", "SGD", "SMO"],
)
def test_generates_well_formed_module(factory, keyword, data):
    model = factory().fit(*data)
    text = generate(model)
    assert text.startswith("// Generated")
    assert f"module {keyword}" in text
    assert "endmodule" in text
    assert "output reg  malware" in text
    assert _balanced_parens(text)


def test_custom_module_name(data):
    model = OneR().fit(*data)
    assert "module my_unit" in generate(model, name="my_unit")


def test_oner_uses_single_attribute(data):
    model = OneR().fit(*data)
    text = generate(model)
    attr = model.chosen_attribute
    assert f"hpc{attr}" in text


def test_tree_codegen_mentions_structure(data):
    model = J48().fit(*data)
    text = generate(model)
    assert f"// {model.tree_size} nodes, depth {model.depth}" in text
    assert text.count("?") == model.tree_size - model.n_leaves


def test_jrip_one_wire_per_rule(data):
    model = JRip().fit(*data)
    text = generate(model)
    assert text.count("wire rule") == model.n_rules


def test_linear_codegen_quantizes_all_weights(data):
    model = SGD(epochs=15).fit(*data)
    text = generate(model)
    for i in range(data[0].shape[1]):
        assert f"hpc{i} * " in text
    assert "acc[63]" in text


def test_linear_codegen_documents_standardization(data):
    model = SGD(epochs=15).fit(*data)
    text = generate(model)
    assert "pre-standardized" in text


def test_rbf_svm_rejected(data):
    model = SMO(kernel="rbf").fit(data[0][:80], data[1][:80])
    with pytest.raises(CodegenError):
        generate(model)


def test_mlp_and_bayes_rejected(data):
    with pytest.raises(CodegenError):
        generate(MLP(epochs=3).fit(*data))
    with pytest.raises(CodegenError):
        generate(BayesNet().fit(*data))


def test_unfitted_model_rejected():
    with pytest.raises(Exception):
        generate(OneR())


class _TernaryEvaluator:
    """Tiny recursive-descent evaluator for the generated expression
    grammar: EXPR := 1'b0 | 1'b1 | ((hpcN <= 32'sdK) ? EXPR : EXPR)."""

    def __init__(self, text: str, inputs: dict[str, int]) -> None:
        self.text = text
        self.pos = 0
        self.inputs = inputs

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t":
            self.pos += 1

    def _consume(self, token: str) -> None:
        self._skip_ws()
        if not self.text.startswith(token, self.pos):
            raise AssertionError(
                f"expected {token!r} at {self.text[self.pos:self.pos + 20]!r}"
            )
        self.pos += len(token)

    def _read_while(self, predicate) -> str:
        start = self.pos
        while self.pos < len(self.text) and predicate(self.text[self.pos]):
            self.pos += 1
        return self.text[start : self.pos]

    def parse(self) -> int:
        self._skip_ws()
        if self.text.startswith("1'b", self.pos):
            self.pos += 3
            return int(self._read_while(str.isdigit))
        self._consume("(")
        self._consume("(")
        self._consume("hpc")
        attr = int(self._read_while(str.isdigit))
        self._consume("<=")
        self._skip_ws()
        negative = self.text.startswith("-", self.pos)
        if negative:
            self.pos += 1
        self._consume("32'sd")
        threshold = int(self._read_while(str.isdigit))
        if negative:
            threshold = -threshold
        self._consume(")")
        self._consume("?")
        left = self.parse()
        self._consume(":")
        right = self.parse()
        self._consume(")")
        return left if self.inputs[f"hpc{attr}"] <= threshold else right


def test_tree_verilog_agrees_with_model(data):
    """Semantic check: the generated RTL expression must classify like
    the model it was lowered from (on integer-scaled inputs, since the
    codegen rounds thresholds — HPC counts are integral in deployment).
    """
    features, labels = data
    scaled = np.round(features * 1e6)  # count-scale integers
    model = REPTree().fit(scaled, labels)
    text = generate(model)
    expr_line = next(line for line in text.splitlines() if "else malware <=" in line)
    expr = expr_line.split("<=", 1)[1].strip().rstrip(";")
    predictions = model.predict(scaled[:40])
    for i in range(40):
        inputs = {
            f"hpc{j}": int(scaled[i, j]) for j in range(scaled.shape[1])
        }
        hw = _TernaryEvaluator(expr, inputs).parse()
        assert hw == predictions[i]
