"""Resource library arithmetic."""

import pytest

from repro.hardware.resources import (
    DSP_LUT_EQUIVALENT,
    LUTRAM_BITS_PER_LUT,
    OPENSPARC_LUT_EQUIVALENT,
    OPERATOR_SPECS,
    OpType,
    ResourceUsage,
    op_usage,
)


def test_all_ops_have_specs():
    assert set(OPERATOR_SPECS) == set(OpType)


def test_specs_non_negative():
    for spec in OPERATOR_SPECS.values():
        assert spec.latency >= 0
        assert spec.luts >= 0
        assert spec.dsps >= 0


def test_float_ops_cost_more_than_fixed():
    assert OPERATOR_SPECS[OpType.FMUL].luts > OPERATOR_SPECS[OpType.MUL].luts
    assert OPERATOR_SPECS[OpType.FADD].latency > OPERATOR_SPECS[OpType.ADD].latency


def test_usage_addition():
    a = ResourceUsage(luts=10, ffs=5, dsps=1)
    b = ResourceUsage(luts=3, brams=2, storage_bits=64)
    total = a + b
    assert total.luts == 13
    assert total.ffs == 5
    assert total.dsps == 1
    assert total.brams == 2
    assert total.storage_bits == 64


def test_usage_scaled():
    usage = ResourceUsage(luts=10, ffs=10, dsps=2, brams=2, storage_bits=100)
    half = usage.scaled(0.5)
    assert half.luts == 5
    assert half.dsps == 1
    assert half.storage_bits == 50


def test_lut_equivalent_converts_dsp_and_storage():
    usage = ResourceUsage(luts=100, dsps=1, storage_bits=LUTRAM_BITS_PER_LUT * 3)
    assert usage.lut_equivalent == 100 + DSP_LUT_EQUIVALENT + 3


def test_lut_equivalent_rounds_storage_up():
    usage = ResourceUsage(storage_bits=1)
    assert usage.lut_equivalent == 1


def test_area_percent_reference():
    usage = ResourceUsage(luts=OPENSPARC_LUT_EQUIVALENT)
    assert usage.area_percent == pytest.approx(100.0)


def test_op_usage_scales_with_count():
    one = op_usage(OpType.CMP, 1)
    five = op_usage(OpType.CMP, 5)
    assert five.luts == 5 * one.luts


def test_op_usage_rejects_negative_count():
    with pytest.raises(ValueError):
        op_usage(OpType.ADD, -1)
