"""Dataflow graph construction and list scheduling."""

import pytest

from repro.hardware.graph import DataflowGraph, FabricConfig
from repro.hardware.resources import OPERATOR_SPECS, OpType


def test_add_returns_sequential_indices():
    graph = DataflowGraph()
    assert graph.add(OpType.MUL) == 0
    assert graph.add(OpType.ADD, (0,)) == 1


def test_add_rejects_forward_dependency():
    graph = DataflowGraph()
    with pytest.raises(ValueError):
        graph.add(OpType.ADD, (5,))


def test_reduce_tree_single_input_is_identity():
    graph = DataflowGraph()
    node = graph.add(OpType.MUL)
    assert graph.reduce_tree(OpType.ADD, [node]) == node


def test_reduce_tree_adds_n_minus_one_ops():
    graph = DataflowGraph()
    inputs = [graph.add(OpType.MUL) for _ in range(8)]
    graph.reduce_tree(OpType.ADD, inputs)
    adds = sum(1 for node in graph.nodes if node.op is OpType.ADD)
    assert adds == 7


def test_reduce_tree_rejects_empty():
    with pytest.raises(ValueError):
        DataflowGraph().reduce_tree(OpType.ADD, [])


def test_critical_path_chain():
    graph = DataflowGraph()
    a = graph.add(OpType.MUL)          # 4 cycles
    b = graph.add(OpType.ADD, (a,))    # +1
    graph.add(OpType.ADD, (b,))        # +1
    assert graph.critical_path() == 6


def test_critical_path_parallel_ops_overlap():
    graph = DataflowGraph()
    for _ in range(10):
        graph.add(OpType.MUL)
    assert graph.critical_path() == OPERATOR_SPECS[OpType.MUL].latency


def test_empty_graph_schedules_to_zero():
    assert DataflowGraph().list_schedule(FabricConfig()) == 0


def test_schedule_at_least_critical_path():
    graph = DataflowGraph()
    products = [graph.add(OpType.MUL) for _ in range(6)]
    graph.reduce_tree(OpType.ADD, products)
    fabric = FabricConfig(multipliers=16, adders=16)
    assert graph.list_schedule(fabric) >= graph.critical_path()


def test_fewer_units_means_longer_schedule():
    def build():
        graph = DataflowGraph()
        products = [graph.add(OpType.MUL) for _ in range(12)]
        graph.reduce_tree(OpType.ADD, products)
        return graph

    wide = build().list_schedule(FabricConfig(multipliers=12))
    narrow = build().list_schedule(FabricConfig(multipliers=1))
    assert narrow > wide


def test_serial_multiplier_throughput():
    """12 multiplies on one pipelined (II=1) unit: one issue per cycle,
    so the last result lands at cycle 11 + mul latency."""
    graph = DataflowGraph()
    for _ in range(12):
        graph.add(OpType.MUL)
    latency = graph.list_schedule(FabricConfig(multipliers=1))
    assert latency == 11 + OPERATOR_SPECS[OpType.MUL].latency


def test_capacity_mapping_by_op_class():
    fabric = FabricConfig(multipliers=3, adders=5, lookups=7, comparators=9,
                          float_multipliers=2, float_adders=4, float_sigmoids=1)
    assert fabric.capacity(OpType.MUL) == 3
    assert fabric.capacity(OpType.ADD) == 5
    assert fabric.capacity(OpType.TABLE_LOOKUP) == 7
    assert fabric.capacity(OpType.CMP) == 9
    assert fabric.capacity(OpType.FMUL) == 2
    assert fabric.capacity(OpType.FADD) == 4
    assert fabric.capacity(OpType.FSIGMOID) == 1


def test_dependencies_respected():
    """A dependent op cannot finish before its producer."""
    graph = DataflowGraph()
    a = graph.add(OpType.MUL)
    graph.add(OpType.ADD, (a,))
    latency = graph.list_schedule(FabricConfig())
    assert latency >= OPERATOR_SPECS[OpType.MUL].latency + OPERATOR_SPECS[OpType.ADD].latency
