"""Model-to-hardware lowering: every classifier family, Table 3 shape."""

import numpy as np
import pytest

from repro.hardware.graph import FabricConfig
from repro.hardware.lowering import SHELL_USAGE, LoweringError, lower
from repro.ml import (
    MLP,
    SGD,
    SMO,
    AdaBoostM1,
    Bagging,
    BayesNet,
    Classifier,
    J48,
    JRip,
    OneR,
    REPTree,
)


@pytest.fixture(scope="module")
def data(blobs):
    features, labels = blobs
    return features[:240], labels[:240]


ALL_FACTORIES = [
    ("OneR", OneR),
    ("J48", J48),
    ("REPTree", REPTree),
    ("JRip", JRip),
    ("BayesNet", BayesNet),
    ("SGD", lambda: SGD(epochs=15)),
    ("SMO", SMO),
    ("MLP", lambda: MLP(epochs=10)),
]


@pytest.mark.parametrize("name,factory", ALL_FACTORIES, ids=[n for n, _ in ALL_FACTORIES])
def test_every_base_model_lowers(name, factory, data):
    model = factory().fit(*data)
    design = lower(model)
    assert design.latency_cycles >= 1
    assert design.area_percent > 0
    assert design.latency_ns == design.latency_cycles * 10.0


def test_unfitted_model_cannot_lower():
    with pytest.raises(Exception):
        lower(OneR())


def test_unsupported_type_raises():
    class Alien(Classifier):
        def fit(self, features, labels, sample_weight=None):
            return self

        def predict_proba(self, features):
            return np.zeros((len(features), 2))

    with pytest.raises(LoweringError):
        lower(Alien())


def test_oner_is_single_cycle(data):
    model = OneR().fit(*data)
    assert lower(model).latency_cycles == 1


def test_jrip_is_a_few_cycles(data):
    model = JRip().fit(*data)
    assert lower(model).latency_cycles <= 5


def test_tree_latency_tracks_depth(data):
    model = J48().fit(*data)
    assert lower(model).latency_cycles == 2 * model.depth


def test_mlp_dominates_cost(data):
    """Table 3's headline: the MLP dwarfs every other detector."""
    mlp = lower(MLP(epochs=10).fit(*data))
    for _, factory in ALL_FACTORIES[:-1]:
        other = lower(factory().fit(*data))
        assert mlp.area_percent > 3 * other.area_percent
        assert mlp.latency_cycles >= other.latency_cycles


def test_shell_included_once(data):
    design = lower(OneR().fit(*data))
    assert design.resources.luts >= SHELL_USAGE.luts


def test_boosted_latency_exceeds_members(data):
    boosted = AdaBoostM1(OneR(), n_estimators=8).fit(*data)
    design = lower(boosted)
    member = lower(boosted.estimators_[0])
    assert design.latency_cycles > boosted.n_models * member.latency_cycles - member.latency_cycles


def test_boosted_area_below_member_sum(xor_data):
    """Shared fabric: ensemble area is far below the sum of members.

    A linear learner on the XOR layout stays weak every round, so
    boosting keeps several members.
    """
    features, labels = xor_data
    boosted = AdaBoostM1(SGD(epochs=15), n_estimators=6, seed=2).fit(features, labels)
    assert boosted.n_models >= 3
    design = lower(boosted)
    member_sum = sum(lower(m).area_percent for m in boosted.estimators_)
    assert design.area_percent < member_sum


def test_boosted_small_budget_mlp_cheaper_than_wide_general(small_split):
    """The paper's §4.4 observation: 2HPC Boosted-MLP needs *less* area
    than the 8HPC general MLP."""
    from repro.core import DetectorConfig, HMDDetector

    general8 = HMDDetector(DetectorConfig("MLP", "general", 8)).fit(small_split.train)
    boosted2 = HMDDetector(
        DetectorConfig("MLP", "boosted", 2, n_estimators=10)
    ).fit(small_split.train)
    assert lower(boosted2.model).area_percent < lower(general8.model).area_percent


def test_bagging_lowers(data):
    bagged = Bagging(REPTree(), n_estimators=4).fit(*data)
    design = lower(bagged)
    assert design.name.startswith("Bagging-")
    assert design.latency_cycles > 4


def test_rbf_svm_lowering(data):
    model = SMO(kernel="rbf", gamma=0.3).fit(data[0][:120], data[1][:120])
    design = lower(model)
    assert design.name == "SMO-RBF"
    assert design.latency_cycles > lower(SMO().fit(*data)).latency_cycles


def test_fabric_budget_affects_mlp_latency(data):
    model = MLP(epochs=5).fit(*data)
    slow = lower(model, FabricConfig(float_multipliers=1, float_adders=1))
    fast = lower(model, FabricConfig(float_multipliers=8, float_adders=8))
    assert slow.latency_cycles >= fast.latency_cycles


def test_fewer_inputs_means_less_mlp_storage(data):
    features, labels = data
    wide = lower(MLP(epochs=5).fit(features, labels))
    narrow = lower(MLP(epochs=5).fit(features[:, :1], labels))
    assert narrow.resources.storage_bits < wide.resources.storage_bits
