"""Roll-ups: raw-file parity, trends, filters, report rendering."""

import json

import pytest

from repro.obs import Registry, merge_snapshots
from repro.obs.archive import Archive
from repro.obs.rollup import (
    DAY_SECONDS,
    alert_frequency,
    detection_rate_trend,
    fleet_report,
    fleet_report_data,
    latency_quantiles,
    load_frames,
    merged_metrics,
    select_segments,
)
from repro.obs.stats import histogram_quantile

DAY = DAY_SECONDS


def verdict_event(ts, index, host, flagged, degraded=False, lost=0):
    return {
        "type": "event", "name": "serve.verdict", "ts": ts,
        "attrs": {
            "app": host, "host": host, "index": index, "is_malware": flagged,
            "malware_fraction": 1.0 if flagged else 0.0, "n_windows": 10,
            "n_windows_lost": lost, "degraded": degraded,
            "detection_latency_windows": 0 if flagged else None,
        },
    }


def alert_event(ts, rule, state="firing", severity="critical", value=0.5):
    return {
        "type": "event", "name": "health.alert", "ts": ts,
        "attrs": {"rule": rule, "state": state, "severity": severity,
                  "value": value},
    }


def run_snapshot(values):
    registry = Registry()
    hist = registry.histogram(
        "serve_window_classify_seconds", "w", buckets=(0.001, 0.01, 0.1)
    )
    for value in values:
        hist.observe(value)
    return registry.snapshot()


@pytest.fixture()
def archive(tmp_path):
    """Two archived runs a day apart, two hosts, distinct latency mixes."""
    archive = Archive(tmp_path / "arch")
    day0 = [
        {"type": "span", "name": "serve.run", "ts": 0.0, "dur": 2.0},
        verdict_event(10.0, 0, "web-1", True),
        verdict_event(20.0, 1, "web-2", False),
        alert_event(30.0, "degraded_ratio>=0.2"),
        alert_event(40.0, "degraded_ratio>=0.2", state="cleared"),
    ]
    day1 = [
        verdict_event(DAY + 10.0, 0, "web-1", True),
        verdict_event(DAY + 20.0, 1, "web-1", False, degraded=True, lost=3),
        verdict_event(DAY + 30.0, 2, "web-2", True),
        alert_event(DAY + 40.0, "p95_breach", severity="warning"),
    ]
    archive.ingest_events(
        day0, metrics=run_snapshot([0.0005, 0.005]), source="serve"
    )
    archive.ingest_events(
        day1, metrics=run_snapshot([0.05, 0.05, 0.005]), source="serve"
    )
    return archive


def test_load_frames_concatenates_all_segments(archive):
    verdicts, alerts = load_frames(archive)
    assert len(verdicts) == 5
    assert len(alerts) == 3
    assert sorted(set(verdicts.host)) == ["web-1", "web-2"]
    assert int(verdicts.flag.sum()) == 3
    assert int(verdicts.degraded.sum()) == 1
    assert int(verdicts.n_lost.sum()) == 3


def test_load_frames_host_filter(archive):
    verdicts, alerts = load_frames(archive, hosts=("web-1",))
    assert len(verdicts) == 3
    assert set(verdicts.host) == {"web-1"}
    # wildcard-host (fleet-wide) alerts survive any host filter
    assert len(alerts) == 3


def test_load_frames_time_filter(archive):
    verdicts, _ = load_frames(archive, since=DAY)
    assert len(verdicts) == 3
    verdicts, _ = load_frames(archive, until=DAY)
    assert len(verdicts) == 2


def test_select_segments_source_filter(archive):
    assert len(select_segments(archive, sources=("serve",))) == 2
    assert select_segments(archive, sources=("fleet",)) == []
    assert len(select_segments(archive, since=DAY)) == 1


def test_detection_rate_trend_buckets_by_host_and_day(archive):
    verdicts, _ = load_frames(archive)
    trend = detection_rate_trend(verdicts, bucket_s=DAY)
    by_key = {(row["host"], row["bucket_start"]): row for row in trend}
    assert by_key[("web-1", 0.0)]["detection_rate"] == 1.0
    assert by_key[("web-1", DAY)]["verdicts"] == 2
    assert by_key[("web-1", DAY)]["detection_rate"] == 0.5
    assert by_key[("web-1", DAY)]["degraded_rate"] == 0.5
    assert by_key[("web-1", DAY)]["windows_lost"] == 3
    assert by_key[("web-2", DAY)]["detection_rate"] == 1.0
    assert detection_rate_trend(verdicts, bucket_s=2 * DAY) != trend


def test_detection_rate_trend_rejects_bad_bucket(archive):
    verdicts, _ = load_frames(archive)
    with pytest.raises(ValueError):
        detection_rate_trend(verdicts, bucket_s=0)


def test_alert_frequency_counts_transitions(archive):
    _, alerts = load_frames(archive)
    rows = alert_frequency(alerts)
    by_rule = {row["rule"]: row for row in rows}
    assert by_rule["degraded_ratio>=0.2"]["fired"] == 1
    assert by_rule["degraded_ratio>=0.2"]["cleared"] == 1
    assert by_rule["p95_breach"]["fired"] == 1
    assert by_rule["p95_breach"]["severity"] == "warning"
    # noisiest rule (fired desc) leads; here both fired once -> name order
    assert rows[0]["rule"] == "degraded_ratio>=0.2"


def test_merged_quantiles_match_raw_snapshot_merge(archive):
    """Archive roll-up == merging the raw --metrics-out files directly."""
    raw = merge_snapshots(
        [run_snapshot([0.0005, 0.005]), run_snapshot([0.05, 0.05, 0.005])]
    )
    rolled = merged_metrics(archive)
    data = rolled["histograms"]["serve_window_classify_seconds"]
    raw_data = raw["histograms"]["serve_window_classify_seconds"]
    assert data["counts"] == raw_data["counts"]
    assert data["count"] == raw_data["count"] == 5
    for q in (0.5, 0.95, 0.99):
        assert histogram_quantile(data, q) == histogram_quantile(raw_data, q)
    quantiles = latency_quantiles(rolled)
    row = quantiles["serve_window_classify_seconds"]
    assert row["count"] == 5
    assert row["p50"] == histogram_quantile(raw_data, 0.5)
    assert row["p95"] == histogram_quantile(raw_data, 0.95)


def test_latency_quantiles_skips_non_latency_histograms():
    registry = Registry()
    registry.histogram("sizes_bytes", "s", buckets=(1.0,)).observe(0.5)
    assert latency_quantiles(registry.snapshot()) == {}


def test_fleet_report_data_payload(archive):
    data = fleet_report_data(archive)
    assert data["segments"] == 2
    assert data["verdicts"] == 5
    assert data["alerts"] == 3
    assert data["hosts"] == ["web-1", "web-2"]
    assert data["detections"] == 3
    assert data["degraded"] == 1
    assert data["windows"] == 50
    assert data["windows_lost"] == 3
    assert len(data["detection_rate_trend"]) == 4
    assert len(data["alert_frequency"]) == 2
    assert "serve_window_classify_seconds" in data["latency_quantiles"]
    json.dumps(data)  # CI gate payload must be JSON-clean


def test_fleet_report_renders_tables(archive):
    text = fleet_report(archive)
    assert "Fleet archive report" in text
    assert "web-1" in text and "web-2" in text
    assert "degraded_ratio>=0.2" in text
    assert "serve_window_classify_seconds" in text
    assert "1970-01-01" in text and "1970-01-02" in text


def test_fleet_report_empty_archive(tmp_path):
    archive = Archive(tmp_path)
    text = fleet_report(archive)
    assert "matched no verdicts" in text
    data = fleet_report_data(archive)
    assert data["segments"] == 0 and data["verdicts"] == 0
    assert data["hosts"] == []


def drift_event(ts, host, fleet_psi, host_psi):
    return {
        "type": "event", "name": "quality.drift", "ts": ts,
        "attrs": {
            "host": host, "worst_feature": "f0",
            "max_feature_psi": fleet_psi, "host_max_feature_psi": host_psi,
        },
    }


def test_drift_trend_buckets_per_host_and_skips_warmup_nan(tmp_path):
    from repro.obs.rollup import drift_trend

    archive = Archive(tmp_path / "arch")
    archive.ingest_events(
        [
            drift_event(10.0, "web-1", None, None),  # warm-up: NaN PSI
            drift_event(20.0, "web-1", 0.1, 0.2),
            drift_event(30.0, "web-1", 0.3, 0.4),
            drift_event(DAY + 10.0, "web-1", 0.5, 0.6),
        ],
        source="serve",
    )
    _, alerts = load_frames(archive)
    rows = drift_trend(alerts)
    by_key = {(r["host"], r["bucket_start"]): r for r in rows}
    fleet_day0 = by_key[("*", 0.0)]
    # Three fleet observations in day 0; the NaN warm-up counts toward
    # observations but not the PSI aggregates.
    assert fleet_day0["observations"] == 3
    assert fleet_day0["mean_psi"] == pytest.approx(0.2)
    assert fleet_day0["max_psi"] == pytest.approx(0.3)
    host_day0 = by_key[("web-1", 0.0)]
    assert host_day0["observations"] == 3
    assert host_day0["max_psi"] == pytest.approx(0.4)
    assert by_key[("*", float(DAY))]["mean_psi"] == pytest.approx(0.5)
    assert rows == sorted(rows, key=lambda r: (r["host"], r["bucket_start"]))


def test_drift_trend_empty_and_validated(tmp_path):
    from repro.obs.rollup import drift_trend

    archive = Archive(tmp_path / "arch")
    archive.ingest_events([], source="serve")
    _, frame = load_frames(archive)
    assert drift_trend(frame) == []
    with pytest.raises(ValueError):
        drift_trend(frame, bucket_s=0.0)
