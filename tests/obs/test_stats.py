"""Stats renderers: span aggregation, wall-time accounting, metrics tables."""

import pytest

from repro.obs import (
    MatrixProgressSink,
    histogram_quantile,
    Registry,
    Tracer,
    aggregate_spans,
    metrics_table,
    span_table,
    toplevel_wall_seconds,
)


def _span(name, dur, parent_id=None):
    return {
        "type": "span", "name": name, "ts": 0.0, "dur": dur,
        "span_id": 1, "parent_id": parent_id, "pid": 1, "tid": 1,
    }


def test_aggregate_spans_groups_by_name_sorted_by_total():
    events = [
        _span("fit", 1.0), _span("fit", 3.0, parent_id=9), _span("eval", 0.5),
        {"type": "event", "name": "cell", "ts": 0.0, "pid": 1, "tid": 1},
    ]
    fit, eval_ = aggregate_spans(events)
    assert (fit.name, fit.count, fit.total_seconds) == ("fit", 2, 4.0)
    assert fit.min_seconds == 1.0 and fit.max_seconds == 3.0
    assert fit.mean_seconds == 2.0
    assert eval_.name == "eval"


def test_toplevel_wall_excludes_nested_spans():
    events = [_span("root", 2.0), _span("child", 1.5, parent_id=1)]
    assert toplevel_wall_seconds(events) == 2.0


def test_span_table_renders_stages_and_footer():
    events = [_span("cli.grid", 2.0), _span("matrix.fit", 1.5, parent_id=1)]
    table = span_table(events)
    assert "cli.grid" in table
    assert "matrix.fit" in table
    assert "traced wall: 2.000s" in table
    assert "1 root spans" in table


def test_span_table_handles_empty_trace():
    assert "no spans" in span_table([])


def test_metrics_table_renders_all_kinds():
    registry = Registry()
    registry.counter("cache_hits_total").inc(12)
    registry.gauge("latency_windows").set(3)
    registry.histogram("fit_seconds", buckets=(0.1, 1.0)).observe(0.05)
    table = metrics_table(registry.snapshot())
    assert "cache_hits_total" in table and "12" in table
    assert "latency_windows" in table
    assert "fit_seconds" in table
    assert "p50 ms" in table


def test_metrics_table_handles_empty_snapshot():
    assert "no metrics" in metrics_table(Registry().snapshot())


class _FakeTiming:
    name = "2HPC-OneR"
    kind = "eval"
    fit_seconds = 0.5
    eval_seconds = 0.25
    cached = False


def test_progress_sink_is_one_code_path_for_stream_and_trace(capsys):
    import sys

    tracer = Tracer()
    sink = MatrixProgressSink(4, tracer=tracer, stream=sys.stderr)
    sink(_FakeTiming())
    err = capsys.readouterr().err
    assert "[  1/4] 2HPC-OneR" in err
    assert "fit 0.50s" in err
    (event,) = tracer.events
    assert event["name"] == "matrix.cell"
    assert event["attrs"]["config"] == "2HPC-OneR"
    assert event["attrs"]["cached"] is False


def test_progress_sink_silent_without_stream_still_traces(capsys):
    tracer = Tracer()
    sink = MatrixProgressSink(1, tracer=tracer, stream=None)
    sink(_FakeTiming())
    assert capsys.readouterr().err == ""
    assert len(tracer.events) == 1


def test_progress_sink_counts_lines(capsys):
    import sys

    registry = Registry()
    sink = MatrixProgressSink(2, metrics=registry, stream=sys.stderr)
    sink(_FakeTiming())
    sink(_FakeTiming())
    capsys.readouterr()
    assert registry.snapshot()["counters"]["progress_lines_total"]["value"] == 2.0


# -- histogram_quantile hardening --------------------------------------


def test_histogram_quantile_empty_histogram_is_nan():
    import math

    from repro.obs import histogram_quantile

    empty = {"count": 0, "buckets": (1.0, 2.0), "counts": [0, 0, 0]}
    assert math.isnan(histogram_quantile(empty, 0.5))
    assert math.isnan(histogram_quantile({}, 0.5))


def test_histogram_quantile_all_overflow_is_inf():
    from repro.obs import histogram_quantile

    data = {"count": 5, "buckets": (1.0, 2.0), "counts": [0, 0, 5]}
    assert histogram_quantile(data, 0.5) == float("inf")
    assert histogram_quantile(data, 0.99) == float("inf")


def test_histogram_quantile_nonsense_q_is_nan():
    import math

    from repro.obs import histogram_quantile

    data = {"count": 4, "buckets": (1.0, 2.0), "counts": [4, 0, 0]}
    assert math.isnan(histogram_quantile(data, -0.1))
    assert math.isnan(histogram_quantile(data, 1.5))
    assert math.isnan(histogram_quantile(data, float("nan")))


def test_histogram_quantile_skips_empty_buckets():
    from repro.obs import histogram_quantile

    # q=0 must land on the first *populated* bucket, not bucket 0.
    data = {"count": 3, "buckets": (1.0, 2.0, 4.0), "counts": [0, 3, 0, 0]}
    assert histogram_quantile(data, 0.0) == 2.0
    assert histogram_quantile(data, 1.0) == 2.0


def test_metrics_table_is_nan_safe_for_empty_histograms():
    registry = Registry()
    registry.histogram("latency_seconds", buckets=(1.0,))  # never observed
    table = metrics_table(registry.snapshot())
    assert "latency_seconds" in table
    assert "nan" not in table.lower()


# -- pathological traces (pinned before `report` depends on them) ------


def test_toplevel_wall_empty_event_list_is_zero():
    assert toplevel_wall_seconds([]) == 0.0


def test_toplevel_wall_events_only_trace_is_zero():
    events = [
        {"type": "event", "name": "verdict", "ts": 1.0, "pid": 1, "tid": 1},
        {"type": "event", "name": "verdict", "ts": 2.0, "pid": 1, "tid": 1},
    ]
    assert toplevel_wall_seconds(events) == 0.0


def test_toplevel_wall_sums_overlapping_root_spans():
    """Concurrent root spans SUM — wall is per-thread accounting, not a
    union of time ranges.  Two 2 s roots overlapping in real time still
    report 4 s; span_table's footer says so ('over N root spans')."""
    events = [_span("worker-a", 2.0), _span("worker-b", 2.0)]
    assert toplevel_wall_seconds(events) == 4.0


def test_span_table_events_only_trace_reports_event_count():
    events = [
        {"type": "event", "name": "verdict", "ts": 1.0, "pid": 1, "tid": 1},
    ] * 3
    table = span_table(events)
    assert "no spans recorded" in table
    assert "3 point events" in table


def test_span_table_overlapping_roots_share_of_wall_uses_sum():
    events = [_span("worker-a", 2.0), _span("worker-b", 2.0)]
    table = span_table(events)
    assert "traced wall: 4.000s" in table
    assert "2 root spans" in table
    # each root is 50% of the summed wall, never >100%
    assert "50.0%" in table


def test_malformed_span_without_dur_is_ignored_everywhere():
    torn = {"type": "span", "name": "torn", "ts": 0.0}
    assert aggregate_spans([torn]) == []
    assert toplevel_wall_seconds([torn, _span("ok", 1.0)]) == 1.0


def test_metrics_table_reports_p99():
    registry = Registry()
    hist = registry.histogram(
        "classify_seconds", "w", buckets=(0.001, 0.01, 0.1, 1.0)
    )
    for _ in range(99):
        hist.observe(0.005)
    hist.observe(0.5)
    text = metrics_table(registry.snapshot())
    header = next(line for line in text.splitlines() if "p99 ms" in line)
    assert "p50 ms" in header and "p95 ms" in header
    row = next(line for line in text.splitlines() if "classify_seconds" in line)
    p99 = histogram_quantile(registry.snapshot()["histograms"]["classify_seconds"], 0.99)
    assert f"{p99 * 1e3:.3f}" in row
