"""Streaming followers: incremental tailing, rotation, metric deltas."""

import json

from repro.obs import MetricsFollower, Registry, TraceFollower


def _append(path, text):
    with open(path, "a") as handle:
        handle.write(text)


# -- TraceFollower -----------------------------------------------------


def test_trace_follower_missing_file_returns_nothing(tmp_path):
    follower = TraceFollower(tmp_path / "never.jsonl")
    assert follower.poll() == []
    assert follower.poll(flush=True) == []


def test_trace_follower_reads_incrementally(tmp_path):
    path = tmp_path / "trace.jsonl"
    follower = TraceFollower(path)
    _append(path, '{"name": "a"}\n{"name": "b"}\n')
    assert [e["name"] for e in follower.poll()] == ["a", "b"]
    assert follower.poll() == []  # nothing new
    _append(path, '{"name": "c"}\n')
    assert [e["name"] for e in follower.poll()] == ["c"]


def test_trace_follower_buffers_partial_tail(tmp_path):
    path = tmp_path / "trace.jsonl"
    follower = TraceFollower(path)
    _append(path, '{"name": "a"}\n{"name": "b"')  # mid-write tail
    assert [e["name"] for e in follower.poll()] == ["a"]
    _append(path, ', "x": 1}\n')  # producer finishes the line
    (event,) = follower.poll()
    assert event == {"name": "b", "x": 1}


def test_trace_follower_flush_parses_unterminated_tail(tmp_path):
    path = tmp_path / "trace.jsonl"
    follower = TraceFollower(path)
    _append(path, '{"name": "a"}\n{"name": "tail"}')  # no final newline
    assert [e["name"] for e in follower.poll(flush=True)] == ["a", "tail"]
    # A flushed tail is consumed, not re-delivered.
    assert follower.poll(flush=True) == []


def test_trace_follower_skips_garbage_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    follower = TraceFollower(path)
    _append(path, '{"name": "a"}\nnot json\n[1, 2]\n\n{"name": "b"}\n')
    assert [e["name"] for e in follower.poll()] == ["a", "b"]


def test_trace_follower_crash_truncated_tail_is_dropped(tmp_path):
    path = tmp_path / "trace.jsonl"
    follower = TraceFollower(path)
    _append(path, '{"name": "a"}\n{"name": "cras')  # producer died here
    assert [e["name"] for e in follower.poll(flush=True)] == ["a"]


def test_trace_follower_handles_rotation(tmp_path):
    path = tmp_path / "trace.jsonl"
    follower = TraceFollower(path)
    _append(path, '{"name": "old1"}\n{"name": "old2"}\n')
    assert len(follower.poll()) == 2
    # Rotate: the old file moves away, a new one appears at the path.
    path.rename(tmp_path / "trace.jsonl.1")
    _append(path, '{"name": "new"}\n')
    assert [e["name"] for e in follower.poll()] == ["new"]


def test_trace_follower_handles_in_place_truncation(tmp_path):
    path = tmp_path / "trace.jsonl"
    follower = TraceFollower(path)
    _append(path, '{"name": "a"}\n{"name": "b"}\n')
    follower.poll()
    path.write_text('{"name": "fresh"}\n')  # same inode, shrunk
    assert [e["name"] for e in follower.poll()] == ["fresh"]


def test_trace_follower_truncate_then_regrow_past_old_offset(tmp_path):
    """An in-place rewrite that ends up *longer* than the old offset has
    the same inode and a size the stale-offset check accepts — only the
    head fingerprint can tell the file was replaced.  Resuming mid-file
    would silently skip the head of the new stream (and usually split a
    line)."""
    path = tmp_path / "trace.jsonl"
    follower = TraceFollower(path)
    _append(path, '{"name": "a"}\n')
    assert [e["name"] for e in follower.poll()] == ["a"]
    path.write_text(
        '{"name": "replacement-one"}\n'
        '{"name": "replacement-two"}\n'  # regrown past the old offset
    )
    assert [e["name"] for e in follower.poll()] == [
        "replacement-one",
        "replacement-two",
    ]


def test_trace_follower_rotation_to_longer_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    follower = TraceFollower(path)
    _append(path, '{"name": "old"}\n')
    follower.poll()
    path.rename(tmp_path / "trace.jsonl.1")
    _append(path, '{"name": "new-1"}\n{"name": "new-2"}\n')
    assert [e["name"] for e in follower.poll()] == ["new-1", "new-2"]


def test_trace_follower_pure_append_is_still_incremental(tmp_path):
    """Appends must not trip the rewrite detector, even while the file
    is shorter than the fingerprint and the stored head keeps growing."""
    path = tmp_path / "trace.jsonl"
    follower = TraceFollower(path)
    _append(path, '{"name": "e0"}\n')  # well under the fingerprint size
    assert [e["name"] for e in follower.poll()] == ["e0"]
    for i in range(1, 12):  # grows through and past 64 bytes
        _append(path, '{"name": "e%d"}\n' % i)
        assert [e["name"] for e in follower.poll()] == [f"e{i}"]


# -- MetricsFollower ---------------------------------------------------


def _dump_registry(path, registry):
    path.write_text(json.dumps(registry.snapshot()))


def test_metrics_follower_missing_then_first_snapshot(tmp_path):
    path = tmp_path / "metrics.json"
    follower = MetricsFollower(path)
    assert follower.poll() is None
    registry = Registry()
    registry.counter("jobs_total").inc(3)
    _dump_registry(path, registry)
    delta = follower.poll()
    assert delta["counters"]["jobs_total"]["value"] == 3
    assert follower.latest == delta  # first poll returns the full snapshot


def test_metrics_follower_reports_deltas_not_cumulative(tmp_path):
    path = tmp_path / "metrics.json"
    follower = MetricsFollower(path)
    registry = Registry()
    counter = registry.counter("jobs_total")
    hist = registry.histogram("latency", buckets=(1.0, 2.0))
    counter.inc(3)
    hist.observe(0.5)
    _dump_registry(path, registry)
    follower.poll()
    counter.inc(2)
    hist.observe(0.5)
    hist.observe(1.5)
    _dump_registry(path, registry)
    delta = follower.poll()
    assert delta["counters"]["jobs_total"]["value"] == 2
    assert delta["histograms"]["latency"]["counts"] == [1, 1, 0]
    # Cumulative state is still available on .latest.
    assert follower.latest["counters"]["jobs_total"]["value"] == 5


def test_metrics_follower_unchanged_file_is_none(tmp_path):
    path = tmp_path / "metrics.json"
    registry = Registry()
    registry.counter("jobs_total").inc()
    _dump_registry(path, registry)
    follower = MetricsFollower(path)
    assert follower.poll() is not None
    assert follower.poll() is None


def test_metrics_follower_skips_half_written_snapshot(tmp_path):
    path = tmp_path / "metrics.json"
    registry = Registry()
    registry.counter("jobs_total").inc()
    _dump_registry(path, registry)
    follower = MetricsFollower(path)
    follower.poll()
    good = follower.latest
    path.write_text('{"counters": {"jobs_tot')  # producer mid-dump
    assert follower.poll() is None
    assert follower.latest == good  # last good snapshot survives
    registry.counter("jobs_total").inc()
    _dump_registry(path, registry)
    assert follower.poll()["counters"]["jobs_total"]["value"] == 1


def test_metrics_follower_rejects_non_object_json(tmp_path):
    path = tmp_path / "metrics.json"
    path.write_text("[1, 2, 3]")
    follower = MetricsFollower(path)
    assert follower.poll() is None
    assert follower.latest is None


def test_metrics_follower_producer_restart_counts_fresh_work(tmp_path):
    """A restarted producer re-accumulates from zero; its first snapshot
    after the restart is all new work and must not be dropped."""
    path = tmp_path / "metrics.json"
    follower = MetricsFollower(path)
    registry = Registry()
    registry.counter("jobs_total").inc(5)
    registry.histogram("latency", buckets=(1.0,)).observe_many(0.5, 5)
    _dump_registry(path, registry)
    follower.poll()
    restarted = Registry()  # the producer crashed and came back
    restarted.counter("jobs_total").inc(2)
    restarted.histogram("latency", buckets=(1.0,)).observe_many(0.5, 2)
    _dump_registry(path, restarted)
    delta = follower.poll()
    assert delta["counters"]["jobs_total"]["value"] == 2
    assert delta["histograms"]["latency"]["counts"] == [2, 0]
