"""Regressions for the report/metrics dump sites.

Two historical bugs, pinned here so they stay dead:

* **Torn writes** — ``Registry.dump``, ``HealthEvaluator.dump`` and
  ``QualityTracker.dump`` used a bare ``Path.write_text``: a crash
  mid-dump left a truncated, unparseable file where the previous good
  snapshot used to be.  All three must route through the shared atomic
  writer (``repro.ioutil``): on any failure the previous complete file
  survives byte-for-byte.

* **Numpy stringification** — the health/quality reports are assembled
  from numpy arithmetic, and ``json.dumps(..., default=str)`` silently
  turned any leaked ``np.float64``/``np.int64`` into a *string*,
  corrupting the types downstream parsers see.  Dumped numbers must
  round-trip as ``int``/``float``, never ``str``.
"""

from __future__ import annotations

import json
import re

import numpy as np
import pytest

import repro.ioutil
from repro.ioutil import atomic_write_text
from repro.obs import HealthEvaluator, QualityTracker, Registry, parse_alert_spec

from .test_quality import make_profile

OLD = json.dumps({"snapshot": "previous", "value": 1})


class Boom(RuntimeError):
    pass


def _fill_health():
    evaluator = HealthEvaluator(
        rules=[parse_alert_spec("degraded_ratio>=0.5:critical")],
        clock=lambda: 0.0,
    )
    # numpy scalars straight from verdict arithmetic — the exact leak
    # default=str used to stringify
    for t in range(6):
        evaluator.observe_verdict(
            f"app{t}",
            is_malware=np.bool_(t % 2 == 0),
            degraded=np.bool_(t % 3 == 0),
            n_windows=np.int64(8),
            n_windows_lost=np.int64(1),
            retries=np.int64(t % 2),
            ts=np.float64(t),
        )
        evaluator.observe_classify(np.float64(0.001), n=np.int64(8), ts=np.float64(t))
    return evaluator


def _fill_quality():
    tracker = QualityTracker(
        make_profile(),
        window_s=1000.0,
        min_windows=4,
        min_executions=1,
        eval_interval_s=0.0,
        clock=lambda: 0.0,
    )
    rng = np.random.default_rng(11)
    for i in range(6):
        tracker.observe_execution(
            f"host{i % 2}",
            rng.uniform(0.0, 1.0, size=(10, 2)),
            rng.uniform(0.0, 1.0, 10),
            margin=np.float64(0.25),
            truth=np.bool_(i % 2 == 0),
            ts=np.float64(float(i)),
        )
    return tracker


def _fill_metrics():
    registry = Registry()
    registry.counter("requests_total", "requests").inc(np.int64(3))
    registry.histogram("latency_s", "latency").observe(np.float64(0.5))
    return registry


DUMPERS = [
    pytest.param(_fill_metrics, id="metrics"),
    pytest.param(_fill_health, id="health"),
    pytest.param(_fill_quality, id="quality"),
]


# -- torn writes -------------------------------------------------------


def test_atomic_writer_failure_keeps_previous_file(tmp_path, monkeypatch):
    target = tmp_path / "out.json"
    atomic_write_text(target, OLD)

    def torn_replace(src, dst):
        raise Boom("crash between temp write and rename")

    monkeypatch.setattr(repro.ioutil.os, "replace", torn_replace)
    with pytest.raises(Boom):
        atomic_write_text(target, json.dumps({"snapshot": "new"}))
    assert json.loads(target.read_text()) == json.loads(OLD)
    # the failed attempt's temp file was cleaned up
    assert list(tmp_path.iterdir()) == [target]


@pytest.mark.parametrize("fill", DUMPERS)
def test_dump_crash_leaves_previous_snapshot_intact(fill, tmp_path, monkeypatch):
    """Simulated crash mid-dump: the old snapshot must stay readable.

    A dump site regressing to a bare ``write_text`` fails this two
    ways: the patched rename never fires (no exception), and the old
    payload is clobbered by the partial/new one.
    """
    target = tmp_path / "report.json"
    target.write_text(OLD)
    monkeypatch.setattr(
        repro.ioutil.os,
        "replace",
        lambda src, dst: (_ for _ in ()).throw(Boom("torn write")),
    )
    with pytest.raises(Boom):
        fill().dump(target)
    assert json.loads(target.read_text()) == json.loads(OLD)


@pytest.mark.parametrize("fill", DUMPERS)
def test_dump_writes_complete_parseable_json(fill, tmp_path):
    target = tmp_path / "report.json"
    fill().dump(target)
    payload = json.loads(target.read_text())
    assert isinstance(payload, dict) and payload


# -- numpy stringification ---------------------------------------------

_NUMERIC_STR = re.compile(r"-?\d+(\.\d+)?([eE][+-]?\d+)?")


def _assert_no_stringified_numbers(node, path="$"):
    if isinstance(node, dict):
        for key, value in node.items():
            _assert_no_stringified_numbers(value, f"{path}.{key}")
    elif isinstance(node, list):
        for i, value in enumerate(node):
            _assert_no_stringified_numbers(value, f"{path}[{i}]")
    elif isinstance(node, str):
        assert not _NUMERIC_STR.fullmatch(node), (
            f"{path} is the *string* {node!r} — a numpy scalar was "
            "stringified instead of coerced to a native number"
        )
        assert "np." not in node, f"{path} leaked a numpy repr: {node!r}"


@pytest.mark.parametrize("fill", DUMPERS)
def test_dumped_numbers_round_trip_as_numbers(fill, tmp_path):
    target = tmp_path / "report.json"
    fill().dump(target)
    _assert_no_stringified_numbers(json.loads(target.read_text()))


def test_health_report_values_are_native(tmp_path):
    evaluator = _fill_health()
    target = tmp_path / "health.json"
    evaluator.dump(target)
    payload = json.loads(target.read_text())
    signals = payload["signals"]
    assert signals, "expected live signals in the health report"
    for name, value in signals.items():
        assert value is None or isinstance(value, (int, float)), (
            f"signal {name} round-tripped as {type(value).__name__}"
        )


def test_quality_report_values_are_native(tmp_path):
    tracker = _fill_quality()
    target = tmp_path / "quality.json"
    tracker.dump(target)
    payload = json.loads(target.read_text())

    def leaves(node):
        if isinstance(node, dict):
            for v in node.values():
                yield from leaves(v)
        elif isinstance(node, list):
            for v in node:
                yield from leaves(v)
        else:
            yield node
    kinds = {type(leaf) for leaf in leaves(payload)}
    assert float in kinds or int in kinds
    # a numpy scalar in the payload would have crashed json.dumps
    # (no default= hook anymore) — but double-check nothing was
    # pre-stringified either
    _assert_no_stringified_numbers(payload)
