"""Health subsystem: window signals, alert state machine, SLO budgets."""

import io
import json
import math

import pytest

from repro.obs import (
    AlertRule,
    AlertState,
    HealthConfigError,
    HealthEvaluator,
    Registry,
    SlidingWindowSignals,
    Tracer,
    health_table,
    load_alert_rules,
    parse_alert_spec,
    parse_slo,
)


def _verdict_event(ts, degraded=False, is_malware=False, n_windows=10,
                   n_windows_lost=0, attempts=1, name="fleet.verdict"):
    return {
        "type": "event", "name": name, "ts": ts, "pid": 1, "tid": 1,
        "attrs": {
            "app": "app", "is_malware": is_malware, "degraded": degraded,
            "n_windows": n_windows, "n_windows_lost": n_windows_lost,
            "attempts": attempts,
        },
    }


# -- sliding-window signals --------------------------------------------


def test_window_signals_exact_over_entries():
    window = SlidingWindowSignals(window_s=10.0)
    window.observe_verdict(1.0, is_malware=True, degraded=True,
                           n_windows=8, n_windows_lost=2, retries=1)
    window.observe_verdict(2.0, is_malware=False, degraded=False, n_windows=10)
    values = window.values(3.0)
    assert values["verdicts"] == 2.0
    assert values["detection_rate"] == 0.5
    assert values["degraded_ratio"] == 0.5
    assert values["retry_rate"] == 0.5
    assert values["windows_lost_fraction"] == 2 / 20


def test_window_eviction_subtracts_exactly():
    window = SlidingWindowSignals(window_s=5.0)
    window.observe_verdict(0.0, is_malware=True, degraded=True,
                           n_windows=5, n_windows_lost=5, retries=2)
    window.observe_verdict(4.0, is_malware=False, degraded=False, n_windows=10)
    # At t=6 the t=0 entry has aged out (cutoff is now - window = 1.0).
    values = window.values(6.0)
    assert values["verdicts"] == 1.0
    assert values["degraded_ratio"] == 0.0
    assert values["retry_rate"] == 0.0
    assert values["windows_lost_fraction"] == 0.0


def test_window_empty_signals_are_nan():
    values = SlidingWindowSignals(window_s=5.0).values(100.0)
    for name in ("detection_rate", "degraded_ratio", "retry_rate",
                 "windows_lost_fraction", "p50_classify_s", "p95_classify_s"):
        assert math.isnan(values[name]), name
    assert values["verdicts"] == 0.0


def test_window_classify_quantiles_match_histogram_semantics():
    """A windowed quantile equals the quantile of a histogram holding
    only the window's observations (same buckets, same upper bounds)."""
    from repro.obs import Histogram
    from repro.obs.stats import histogram_quantile

    window = SlidingWindowSignals(window_s=100.0)
    hist = Histogram("h", buckets=window.buckets)
    for i, value in enumerate((2e-6, 4e-6, 8e-6, 2e-5, 9e-4)):
        window.observe_classify(float(i), value)
        hist.observe(value)
    snap = {"count": hist.count, "buckets": hist.buckets, "counts": hist.counts}
    values = window.values(50.0)
    assert values["p50_classify_s"] == histogram_quantile(snap, 0.50)
    assert values["p95_classify_s"] == histogram_quantile(snap, 0.95)


def test_window_classify_eviction():
    window = SlidingWindowSignals(window_s=5.0)
    window.observe_classify(0.0, 1.0, n=100)  # slow batch, ages out
    window.observe_classify(8.0, 1e-6, n=4)
    values = window.values(10.0)
    assert values["p95_classify_s"] == 1e-6
    assert window.classify_good_fraction(1e-5, 10.0) == 1.0


def test_window_rejects_bad_length():
    with pytest.raises(ValueError):
        SlidingWindowSignals(window_s=0.0)


# -- alert rules -------------------------------------------------------


def test_rule_validation_errors():
    with pytest.raises(HealthConfigError):
        AlertRule("r", "degraded_ratio", "~", 0.5)
    with pytest.raises(HealthConfigError):
        AlertRule("r", "not_a_signal", ">=", 0.5)
    with pytest.raises(HealthConfigError):
        AlertRule("r", "degraded_ratio", ">=", 0.5, severity="fatal")
    with pytest.raises(HealthConfigError):
        AlertRule("r", "degraded_ratio", ">=", 0.5, for_s=-1.0)
    with pytest.raises(HealthConfigError):
        # clear threshold on the wrong side of an upward rule
        AlertRule("r", "degraded_ratio", ">=", 0.5, clear_threshold=0.6)
    # and the right side is accepted, both directions
    AlertRule("r", "degraded_ratio", ">=", 0.5, clear_threshold=0.4)
    AlertRule("r", "verdicts", "<", 1.0, clear_threshold=2.0)


def test_alert_fires_immediately_without_for_duration():
    state = AlertState(AlertRule("r", "degraded_ratio", ">=", 0.2))
    assert state.update(0.1, 1.0) is None
    transition = state.update(0.3, 2.0)
    assert transition["state"] == "firing" and transition["ts"] == 2.0
    assert state.state == "firing" and state.fired_count == 1


def test_alert_for_duration_requires_sustained_breach():
    state = AlertState(AlertRule("r", "degraded_ratio", ">=", 0.2, for_s=5.0))
    assert state.update(0.5, 0.0) is None
    assert state.state == "pending"
    assert state.update(0.5, 4.0) is None  # only 4s sustained
    # A dip below threshold resets the pending timer entirely.
    assert state.update(0.1, 4.5) is None
    assert state.state == "ok"
    assert state.update(0.5, 5.0) is None
    transition = state.update(0.5, 10.0)
    assert transition["state"] == "firing"
    assert transition["breached_since"] == 5.0


def test_alert_hysteresis_clears_only_below_clear_threshold():
    rule = AlertRule("r", "degraded_ratio", ">=", 0.2, clear_threshold=0.1)
    state = AlertState(rule)
    state.update(0.3, 1.0)
    assert state.state == "firing"
    # Back under the firing threshold but inside the hysteresis band.
    assert state.update(0.15, 2.0) is None
    assert state.state == "firing"
    transition = state.update(0.05, 3.0)
    assert transition["state"] == "cleared" and transition["ts"] == 3.0
    assert state.state == "ok"


def test_alert_nan_keeps_state():
    nan = float("nan")
    state = AlertState(AlertRule("r", "degraded_ratio", ">=", 0.2))
    assert state.update(nan, 1.0) is None and state.state == "ok"
    state.update(0.5, 2.0)
    assert state.update(nan, 3.0) is None and state.state == "firing"


def test_parse_alert_spec_full_form():
    rule = parse_alert_spec("degraded_ratio>=0.2:critical:5:0.1")
    assert rule.signal == "degraded_ratio"
    assert rule.op == ">=" and rule.threshold == 0.2
    assert rule.severity == "critical"
    assert rule.for_s == 5.0 and rule.clear_threshold == 0.1


@pytest.mark.parametrize("bad", [
    "", "degraded_ratio", "degraded_ratio=0.2", "nope>=x",
    "degraded_ratio>=0.2:critical:5:0.1:extra", "degraded_ratio>=0.2:loud",
])
def test_parse_alert_spec_rejects_garbage(bad):
    with pytest.raises(HealthConfigError):
        parse_alert_spec(bad)


def test_load_alert_rules_both_shapes(tmp_path):
    rule = {"signal": "degraded_ratio", "op": ">=", "threshold": 0.2,
            "severity": "critical"}
    bare = tmp_path / "bare.json"
    bare.write_text(json.dumps([rule]))
    wrapped = tmp_path / "wrapped.json"
    wrapped.write_text(json.dumps({"rules": [rule]}))
    for path in (bare, wrapped):
        (loaded,) = load_alert_rules(path)
        assert loaded.signal == "degraded_ratio"
        assert loaded.severity == "critical"
        assert loaded.name == "degraded_ratio>="  # auto-named


def test_load_alert_rules_rejects_bad_files(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(HealthConfigError):
        load_alert_rules(bad)
    bad.write_text('{"rules": 5}')
    with pytest.raises(HealthConfigError):
        load_alert_rules(bad)
    bad.write_text('[{"op": ">="}]')
    with pytest.raises(HealthConfigError):
        load_alert_rules(bad)


# -- SLOs --------------------------------------------------------------


def test_parse_slo_forms_and_equivalence():
    assert parse_slo("nondegraded>=0.95").objective == 0.95
    assert parse_slo("degraded_ratio<=0.05").kind == "nondegraded"
    assert parse_slo("degraded_ratio<=0.05").objective == pytest.approx(0.95)
    assert parse_slo("windows_kept>=0.9").kind == "windows_kept"
    assert parse_slo("windows_lost_fraction<=0.1").kind == "windows_kept"
    slo = parse_slo("p95_classify_s<=0.01")
    assert slo.kind == "classify_latency"
    assert slo.objective == 0.95 and slo.bound_s == 0.01


@pytest.mark.parametrize("bad", ["", "p95_classify_s", "latency<=0.01",
                                 "nondegraded>=1.5", "p95_classify_s<=0"])
def test_parse_slo_rejects_garbage(bad):
    with pytest.raises(HealthConfigError):
        parse_slo(bad)


def test_slo_burn_rate_and_budget():
    window = SlidingWindowSignals(window_s=100.0)
    for i in range(20):
        window.observe_verdict(float(i), is_malware=False,
                               degraded=(i < 2), n_windows=10)
    status = parse_slo("nondegraded>=0.95").status(window, 50.0)
    # 2/20 degraded: bad fraction 0.10 against a 0.05 budget.
    assert status["good_fraction"] == 0.9
    assert status["burn_rate"] == pytest.approx(2.0)
    assert status["budget_remaining"] == pytest.approx(-1.0)
    assert status["ok"] is False


def test_slo_with_no_evidence_is_undetermined():
    window = SlidingWindowSignals(window_s=100.0)
    status = parse_slo("p95_classify_s<=0.01").status(window, 50.0)
    assert math.isnan(status["good_fraction"])
    assert status["ok"] is None


def test_latency_slo_agrees_with_quantile_signal():
    window = SlidingWindowSignals(window_s=100.0)
    for i in range(100):
        window.observe_classify(float(i), 1e-6 if i < 95 else 0.05)
    status = parse_slo("p95_classify_s<=0.01").status(window, 99.0)
    assert status["good_fraction"] == 0.95
    assert status["ok"] is True
    assert window.values(99.0)["p95_classify_s"] <= 0.01


# -- the evaluator -----------------------------------------------------


def test_evaluator_replay_is_deterministic():
    events = [
        _verdict_event(float(t), degraded=(t % 2 == 0)) for t in range(10)
    ]

    def run():
        evaluator = HealthEvaluator(
            rules=[parse_alert_spec("degraded_ratio>=0.4:critical")],
            clock=lambda: pytest.fail("replay must never consult the clock"),
        )
        for event in events:
            assert evaluator.ingest(event)
        # JSON text so NaN signals compare equal (NaN != NaN as floats).
        return json.dumps(evaluator.report(), sort_keys=True)

    assert run() == run()


def test_evaluator_transitions_use_event_timestamps():
    evaluator = HealthEvaluator(
        rules=[parse_alert_spec("degraded_ratio>=0.5:critical:0:0.2")]
    )
    evaluator.ingest(_verdict_event(10.0, degraded=True))
    (state,) = evaluator.states
    assert state.transitions[0]["state"] == "firing"
    assert state.transitions[0]["ts"] == 10.0
    for t in range(11, 20):
        evaluator.ingest(_verdict_event(float(t), degraded=False))
    assert state.transitions[1]["state"] == "cleared"
    assert evaluator.critical_fired()  # sticky even after clearing


def test_evaluator_emits_trace_events_metrics_and_stderr():
    tracer = Tracer()
    registry = Registry()
    stream = io.StringIO()
    evaluator = HealthEvaluator(
        rules=[parse_alert_spec("degraded_ratio>=0.5:warning")],
        tracer=tracer, metrics=registry, stream=stream,
    )
    evaluator.observe_verdict("a", is_malware=False, degraded=True,
                              n_windows=10, ts=1.0)
    names = [e["name"] for e in tracer.events]
    assert "health.alert" in names
    snap = registry.snapshot()
    assert snap["counters"]["health_alerts_fired_total"]["value"] == 1
    assert snap["counters"]["health_verdicts_observed_total"]["value"] == 1
    assert "FIRING" in stream.getvalue()
    assert not evaluator.critical_fired()  # warning, not critical


def test_evaluator_ignores_unrelated_events():
    evaluator = HealthEvaluator()
    assert not evaluator.ingest({"type": "span", "name": "fleet.app", "ts": 1.0})
    assert not evaluator.ingest({"type": "event", "name": "matrix.cell", "ts": 1.0})
    assert evaluator.ingest(_verdict_event(1.0, name="monitor.verdict"))
    assert evaluator.window.total_verdicts == 1


def test_evaluator_absorb_metrics_feeds_classify_window():
    registry = Registry()
    hist = registry.histogram("monitor_window_classify_seconds",
                              buckets=(1e-6, 1e-3))
    hist.observe_many(5e-7, 10)
    evaluator = HealthEvaluator(slos=[parse_slo("p95_classify_s<=0.001")])
    evaluator.absorb_metrics(registry.snapshot(), ts=1.0)
    (status,) = evaluator.slo_statuses(1.0)
    assert status["good_fraction"] == 1.0
    # Non-classify histograms are ignored.
    other = Registry()
    other.histogram("fleet_backoff_sleep_seconds", buckets=(1.0,)).observe(90.0)
    evaluator.absorb_metrics(other.snapshot(), ts=1.0)
    assert evaluator.slo_statuses(1.0)[0]["good_fraction"] == 1.0


def test_evaluator_report_round_trips_to_json():
    evaluator = HealthEvaluator(
        rules=[parse_alert_spec("verdicts<1:info")],
        slos=[parse_slo("nondegraded>=0.9")],
    )
    evaluator.observe_verdict("a", is_malware=True, n_windows=5, ts=2.0)
    report = evaluator.report()
    assert report["schema"] == 1
    assert report["signals"]["verdicts"] == 1.0
    assert json.loads(json.dumps(report, default=str))["critical_fired"] is False


def test_evaluator_dump_writes_report(tmp_path):
    path = tmp_path / "health.json"
    evaluator = HealthEvaluator()
    evaluator.observe_verdict("a", is_malware=False, n_windows=3, ts=1.0)
    evaluator.dump(path)
    assert json.loads(path.read_text())["totals"]["verdicts"] == 1


def test_health_table_renders_all_sections():
    evaluator = HealthEvaluator(
        rules=[parse_alert_spec("degraded_ratio>=0.5:critical")],
        slos=[parse_slo("nondegraded>=0.95")],
    )
    evaluator.observe_verdict("a", is_malware=True, degraded=True,
                              n_windows=8, n_windows_lost=2, ts=1.0)
    table = health_table(evaluator.report())
    assert "signals:" in table and "alerts:" in table and "SLOs:" in table
    assert "degraded_ratio>=0.5" in table
    assert "firing" in table
    assert "nondegraded>=0.95" in table


def test_out_of_order_events_never_rewind_the_window():
    evaluator = HealthEvaluator(window_s=5.0)
    evaluator.observe_verdict("a", is_malware=False, n_windows=1, ts=100.0)
    # A straggler from a worker thread, stamped earlier: it must not
    # slide the window backwards, and its evidence is clamped forward
    # (counted as of arrival) rather than lost behind a newer entry.
    evaluator.observe_verdict("b", is_malware=False, n_windows=1, ts=10.0)
    assert evaluator.last_values["verdicts"] == 2.0
    assert evaluator.tick(200.0)["verdicts"] == 0.0  # both evict cleanly


# -- SlidingWindowSignals straggler clamping ---------------------------


def _fill_out_of_order(signals):
    """A worker-thread arrival order: interleaved stragglers throughout."""
    entries = [
        (100.0, True, False, 10, 0, 0),
        (40.0, False, True, 8, 2, 1),   # straggler, clamped to 100
        (105.0, True, False, 10, 0, 0),
        (60.0, False, False, 6, 0, 2),  # straggler, clamped to 105
        (101.0, True, True, 4, 4, 0),   # behind the tail, clamped to 105
        (110.0, False, False, 10, 0, 0),
    ]
    for ts, alarm, degraded, kept, lost, retries in entries:
        signals.observe_verdict(
            ts, is_malware=alarm, degraded=degraded, n_windows=kept,
            n_windows_lost=lost, retries=retries,
        )
        signals.observe_classify(ts, 1e-5, n=kept)
    return entries


def test_monotone_clamps_stragglers_to_the_deque_tail():
    signals = SlidingWindowSignals(window_s=50.0)
    _fill_out_of_order(signals)
    stamps = [entry[0] for entry in signals._verdicts]
    assert stamps == sorted(stamps), "clamping must keep the deque sorted"
    assert stamps == [100.0, 100.0, 105.0, 105.0, 105.0, 110.0]


def test_out_of_order_timestamps_never_break_eviction():
    """Eviction pops from the left while expired; an unclamped straggler
    behind a newer entry would be unreachable and survive forever."""
    signals = SlidingWindowSignals(window_s=50.0)
    _fill_out_of_order(signals)
    # Every entry is inside the window ending at 120.
    assert signals.values(120.0)["verdicts"] == 6.0
    # At 159 the entries clamped to <= 105 have expired (cutoff is
    # inclusive: ts <= now - 50); at 160 the 110 entry goes too —
    # nothing lingers.
    assert signals.values(159.0)["verdicts"] == 1.0
    values = signals.values(160.0)
    assert values["verdicts"] == 0.0
    assert not signals._verdicts and not signals._classify
    assert signals._classify_n == 0 and signals._n_kept == 0


def test_windowed_aggregates_match_a_from_scratch_recount():
    """Incremental eviction totals must equal a fresh accumulation over
    the clamped entries that survive the same window."""
    incremental = SlidingWindowSignals(window_s=50.0)
    _fill_out_of_order(incremental)
    for now in (120.0, 152.0, 158.0, 161.0):
        expected = SlidingWindowSignals(window_s=50.0)
        for entry in incremental._verdicts:  # already clamped, sorted
            ts, alarm, degraded, kept, lost, retries = entry
            expected.observe_verdict(
                ts, is_malware=alarm, degraded=degraded, n_windows=kept,
                n_windows_lost=lost, retries=retries,
            )
        for ts, index, n, total in incremental._classify:
            expected.observe_classify(ts, total / n, n=n)
        left = incremental.values(now)
        right = expected.values(now)
        for key in left:
            assert left[key] == right[key] or (
                math.isnan(left[key]) and math.isnan(right[key])
            ), f"{key} diverged at now={now}"
