"""Span tracer: nesting, disabled no-op, threads, JSONL round-trip."""

import json
import threading

import pytest

from repro.obs import NULL_SPAN, NULL_TRACER, Tracer, load_trace


def test_span_records_duration_and_name():
    tracer = Tracer()
    with tracer.span("work", size=3):
        pass
    (event,) = tracer.events
    assert event["type"] == "span"
    assert event["name"] == "work"
    assert event["dur"] >= 0.0
    assert event["parent_id"] is None
    assert event["attrs"] == {"size": 3}


def test_span_nesting_records_parentage():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            pass
    inner_event, outer_event = tracer.events
    assert inner_event["name"] == "inner"
    assert inner_event["parent_id"] == outer.span_id
    assert outer_event["parent_id"] is None
    assert inner.span_id != outer.span_id


def test_sibling_spans_share_parent():
    tracer = Tracer()
    with tracer.span("root") as root:
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    a, b, _ = tracer.events
    assert a["parent_id"] == root.span_id
    assert b["parent_id"] == root.span_id


def test_span_set_attaches_attrs_mid_flight():
    tracer = Tracer()
    with tracer.span("work") as span:
        span.set(rows=10)
    (event,) = tracer.events
    assert event["attrs"] == {"rows": 10}


def test_span_records_exception_and_propagates():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("explodes"):
            raise ValueError("boom")
    (event,) = tracer.events
    assert event["error"] == "ValueError"


def test_point_event():
    tracer = Tracer()
    tracer.event("verdict", app="x", flagged=True)
    (event,) = tracer.events
    assert event["type"] == "event"
    assert event["attrs"] == {"app": "x", "flagged": True}
    assert "dur" not in event


def test_disabled_tracer_is_a_shared_noop():
    tracer = Tracer(enabled=False)
    span = tracer.span("anything", big=1)
    assert span is NULL_SPAN
    with span:
        pass
    tracer.event("anything")
    assert tracer.events == []
    assert NULL_TRACER.enabled is False


def test_threads_trace_independently():
    tracer = Tracer()

    def worker(name):
        with tracer.span(name):
            with tracer.span(f"{name}.child"):
                pass

    threads = [threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    events = tracer.events
    assert len(events) == 8
    roots = {e["name"]: e for e in events if e["parent_id"] is None}
    assert set(roots) == {"t0", "t1", "t2", "t3"}
    for e in events:
        if e["parent_id"] is not None:
            parent_name = e["name"].split(".")[0]
            assert e["parent_id"] == roots[parent_name]["span_id"]


def test_drain_and_absorb_merge_worker_buffers():
    parent, worker = Tracer(), Tracer()
    with worker.span("worker.work"):
        pass
    events = worker.drain()
    assert worker.events == []
    parent.absorb(events)
    assert [e["name"] for e in parent.events] == ["worker.work"]


def test_dump_and_load_roundtrip(tmp_path):
    tracer = Tracer()
    with tracer.span("a", k="v"):
        pass
    tracer.event("b")
    path = tmp_path / "trace.jsonl"
    assert tracer.dump(path) == 2
    assert load_trace(path) == tracer.events


def test_load_trace_skips_crash_truncated_tail(tmp_path):
    tracer = Tracer()
    with tracer.span("kept"):
        pass
    path = tmp_path / "trace.jsonl"
    tracer.dump(path)
    with open(path, "a") as handle:
        handle.write('{"type": "span", "name": "torn')  # crash mid-write
    events = load_trace(path)
    assert [e["name"] for e in events] == ["kept"]


def test_dumped_lines_are_independent_json(tmp_path):
    tracer = Tracer()
    for i in range(3):
        tracer.event("e", i=i)
    path = tmp_path / "trace.jsonl"
    tracer.dump(path)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 3
    for line in lines:
        json.loads(line)


def test_dump_overwrites_by_default(tmp_path):
    path = tmp_path / "trace.jsonl"
    first = Tracer()
    first.event("old")
    first.dump(path)
    second = Tracer()
    second.event("new")
    assert second.dump(path) == 1
    (event,) = load_trace(path)
    assert event["name"] == "new"


def test_dump_append_accumulates_earlier_events(tmp_path):
    """The periodic-dump pattern: drain + append never loses history."""
    path = tmp_path / "trace.jsonl"
    tracer = Tracer()
    tracer.event("first")
    tracer.absorb(tracer.drain())  # no-op shuffle; events stay ordered
    tracer.dump(path, append=True)
    tracer.drain()
    tracer.event("second")
    assert tracer.dump(path, append=True) == 1  # returns THIS buffer's count
    names = [event["name"] for event in load_trace(path)]
    assert names == ["first", "second"]


def test_dump_append_to_missing_file_creates_it(tmp_path):
    path = tmp_path / "deep" / "trace.jsonl"
    tracer = Tracer()
    tracer.event("only")
    assert tracer.dump(path, append=True) == 1
    assert [e["name"] for e in load_trace(path)] == ["only"]


def test_event_accepts_explicit_shared_timestamp():
    """Callers fanning one observation out to several sinks pass one
    time.time() so every copy carries the identical timestamp."""
    tracer = Tracer()
    tracer.event("verdict", ts=123.25, host="h")
    (event,) = tracer.events
    assert event["ts"] == 123.25
    assert event["attrs"] == {"host": "h"}
    tracer.drain()
    tracer.event("verdict")  # default remains wall-clock
    (event,) = tracer.events
    assert event["ts"] > 1_000_000_000.0
