"""Metrics registry: instruments, exporters, merge, disabled no-op."""

import json

import pytest

from repro.obs import (
    FAST_LATENCY_BUCKETS,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    MetricsError,
    Registry,
)


def test_counter_accumulates_and_rejects_decrease():
    registry = Registry()
    counter = registry.counter("ops_total")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_takes_last_value():
    gauge = Registry().gauge("depth")
    gauge.set(4)
    gauge.set(-2)
    assert gauge.value == -2.0


def test_histogram_bucket_placement_is_le_semantics():
    hist = Registry().histogram("lat", buckets=(0.01, 0.1, 1.0))
    hist.observe(0.01)   # equal to a bound -> that bucket (le)
    hist.observe(0.05)
    hist.observe(5.0)    # above all bounds -> +Inf bucket
    assert hist.counts == [1, 1, 0, 1]
    assert hist.count == 3
    assert hist.sum == pytest.approx(5.06)
    assert hist.mean == pytest.approx(5.06 / 3)


def test_histogram_requires_ascending_buckets():
    registry = Registry()
    with pytest.raises(MetricsError, match="ascending"):
        registry.histogram("bad", buckets=(1.0, 0.5))
    with pytest.raises(MetricsError, match="ascending"):
        registry.histogram("empty", buckets=())


def test_get_or_create_returns_same_instrument():
    registry = Registry()
    assert registry.counter("c") is registry.counter("c")
    assert registry.histogram("h") is registry.histogram("h")


def test_kind_collision_raises():
    registry = Registry()
    registry.counter("name")
    with pytest.raises(MetricsError, match="already registered as counter"):
        registry.gauge("name")


def test_histogram_bucket_redefinition_raises():
    registry = Registry()
    registry.histogram("h", buckets=(1.0, 2.0))
    with pytest.raises(MetricsError, match="different buckets"):
        registry.histogram("h", buckets=FAST_LATENCY_BUCKETS)


def test_invalid_metric_name_raises():
    with pytest.raises(MetricsError, match="invalid metric name"):
        Registry().counter("no spaces allowed")


def test_disabled_registry_hands_out_shared_null_instrument():
    registry = Registry(enabled=False)
    counter = registry.counter("anything")
    assert counter is NULL_INSTRUMENT
    counter.inc()
    registry.histogram("h").observe(1.0)
    registry.gauge("g").set(2.0)
    assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
    assert registry.to_prometheus() == ""
    assert NULL_REGISTRY.enabled is False


def test_snapshot_shape():
    registry = Registry()
    registry.counter("c", "help c").inc(2)
    registry.gauge("g").set(7)
    registry.histogram("h", buckets=(1.0,)).observe(0.5)
    snap = registry.snapshot()
    assert snap["counters"]["c"] == {"help": "help c", "value": 2.0}
    assert snap["gauges"]["g"]["value"] == 7.0
    assert snap["histograms"]["h"] == {
        "help": "", "buckets": [1.0], "counts": [1, 0], "sum": 0.5, "count": 1,
    }
    json.dumps(snap)  # snapshot must be JSON-ready


def test_merge_adds_counters_and_histograms_keeps_last_gauge():
    a, b = Registry(), Registry()
    for registry, n in ((a, 1), (b, 2)):
        registry.counter("c").inc(n)
        registry.gauge("g").set(n)
        registry.histogram("h", buckets=(1.0,)).observe(n / 10)
    a.merge(b.snapshot())
    snap = a.snapshot()
    assert snap["counters"]["c"]["value"] == 3.0
    assert snap["gauges"]["g"]["value"] == 2.0
    assert snap["histograms"]["h"]["count"] == 2
    assert snap["histograms"]["h"]["sum"] == pytest.approx(0.3)


def test_merge_into_empty_registry_creates_instruments():
    src = Registry()
    src.counter("c").inc(5)
    dst = Registry()
    dst.merge(src.snapshot())
    assert dst.snapshot()["counters"]["c"]["value"] == 5.0


def test_merge_mismatched_histogram_buckets_raises():
    a, b = Registry(), Registry()
    a.histogram("h", buckets=(1.0,))
    b.histogram("h", buckets=(1.0, 2.0))
    with pytest.raises(MetricsError, match="different buckets"):
        a.merge(b.snapshot())


def test_drain_snapshots_then_resets():
    registry = Registry()
    registry.counter("c").inc(4)
    registry.histogram("h", buckets=(1.0,)).observe(0.5)
    snap = registry.drain()
    assert snap["counters"]["c"]["value"] == 4.0
    after = registry.snapshot()
    assert after["counters"]["c"]["value"] == 0.0
    assert after["histograms"]["h"]["count"] == 0
    assert after["histograms"]["h"]["counts"] == [0, 0]


def test_prometheus_text_format():
    registry = Registry()
    registry.counter("ops_total", "operations").inc(3)
    registry.gauge("depth").set(1.5)
    registry.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.05)
    text = registry.to_prometheus()
    assert "# HELP ops_total operations" in text
    assert "# TYPE ops_total counter" in text
    assert "ops_total 3" in text
    assert "depth 1.5" in text
    assert '# TYPE lat_seconds histogram' in text
    assert 'lat_seconds_bucket{le="0.1"} 1' in text
    assert 'lat_seconds_bucket{le="1"} 1' in text
    assert 'lat_seconds_bucket{le="+Inf"} 1' in text
    assert "lat_seconds_sum 0.05" in text
    assert "lat_seconds_count 1" in text
    assert text.endswith("\n")


def test_dump_writes_json_snapshot(tmp_path):
    registry = Registry()
    registry.counter("c").inc()
    path = tmp_path / "metrics.json"
    registry.dump(path)
    assert json.loads(path.read_text()) == registry.snapshot()


def test_observe_many_identical_to_10k_singles():
    """observe_many(v, 10_000) must record exactly what 10k singles do.

    The value is a dyadic rational so every partial sum in the
    one-at-a-time loop is exactly representable — the two paths must
    then agree bit-for-bit on counts, count, and sum.
    """
    value = 2.0**-12
    buckets = (1e-4, 1e-3, 1e-2, 1e-1)
    singles = Registry().histogram("h", buckets=buckets)
    for _ in range(10_000):
        singles.observe(value)
    bulk = Registry().histogram("h", buckets=buckets)
    bulk.observe_many(value, 10_000)
    assert bulk.counts == singles.counts
    assert bulk.count == singles.count
    assert bulk.sum == singles.sum
    assert bulk.mean == singles.mean


def test_observe_many_matches_singles_on_counts_for_any_value():
    from hypothesis import given
    from hypothesis import strategies as st

    @given(
        value=st.floats(0.0, 10.0, allow_nan=False),
        n=st.integers(0, 500),
    )
    def check(value, n):
        singles = Registry().histogram("h", buckets=(0.5, 2.0, 5.0))
        for _ in range(n):
            singles.observe(value)
        bulk = Registry().histogram("h", buckets=(0.5, 2.0, 5.0))
        bulk.observe_many(value, n)
        assert bulk.counts == singles.counts
        assert bulk.count == singles.count
        assert bulk.sum == pytest.approx(singles.sum, rel=1e-9, abs=1e-12)

    check()


def test_observe_many_zero_is_noop_and_negative_raises():
    hist = Registry().histogram("h", buckets=(1.0,))
    hist.observe_many(0.5, 0)
    assert hist.count == 0 and hist.sum == 0.0
    with pytest.raises(ValueError):
        hist.observe_many(0.5, -1)


def test_observe_many_snapshots_stay_merge_compatible():
    a = Registry()
    a.histogram("h", buckets=(1.0, 2.0)).observe_many(0.5, 7)
    b = Registry()
    b.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
    b.merge(a.snapshot())
    merged = b.snapshot()["histograms"]["h"]
    assert merged["count"] == 8
    assert merged["counts"] == [7, 1, 0]


def test_null_instrument_supports_observe_many():
    NULL_INSTRUMENT.observe_many(1.0, 100)  # must not raise
    hist = NULL_REGISTRY.histogram("anything")
    hist.observe_many(1.0, 100)


# -- merge_snapshots / snapshot_delta ----------------------------------


def _registry_with(counter=0, hist_obs=()):
    from repro.obs import Registry

    registry = Registry()
    if counter:
        registry.counter("jobs_total").inc(counter)
    hist = registry.histogram("latency", buckets=(1.0, 2.0))
    for value in hist_obs:
        hist.observe(value)
    return registry


def test_merge_snapshots_is_exact_histogram_addition():
    from repro.obs import merge_snapshots

    a = _registry_with(counter=2, hist_obs=(0.5, 1.5))
    b = _registry_with(counter=3, hist_obs=(0.5, 5.0))
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["counters"]["jobs_total"]["value"] == 5
    hist = merged["histograms"]["latency"]
    assert hist["count"] == 4
    assert hist["counts"] == [2, 1, 1]
    assert hist["sum"] == pytest.approx(7.5)


def test_merge_snapshots_empty_iterable_is_empty_snapshot():
    from repro.obs import merge_snapshots

    merged = merge_snapshots([])
    assert merged == {"counters": {}, "gauges": {}, "histograms": {}}


def test_snapshot_delta_subtracts_counters_and_buckets():
    from repro.obs import snapshot_delta

    registry = _registry_with(counter=2, hist_obs=(0.5,))
    old = registry.snapshot()
    registry.counter("jobs_total").inc(3)
    registry.histogram("latency", buckets=(1.0, 2.0)).observe(1.5)
    delta = snapshot_delta(old, registry.snapshot())
    assert delta["counters"]["jobs_total"]["value"] == 3
    hist = delta["histograms"]["latency"]
    assert hist["count"] == 1
    assert hist["counts"] == [0, 1, 0]


def test_snapshot_delta_gauges_take_new_value():
    from repro.obs import Registry, snapshot_delta

    registry = Registry()
    gauge = registry.gauge("depth")
    gauge.set(7)
    old = registry.snapshot()
    gauge.set(3)
    delta = snapshot_delta(old, registry.snapshot())
    assert delta["gauges"]["depth"]["value"] == 3


def test_snapshot_delta_treats_counter_regression_as_reset():
    """A counter that went backwards means the producer restarted and
    re-accumulated from zero, so everything it counted since the restart
    is the increment — clamping the delta to zero silently drops it."""
    from repro.obs import snapshot_delta

    old = _registry_with(counter=10, hist_obs=(0.5, 0.5)).snapshot()
    new = _registry_with(counter=4, hist_obs=(0.5,)).snapshot()  # restarted
    delta = snapshot_delta(old, new)
    assert delta["counters"]["jobs_total"]["value"] == 4
    assert delta["histograms"]["latency"]["counts"] == [1, 0, 0]
    assert delta["histograms"]["latency"]["count"] == 1


def test_snapshot_delta_histogram_reset_detected_per_bucket():
    """One regressed bucket resets the whole histogram even when the
    totals kept growing (a restart resets every bucket together)."""
    from repro.obs import Registry, snapshot_delta

    a = Registry()
    a.histogram("latency", buckets=(1.0, 2.0)).observe_many(0.5, 5)
    b = Registry()
    hist = b.histogram("latency", buckets=(1.0, 2.0))
    hist.observe_many(1.5, 8)  # count/sum exceed old totals...
    delta = snapshot_delta(a.snapshot(), b.snapshot())
    # ...but the first bucket went 5 -> 0, so this is a restart.
    assert delta["histograms"]["latency"]["counts"] == [0, 8, 0]
    assert delta["histograms"]["latency"]["count"] == 8


def test_snapshot_delta_new_instruments_pass_through():
    from repro.obs import Registry, snapshot_delta

    old = Registry().snapshot()
    new = _registry_with(counter=2, hist_obs=(0.5,)).snapshot()
    delta = snapshot_delta(old, new)
    assert delta["counters"]["jobs_total"]["value"] == 2
    assert delta["histograms"]["latency"]["counts"] == [1, 0, 0]


def test_snapshot_delta_bucket_mismatch_copies_new_histogram():
    from repro.obs import Registry, snapshot_delta

    a = Registry()
    a.histogram("latency", buckets=(1.0,)).observe(0.5)
    b = Registry()
    b.histogram("latency", buckets=(1.0, 2.0)).observe(1.5)
    delta = snapshot_delta(a.snapshot(), b.snapshot())
    assert delta["histograms"]["latency"]["counts"] == [0, 1, 0]


def test_prometheus_help_text_is_escaped():
    """Text exposition format: backslash first, then newline."""
    registry = Registry()
    registry.counter("odd_total", "line one\nline two with back\\slash").inc()
    text = registry.to_prometheus()
    assert "# HELP odd_total line one\\nline two with back\\\\slash" in text
    # The escaped HELP line must stay a single physical line.
    help_line = next(l for l in text.splitlines() if l.startswith("# HELP odd_total"))
    assert "\n" not in help_line
    assert "odd_total 1" in text
