"""MatrixProgressSink: stderr rendering and matrix.cell trace events."""

import io

from repro.analysis.matrix import MatrixTiming
from repro.obs import MatrixProgressSink, Registry, Tracer


def _timing(name="4HPC-Boosted-JRip", cached=False, fit=1.25, evals=0.5):
    return MatrixTiming(
        name=name, kind="eval", fit_seconds=fit, eval_seconds=evals, cached=cached
    )


def test_sink_renders_computed_cell_line():
    stream = io.StringIO()
    sink = MatrixProgressSink(total=96, stream=stream)
    sink(_timing())
    line = stream.getvalue()
    assert line == "[  1/96] 4HPC-Boosted-JRip          fit 1.25s eval 0.50s\n"


def test_sink_renders_cache_hits_distinctly():
    stream = io.StringIO()
    sink = MatrixProgressSink(total=8, stream=stream)
    sink(_timing(cached=True, fit=0.0, evals=0.0))
    assert stream.getvalue().rstrip().endswith("cache")
    assert "fit" not in stream.getvalue()


def test_sink_counts_progress_across_cells():
    stream = io.StringIO()
    registry = Registry()
    sink = MatrixProgressSink(total=3, metrics=registry, stream=stream)
    for i in range(3):
        sink(_timing(name=f"cfg{i}"))
    lines = stream.getvalue().splitlines()
    assert len(lines) == 3
    assert lines[0].startswith("[  1/3]")
    assert lines[2].startswith("[  3/3]")
    assert sink.done == 3
    snap = registry.snapshot()
    assert snap["counters"]["progress_lines_total"]["value"] == 3


def test_sink_emits_matrix_cell_trace_events():
    tracer = Tracer()
    sink = MatrixProgressSink(total=2, tracer=tracer)
    sink(_timing())
    sink(_timing(name="2HPC-Bagged-OneR", cached=True, fit=0.0, evals=0.0))
    events = [e for e in tracer.events if e["name"] == "matrix.cell"]
    assert len(events) == 2
    first, second = (e["attrs"] for e in events)
    assert first["config"] == "4HPC-Boosted-JRip"
    assert first["kind"] == "eval"
    assert first["cached"] is False
    assert first["fit_seconds"] == 1.25
    assert first["index"] == 1 and first["total"] == 2
    assert second["cached"] is True
    assert second["index"] == 2


def test_sink_silent_without_stream_still_traces():
    tracer = Tracer()
    registry = Registry()
    sink = MatrixProgressSink(total=1, tracer=tracer, metrics=registry)
    sink(_timing())
    assert len(tracer.events) == 1
    # No stream -> no progress line counted.
    snap = registry.snapshot()
    assert snap["counters"]["progress_lines_total"]["value"] == 0


def test_sink_defaults_are_null_objects():
    sink = MatrixProgressSink(total=5)
    sink(_timing())  # must not raise or print
    assert sink.done == 1
