"""Archive layer: normalization, content addressing, idempotent ingest."""

import json

import numpy as np
import pytest

from repro.obs import Registry, Tracer
from repro.obs.archive import (
    Archive,
    ArchiveError,
    ArchiveSink,
    HOST_VOTE_RULE,
    alert_record,
    normalize_events,
    normalize_metrics,
    segment_content_id,
    verdict_record,
)


def serve_verdict_event(ts, index, host="h0", flagged=False, fraction=0.0):
    return {
        "type": "event",
        "name": "serve.verdict",
        "ts": ts,
        "attrs": {
            "app": host,
            "host": host,
            "index": index,
            "is_malware": flagged,
            "malware_fraction": fraction,
            "n_windows": 8,
            "n_windows_lost": 0,
            "degraded": False,
            "detection_latency_windows": 2 if flagged else None,
        },
    }


def sample_events():
    return [
        {"type": "span", "name": "serve.run", "ts": 100.0, "dur": 1.5},
        serve_verdict_event(101.0, 0),
        serve_verdict_event(102.0, 1, host="h1", flagged=True, fraction=0.75),
        {
            "type": "event",
            "name": "serve.alert",
            "ts": 103.0,
            "attrs": {"host": "h1", "execution": 1, "fraction": 0.75, "windows": 16},
        },
        {
            "type": "event",
            "name": "health.alert",
            "ts": 104.0,
            "attrs": {
                "rule": "degraded_ratio>=0.2",
                "state": "firing",
                "severity": "critical",
                "value": 0.4,
            },
        },
        {"type": "event", "name": "serve.worker_crash", "ts": 105.0, "attrs": {}},
    ]


# -- normalization -----------------------------------------------------


def test_normalize_events_splits_and_maps():
    verdicts, alerts, spans = normalize_events(sample_events())
    assert len(verdicts) == 2
    assert verdicts[0]["source"] == "serve"
    assert verdicts[0]["execution"] == 0
    assert verdicts[1]["is_malware"] is True
    assert verdicts[1]["latency"] == 2
    assert verdicts[0]["latency"] == -1  # never-detected sentinel
    assert len(alerts) == 2
    assert alerts[0]["rule"] == HOST_VOTE_RULE
    assert alerts[0]["severity"] == "critical"
    assert alerts[1]["rule"] == "degraded_ratio>=0.2"
    assert alerts[1]["host"] == "*"
    assert spans == [{"name": "serve.run", "ts": 100.0, "dur": 1.5}]


def test_normalize_events_numbers_unindexed_monitor_verdicts():
    events = [
        {
            "type": "event",
            "name": "monitor.verdict",
            "ts": float(i),
            "attrs": {"app": "a", "is_malware": False, "malware_fraction": 0.0,
                      "n_windows": 4},
        }
        for i in range(3)
    ]
    verdicts, _, _ = normalize_events(events)
    assert [v["execution"] for v in verdicts] == [0, 1, 2]
    assert all(v["source"] == "monitor" for v in verdicts)
    assert all(v["host"] == "a" for v in verdicts)  # host defaults to app


def test_normalize_metrics_drops_cosmetics_and_coerces():
    registry = Registry()
    registry.counter("hits_total", "helpful text").inc(3)
    registry.histogram("lat_seconds", "h", buckets=(0.1, 1.0)).observe(0.05)
    normalized = normalize_metrics(registry.snapshot())
    assert normalized["counters"]["hits_total"] == {"value": 3.0}
    assert "help" not in json.dumps(normalized)
    # normalizing a normalized snapshot is a fixed point
    assert normalize_metrics(normalized) == normalized
    assert normalize_metrics(None) == {"counters": {}, "gauges": {}, "histograms": {}}


def test_records_coerce_numpy_scalars_to_plain_types():
    record = verdict_record(
        ts=np.float64(1.5), source="serve", host="h", app="a",
        execution=np.int64(3), is_malware=np.bool_(True),
        malware_fraction=np.float64(0.5), n_windows=np.int64(8),
    )
    assert type(record["execution"]) is int
    assert type(record["is_malware"]) is bool
    assert type(record["malware_fraction"]) is float
    alert = alert_record(
        ts=1.0, rule="r", host="h", severity="critical", state="firing",
        value=np.float64(0.4),
    )
    assert type(alert["value"]) is float
    # records JSON-serialize without default= hooks
    json.dumps([record, alert])


# -- content addressing ------------------------------------------------


def test_content_id_is_deterministic_and_content_sensitive():
    verdicts, alerts, spans = normalize_events(sample_events())
    metrics = normalize_metrics(None)
    a = segment_content_id(verdicts, alerts, spans, metrics)
    b = segment_content_id(verdicts, alerts, spans, metrics)
    assert a == b and len(a) == 64
    changed = [dict(verdicts[0], ts=verdicts[0]["ts"] + 1.0)] + verdicts[1:]
    assert segment_content_id(changed, alerts, spans, metrics) != a


# -- ingest / load round trip ------------------------------------------


def test_ingest_and_load_round_trips_columns(tmp_path):
    archive = Archive(tmp_path / "arch")
    registry = Registry()
    registry.histogram("c_seconds", "h", buckets=(0.1, 1.0)).observe(0.05)
    result = archive.ingest_events(
        sample_events(), metrics=registry.snapshot(),
        run_meta={"command": "serve"}, run_id="run-1", source="serve",
    )
    assert result.ingested
    assert (result.n_verdicts, result.n_alerts, result.n_spans) == (2, 2, 1)
    assert result.path.exists()

    segment = archive.load_segment(result.segment_id)
    assert segment.n_verdicts == 2
    hosts = segment.resolve(segment.verdicts["host"])
    assert list(hosts) == ["h0", "h1"]
    assert list(segment.verdicts["flag"]) == [0, 1]
    assert segment.verdicts["fraction"][1] == 0.75
    assert list(segment.verdicts["latency"]) == [-1, 2]
    assert segment.span_seconds("serve.run") == 1.5
    assert segment.span_seconds("absent") == 0.0
    assert segment.metrics["histograms"]["c_seconds"]["count"] == 1

    (entry,) = archive.segments()
    assert entry["segment_id"] == result.segment_id
    assert entry["source"] == "serve"
    assert entry["run_id"] == "run-1"
    assert entry["hosts"] == ["h0", "h1"]
    assert entry["ts_min"] == 100.0 and entry["ts_max"] == 104.0
    assert entry["run_meta"] == {"command": "serve"}


def test_reingest_is_a_noop(tmp_path):
    archive = Archive(tmp_path)
    first = archive.ingest_events(sample_events())
    second = archive.ingest_events(sample_events())
    assert first.segment_id == second.segment_id
    assert first.ingested and not second.ingested
    assert len(archive) == 1
    assert second.n_verdicts == first.n_verdicts


def test_ingest_trace_file_matches_ingest_events(tmp_path):
    """The JSONL round trip does not change the content address."""
    tracer = Tracer()
    with tracer.span("serve.run"):
        tracer.event(
            "serve.verdict", app="x", host="x", index=0, is_malware=True,
            malware_fraction=1.0, n_windows=4, n_windows_lost=0,
            degraded=False, detection_latency_windows=0,
        )
    trace_path = tmp_path / "t.jsonl"
    tracer.dump(trace_path)
    live = Archive(tmp_path / "a").ingest_events(tracer.events)
    from_file = Archive(tmp_path / "b").ingest_trace(trace_path)
    assert live.segment_id == from_file.segment_id


def test_sink_matches_events_columns(tmp_path):
    """A live sink and a trace of the same observations dedupe."""
    sink = ArchiveSink(source="serve")
    tracer = Tracer()
    for index, (flagged, fraction) in enumerate([(False, 0.0), (True, 0.6)]):
        ts = 50.0 + index
        tracer.event(
            "serve.verdict", ts=ts, app=f"app{index}", host=f"app{index}",
            index=index, is_malware=flagged, malware_fraction=fraction,
            n_windows=8, n_windows_lost=0, degraded=False,
            detection_latency_windows=1 if flagged else None,
        )
        sink.observe_verdict(
            ts=ts, host=f"app{index}", app=f"app{index}", execution=index,
            is_malware=flagged, malware_fraction=fraction, n_windows=8,
            n_windows_lost=0, degraded=False,
            latency=1 if flagged else None,
        )
    archive = Archive(tmp_path)
    from_sink = sink.ingest_into(archive)
    verdicts, alerts, _ = normalize_events(tracer.events)
    assert sorted(sink.verdicts, key=lambda v: v["ts"]) == verdicts
    # same verdict/alert content -> same segment, modulo the trace's spans
    from_events = archive.ingest_records(verdicts, alerts, [])
    assert from_events.segment_id == from_sink.segment_id
    assert not from_events.ingested


def test_empty_ingest_round_trips(tmp_path):
    archive = Archive(tmp_path)
    result = archive.ingest_events([])
    segment = archive.load_segment(result.segment_id)
    assert segment.n_verdicts == segment.n_alerts == segment.n_spans == 0
    assert segment.resolve(segment.verdicts["host"]).size == 0
    (entry,) = archive.segments()
    assert entry["ts_min"] is None


# -- failure modes -----------------------------------------------------


def test_archive_root_must_be_a_directory(tmp_path):
    not_dir = tmp_path / "file"
    not_dir.write_text("x")
    with pytest.raises(ArchiveError):
        Archive(not_dir)


def test_corrupt_manifest_raises(tmp_path):
    archive = Archive(tmp_path)
    archive.ingest_events(sample_events())
    archive.manifest_path.write_text("{ not json")
    with pytest.raises(ArchiveError, match="corrupt"):
        archive.segments()


def test_wrong_manifest_schema_raises(tmp_path):
    archive = Archive(tmp_path)
    archive.manifest_path.parent.mkdir(parents=True, exist_ok=True)
    archive.manifest_path.write_text(json.dumps({"schema": 99, "segments": []}))
    with pytest.raises(ArchiveError, match="schema"):
        archive.segments()


def test_missing_segment_file_raises(tmp_path):
    archive = Archive(tmp_path)
    result = archive.ingest_events(sample_events())
    result.path.unlink()
    with pytest.raises(ArchiveError, match="cannot read"):
        archive.load_segment(result.segment_id)


def test_corrupt_segment_file_raises(tmp_path):
    archive = Archive(tmp_path)
    result = archive.ingest_events(sample_events())
    result.path.write_bytes(b"\x00" * 32)
    with pytest.raises(ArchiveError):
        archive.load_segment(result.segment_id)


def test_entry_prefix_lookup(tmp_path):
    archive = Archive(tmp_path)
    result = archive.ingest_events(sample_events())
    assert archive.entry(result.segment_id[:10])["segment_id"] == result.segment_id
    with pytest.raises(ArchiveError, match="no archived segment"):
        archive.entry("ffff")


def test_crash_during_segment_write_leaves_archive_intact(tmp_path, monkeypatch):
    """A failing write never corrupts the manifest or leaves temp files."""
    archive = Archive(tmp_path)
    archive.ingest_events(sample_events())

    import repro.obs.archive as archive_mod

    def exploding_savez(fh, **arrays):
        fh.write(b"partial")
        raise OSError("disk full")

    monkeypatch.setattr(archive_mod.np, "savez_compressed", exploding_savez)
    with pytest.raises(OSError):
        archive.ingest_events(sample_events() + [serve_verdict_event(999.0, 7)])
    monkeypatch.undo()
    assert len(archive) == 1  # manifest never saw the failed segment
    leftovers = [p for p in tmp_path.rglob("*.tmp")]
    assert leftovers == []
    # the surviving segment still loads
    (entry,) = archive.segments()
    assert archive.load_segment(entry).n_verdicts == 2


def quality_drift_event(ts, host, fleet_psi, host_psi):
    return {
        "type": "event",
        "name": "quality.drift",
        "ts": ts,
        "attrs": {
            "host": host,
            "worst_feature": "branch_misses",
            "max_feature_psi": fleet_psi,
            "host_max_feature_psi": host_psi,
            "live_windows": 64.0,
        },
    }


def test_normalize_events_maps_quality_drift_to_two_rows():
    from repro.obs.archive import DRIFT_RULE

    verdicts, alerts, spans = normalize_events(
        [quality_drift_event(10.0, "web-1", 0.3, 0.7)]
    )
    assert not verdicts and not spans
    assert len(alerts) == 2
    fleet, host = alerts
    assert fleet["rule"] == host["rule"] == DRIFT_RULE
    assert fleet["host"] == "*" and fleet["value"] == 0.3
    assert host["host"] == "web-1" and host["value"] == 0.7
    assert {a["state"] for a in alerts} == {"observation"}


def test_normalize_events_quality_drift_without_host_or_value():
    event = quality_drift_event(10.0, "", None, None)
    _, alerts, _ = normalize_events([event])
    assert len(alerts) == 1  # no host row when the observer is anonymous
    assert alerts[0]["host"] == "*"
    assert np.isnan(alerts[0]["value"])  # warm-up PSI is NaN, not zero


def test_normalize_events_maps_quality_alert_like_health():
    event = {
        "type": "event",
        "name": "quality.alert",
        "ts": 99.0,
        "attrs": {
            "rule": "max_feature_psi>=0.25",
            "state": "firing",
            "severity": "critical",
            "value": 0.41,
        },
    }
    _, alerts, _ = normalize_events([event])
    assert alerts == [
        alert_record(
            ts=99.0,
            rule="max_feature_psi>=0.25",
            host="*",
            severity="critical",
            state="firing",
            value=0.41,
        )
    ]
