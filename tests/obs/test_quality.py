"""Quality observability: binning, divergence scoring, streaming tracker."""

import functools
import json
import math

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.obs import (
    QualityAlertRule,
    QualityError,
    QualityTracker,
    ReferenceProfile,
    Registry,
    Tracer,
    build_reference_profile,
    parse_quality_alert_spec,
    quality_table,
)
from repro.obs.archive import DRIFT_RULE
from repro.obs.health import HealthConfigError
from repro.obs.quality import (
    DEFAULT_QUALITY_RULES,
    DriftScorer,
    _cell_indices,
    _equal_width_edges,
    _ks,
    _psi,
    bin_matrix,
    bin_values,
)

N_BINS = 4
N_FEATURES = 2
N_REF = 240


def make_profile(seed=3, n_ref=N_REF):
    """Small synthetic profile over uniform-[0,1] features and scores."""
    rng = np.random.default_rng(seed)
    feats = rng.uniform(0.0, 1.0, size=(n_ref, N_FEATURES))
    edges = np.stack([np.linspace(0.0, 1.0, N_BINS + 1)] * N_FEATURES)
    counts, _ = bin_matrix(edges, feats)
    scores = rng.uniform(0.0, 1.0, n_ref)
    score_edges = np.linspace(0.0, 1.0, N_BINS + 1)
    score_counts, _ = bin_values(score_edges, scores)
    margin_edges = np.linspace(-1.0, 1.0, N_BINS + 1)
    margin_counts, _ = bin_values(margin_edges, rng.uniform(-0.5, 0.5, 30))
    labels = (scores > 0.5).astype(float)
    idx, ok = _cell_indices(score_edges, scores)
    s, y = scores[ok], labels[ok]
    cells = score_edges.size + 1
    calibration = np.stack(
        [
            np.bincount(idx, minlength=cells).astype(float),
            np.bincount(idx, weights=y, minlength=cells),
            np.bincount(idx, weights=s, minlength=cells),
            np.bincount(idx, weights=s * s, minlength=cells),
            np.bincount(idx, weights=s * y, minlength=cells),
        ]
    )
    return ReferenceProfile(
        feature_names=tuple(f"f{i}" for i in range(N_FEATURES)),
        feature_edges=edges,
        feature_counts=counts,
        feature_nan=(0,) * N_FEATURES,
        score_edges=score_edges,
        score_counts=score_counts,
        margin_edges=margin_edges,
        margin_counts=margin_counts,
        calibration=calibration,
        vote_threshold=0.5,
        meta={"origin": "test"},
    )


@pytest.fixture(scope="module")
def profile():
    return make_profile()


def ref_like(profile, n, seed=9):
    """A live draw from the same distribution the profile was built on."""
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, size=(n, N_FEATURES)), rng.uniform(0.0, 1.0, n)


def ref_data():
    """The exact draw :func:`make_profile` binned (same seed, same order)."""
    rng = np.random.default_rng(3)
    feats = rng.uniform(0.0, 1.0, size=(N_REF, N_FEATURES))
    scores = rng.uniform(0.0, 1.0, N_REF)
    return feats, scores


def shifted(n):
    """A live draw entirely outside the reference support (overflow mass)."""
    return np.full((n, N_FEATURES), 5.0), np.full(n, 5.0)


# -- binning -----------------------------------------------------------


def test_bin_values_cell_conventions():
    edges = np.linspace(0.0, 1.0, N_BINS + 1)
    counts, n_nan = bin_values(edges, [-5.0, 0.1, 0.5, 1.0, 2.0, float("nan")])
    assert n_nan == 1
    assert counts[0] == 1  # underflow
    assert counts[-1] == 1  # overflow (2.0 > last edge)
    # The exact last edge lands in the last closed bin, not overflow.
    assert counts[N_BINS] == 1
    assert counts[1] == 1 and counts[3] == 1  # 0.1 and 0.5 (left-closed bins)
    assert counts.sum() == 5  # NaN never enters a cell


def test_bin_matrix_matches_per_column_bin_values():
    rng = np.random.default_rng(5)
    edges = np.stack([np.linspace(0.0, 1.0, 5), np.linspace(-2.0, 2.0, 5)])
    values = rng.uniform(-3.0, 3.0, size=(40, 2))
    values[3, 0] = float("nan")
    values[7, 1] = float("nan")
    values[0, 0] = edges[0, -1]  # exact last edge, column 0
    counts, n_nan = bin_matrix(edges, values)
    for f in range(2):
        expected, expected_nan = bin_values(edges[f], values[:, f])
        assert np.array_equal(counts[f], expected)
        assert n_nan[f] == expected_nan


def test_equal_width_edges_widen_constant_and_empty_columns():
    edges = _equal_width_edges(np.full(5, 3.0), N_BINS)
    assert edges[0] == 2.5 and edges[-1] == 3.5
    empty = _equal_width_edges(np.array([]), N_BINS)
    assert empty[0] == -0.5 and empty[-1] == 0.5
    # The constant itself lands mid-histogram, not in under/overflow.
    counts, _ = bin_values(edges, [3.0])
    assert counts[0] == 0 and counts[-1] == 0 and counts.sum() == 1


def test_bin_execution_empty_and_mismatched(profile):
    contrib = profile.bin_execution(
        np.zeros((0, N_FEATURES)), np.zeros(0), margin=float("nan")
    )
    assert contrib.n_windows == 0
    assert contrib.feature.sum() == 0 and contrib.score.sum() == 0
    assert contrib.margin.sum() == 0 and contrib.cal.sum() == 0
    with pytest.raises(QualityError):
        profile.bin_execution(np.zeros((3, N_FEATURES + 1)), np.zeros(3))


def test_bin_execution_tallies_nan_without_binning(profile):
    windows, scores = ref_like(profile, 6)
    windows[0, 0] = float("nan")
    contrib = profile.bin_execution(windows, scores, margin=0.1, truth=True)
    assert contrib.n_nan == 1
    assert contrib.feature[0].sum() == 5  # NaN excluded from feature 0
    assert contrib.feature[1].sum() == 6


def test_bin_batch_equals_merged_bin_execution(profile):
    rng = np.random.default_rng(11)
    entries = []
    for truth in (True, None, False):
        windows = rng.uniform(-0.5, 1.5, size=(7, N_FEATURES))
        scores = rng.uniform(0.0, 1.0, 7)
        entries.append((windows, scores, float(rng.uniform(-1, 1)), truth))
    entries[0][0][2, 1] = float("nan")
    batched = profile.bin_batch(entries)
    merged = functools.reduce(
        lambda a, b: a.merged(b),
        [profile.bin_execution(w, s, m, t) for w, s, m, t in entries],
    )
    assert np.array_equal(batched.feature, merged.feature)
    assert np.array_equal(batched.score, merged.score)
    assert np.array_equal(batched.margin, merged.margin)
    assert np.array_equal(batched.cal, merged.cal)
    assert batched.n_windows == merged.n_windows == 21
    assert batched.n_nan == merged.n_nan == 1
    assert batched.n_executions == merged.n_executions == 3


# -- divergence scoring ------------------------------------------------


def test_psi_identical_counts_exactly_zero_and_empty_nan():
    counts = np.array([3, 10, 7, 0, 5], dtype=float)
    assert _psi(counts, counts, epsilon=1e-4) == 0.0
    assert math.isnan(_psi(counts, np.zeros(5), epsilon=1e-4))
    assert math.isnan(_psi(np.zeros(5), counts, epsilon=1e-4))
    assert _psi(counts, np.array([0, 0, 0, 20, 0]), epsilon=1e-4) > 1.0


def test_ks_bounds():
    a = np.array([10, 0, 0, 0], dtype=float)
    b = np.array([0, 0, 0, 10], dtype=float)
    assert _ks(a, a) == 0.0
    assert _ks(a, b) == pytest.approx(1.0)
    assert math.isnan(_ks(a, np.zeros(4)))


def test_window_drift_matches_scalar_helpers(profile):
    scorer = DriftScorer(profile)
    rng = np.random.default_rng(21)
    live_feat = rng.integers(0, 30, size=profile.feature_counts.shape)
    live_score = rng.integers(0, 30, size=profile.score_counts.shape)
    windows, scores = ref_like(profile, 20)
    cal = profile.bin_execution(windows, scores, truth=True).cal
    drift = scorer.window_drift(live_feat, live_score, cal)
    for f in range(profile.n_features):
        assert drift["feature_psi"][f] == pytest.approx(
            _psi(profile.feature_counts[f], live_feat[f], scorer.epsilon)
        )
        assert drift["feature_ks"][f] == pytest.approx(
            _ks(profile.feature_counts[f], live_feat[f])
        )
    assert drift["score_psi"] == pytest.approx(
        _psi(profile.score_counts, live_score, scorer.epsilon)
    )
    assert drift["score_ks"] == pytest.approx(_ks(profile.score_counts, live_score))
    cal_direct = scorer.calibration(cal)
    assert drift["ece"] == cal_direct["ece"]
    assert drift["brier"] == cal_direct["brier"]


def test_window_drift_identical_counts_score_exactly_zero(profile):
    scorer = DriftScorer(profile)
    drift = scorer.window_drift(
        profile.feature_counts, profile.score_counts, profile.calibration
    )
    assert np.all(drift["feature_psi"] == 0.0)
    assert np.all(drift["feature_ks"] == 0.0)
    assert drift["score_psi"] == 0.0 and drift["score_ks"] == 0.0


def test_window_drift_empty_live_side_is_nan(profile):
    scorer = DriftScorer(profile)
    drift = scorer.window_drift(
        np.zeros_like(profile.feature_counts),
        np.zeros_like(profile.score_counts),
        np.zeros_like(profile.calibration),
    )
    assert np.all(np.isnan(drift["feature_psi"]))
    assert math.isnan(drift["score_psi"])
    assert math.isnan(drift["ece"]) and math.isnan(drift["brier"])


def test_margin_psi_matches_scalar_helper(profile):
    scorer = DriftScorer(profile)
    live = np.array([0, 2, 9, 4, 0, 1], dtype=np.int64)
    assert scorer.margin_psi(live) == pytest.approx(
        _psi(profile.margin_counts, live, scorer.epsilon)
    )
    assert math.isnan(scorer.margin_psi(np.zeros_like(live)))


def test_calibration_ece_and_brier_are_exact(profile):
    scorer = DriftScorer(profile)
    rng = np.random.default_rng(31)
    scores_neg = rng.uniform(0.0, 1.0, 50)
    scores_pos = rng.uniform(0.0, 1.0, 50)
    cal = profile.bin_execution(
        rng.uniform(0, 1, (50, N_FEATURES)), scores_neg, truth=False
    ).cal + profile.bin_execution(
        rng.uniform(0, 1, (50, N_FEATURES)), scores_pos, truth=True
    ).cal
    result = scorer.calibration(cal)
    s = np.concatenate([scores_neg, scores_pos])
    y = np.concatenate([np.zeros(50), np.ones(50)])
    assert result["brier"] == pytest.approx(np.mean((s - y) ** 2))
    idx, _ = _cell_indices(profile.score_edges, s)
    ece = 0.0
    for cell in np.unique(idx):
        sel = idx == cell
        ece += sel.mean() * abs(s[sel].mean() - y[sel].mean())
    assert result["ece"] == pytest.approx(ece)
    assert result["count"] == 100


# -- profile serialization ---------------------------------------------


def test_profile_round_trip_and_content_id(tmp_path, profile):
    path = tmp_path / "profile.json"
    saved_id = profile.save(path)
    loaded = ReferenceProfile.load(path)
    assert loaded.profile_id == profile.profile_id == saved_id
    assert loaded.to_dict() == profile.to_dict()
    assert loaded.n_windows == N_REF
    # Identity is content-addressed: any count change moves it.
    bumped = make_profile()
    bumped.feature_counts[0, 1] += 1
    assert bumped.profile_id != profile.profile_id


def test_profile_load_errors(tmp_path):
    with pytest.raises(QualityError, match="not found"):
        ReferenceProfile.load(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(QualityError, match="invalid JSON"):
        ReferenceProfile.load(bad)
    wrong = tmp_path / "wrong.json"
    data = make_profile().to_dict()
    data["schema"] = 99
    wrong.write_text(json.dumps(data))
    with pytest.raises(QualityError, match="schema"):
        ReferenceProfile.load(wrong)
    not_profile = tmp_path / "metrics.json"
    not_profile.write_text('{"counters": {}}')
    with pytest.raises(QualityError, match="feature_names"):
        ReferenceProfile.load(not_profile)


def test_profile_shape_validation(profile):
    data = profile.to_dict()
    data["feature_counts"] = [row[:-1] for row in data["feature_counts"]]
    with pytest.raises(QualityError, match="shape"):
        ReferenceProfile.from_dict(data)


def test_build_reference_profile_from_fitted_detector(small_split):
    detector = HMDDetector(DetectorConfig("OneR", "general", 2)).fit(
        small_split.train
    )
    built = build_reference_profile(detector, small_split.train, meta={"k": 1})
    assert built.feature_names == tuple(detector.monitored_events)
    assert built.n_windows == len(small_split.train.labels)
    assert built.meta == {"k": 1}
    # A live replay of the training data scores exactly zero drift.
    scorer = DriftScorer(built)
    drift = scorer.window_drift(
        built.feature_counts, built.score_counts, built.calibration
    )
    assert np.all(drift["feature_psi"] == 0.0)
    with pytest.raises(QualityError, match="unfitted"):
        build_reference_profile(
            HMDDetector(DetectorConfig("OneR", "general", 2)), small_split.train
        )


# -- alert rule parsing ------------------------------------------------


def test_parse_quality_alert_spec():
    rule = parse_quality_alert_spec("max_feature_psi>=1.5:critical:0:0.5")
    assert isinstance(rule, QualityAlertRule)
    assert rule.signal == "max_feature_psi"
    assert rule.op == ">=" and rule.threshold == 1.5
    assert rule.severity == "critical"
    assert rule.for_s == 0.0 and rule.clear_threshold == 0.5
    with pytest.raises(HealthConfigError):
        parse_quality_alert_spec("degraded_ratio>=0.2")  # health-only signal
    with pytest.raises(HealthConfigError):
        parse_quality_alert_spec("max_feature_psi>>1")


# -- streaming tracker -------------------------------------------------


def make_tracker(profile, **kwargs):
    kwargs.setdefault("window_s", 1e9)
    kwargs.setdefault("min_windows", 30)
    kwargs.setdefault("min_executions", 1)
    return QualityTracker(profile, **kwargs)


def feed(tracker, windows, scores, host="h0", ts=0.0, per_exec=10, truth=None):
    """Feed ``windows`` in per_exec chunks, one second apart; returns last ts."""
    for start in range(0, len(windows), per_exec):
        chunk = windows[start : start + per_exec]
        tracker.observe_execution(
            host,
            chunk,
            scores[start : start + per_exec],
            margin=0.25,
            truth=truth,
            ts=ts,
        )
        ts += 1.0
    return ts


def test_tracker_validates_construction(profile):
    with pytest.raises(ValueError, match="window_s"):
        QualityTracker(profile, window_s=0.0)
    with pytest.raises(ValueError, match="eval_interval_s"):
        QualityTracker(profile, eval_interval_s=-1.0)


def test_tracker_adaptive_evidence_floor(profile):
    assert QualityTracker(profile).min_windows == max(64, round(0.75 * N_REF))
    assert QualityTracker(profile, min_windows=5).min_windows == 5


def test_tracker_rejects_feature_mismatch(profile):
    tracker = make_tracker(profile)
    with pytest.raises(QualityError, match="features"):
        tracker.observe_execution("h0", np.zeros((2, N_FEATURES + 1)), np.zeros(2))


def test_tracker_below_floor_signals_are_nan(profile):
    tracker = make_tracker(profile, min_windows=30)
    windows, scores = ref_like(profile, 10)
    feed(tracker, windows, scores)
    values = tracker.signals()
    assert values["live_windows"] == 10.0
    assert math.isnan(values["max_feature_psi"])
    assert not tracker.drift_fired()


def test_tracker_stationary_stream_stays_silent(profile):
    """Replaying the reference draw itself scores exactly zero PSI.

    The evidence floor is pinned to the full reference window count so
    no evaluation ever sees a partial (genuinely divergent) mixture —
    the same construction ``bench_quality.py`` uses for its stationary
    control.
    """
    tracker = make_tracker(profile, min_windows=N_REF)
    windows, scores = ref_data()
    feed(tracker, windows, scores, per_exec=20, truth=False)
    values = tracker.signals()
    assert values["max_feature_psi"] == 0.0
    assert values["score_psi"] == 0.0
    assert tracker.total_executions == 12
    assert tracker.total_windows == N_REF
    assert not tracker.drift_fired() and not tracker.critical_fired()


def test_tracker_shifted_stream_fires_default_rule(profile):
    tracker = make_tracker(profile)
    windows, scores = shifted(60)
    feed(tracker, windows, scores)
    assert tracker.signals()["max_feature_psi"] > 1.0
    assert tracker.drift_fired() and tracker.critical_fired()
    state = tracker.states[0]
    assert state.state == "firing" and state.fired_count == 1


def test_tracker_hysteresis_fire_then_clear(profile):
    rule = QualityAlertRule(
        name="psi", signal="max_feature_psi", op=">=", threshold=1.0,
        severity="critical", clear_threshold=0.5,
    )
    tracker = make_tracker(profile, rules=(rule,), window_s=10.0)
    bad_w, bad_s = shifted(40)
    ts = feed(tracker, bad_w, bad_s, ts=0.0)
    assert tracker.states[0].state == "firing"
    # Stationary traffic after the window slides past the shifted burst.
    good_w, good_s = ref_like(profile, 120)
    feed(tracker, good_w, good_s, ts=ts + 20.0)
    assert tracker.states[0].state == "ok"
    kinds = [t["state"] for t in tracker.states[0].transitions]
    assert kinds == ["firing", "cleared"]


def test_tracker_eviction_is_exact(profile):
    tracker = make_tracker(profile, window_s=10.0)
    windows, scores = ref_like(profile, 40)
    feed(tracker, windows, scores)
    assert tracker.signals()["live_windows"] == 40.0
    values = tracker.signals(now=1000.0)
    assert values["live_windows"] == 0.0
    assert math.isnan(values["max_feature_psi"])
    assert np.all(tracker.window.feature == 0)
    assert tracker.total_windows == 40  # lifetime totals never evict


def test_tracker_counts_nan_feature_values(profile):
    tracker = make_tracker(profile)
    windows, scores = ref_like(profile, 10)
    windows[2, 0] = windows[4, 1] = float("nan")
    feed(tracker, windows, scores)
    tracker.signals()
    assert tracker.total_nan == 2


def test_tracker_empty_execution_is_harmless(profile):
    tracker = make_tracker(profile)
    tracker.observe_execution("h0", np.zeros((0, N_FEATURES)), np.zeros(0), ts=0.0)
    values = tracker.signals()
    assert values["live_windows"] == 0.0
    assert tracker.total_executions == 1 and tracker.total_windows == 0


def test_eval_interval_throttles_evaluations(profile):
    tracer = Tracer(enabled=True)
    tracker = make_tracker(profile, eval_interval_s=10.0, tracer=tracer)
    windows, scores = ref_like(profile, 60)
    feed(tracker, windows, scores)  # 6 executions at ts 0..5
    drift_events = [e for e in tracer.events if e["name"] == "quality.drift"]
    assert len(drift_events) == 1  # only the first observation evaluated
    tracker.observe_execution("h0", windows[:10], scores[:10], ts=50.0)
    drift_events = [e for e in tracer.events if e["name"] == "quality.drift"]
    assert len(drift_events) == 2


def test_eval_interval_zero_evaluates_every_observation(profile):
    tracer = Tracer(enabled=True)
    tracker = make_tracker(profile, eval_interval_s=0.0, tracer=tracer)
    windows, scores = ref_like(profile, 30)
    feed(tracker, windows, scores)
    drift_events = [e for e in tracer.events if e["name"] == "quality.drift"]
    assert len(drift_events) == 3


def test_report_runs_a_final_evaluation(profile):
    """A breach that lands inside the eval interval still reaches report()."""
    tracker = make_tracker(profile, eval_interval_s=1e9, min_windows=40)
    good_w, good_s = ref_like(profile, 30)
    tracker.observe_execution("h0", good_w, good_s, ts=0.0)  # evaluates below floor
    bad_w, bad_s = shifted(60)
    tracker.observe_execution("h0", bad_w, bad_s, ts=1.0)  # throttled
    assert not tracker.drift_fired()
    report = tracker.report()
    assert tracker.drift_fired()
    assert report["drift_fired"] and report["critical_fired"]
    assert report["alerts"][0]["state"] == "firing"


def test_tick_slides_windows_without_new_evidence(profile):
    tracker = make_tracker(profile, window_s=10.0)
    windows, scores = ref_like(profile, 40)
    feed(tracker, windows, scores)
    values = tracker.tick(now=500.0)
    assert values["live_windows"] == 0.0


def test_host_signals_and_drift_event_payload(profile):
    tracer = Tracer(enabled=True)
    tracker = make_tracker(profile, tracer=tracer, min_windows=20)
    w0, s0 = ref_like(profile, 40, seed=1)
    w1, s1 = shifted(40)
    ts = feed(tracker, w0, s0, host="good")
    feed(tracker, w1, s1, host="evil", ts=ts)
    good = tracker.host_signals("good")
    evil = tracker.host_signals("evil")
    assert good["max_feature_psi"] < evil["max_feature_psi"]
    with pytest.raises(KeyError):
        tracker.host_signals("unknown")
    events = [e for e in tracer.events if e["name"] == "quality.drift"]
    assert events
    last = events[-1]["attrs"]
    assert last["host"] == "evil"
    assert "host_max_feature_psi" in last and "max_feature_psi" in last
    assert last["worst_feature"] in profile.feature_names


def test_archive_sink_receives_drift_rows(profile):
    class FakeSink:
        def __init__(self):
            self.alerts = []

        def observe_alert(self, **kwargs):
            self.alerts.append(kwargs)

    sink = FakeSink()
    tracker = make_tracker(profile, archive_sink=sink, min_windows=20)
    windows, scores = shifted(40)
    feed(tracker, windows, scores, host="h0")
    rows = [a for a in sink.alerts if a["rule"] == DRIFT_RULE]
    hosts = {a["host"] for a in rows}
    assert hosts == {"*", "h0"}  # fleet row plus the observing host's row
    assert all(a["state"] == "observation" for a in rows)
    fired = [a for a in sink.alerts if a["state"] == "firing"]
    assert fired and fired[0]["severity"] == "critical"


def test_tracker_metrics_and_stream_output(profile):
    import io

    registry = Registry()
    stream = io.StringIO()
    tracker = make_tracker(profile, metrics=registry, stream=stream)
    windows, scores = shifted(40)
    feed(tracker, windows, scores)
    snap = registry.snapshot()
    assert snap["counters"]["quality_executions_total"]["value"] == 4
    assert snap["counters"]["quality_windows_total"]["value"] == 40
    assert snap["counters"]["quality_alerts_fired_total"]["value"] == 1
    assert snap["gauges"]["quality_max_feature_psi"]["value"] > 1.0
    assert snap["histograms"]["quality_feature_psi"]["count"] > 0
    assert "FIRING" in stream.getvalue()


def test_report_and_quality_table_render(profile):
    tracker = make_tracker(profile)
    windows, scores = ref_like(profile, 60)
    feed(tracker, windows, scores, host="web-1", truth=False)
    report = tracker.report()
    assert report["profile_id"] == profile.profile_id
    assert report["totals"] == {"executions": 6, "windows": 60, "nan_values": 0}
    assert "web-1" in report["hosts"]
    assert len(report["features"]) == N_FEATURES
    text = quality_table(report)
    assert profile.profile_id[:12] in text
    assert "max_feature_psi" in text
    assert "f0" in text and "f1" in text
    assert "max_feature_psi>=0.25" in text


def test_dump_writes_json_report(tmp_path, profile):
    tracker = make_tracker(profile)
    windows, scores = ref_like(profile, 40)
    feed(tracker, windows, scores)
    path = tmp_path / "quality.json"
    tracker.dump(path)
    data = json.loads(path.read_text())
    assert data["profile_id"] == profile.profile_id
    assert data["signals"]["live_windows"] == 40.0


def test_replay_is_deterministic(profile):
    """Same stream, same timestamps → byte-identical transitions."""
    def run():
        tracker = make_tracker(profile, window_s=10.0)
        bad_w, bad_s = shifted(40)
        ts = feed(tracker, bad_w, bad_s)
        good_w, good_s = ref_like(profile, 120)
        feed(tracker, good_w, good_s, ts=ts + 20.0)
        return [t for s in tracker.states for t in s.transitions]

    assert run() == run()
