"""Alarm policies over window-flag sequences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import (
    ConsecutiveWindows,
    EwmaAlarm,
    MajorityVote,
    PolicyDecision,
)

ALL_POLICIES = [MajorityVote(), ConsecutiveWindows(), EwmaAlarm()]


def test_majority_fires_on_dense_flags():
    decision = MajorityVote(threshold=0.5).decide(np.array([1, 1, 0, 1, 1]))
    assert decision.is_malware
    assert decision.latency_windows == 0


def test_majority_stays_quiet_on_sparse_flags():
    decision = MajorityVote(threshold=0.5).decide(np.array([0, 0, 1, 0, 0, 0]))
    assert not decision.is_malware
    assert decision.latency_windows is None


def test_majority_min_windows_delays_alarm():
    flags = np.array([1, 1, 1, 1])
    eager = MajorityVote(threshold=0.5, min_windows=1).decide(flags)
    patient = MajorityVote(threshold=0.5, min_windows=3).decide(flags)
    assert eager.latency_windows == 0
    assert patient.latency_windows == 2


def test_majority_empty_flags():
    decision = MajorityVote().decide(np.array([], dtype=int))
    assert not decision.is_malware


def test_majority_validates_threshold():
    with pytest.raises(ValueError):
        MajorityVote(threshold=0.0)


def test_consecutive_requires_run():
    policy = ConsecutiveWindows(k=3)
    assert not policy.decide(np.array([1, 1, 0, 1, 1, 0])).is_malware
    decision = policy.decide(np.array([0, 1, 1, 1, 0]))
    assert decision.is_malware
    assert decision.latency_windows == 3


def test_consecutive_k_one_is_any_flag():
    decision = ConsecutiveWindows(k=1).decide(np.array([0, 0, 1]))
    assert decision.is_malware
    assert decision.latency_windows == 2


def test_consecutive_validates_k():
    with pytest.raises(ValueError):
        ConsecutiveWindows(k=0)


def test_ewma_ignores_isolated_flag():
    policy = EwmaAlarm(alpha=0.2, threshold=0.6)
    assert not policy.decide(np.array([0, 1, 0, 0, 0, 0, 0, 0])).is_malware


def test_ewma_fires_on_sustained_activity():
    policy = EwmaAlarm(alpha=0.3, threshold=0.6)
    decision = policy.decide(np.array([0] * 5 + [1] * 10))
    assert decision.is_malware
    assert decision.latency_windows is not None
    assert decision.latency_windows >= 5


def test_ewma_catches_waking_backdoor_faster_than_majority():
    """Dormant-then-active pattern: EWMA reacts to the recent burst,
    cumulative majority is dragged down by the long dormant prefix."""
    flags = np.array([0] * 40 + [1] * 12)
    ewma = EwmaAlarm(alpha=0.3, threshold=0.6).decide(flags)
    majority = MajorityVote(threshold=0.5).decide(flags)
    assert ewma.is_malware
    assert not majority.is_malware


def test_ewma_validates_params():
    with pytest.raises(ValueError):
        EwmaAlarm(alpha=0.0)
    with pytest.raises(ValueError):
        EwmaAlarm(threshold=1.0)


@pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: type(p).__name__)
def test_policies_reject_non_binary_flags(policy):
    with pytest.raises(ValueError):
        policy.decide(np.array([0, 2, 1]))


@pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: type(p).__name__)
def test_all_zero_flags_never_alarm(policy):
    decision = policy.decide(np.zeros(50, dtype=int))
    assert not decision.is_malware
    assert decision.latency_windows is None


@pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: type(p).__name__)
def test_all_one_flags_always_alarm(policy):
    decision = policy.decide(np.ones(50, dtype=int))
    assert decision.is_malware


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=1, max_size=60))
def test_latency_points_at_valid_window(flags):
    """Property: any reported latency indexes a real window, and the
    window at (or before) it is consistent with the alarm."""
    flags = np.array(flags)
    for policy in (MajorityVote(0.5), ConsecutiveWindows(2), EwmaAlarm(0.3, 0.6)):
        decision = policy.decide(flags)
        assert isinstance(decision, PolicyDecision)
        if decision.is_malware:
            assert decision.latency_windows is not None
            assert 0 <= decision.latency_windows < len(flags)
        else:
            assert decision.latency_windows is None
