"""Registry-built models: every (classifier, ensemble) pair trains."""

import pytest

from repro.core.config import CLASSIFIER_NAMES, DetectorConfig
from repro.core.registry import build_model
from repro.features.reduction import FeatureReducer

FAST_ENOUGH = [c for c in CLASSIFIER_NAMES if c != "MLP"]


@pytest.fixture(scope="module")
def reduced(small_split):
    reducer = FeatureReducer(n_features=2).fit(small_split.train)
    return reducer.transform(small_split.train), reducer.transform(small_split.test)


@pytest.mark.parametrize("classifier", FAST_ENOUGH)
@pytest.mark.parametrize("ensemble", ["general", "boosted", "bagging"])
def test_every_grid_cell_trains_and_predicts(classifier, ensemble, reduced):
    train, test = reduced
    config = DetectorConfig(classifier, ensemble, 2, n_estimators=3)
    model = build_model(config)
    model.fit(train.features, train.labels)
    predictions = model.predict(test.features)
    assert predictions.shape == (test.n_samples,)
    proba = model.predict_proba(test.features)
    assert proba.shape == (test.n_samples, 2)
    assert float(proba.min()) >= 0.0
    assert float(proba.max()) <= 1.0


def test_mlp_grid_cell_trains(reduced):
    train, test = reduced
    model = build_model(DetectorConfig("MLP", "general", 2))
    model.fit(train.features, train.labels)
    assert model.predict(test.features).shape == (test.n_samples,)
