"""Property-based tests for verdicts and detection latency.

These pin the algebra of the quorum vote: for *any* 0/1 flag array and
any threshold in (0, 1], the detection latency is None exactly when the
cumulative vote never crosses the threshold, the alarm decision agrees
with the flagged fraction, and a constructed verdict is immutable
evidence with consistent equality and hashing.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runtime import DetectionVerdict, detection_latency_windows

flag_arrays = st.lists(st.integers(0, 1), min_size=0, max_size=64).map(
    lambda bits: np.array(bits, dtype=np.intp)
)
thresholds = st.floats(
    min_value=0.0,
    max_value=1.0,
    exclude_min=True,
    allow_nan=False,
    allow_infinity=False,
)


def naive_latency(flags: np.ndarray, threshold: float) -> int | None:
    """Reference implementation: scan the cumulative vote window by window."""
    for i in range(flags.size):
        if flags[: i + 1].mean() >= threshold:
            return i
    return None


@settings(max_examples=200)
@given(flags=flag_arrays, threshold=thresholds)
def test_latency_matches_naive_scan(flags, threshold):
    assert detection_latency_windows(flags, threshold) == naive_latency(
        flags, threshold
    )


@settings(max_examples=200)
@given(flags=flag_arrays, threshold=thresholds)
def test_latency_none_iff_vote_never_crosses(flags, threshold):
    latency = detection_latency_windows(flags, threshold)
    cumulative = [
        flags[: i + 1].mean() >= threshold for i in range(flags.size)
    ]
    if latency is None:
        assert not any(cumulative)
    else:
        assert cumulative[latency]
        assert not any(cumulative[:latency])


@settings(max_examples=200)
@given(flags=flag_arrays, threshold=thresholds)
def test_verdict_alarm_agrees_with_fraction(flags, threshold):
    verdict = DetectionVerdict.from_flags("app", flags, threshold)
    expected_fraction = float(flags.mean()) if flags.size else 0.0
    assert verdict.malware_fraction == expected_fraction
    assert verdict.is_malware == (verdict.malware_fraction >= threshold)
    assert verdict.n_windows == flags.size
    assert verdict.confidence == 1.0
    assert not verdict.degraded


@settings(max_examples=100)
@given(flags=flag_arrays, threshold=thresholds)
def test_verdict_flags_read_only_and_decoupled(flags, threshold):
    source = flags.copy()
    verdict = DetectionVerdict.from_flags("app", source, threshold)
    with pytest.raises(ValueError):
        verdict.window_flags[:] = 1
    if source.size:
        source[0] = 1 - source[0]  # mutating the caller's array is harmless
        assert np.array_equal(verdict.window_flags, flags)


@settings(max_examples=100)
@given(flags=flag_arrays, threshold=thresholds)
def test_verdict_eq_hash_consistent(flags, threshold):
    a = DetectionVerdict.from_flags("app", flags, threshold)
    b = DetectionVerdict.from_flags("app", flags.copy(), threshold)
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1
    different = DetectionVerdict.from_flags("other_app", flags, threshold)
    assert a != different


@settings(max_examples=100)
@given(
    flags=flag_arrays,
    threshold=thresholds,
    lost=st.integers(0, 32),
)
def test_degraded_verdict_confidence_accounting(flags, threshold, lost):
    verdict = DetectionVerdict.from_flags(
        "app", flags, threshold, n_windows_lost=lost
    )
    requested = flags.size + lost
    assert verdict.n_windows_requested == requested
    if requested:
        assert verdict.confidence == flags.size / requested
    else:
        assert verdict.confidence == 1.0
    assert verdict.degraded == (lost > 0)


def test_from_flags_rejects_bad_inputs():
    with pytest.raises(ValueError):
        DetectionVerdict.from_flags("app", np.array([1]), 0.0)
    with pytest.raises(ValueError):
        DetectionVerdict.from_flags("app", np.array([1]), 1.5)
    with pytest.raises(ValueError):
        DetectionVerdict.from_flags("app", np.array([1]), 0.5, n_windows_lost=-1)
