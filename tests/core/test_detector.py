"""End-to-end detector pipeline."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector


@pytest.fixture(scope="module")
def fitted(small_split):
    detector = HMDDetector(DetectorConfig("REPTree", "general", 4))
    return detector.fit(small_split.train)


def test_detector_name(fitted):
    assert fitted.name == "4HPC-REPTree"


def test_monitored_events_match_budget(fitted):
    assert len(fitted.monitored_events) == 4


def test_monitored_events_before_fit_raises():
    detector = HMDDetector(DetectorConfig("J48", "general", 4))
    with pytest.raises(RuntimeError):
        detector.monitored_events


def test_predict_shape(fitted, small_split):
    predictions = fitted.predict(small_split.test)
    assert predictions.shape == (small_split.test.n_samples,)
    assert set(np.unique(predictions)) <= {0, 1}


def test_decision_scores_in_unit_interval(fitted, small_split):
    scores = fitted.decision_scores(small_split.test)
    assert np.all(scores >= 0) and np.all(scores <= 1)


def test_evaluate_beats_chance(fitted, small_split):
    result = fitted.evaluate(small_split.test)
    assert result.accuracy > 0.6
    assert result.auc > 0.6
    assert result.performance == pytest.approx(result.accuracy * result.auc)


def test_predict_before_fit_raises(small_split):
    detector = HMDDetector(DetectorConfig("J48", "general", 4))
    with pytest.raises(RuntimeError):
        detector.predict(small_split.test)


def test_predict_windows_single_row(fitted, small_split):
    reduced = fitted.reducer.transform(small_split.test)
    flag = fitted.predict_windows(reduced.features[0])
    assert flag.shape == (1,)


def test_predict_windows_wrong_width(fitted):
    with pytest.raises(ValueError):
        fitted.predict_windows(np.zeros((3, 7)))


def test_ranking_dataset_override(small_split, small_corpus):
    """The matrix shares one ranking across detectors, like Table 1."""
    detector = HMDDetector(DetectorConfig("OneR", "general", 2))
    detector.fit(small_split.train, ranking_dataset=small_split.train)
    assert len(detector.monitored_events) == 2


def test_ensemble_detector_pipeline(small_split):
    detector = HMDDetector(DetectorConfig("OneR", "boosted", 2, n_estimators=5))
    detector.fit(small_split.train)
    result = detector.evaluate(small_split.test)
    assert 0.0 <= result.accuracy <= 1.0


def test_detectors_use_ranking_prefix(small_split):
    d2 = HMDDetector(DetectorConfig("J48", "general", 2)).fit(small_split.train)
    d4 = HMDDetector(DetectorConfig("J48", "general", 4)).fit(small_split.train)
    assert d4.monitored_events[:2] == d2.monitored_events


def test_grade_windows_matches_separate_passes(fitted, small_split):
    """One probability pass must reproduce both dedicated window APIs."""
    reduced = fitted.reducer.transform(small_split.test)
    windows = np.asarray(reduced.features[:40], dtype=float)
    flags, scores = fitted.grade_windows(windows)
    assert np.array_equal(flags, fitted.predict_windows(windows))
    assert np.array_equal(scores, fitted.decision_scores_windows(windows))
    assert np.array_equal(flags, (scores >= 0.5).astype(flags.dtype))


@pytest.mark.parametrize("ensemble", ["general", "boosted", "bagging"])
def test_grade_windows_across_ensembles(small_split, ensemble):
    detector = HMDDetector(
        DetectorConfig("OneR", ensemble, 2, n_estimators=5)
    ).fit(small_split.train)
    reduced = detector.reducer.transform(small_split.test)
    windows = np.asarray(reduced.features[:20], dtype=float)
    flags, scores = detector.grade_windows(windows)
    assert np.array_equal(flags, detector.predict_windows(windows))
    assert np.array_equal(scores, detector.decision_scores_windows(windows))


def test_grade_windows_empty_and_invalid(fitted):
    flags, scores = fitted.grade_windows(np.zeros((0, 4)))
    assert flags.shape == (0,) and scores.shape == (0,)
    with pytest.raises(ValueError):
        fitted.grade_windows(np.zeros((3, 7)))
    with pytest.raises(RuntimeError):
        HMDDetector(DetectorConfig("J48", "general", 4)).grade_windows(
            np.zeros((1, 4))
        )
