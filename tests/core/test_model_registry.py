"""Model registry: save fitted detectors, load them back bit-identical.

``repro.registry.ModelRegistry`` is the deployment contract for the
CLI's warm-start path (``train`` → ``serve --model-id``): these tests
pin content-addressed ids, idempotent re-save, id/prefix/tag lookup,
mmap-backed loads, corruption detection, and — the whole point —
byte-equal decision scores across every (classifier, ensemble) grid
cell, with zero refit.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import CLASSIFIER_NAMES, DetectorConfig
from repro.core.detector import HMDDetector
from repro.registry import ModelRegistry, RegistryError, model_id

FAST_ENOUGH = [c for c in CLASSIFIER_NAMES if c != "MLP"]


@pytest.fixture(scope="module")
def fitted(small_split):
    """One cheap fitted detector shared by the mechanics tests."""
    config = DetectorConfig("REPTree", "boosted", 2, n_estimators=3)
    return HMDDetector(config).fit(small_split.train)


@pytest.mark.parametrize("classifier", FAST_ENOUGH)
@pytest.mark.parametrize("ensemble", ["general", "boosted", "bagging"])
def test_every_grid_cell_round_trips_bit_identical(
    classifier, ensemble, small_split, tmp_path
):
    config = DetectorConfig(classifier, ensemble, 2, n_estimators=3)
    detector = HMDDetector(config).fit(small_split.train)
    registry = ModelRegistry(tmp_path / "reg")
    entry = registry.save_detector(detector)
    loaded = registry.load_detector(entry.model_id)
    assert loaded.fitted_ and loaded.config == config
    assert loaded.monitored_events == detector.monitored_events
    want = detector.decision_scores(small_split.test)
    got = loaded.decision_scores(small_split.test)
    assert want.tobytes() == got.tobytes()


def test_mlp_round_trips_bit_identical(small_split, tmp_path):
    config = DetectorConfig("MLP", "general", 2)
    detector = HMDDetector(config).fit(small_split.train)
    registry = ModelRegistry(tmp_path)
    entry = registry.save_detector(detector)
    loaded = registry.load_detector(entry.model_id)
    want = detector.decision_scores(small_split.test)
    assert want.tobytes() == loaded.decision_scores(small_split.test).tobytes()


def test_loaded_arrays_are_memory_mapped(fitted, tmp_path):
    registry = ModelRegistry(tmp_path)
    entry = registry.save_detector(fitted)
    loaded = registry.load_detector(entry.model_id, mmap=True)
    flats = [est._flat for est in loaded.model.estimators_]
    assert flats and all(
        isinstance(f.threshold, np.memmap) for f in flats
    )
    # read-only by construction: a stray write must fail loudly, not
    # corrupt the shared on-disk payload
    with pytest.raises((ValueError, OSError)):
        flats[0].threshold[0] = 0.0
    plain = registry.load_detector(entry.model_id, mmap=False)
    assert not isinstance(plain.model.estimators_[0]._flat.threshold, np.memmap)


def test_resave_is_a_manifest_noop_with_tag_union(fitted, tmp_path):
    registry = ModelRegistry(tmp_path)
    first = registry.save_detector(fitted, tags=["prod"])
    payload = registry.root / "models" / first.model_id / "arrays.npz"
    before = payload.stat().st_mtime_ns
    again = registry.save_detector(fitted, tags=["canary"])
    assert again.model_id == first.model_id
    assert len(registry) == 1
    assert set(registry.resolve(first.model_id).tags) == {"canary", "prod"}
    # idempotent: the payload was not rewritten
    assert payload.stat().st_mtime_ns == before


def test_resolve_by_prefix_and_tag(fitted, small_split, tmp_path):
    registry = ModelRegistry(tmp_path)
    entry = registry.save_detector(fitted, tags=["prod", "all"])
    other = HMDDetector(
        DetectorConfig("OneR", "general", 2)
    ).fit(small_split.train)
    registry.save_detector(other, tags=["baseline", "all"])
    assert registry.resolve(entry.model_id[:10]).model_id == entry.model_id
    assert registry.resolve("prod").model_id == entry.model_id
    with pytest.raises(RegistryError, match="no model matches"):
        registry.resolve("nope")
    with pytest.raises(RegistryError, match="no model matches"):
        registry.resolve("")
    with pytest.raises(RegistryError, match="ambiguous"):
        registry.resolve("all")


def test_corrupt_payload_raises_not_refits(fitted, tmp_path):
    registry = ModelRegistry(tmp_path)
    entry = registry.save_detector(fitted)
    payload = registry.root / "models" / entry.model_id / "arrays.npz"
    payload.write_bytes(payload.read_bytes()[: payload.stat().st_size // 2])
    with pytest.raises(RegistryError):
        registry.load_detector(entry.model_id)


def test_verify_detects_bit_flip(fitted, tmp_path):
    registry = ModelRegistry(tmp_path)
    entry = registry.save_detector(fitted)
    spec_path = registry.root / "models" / entry.model_id / "spec.json"
    spec = json.loads(spec_path.read_text())
    spec["ranking"]["scores"][0] += 1.0
    spec_path.write_text(json.dumps(spec))
    with pytest.raises(RegistryError, match="content mismatch"):
        registry.load_detector(entry.model_id, verify=True)


def test_unfitted_detector_refuses_to_save(tmp_path):
    registry = ModelRegistry(tmp_path)
    with pytest.raises(RegistryError, match="unfitted"):
        registry.save_detector(HMDDetector(DetectorConfig("OneR")))


def test_model_id_is_content_addressed():
    spec = {"kind": "X", "params": {"a": 1}}
    arrays = {"w": np.arange(4, dtype=float)}
    base = model_id(spec, arrays)
    assert base == model_id({"params": {"a": 1}, "kind": "X"}, dict(arrays))
    assert base != model_id(spec, {"w": np.arange(4, dtype=float) + 1})
    assert base != model_id({"kind": "X", "params": {"a": 2}}, arrays)
    # dtype and shape are part of the identity, not just the bytes
    assert base != model_id(spec, {"w": np.arange(4, dtype=float).reshape(2, 2)})


def test_save_and_load_bare_classifier(blobs, tmp_path):
    from repro.ml import JRip

    features, labels = blobs
    model = JRip().fit(features, labels)
    registry = ModelRegistry(tmp_path)
    entry = registry.save_classifier(model, tags=["rules"])
    loaded = registry.load_classifier("rules")
    assert (
        model.predict_proba(features).tobytes()
        == loaded.predict_proba(features).tobytes()
    )
    with pytest.raises(RegistryError, match="bare classifier"):
        registry.load_detector(entry.model_id)


def test_malformed_manifest_raises(tmp_path):
    registry = ModelRegistry(tmp_path)
    registry.manifest_path.parent.mkdir(parents=True, exist_ok=True)
    registry.manifest_path.write_text("{not json")
    with pytest.raises(RegistryError):
        registry.entries()
