"""Fault-tolerant fleet monitoring: differential and property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.core.fleet import FleetJob, FleetMonitor, RetryPolicy
from repro.core.runtime import DetectionVerdict, RuntimeMonitor
from repro.hpc.counters import CounterCapacityError
from repro.hpc.faults import FaultPlan
from repro.hpc.lxc import ContainerPool
from repro.obs import Registry, Tracer
from repro.workloads.benign import BENIGN_FAMILIES
from repro.workloads.dataset import MALWARE
from repro.workloads.malware import MALWARE_FAMILIES

POOL_SEED = 5
N_WINDOWS = 10


@pytest.fixture(scope="module")
def detector4(small_split):
    return HMDDetector(DetectorConfig("REPTree", "general", 4)).fit(small_split.train)


@pytest.fixture(scope="module")
def jobs():
    rng = np.random.default_rng(17)
    jobs = []
    for family in (BENIGN_FAMILIES + MALWARE_FAMILIES)[::3]:
        app = family.instantiate(rng)[0]
        jobs.append(FleetJob(app, N_WINDOWS, family.label == MALWARE))
    return jobs


def no_sleep(_seconds: float) -> None:
    pass


# -- construction ------------------------------------------------------


def test_fleet_rejects_over_budget_detector(small_split):
    wide = HMDDetector(DetectorConfig("J48", "general", 16)).fit(small_split.train)
    with pytest.raises(CounterCapacityError):
        FleetMonitor(wide, n_counters=4)


def test_fleet_rejects_bad_threshold(detector4):
    with pytest.raises(ValueError):
        FleetMonitor(detector4, vote_threshold=0.0)


def test_fleet_rejects_bad_workers(detector4):
    with pytest.raises(ValueError):
        FleetMonitor(detector4, workers=0)


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(timeout_s=-1.0)


def test_retry_policy_backoff_deterministic_and_bounded():
    policy = RetryPolicy(
        base_backoff_s=0.1, backoff_multiplier=2.0, max_backoff_s=0.5, jitter=0.2
    )
    values = [
        policy.backoff_s(i, np.random.default_rng(42)) for i in range(6)
    ]
    again = [policy.backoff_s(i, np.random.default_rng(42)) for i in range(6)]
    assert values == again
    for i, value in enumerate(values):
        nominal = min(0.1 * 2.0**i, 0.5)
        assert nominal * 0.8 <= value <= nominal * 1.2


def test_retry_policy_backoff_finite_at_huge_retry_counts():
    """multiplier ** index overflows float range long before the cap is
    applied; the clamp must happen in log space so a pathological retry
    count still sleeps max_backoff_s, not inf (or raises OverflowError)."""
    policy = RetryPolicy(jitter=0.0)
    for index in (100, 1_000, 10_000, 2**20):
        value = policy.backoff_s(index, np.random.default_rng(0))
        assert np.isfinite(value)
        assert value == policy.max_backoff_s
    jittery = RetryPolicy(jitter=0.1)
    value = jittery.backoff_s(10_000, np.random.default_rng(0))
    assert np.isfinite(value)
    assert value <= jittery.max_backoff_s * 1.1


@settings(deadline=None, max_examples=60)
@given(
    base=st.floats(1e-6, 10.0),
    multiplier=st.floats(1.0, 16.0),
    max_backoff=st.floats(1e-6, 100.0),
    jitter=st.floats(0.0, 0.99),
    index=st.integers(0, 10_000),
)
def test_retry_policy_backoff_properties(base, multiplier, max_backoff, jitter, index):
    """Finite always; bounded by max_backoff_s * (1 + jitter); monotone
    non-decreasing in the retry index when jitter is off."""
    policy = RetryPolicy(
        base_backoff_s=base,
        backoff_multiplier=multiplier,
        max_backoff_s=max_backoff,
        jitter=jitter,
    )
    rng = np.random.default_rng(7)
    value = policy.backoff_s(index, rng)
    assert np.isfinite(value)
    assert 0.0 <= value <= max_backoff * (1.0 + jitter) * (1.0 + 1e-12)
    if jitter == 0.0 and index > 0:
        assert value >= policy.backoff_s(index - 1, rng)


# -- differential: fleet vs serial -------------------------------------


def test_fleet_matches_serial(detector4, jobs):
    """faults=None ⇒ bit-identical to a serial RuntimeMonitor sweep."""
    serial = RuntimeMonitor(detector4, n_counters=4)
    pool = ContainerPool(seed=POOL_SEED)
    serial_verdicts = [
        serial.monitor(job.app, job.n_windows, pool, job.is_malware) for job in jobs
    ]
    fleet = FleetMonitor(detector4, workers=4, pool_seed=POOL_SEED)
    fleet_verdicts = fleet.monitor_fleet(jobs)
    assert len(fleet_verdicts) == len(serial_verdicts)
    for serial_v, fleet_v in zip(serial_verdicts, fleet_verdicts):
        assert serial_v == fleet_v
        assert hash(serial_v) == hash(fleet_v)
        assert not fleet_v.degraded
        assert fleet_v.confidence == 1.0
        assert fleet_v.n_windows_lost == 0


def test_fleet_serial_worker_matches_threaded(detector4, jobs):
    one = FleetMonitor(detector4, workers=1, pool_seed=POOL_SEED).monitor_fleet(jobs)
    four = FleetMonitor(detector4, workers=4, pool_seed=POOL_SEED).monitor_fleet(jobs)
    assert one == four


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    crash=st.floats(0.0, 1.0),
    glitch=st.floats(0.0, 1.0),
    drop=st.floats(0.0, 0.6),
    permanent=st.floats(0.0, 1.0),
)
def test_fleet_total_under_any_fault_plan(
    detector4, jobs, seed, crash, glitch, drop, permanent
):
    """Any seeded FaultPlan: one verdict per app, in order, never raises."""
    plan = FaultPlan(
        seed=seed,
        crash_rate=crash,
        glitch_rate=glitch,
        drop_rate=drop,
        permanent_rate=permanent,
    )
    fleet = FleetMonitor(
        detector4,
        workers=3,
        pool_seed=POOL_SEED,
        faults=plan,
        retry=RetryPolicy(max_attempts=2, base_backoff_s=0.0),
        sleep=no_sleep,
    )
    verdicts = fleet.monitor_fleet(jobs)
    assert len(verdicts) == len(jobs)
    for job, verdict in zip(jobs, verdicts):
        assert isinstance(verdict, DetectionVerdict)
        assert verdict.app_name == job.app.name
        assert 0.0 <= verdict.confidence <= 1.0
        assert 0 <= verdict.n_windows_lost <= job.n_windows
        assert verdict.n_windows + verdict.n_windows_lost <= job.n_windows
        if verdict.n_windows_lost:
            assert verdict.degraded


def test_fleet_faulted_run_replays_from_seed(detector4, jobs):
    plan = FaultPlan(seed=77, crash_rate=0.4, glitch_rate=0.3, drop_rate=0.15)
    kwargs = dict(
        pool_seed=POOL_SEED,
        faults=plan,
        retry=RetryPolicy(max_attempts=3, base_backoff_s=0.0),
        sleep=no_sleep,
    )
    first = FleetMonitor(detector4, workers=4, **kwargs).monitor_fleet(jobs)
    second = FleetMonitor(detector4, workers=2, **kwargs).monitor_fleet(jobs)
    assert first == second


# -- fault semantics ---------------------------------------------------


def test_fleet_degrades_when_every_attempt_crashes(detector4, jobs):
    sleeps = []
    metrics = Registry()
    fleet = FleetMonitor(
        detector4,
        workers=2,
        pool_seed=POOL_SEED,
        faults=FaultPlan(seed=1, crash_rate=1.0),
        retry=RetryPolicy(max_attempts=3, base_backoff_s=0.001),
        metrics=metrics,
        sleep=sleeps.append,
    )
    verdicts = fleet.monitor_fleet(jobs)
    assert all(v.degraded for v in verdicts)
    assert all(v.n_windows_lost > 0 for v in verdicts)
    snap = metrics.snapshot()["counters"]
    assert snap["fleet_faults_crash_total"]["value"] == 3 * len(jobs)
    assert snap["fleet_retries_total"]["value"] == 2 * len(jobs)
    assert snap["fleet_degraded_verdicts_total"]["value"] == len(jobs)
    assert len(sleeps) == 2 * len(jobs)
    assert all(s >= 0 for s in sleeps)


def test_fleet_drop_only_degrades_without_retrying(detector4, jobs):
    metrics = Registry()
    fleet = FleetMonitor(
        detector4,
        workers=2,
        pool_seed=POOL_SEED,
        faults=FaultPlan(seed=4, drop_rate=0.4),
        metrics=metrics,
        sleep=no_sleep,
    )
    verdicts = fleet.monitor_fleet(jobs)
    snap = metrics.snapshot()["counters"]
    assert snap["fleet_retries_total"]["value"] == 0
    for verdict in verdicts:
        assert verdict.n_windows + verdict.n_windows_lost == N_WINDOWS
        assert verdict.degraded == (verdict.n_windows_lost > 0)
    assert any(v.degraded for v in verdicts)


def test_fleet_permanent_fault_yields_empty_degraded_verdict(detector4, jobs):
    metrics = Registry()
    fleet = FleetMonitor(
        detector4,
        workers=2,
        pool_seed=POOL_SEED,
        faults=FaultPlan(seed=6, permanent_rate=1.0),
        metrics=metrics,
        sleep=no_sleep,
    )
    verdicts = fleet.monitor_fleet(jobs)
    for verdict in verdicts:
        assert verdict.degraded
        assert verdict.n_windows == 0
        assert verdict.n_windows_lost == N_WINDOWS
        assert verdict.confidence == 0.0
        assert not verdict.is_malware
    snap = metrics.snapshot()["counters"]
    assert snap["fleet_faults_permanent_total"]["value"] == len(jobs)
    assert snap["fleet_retries_total"]["value"] == 0


def test_fleet_timeout_stops_retrying(detector4, jobs):
    metrics = Registry()
    fleet = FleetMonitor(
        detector4,
        workers=1,
        pool_seed=POOL_SEED,
        faults=FaultPlan(seed=1, crash_rate=1.0),
        retry=RetryPolicy(max_attempts=5, base_backoff_s=0.0, timeout_s=0.0),
        metrics=metrics,
        sleep=no_sleep,
    )
    verdicts = fleet.monitor_fleet(jobs)
    assert all(v.degraded for v in verdicts)
    assert metrics.snapshot()["counters"]["fleet_retries_total"]["value"] == 0


def test_fleet_salvages_partial_crash_evidence(detector4):
    """A crash late in the run still leaves classifiable windows."""
    app = next(
        f for f in MALWARE_FAMILIES if f.name == "dos_flooder"
    ).instantiate(np.random.default_rng(0))[0]
    plan = FaultPlan(seed=11, crash_rate=1.0)
    fleet = FleetMonitor(
        detector4,
        workers=1,
        pool_seed=POOL_SEED,
        faults=plan,
        retry=RetryPolicy(max_attempts=1),
        sleep=no_sleep,
    )
    (verdict,) = fleet.monitor_fleet([FleetJob(app, 30, True)])
    crash_after = plan.draw(app.name, 0, 30).crash_after
    assert verdict.n_windows == crash_after
    assert verdict.n_windows_lost == 30 - crash_after
    assert verdict.degraded


# -- observability -----------------------------------------------------


def test_fleet_obs_wiring(detector4, jobs):
    tracer = Tracer()
    metrics = Registry()
    fleet = FleetMonitor(
        detector4,
        workers=2,
        pool_seed=POOL_SEED,
        faults=FaultPlan(seed=2, crash_rate=0.5, drop_rate=0.2),
        retry=RetryPolicy(max_attempts=2, base_backoff_s=0.001),
        tracer=tracer,
        metrics=metrics,
        sleep=no_sleep,
    )
    verdicts = fleet.monitor_fleet(jobs)
    events = tracer.events
    spans = [e for e in events if e["type"] == "span"]
    names = {e["name"] for e in events}
    assert {"fleet.run", "fleet.app", "fleet.verdict"} <= names
    app_spans = [s for s in spans if s["name"] == "fleet.app"]
    assert len(app_spans) == len(jobs)
    assert all("attempts" in s["attrs"] for s in app_spans)
    snap = metrics.snapshot()
    assert snap["counters"]["fleet_apps_total"]["value"] == len(jobs)
    assert snap["counters"]["fleet_windows_total"]["value"] == sum(
        v.n_windows for v in verdicts
    )
    retries = snap["counters"]["fleet_retries_total"]["value"]
    assert snap["histograms"]["fleet_backoff_sleep_seconds"]["count"] == retries


def test_fleet_accepts_tuple_jobs(detector4, jobs):
    fleet = FleetMonitor(detector4, workers=1, pool_seed=POOL_SEED)
    as_tuples = [(j.app, j.n_windows, j.is_malware) for j in jobs[:2]]
    assert fleet.monitor_fleet(as_tuples) == fleet.monitor_fleet(jobs[:2])


# -- in-process health hook --------------------------------------------


def test_fleet_with_health_is_bit_identical_to_serial(detector4, jobs):
    """Enabling health evaluation must not perturb verdicts."""
    from repro.obs import HealthEvaluator, parse_alert_spec

    serial = RuntimeMonitor(detector4, n_counters=4)
    pool = ContainerPool(seed=POOL_SEED)
    serial_verdicts = [
        serial.monitor(job.app, job.n_windows, pool, job.is_malware) for job in jobs
    ]
    health = HealthEvaluator(rules=[parse_alert_spec("degraded_ratio>=0.5:critical")])
    fleet = FleetMonitor(detector4, workers=4, pool_seed=POOL_SEED, health=health)
    fleet_verdicts = fleet.monitor_fleet(jobs)
    assert fleet_verdicts == serial_verdicts
    assert health.window.total_verdicts == len(jobs)
    assert health.window.total_degraded == 0
    assert not health.critical_fired()


def test_fleet_health_observes_faulted_run(detector4, jobs):
    from repro.obs import HealthEvaluator, parse_alert_spec

    health = HealthEvaluator(rules=[parse_alert_spec("degraded_ratio>=0.05:critical")])
    fleet = FleetMonitor(
        detector4,
        workers=2,
        pool_seed=POOL_SEED,
        faults=FaultPlan(seed=77, crash_rate=0.4, glitch_rate=0.3, drop_rate=0.15),
        sleep=no_sleep,
        health=health,
    )
    verdicts = fleet.monitor_fleet(jobs)
    assert health.window.total_verdicts == len(jobs)
    assert health.window.total_degraded == sum(v.degraded for v in verdicts)
    assert health.window.total_degraded > 0
    assert health.critical_fired()
    # Signal values agree with the verdicts the run actually produced.
    assert health.last_values["verdicts"] == float(len(jobs))


def test_fleet_trace_replay_yields_identical_alert_transitions(detector4, jobs):
    """The acceptance contract: one faulted run, many identical watches."""
    from repro.obs import HealthEvaluator, parse_alert_spec

    tracer = Tracer()
    fleet = FleetMonitor(
        detector4,
        workers=2,
        pool_seed=POOL_SEED,
        faults=FaultPlan(seed=77, crash_rate=0.4, glitch_rate=0.3, drop_rate=0.15),
        sleep=no_sleep,
        tracer=tracer,
    )
    fleet.monitor_fleet(jobs)
    events = [e for e in tracer.events if e["name"] == "fleet.verdict"]
    assert events

    def replay():
        evaluator = HealthEvaluator(
            rules=[parse_alert_spec("degraded_ratio>=0.05:critical:0:0.01")]
        )
        for event in events:
            evaluator.ingest(event)
        (state,) = evaluator.states
        return state.transitions

    first, second = replay(), replay()
    assert first == second
    assert first[0]["state"] == "firing"
    # Transition timestamps come from the trace, not the watcher's clock.
    trace_ts = {e["ts"] for e in events}
    assert all(t["ts"] in trace_ts for t in first)


def test_fleet_quality_tracking_keeps_verdicts_identical(
    detector4, jobs, small_split
):
    """The quality hook observes fleet executions without touching them."""
    from repro.obs import QualityTracker, build_reference_profile

    profile = build_reference_profile(detector4, small_split.train)
    baseline = FleetMonitor(
        detector4, workers=4, pool_seed=POOL_SEED
    ).monitor_fleet(jobs)
    tracker = QualityTracker(profile, window_s=1e9)
    tracked = FleetMonitor(
        detector4, workers=4, pool_seed=POOL_SEED, quality=tracker
    ).monitor_fleet(jobs)
    assert tracked == baseline
    assert tracker.total_executions == len(jobs)
    assert tracker.total_windows == sum(job.n_windows for job in jobs)
