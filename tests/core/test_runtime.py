"""Run-time streaming monitor."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.core.runtime import DetectionVerdict, RuntimeMonitor
from repro.hpc.counters import CounterCapacityError
from repro.hpc.lxc import ContainerPool
from repro.workloads.benign import BENIGN_FAMILIES
from repro.workloads.malware import MALWARE_FAMILIES


@pytest.fixture(scope="module")
def detector4(small_split):
    return HMDDetector(DetectorConfig("REPTree", "general", 4)).fit(small_split.train)


def test_monitor_rejects_unfitted():
    with pytest.raises(RuntimeError):
        RuntimeMonitor(HMDDetector(DetectorConfig("J48", "general", 4)))


def test_monitor_rejects_over_budget_detector(small_split):
    """The paper's core constraint: 16 events will not fit 4 registers."""
    wide = HMDDetector(DetectorConfig("J48", "general", 16)).fit(small_split.train)
    with pytest.raises(CounterCapacityError):
        RuntimeMonitor(wide, n_counters=4)


def test_monitor_accepts_exact_fit(detector4):
    RuntimeMonitor(detector4, n_counters=4)  # must not raise


def test_monitor_rejects_bad_threshold(detector4):
    with pytest.raises(ValueError):
        RuntimeMonitor(detector4, vote_threshold=0.0)


def test_monitor_produces_verdict(detector4):
    monitor = RuntimeMonitor(detector4, n_counters=4)
    app = BENIGN_FAMILIES[0].instantiate(np.random.default_rng(0))[0]
    verdict = monitor.monitor(app, 20, ContainerPool(seed=1), is_malware=False)
    assert isinstance(verdict, DetectionVerdict)
    assert verdict.n_windows == 20
    assert 0.0 <= verdict.malware_fraction <= 1.0


def test_monitor_flags_obvious_malware(detector4):
    """A fresh flooder instance should trip the detector."""
    monitor = RuntimeMonitor(detector4, n_counters=4)
    flooder_family = next(f for f in MALWARE_FAMILIES if f.name == "dos_flooder")
    hits = 0
    rng = np.random.default_rng(7)
    for trial in range(5):
        app = flooder_family.instantiate(rng)[0]
        verdict = monitor.monitor(app, 30, ContainerPool(seed=trial), is_malware=True)
        hits += verdict.is_malware
    assert hits >= 3


def test_monitor_passes_calm_benign(detector4):
    monitor = RuntimeMonitor(detector4, n_counters=4)
    telecomm = next(f for f in BENIGN_FAMILIES if f.name == "mibench_telecomm")
    passes = 0
    rng = np.random.default_rng(8)
    for trial in range(5):
        app = telecomm.instantiate(rng)[0]
        verdict = monitor.monitor(app, 30, ContainerPool(seed=100 + trial), is_malware=False)
        passes += not verdict.is_malware
    assert passes >= 3


def test_detection_latency_reported(detector4):
    monitor = RuntimeMonitor(detector4, n_counters=4, vote_threshold=0.3)
    flooder = next(f for f in MALWARE_FAMILIES if f.name == "dos_flooder")
    app = flooder.instantiate(np.random.default_rng(9))[0]
    verdict = monitor.monitor(app, 30, ContainerPool(seed=11), is_malware=True)
    latency = monitor.detection_latency_windows(verdict)
    if verdict.window_flags.any():
        assert latency is not None
        assert 0 <= latency < 30


def test_verdict_flags_are_read_only():
    verdict = DetectionVerdict(
        app_name="x", window_flags=np.array([0, 1, 0]),
        malware_fraction=1 / 3, is_malware=False,
    )
    with pytest.raises(ValueError):
        verdict.window_flags[0] = 1


def test_verdict_copies_constructor_array():
    source = np.array([0, 1, 0])
    verdict = DetectionVerdict(
        app_name="x", window_flags=source,
        malware_fraction=1 / 3, is_malware=False,
    )
    source[0] = 1  # caller mutating its own array must not rewrite evidence
    assert verdict.window_flags[0] == 0


def test_verdict_equality_and_hash():
    make = lambda flags: DetectionVerdict(
        app_name="x", window_flags=np.array(flags),
        malware_fraction=0.5, is_malware=True,
    )
    a, b, c = make([0, 1]), make([0, 1]), make([1, 1])
    assert a == b  # must not raise "truth value is ambiguous"
    assert a != c
    assert a != "not a verdict"
    assert hash(a) == hash(b)


def test_detection_latency_none_when_never_flagged(detector4):
    monitor = RuntimeMonitor(detector4, n_counters=4)
    verdict = DetectionVerdict(
        app_name="x", window_flags=np.zeros(10, dtype=int),
        malware_fraction=0.0, is_malware=False,
    )
    assert monitor.detection_latency_windows(verdict) is None


# ----------------------------------------------------------------------
# run-time observability: the paper's detection-latency metric, measured
# ----------------------------------------------------------------------

def test_monitor_metrics_expose_window_latency_and_detection_latency(detector4):
    from repro.obs import Registry, Tracer

    tracer, metrics = Tracer(), Registry()
    monitor = RuntimeMonitor(detector4, n_counters=4, tracer=tracer, metrics=metrics)
    app = MALWARE_FAMILIES[0].instantiate(np.random.default_rng(3))[0]
    verdict = monitor.monitor(app, 16, ContainerPool(seed=5), is_malware=True)

    snap = metrics.snapshot()
    # Per-window classification latency histogram: one observation per window.
    hist = snap["histograms"]["monitor_window_classify_seconds"]
    assert hist["count"] == 16
    assert hist["sum"] > 0.0
    # Detection-latency gauge mirrors detection_latency_windows exactly.
    latency = monitor.detection_latency_windows(verdict)
    gauge = snap["gauges"]["monitor_detection_latency_windows"]["value"]
    assert gauge == (-1 if latency is None else latency)
    counters = {n: d["value"] for n, d in snap["counters"].items()}
    assert counters["monitor_windows_total"] == 16.0
    assert counters["monitor_apps_total"] == 1.0
    assert counters["monitor_alarms_total"] == (1.0 if verdict.is_malware else 0.0)


def test_monitor_traces_spans_and_verdict_stream(detector4):
    from repro.obs import Tracer

    tracer = Tracer()
    monitor = RuntimeMonitor(detector4, n_counters=4, tracer=tracer)
    app = BENIGN_FAMILIES[0].instantiate(np.random.default_rng(4))[0]
    monitor.monitor(app, 8, ContainerPool(seed=6), is_malware=False)

    spans = {e["name"] for e in tracer.events if e["type"] == "span"}
    assert {"monitor.app", "monitor.execute", "monitor.classify"} <= spans
    (verdict_event,) = [e for e in tracer.events if e["type"] == "event"]
    assert verdict_event["name"] == "monitor.verdict"
    attrs = verdict_event["attrs"]
    assert attrs["app"] == app.name
    assert attrs["n_windows"] == 8
    assert "detection_latency_windows" in attrs
    # execute/classify nest under the per-app span.
    app_span = next(e for e in tracer.events if e["name"] == "monitor.app")
    child = next(e for e in tracer.events if e["name"] == "monitor.classify")
    assert child["parent_id"] == app_span["span_id"]


def test_monitor_verdict_unchanged_by_instrumentation(detector4):
    """Telemetry must observe, never perturb: verdicts are bit-identical
    with and without an enabled tracer/registry."""
    from repro.obs import Registry, Tracer

    app = MALWARE_FAMILIES[1].instantiate(np.random.default_rng(9))[0]
    plain = RuntimeMonitor(detector4, n_counters=4).monitor(
        app, 12, ContainerPool(seed=8), is_malware=True
    )
    instrumented = RuntimeMonitor(
        detector4, n_counters=4, tracer=Tracer(), metrics=Registry()
    ).monitor(app, 12, ContainerPool(seed=8), is_malware=True)
    assert plain == instrumented


def test_monitor_window_histogram_records_one_entry_per_window(detector4):
    """Regression: the per-window latency histogram must record exactly
    n_windows observations (now bulk-recorded via observe_many instead
    of an O(n) Python loop)."""
    from repro.obs import Registry

    metrics = Registry()
    monitor = RuntimeMonitor(detector4, n_counters=4, metrics=metrics)
    app = BENIGN_FAMILIES[0].instantiate(np.random.default_rng(21))[0]
    monitor.monitor(app, 25, ContainerPool(seed=3), is_malware=False)
    hist = metrics.snapshot()["histograms"]["monitor_window_classify_seconds"]
    assert hist["count"] == 25
    assert sum(hist["counts"]) == 25
    assert hist["sum"] > 0.0


def test_monitor_health_hook_observes_without_perturbing(detector4):
    """health= feeds the evaluator in-process; verdicts stay identical."""
    from repro.obs import HealthEvaluator, parse_slo

    app = BENIGN_FAMILIES[0].instantiate(np.random.default_rng(3))[0]
    plain = RuntimeMonitor(detector4, n_counters=4).monitor(
        app, 15, ContainerPool(seed=8), is_malware=False
    )
    health = HealthEvaluator(slos=[parse_slo("nondegraded>=0.95")])
    observed = RuntimeMonitor(detector4, n_counters=4, health=health).monitor(
        app, 15, ContainerPool(seed=8), is_malware=False
    )
    assert plain == observed
    assert health.window.total_verdicts == 1
    assert health.window.total_degraded == 0
    # The classify-latency window saw every classified window.
    assert health.window._classify_n == 15
    (slo,) = health.slo_statuses()
    assert slo["ok"] is True


def test_monitor_health_signals_reflect_alarm(detector4):
    from repro.obs import HealthEvaluator

    health = HealthEvaluator()
    monitor = RuntimeMonitor(detector4, n_counters=4, health=health)
    app = MALWARE_FAMILIES[0].instantiate(np.random.default_rng(4))[0]
    verdict = monitor.monitor(app, 20, ContainerPool(seed=2), is_malware=True)
    assert health.last_values["detection_rate"] == float(verdict.is_malware)
    assert health.last_values["verdicts"] == 1.0


# -- quality hook ------------------------------------------------------


def test_quality_tracking_keeps_verdicts_bit_identical(detector4, small_split):
    """quality= must observe the verdict path, never perturb it."""
    from repro.obs import QualityTracker, build_reference_profile
    from repro.workloads.dataset import MALWARE

    profile = build_reference_profile(detector4, small_split.train)
    families = (BENIGN_FAMILIES + MALWARE_FAMILIES)[::6]

    def sweep(quality):
        monitor = RuntimeMonitor(detector4, n_counters=4, quality=quality)
        rng = np.random.default_rng(23)
        return [
            monitor.monitor(
                family.instantiate(rng)[0],
                12,
                ContainerPool(seed=50 + i),
                family.label == MALWARE,
            )
            for i, family in enumerate(families)
        ]

    baseline = sweep(None)
    tracker = QualityTracker(profile, window_s=1e9)
    tracked = sweep(tracker)
    assert tracked == baseline
    assert tracker.total_executions == len(families)
    assert tracker.total_windows == 12 * len(families)
    assert tracker.signals()["live_windows"] == 12.0 * len(families)
