"""Specialized per-family ensemble (Khasawneh-style baseline)."""

import numpy as np
import pytest

from repro.core.specialized import SpecializedEnsembleDetector
from repro.ml.reptree import REPTree
from repro.workloads.dataset import MALWARE


@pytest.fixture(scope="module")
def fitted(small_split):
    return SpecializedEnsembleDetector(n_hpcs=4).fit(small_split.train)


def test_one_specialist_per_malware_family(fitted, small_split):
    train = small_split.train
    malware_families = {
        train.app_families[a]
        for a in np.unique(train.app_ids)
        if train.app_label(int(a)) == MALWARE
    }
    assert set(fitted.specialists_) == malware_families
    assert fitted.n_specialists == len(malware_families)


def test_detects_malware_above_chance(fitted, small_split):
    result = fitted.evaluate(small_split.test)
    assert result.accuracy > 0.6
    assert result.auc > 0.6


def test_per_family_scores_shape(fitted, small_split):
    scores = fitted.per_family_scores(small_split.test)
    for family_scores in scores.values():
        assert family_scores.shape == (small_split.test.n_samples,)


def test_specialists_fire_on_their_own_family(fitted, small_split):
    """Each specialist should score its own family's windows above
    benign windows."""
    test = small_split.test
    app_family = np.array([test.app_families[a] for a in test.app_ids])
    benign_rows = test.labels == 0
    scores = fitted.per_family_scores(test)
    wins = 0
    checked = 0
    for family, family_scores in scores.items():
        own = family_scores[app_family == family]
        if own.size == 0:
            continue  # family absent from this test split
        checked += 1
        wins += own.mean() > family_scores[benign_rows].mean()
    assert checked > 0
    assert wins >= checked * 0.7


def test_fusion_modes_differ(small_split):
    max_fused = SpecializedEnsembleDetector(n_hpcs=4, fusion="max").fit(
        small_split.train
    )
    mean_fused = SpecializedEnsembleDetector(n_hpcs=4, fusion="mean").fit(
        small_split.train
    )
    a = max_fused.decision_scores(small_split.test)
    b = mean_fused.decision_scores(small_split.test)
    assert np.all(a >= b - 1e-12)  # max dominates mean pointwise


def test_custom_base_classifier(small_split):
    detector = SpecializedEnsembleDetector(base=REPTree(), n_hpcs=4)
    detector.fit(small_split.train)
    assert detector.evaluate(small_split.test).accuracy > 0.55


def test_rejects_unknown_fusion():
    with pytest.raises(ValueError):
        SpecializedEnsembleDetector(fusion="median")


def test_unfitted_raises(small_split):
    detector = SpecializedEnsembleDetector()
    with pytest.raises(RuntimeError):
        detector.decision_scores(small_split.test)


def test_rejects_benign_only_training(small_split):
    benign_apps = [
        int(a)
        for a in np.unique(small_split.train.app_ids)
        if small_split.train.app_label(int(a)) == 0
    ]
    benign_only = small_split.train.select_apps(benign_apps)
    with pytest.raises(ValueError):
        SpecializedEnsembleDetector().fit(benign_only)
