"""Detector configuration and registry."""

import pytest

from repro.core.config import CLASSIFIER_NAMES, DetectorConfig
from repro.core.registry import build_base_classifier, build_model
from repro.ml import AdaBoostM1, Bagging
from repro.ml.reptree import REPTree


def test_all_eight_classifiers_listed():
    assert len(CLASSIFIER_NAMES) == 8


def test_config_rejects_unknown_classifier():
    with pytest.raises(ValueError):
        DetectorConfig("RandomForest")


def test_config_rejects_unknown_ensemble():
    with pytest.raises(ValueError):
        DetectorConfig("J48", ensemble="stacking")


def test_config_rejects_zero_hpcs():
    with pytest.raises(ValueError):
        DetectorConfig("J48", n_hpcs=0)


def test_config_rejects_zero_estimators():
    with pytest.raises(ValueError):
        DetectorConfig("J48", n_estimators=0)


def test_config_name_general():
    assert DetectorConfig("J48", "general", 8).name == "8HPC-J48"


def test_config_name_boosted():
    assert DetectorConfig("SMO", "boosted", 2).name == "2HPC-Boosted-SMO"


def test_config_name_bagging():
    assert DetectorConfig("JRip", "bagging", 4).name == "4HPC-Bagging-JRip"


def test_with_budget_preserves_other_fields():
    config = DetectorConfig("MLP", "boosted", 16, n_estimators=5, seed=3)
    other = config.with_budget(2)
    assert other.n_hpcs == 2
    assert other.classifier == "MLP"
    assert other.ensemble == "boosted"
    assert other.n_estimators == 5
    assert other.seed == 3


@pytest.mark.parametrize("name", CLASSIFIER_NAMES)
def test_registry_builds_every_base_classifier(name):
    model = build_base_classifier(name)
    assert not model.fitted_


def test_registry_unknown_name():
    with pytest.raises(KeyError):
        build_base_classifier("KNN")


def test_build_model_general():
    model = build_model(DetectorConfig("REPTree", "general", 4))
    assert isinstance(model, REPTree)


def test_build_model_boosted():
    model = build_model(DetectorConfig("REPTree", "boosted", 4, n_estimators=7))
    assert isinstance(model, AdaBoostM1)
    assert model.n_estimators == 7
    assert isinstance(model.base, REPTree)


def test_build_model_bagging():
    model = build_model(DetectorConfig("REPTree", "bagging", 4))
    assert isinstance(model, Bagging)
    assert isinstance(model.base, REPTree)
