"""Replay: workload reconstruction, 1x bit-identity, capacity math."""

import pytest

from repro.obs import Tracer
from repro.obs.archive import Archive, normalize_events
from repro.serve import DetectionService
from repro.serve.replay import (
    ReplayError,
    ReplayMismatchError,
    ReplayResult,
    archived_wall_seconds,
    build_serve_workload,
    replay_segment,
    serve_run_meta,
)

RUN_META = serve_run_meta(
    seed=11, windows=6, split_seed=7, classifier="REPTree",
    ensemble="general", hpcs=4, counters=4, vote_threshold=0.5,
    stride=7, rounds=2, host_vote_windows=4,
    producers=1, workers=1, queue_depth=8,
)


@pytest.fixture(scope="module")
def workload():
    return build_serve_workload(RUN_META)


def archived_run(root, workload, run_meta=RUN_META, tamper=None):
    """Run the workload through the service and archive its trace."""
    detector, jobs = workload
    tracer = Tracer()
    service = DetectionService(
        detector,
        producers=run_meta["producers"],
        workers=run_meta["workers"],
        queue_depth=run_meta["queue_depth"],
        n_counters=run_meta["counters"],
        vote_threshold=run_meta["vote_threshold"],
        host_vote_windows=run_meta["host_vote_windows"],
        pool_seed=run_meta["seed"] + 99,
        tracer=tracer,
    )
    service.run(jobs)
    archive = Archive(root)
    verdicts, alerts, spans = normalize_events(tracer.events)
    if tamper is not None:
        tamper(verdicts)
    result = archive.ingest_records(
        verdicts, alerts, spans, run_meta=run_meta, source="serve"
    )
    return archive, result


@pytest.fixture(scope="module")
def archived(tmp_path_factory, workload):
    return archived_run(tmp_path_factory.mktemp("arch"), workload)


def test_build_serve_workload_matches_meta(workload):
    detector, jobs = workload
    # stride 7 over the family list, twice (rounds=2)
    assert len(jobs) % RUN_META["rounds"] == 0
    assert all(job.n_windows == RUN_META["windows"] for job in jobs)
    # the two rounds stream the same hosts in the same order
    half = len(jobs) // 2
    assert [j.host_name for j in jobs[:half]] == [
        j.host_name for j in jobs[half:]
    ]


def test_build_serve_workload_rejects_missing_or_foreign_meta():
    with pytest.raises(ReplayError, match="missing"):
        build_serve_workload({"command": "serve", "seed": 1})
    with pytest.raises(ReplayError, match="only 'serve'"):
        build_serve_workload(dict(RUN_META, command="fleet"))


def test_replay_at_1x_is_bit_identical(archived, workload):
    archive, ingested = archived
    result = replay_segment(archive)
    _, jobs = workload
    assert result.segment_id == ingested.segment_id
    assert result.executions == len(jobs)
    assert result.matched == len(jobs)
    assert result.repeat == 1
    assert result.n_windows == sum(j.n_windows for j in jobs)
    assert result.replay_seconds > 0


def test_replay_repeat_scales_matches_and_speed(archived, workload):
    archive, _ = archived
    result = replay_segment(archive, repeat=2, producers=2, workers=2)
    _, jobs = workload
    assert result.matched == 2 * len(jobs)
    assert result.producers == 2 and result.workers == 2
    assert result.windows_per_second > 0


def test_replay_rejects_bad_repeat(archived):
    archive, _ = archived
    with pytest.raises(ValueError):
        replay_segment(archive, repeat=0)


def test_replay_detects_archive_tampering(tmp_path, workload):
    def flip_first_flag(verdicts):
        verdicts[0]["is_malware"] = not verdicts[0]["is_malware"]

    archive, _ = archived_run(tmp_path, workload, tamper=flip_first_flag)
    with pytest.raises(ReplayMismatchError, match="diverged"):
        replay_segment(archive)


def test_replay_detects_count_mismatch(tmp_path, workload):
    archive, _ = archived_run(
        tmp_path, workload, tamper=lambda verdicts: verdicts.pop()
    )
    with pytest.raises(ReplayMismatchError, match="archives"):
        replay_segment(archive)


def test_replay_needs_a_serve_segment(tmp_path):
    archive = Archive(tmp_path)
    with pytest.raises(ReplayError, match="no replayable"):
        replay_segment(archive)
    archive.ingest_events([], run_meta={"command": "fleet"}, source="fleet")
    with pytest.raises(ReplayError, match="no replayable"):
        replay_segment(archive)


def test_replay_default_picks_latest_serve_segment(archived):
    archive, ingested = archived
    # a foreign segment after it must not shadow the serve run
    archive.ingest_events([], run_meta={"command": "fleet"}, source="fleet")
    assert replay_segment(archive).segment_id == ingested.segment_id


def test_speedup_and_throughput_math():
    result = ReplayResult(
        segment_id="x", repeat=3, executions=2, n_windows=100, matched=6,
        archived_seconds=2.0, replay_seconds=1.5, producers=1, workers=1,
        queue_depth=8,
    )
    assert result.speedup == pytest.approx(3 * 2.0 / 1.5)
    assert result.windows_per_second == pytest.approx(200.0)
    zero = ReplayResult(
        segment_id="x", repeat=1, executions=0, n_windows=0, matched=0,
        archived_seconds=0.0, replay_seconds=0.0, producers=1, workers=1,
        queue_depth=8,
    )
    assert zero.speedup == 0.0 and zero.windows_per_second == 0.0


def test_archived_wall_seconds_falls_back_to_verdict_span(archived, tmp_path):
    archive, ingested = archived
    segment = archive.load_segment(ingested.segment_id)
    assert archived_wall_seconds(segment) == segment.span_seconds("serve.run")
    # strip the spans: the verdict ts range stands in
    spanless = Archive(tmp_path)
    result = spanless.ingest_records(
        [
            {k: v for k, v in row.items()}
            for row in _segment_rows(segment)
        ],
        [], [],
    )
    loaded = spanless.load_segment(result.segment_id)
    ts = loaded.verdicts["ts"]
    assert archived_wall_seconds(loaded) == pytest.approx(
        float(ts.max() - ts.min())
    )


def _segment_rows(segment):
    hosts = segment.resolve(segment.verdicts["host"])
    apps = segment.resolve(segment.verdicts["app"])
    sources = segment.resolve(segment.verdicts["source"])
    for i in range(segment.n_verdicts):
        yield {
            "ts": float(segment.verdicts["ts"][i]),
            "source": str(sources[i]),
            "host": str(hosts[i]),
            "app": str(apps[i]),
            "execution": int(segment.verdicts["execution"][i]),
            "is_malware": bool(segment.verdicts["flag"][i]),
            "degraded": bool(segment.verdicts["degraded"][i]),
            "malware_fraction": float(segment.verdicts["fraction"][i]),
            "n_windows": int(segment.verdicts["windows"][i]),
            "n_windows_lost": int(segment.verdicts["lost"][i]),
            "latency": int(segment.verdicts["latency"][i]),
        }
