"""The streaming service: bit-identity, chaos totality, wiring."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.core.runtime import RuntimeMonitor
from repro.hpc.counters import CounterCapacityError
from repro.hpc.faults import ServiceFaultPlan
from repro.hpc.lxc import ContainerPool
from repro.obs import HealthEvaluator, Registry, Tracer
from repro.serve import DetectionService, ServeJob, ServiceReport
from repro.workloads.benign import BENIGN_FAMILIES
from repro.workloads.dataset import MALWARE
from repro.workloads.malware import MALWARE_FAMILIES

POOL_SEED = 5
N_WINDOWS = 10


@pytest.fixture(scope="module")
def detector4(small_split):
    return HMDDetector(DetectorConfig("REPTree", "general", 4)).fit(small_split.train)


@pytest.fixture(scope="module")
def jobs():
    rng = np.random.default_rng(17)
    jobs = []
    for family in (BENIGN_FAMILIES + MALWARE_FAMILIES)[::3]:
        app = family.instantiate(rng)[0]
        jobs.append(ServeJob(app, N_WINDOWS, family.label == MALWARE))
    return jobs


@pytest.fixture(scope="module")
def serial_verdicts(detector4, jobs):
    """What a serial RuntimeMonitor says about the exact same executions."""
    monitor = RuntimeMonitor(detector4, n_counters=4)
    return [
        monitor.monitor(
            job.app, job.n_windows, ContainerPool(seed=POOL_SEED + i), job.is_malware
        )
        for i, job in enumerate(jobs)
    ]


# -- construction ------------------------------------------------------


def test_serve_rejects_over_budget_detector(small_split):
    wide = HMDDetector(DetectorConfig("J48", "general", 16)).fit(small_split.train)
    with pytest.raises(CounterCapacityError):
        DetectionService(wide, n_counters=4)


def test_serve_rejects_bad_geometry(detector4):
    with pytest.raises(ValueError):
        DetectionService(detector4, producers=0)
    with pytest.raises(ValueError):
        DetectionService(detector4, workers=0)
    with pytest.raises(ValueError):
        DetectionService(detector4, host_vote_windows=0)
    with pytest.raises(ValueError):
        DetectionService(detector4, vote_threshold=0.0)


def test_serve_job_host_defaults_to_app_name(jobs):
    assert jobs[0].host_name == jobs[0].app.name
    named = ServeJob(jobs[0].app, 4, False, host="rack-7")
    assert named.host_name == "rack-7"


# -- bit-identity with serial monitoring -------------------------------


def test_serial_geometry_is_bit_identical_to_runtime_monitor(
    detector4, jobs, serial_verdicts
):
    service = DetectionService(
        detector4, producers=1, workers=1, queue_depth=8, pool_seed=POOL_SEED
    )
    report = service.run(jobs)
    assert list(report.verdicts) == serial_verdicts
    assert report.n_windows == sum(v.n_windows for v in serial_verdicts)
    assert report.worker_crashes == 0
    assert report.recovered_windows == 0


@pytest.mark.parametrize("producers,workers", [(2, 1), (1, 3), (3, 2)])
def test_any_geometry_is_bit_identical(
    detector4, jobs, serial_verdicts, producers, workers
):
    service = DetectionService(
        detector4,
        producers=producers,
        workers=workers,
        queue_depth=4,
        pool_seed=POOL_SEED,
    )
    report = service.run(jobs)
    assert list(report.verdicts) == serial_verdicts


def test_accepts_plain_tuples(detector4, jobs, serial_verdicts):
    service = DetectionService(detector4, queue_depth=8, pool_seed=POOL_SEED)
    report = service.run(
        [(job.app, job.n_windows, job.is_malware) for job in jobs]
    )
    assert list(report.verdicts) == serial_verdicts


def test_empty_run(detector4):
    report = service_report = DetectionService(detector4).run([])
    assert isinstance(service_report, ServiceReport)
    assert report.verdicts == ()
    assert report.n_windows == 0


# -- chaos: injected worker crashes ------------------------------------


@pytest.mark.parametrize("seed", range(4))
def test_verdicts_total_and_identical_under_worker_crashes(
    detector4, jobs, serial_verdicts, seed
):
    """Exactly one verdict per closed window, bit-identical to serial,
    regardless of the crash schedule."""
    plan = ServiceFaultPlan(
        seed=seed, worker_crash_rate=0.9, max_crashes_per_worker=4
    )
    service = DetectionService(
        detector4,
        producers=2,
        workers=2,
        queue_depth=4,
        pool_seed=POOL_SEED,
        faults=plan,
    )
    report = service.run(jobs)
    assert len(report.verdicts) == len(jobs)
    assert list(report.verdicts) == serial_verdicts


def test_chaos_actually_crashes_workers(detector4, jobs):
    plan = ServiceFaultPlan(seed=0, worker_crash_rate=1.0, max_crashes_per_worker=3)
    service = DetectionService(
        detector4, workers=2, queue_depth=4, pool_seed=POOL_SEED, faults=plan
    )
    report = service.run(jobs)
    assert report.worker_crashes > 0
    assert report.recovered_windows > 0


def test_zero_rate_plan_is_a_pristine_run(detector4, jobs, serial_verdicts):
    service = DetectionService(
        detector4,
        pool_seed=POOL_SEED,
        faults=ServiceFaultPlan(seed=9, worker_crash_rate=0.0),
    )
    report = service.run(jobs)
    assert report.worker_crashes == 0
    assert list(report.verdicts) == serial_verdicts


# -- backpressure ------------------------------------------------------


def test_tiny_queue_backpressures_but_stays_correct(
    detector4, jobs, serial_verdicts
):
    service = DetectionService(
        detector4, producers=3, workers=1, queue_depth=1, pool_seed=POOL_SEED
    )
    report = service.run(jobs)
    assert list(report.verdicts) == serial_verdicts
    assert report.backpressure_waits > 0


# -- per-host sliding vote window --------------------------------------


def test_host_vote_window_alerts_on_persistently_flagged_host(detector4):
    rng = np.random.default_rng(23)
    malware_family = MALWARE_FAMILIES[0]
    app = malware_family.instantiate(rng)[0]
    rounds = 4
    service = DetectionService(
        detector4,
        producers=1,
        workers=1,
        queue_depth=8,
        pool_seed=POOL_SEED,
        host_vote_windows=2 * N_WINDOWS,
    )
    report = service.run(
        [ServeJob(app, N_WINDOWS, True) for _ in range(rounds)]
    )
    # Detected executions keep the host's window hot: once the window
    # fills (after round 2) every further verdict re-evaluates it.
    if all(v.is_malware for v in report.verdicts):
        assert report.alerts, "persistently flagged host never alerted"
        for alert in report.alerts:
            assert alert["host"] == app.name
            assert alert["windows"] == 2 * N_WINDOWS
            assert alert["fraction"] >= service.vote_threshold


def test_benign_host_never_alerts(detector4):
    rng = np.random.default_rng(29)
    app = BENIGN_FAMILIES[0].instantiate(rng)[0]
    service = DetectionService(
        detector4, pool_seed=POOL_SEED, host_vote_windows=N_WINDOWS
    )
    report = service.run([ServeJob(app, N_WINDOWS, False) for _ in range(3)])
    if not any(v.is_malware for v in report.verdicts):
        assert report.alerts == ()


# -- observability wiring ----------------------------------------------


def test_serve_emits_trace_events_and_metrics(detector4, jobs):
    tracer = Tracer(enabled=True)
    metrics = Registry()
    plan = ServiceFaultPlan(seed=1, worker_crash_rate=1.0, max_crashes_per_worker=2)
    service = DetectionService(
        detector4,
        producers=2,
        workers=2,
        queue_depth=4,
        pool_seed=POOL_SEED,
        faults=plan,
        tracer=tracer,
        metrics=metrics,
    )
    report = service.run(jobs)
    events = [e for e in tracer.drain() if e.get("type") == "event"]
    verdict_events = [e for e in events if e["name"] == "serve.verdict"]
    crash_events = [e for e in events if e["name"] == "serve.worker_crash"]
    assert len(verdict_events) == len(jobs)
    assert sorted(e["attrs"]["index"] for e in verdict_events) == list(
        range(len(jobs))
    )
    assert len(crash_events) == report.worker_crashes
    snapshot = metrics.snapshot()
    counters = snapshot["counters"]
    assert counters["serve_executions_total"]["value"] == len(jobs)
    assert counters["serve_windows_total"]["value"] == report.n_windows
    assert counters["serve_worker_crashes_total"]["value"] == report.worker_crashes
    assert (
        counters["serve_recovered_windows_total"]["value"]
        == report.recovered_windows
    )
    histogram = snapshot["histograms"]["serve_window_classify_seconds"]
    assert histogram["count"] == report.n_windows


def test_serve_feeds_health_evaluator(detector4, jobs):
    health = HealthEvaluator()
    service = DetectionService(detector4, pool_seed=POOL_SEED, health=health)
    report = service.run(jobs)
    values = health.window.values(health.clock())
    assert values["verdicts"] == len(jobs)
    assert report.n_windows > 0


# -- the report --------------------------------------------------------


def test_report_throughput(detector4, jobs):
    report = DetectionService(detector4, pool_seed=POOL_SEED).run(jobs)
    assert report.wall_seconds > 0
    assert report.windows_per_second == pytest.approx(
        report.n_windows / report.wall_seconds
    )


def test_serve_quality_tracking_keeps_verdicts_identical(
    detector4, jobs, small_split
):
    """quality= on the service leaves the report bit-identical."""
    from repro.obs import QualityTracker, build_reference_profile

    profile = build_reference_profile(detector4, small_split.train)
    baseline = DetectionService(
        detector4, queue_depth=8, pool_seed=POOL_SEED
    ).run(jobs)
    tracker = QualityTracker(profile, window_s=1e9)
    tracked = DetectionService(
        detector4, queue_depth=8, pool_seed=POOL_SEED, quality=tracker
    ).run(jobs)
    assert tracked.verdicts == baseline.verdicts
    assert tracker.total_executions == len(jobs)
    tracker.signals()  # flush pending observations into the windows
    assert tracker.hosts  # per-host windows keyed by served app names
