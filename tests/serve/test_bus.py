"""The bounded queue fabric: capacity, backpressure, ordering, sharding."""

import queue
import threading

import numpy as np
import pytest

from repro.hpc.faults import app_key
from repro.serve import SHUTDOWN, Bus, Channel, WindowClosed, WindowSample


def test_channel_rejects_bad_depth():
    with pytest.raises(ValueError):
        Channel("c", 0)


def test_channel_fifo_order():
    channel = Channel("c", 8)
    for i in range(5):
        channel.publish(i)
    assert [channel.consume(timeout=0.1) for _ in range(5)] == [0, 1, 2, 3, 4]


def test_channel_consume_timeout_raises_empty():
    channel = Channel("c", 2)
    with pytest.raises(queue.Empty):
        channel.consume(timeout=0.01)


def test_channel_counts_backpressure_and_blocks_until_drained():
    channel = Channel("c", 2)
    channel.publish("a")
    channel.publish("b")
    assert channel.backpressure_waits == 0

    # The third publish must block on the full channel until a consumer
    # frees a slot — and the block must be counted.
    unblocked = threading.Event()

    def blocked_publish():
        channel.publish("c")
        unblocked.set()

    thread = threading.Thread(target=blocked_publish, daemon=True)
    thread.start()
    assert not unblocked.wait(timeout=0.05), "publish into a full channel returned"
    assert channel.consume(timeout=1.0) == "a"
    assert unblocked.wait(timeout=1.0), "publish never unblocked after a consume"
    thread.join(timeout=1.0)
    assert channel.backpressure_waits == 1
    assert channel.published == 3
    assert len(channel) == 2


def test_bus_rejects_zero_shards():
    with pytest.raises(ValueError):
        Bus(0, 4)


def test_bus_sharding_is_stable_and_total():
    bus = Bus(3, 4)
    hosts = [f"host-{i}" for i in range(20)]
    shards = [bus.shard_for(host) for host in hosts]
    assert shards == [app_key(host) % 3 for host in hosts]
    assert all(0 <= shard < 3 for shard in shards)
    for host, shard in zip(hosts, shards):
        assert bus.channel_for(host) is bus.shards[shard]


def test_bus_aggregates_counters():
    bus = Bus(2, 1)
    bus.shards[0].publish("x")
    bus.shards[1].publish("y")
    assert bus.published == 2
    assert bus.backpressure_waits == 0


def test_messages_are_frozen_and_self_contained():
    row = np.ones(44)
    sample = WindowSample("h", 3, 1, row)
    closed = WindowClosed("h", 3, "app", 8)
    with pytest.raises(AttributeError):
        sample.seq = 2
    with pytest.raises(AttributeError):
        closed.n_windows = 9
    assert sample.row is row
    assert SHUTDOWN is not None
