"""Baseline comparison: the paper's detectors vs the related work (§5).

Puts the paper's boosted/bagged detectors side by side with the three
families of prior work it discusses — Demme et al.'s KNN, Khasawneh et
al.'s specialized per-family ensembles, and Tang/Garcia-Serrano-style
unsupervised anomaly detection — all at the same practical 4-HPC budget,
with application-level bootstrap confidence intervals and a McNemar
significance test on the top pair.

Run:
    python examples/baseline_comparison.py
"""

import numpy as np

from repro import DetectorConfig, HMDDetector, app_level_split, default_corpus
from repro.core import SpecializedEnsembleDetector
from repro.features import FeatureReducer
from repro.ml import (
    GaussianAnomalyDetector,
    KNearestNeighbors,
    bootstrap_metric_ci,
    mcnemar_test,
    roc_auc,
)
from repro.ml.metrics import evaluate_detector


def main() -> None:
    corpus = default_corpus(seed=2018, windows_per_app=40)
    split = app_level_split(corpus, train_fraction=0.7, seed=7)
    reducer = FeatureReducer(n_features=4).fit(split.train)
    train = reducer.transform(split.train)
    test = reducer.transform(split.test)

    contenders = {}

    for ensemble in ("boosted", "bagging"):
        detector = HMDDetector(DetectorConfig("JRip", ensemble, 4)).fit(split.train)
        contenders[f"{ensemble}-JRip (this paper)"] = (
            detector.evaluate(split.test),
            detector.predict(split.test),
            detector.decision_scores(split.test),
        )

    specialized = SpecializedEnsembleDetector(n_hpcs=4).fit(split.train)
    contenders["specialized-logistic (RAID'15)"] = (
        specialized.evaluate(split.test),
        specialized.predict(split.test),
        specialized.decision_scores(split.test),
    )

    for name, model in (
        ("knn (ISCA'13)", KNearestNeighbors(k=7)),
        ("anomaly (RAID'14)", GaussianAnomalyDetector(seed=3)),
    ):
        model.fit(train.features, train.labels)
        contenders[name] = (
            evaluate_detector(
                test.labels,
                model.predict(test.features),
                model.decision_scores(test.features),
            ),
            model.predict(test.features),
            model.decision_scores(test.features),
        )

    print(f"{'detector':32s} {'acc':>7s} {'auc':>7s} {'acc*auc':>8s}   AUC 95% CI (by app)")
    groups = np.asarray(test.app_ids)
    ordered = sorted(contenders.items(), key=lambda kv: -kv[1][0].performance)
    for name, (scores, _pred, raw_scores) in ordered:
        ci = bootstrap_metric_ci(
            roc_auc, test.labels, raw_scores, groups=groups, n_resamples=300
        )
        print(f"{name:32s} {scores.accuracy:>7.3f} {scores.auc:>7.3f} "
              f"{scores.performance:>8.3f}   [{ci.low:.3f}, {ci.high:.3f}]")

    (top_name, (_, top_pred, _)), (second_name, (_, second_pred, _)) = ordered[:2]
    outcome = mcnemar_test(test.labels, top_pred, second_pred)
    verdict = "significant" if outcome.significant else "not significant"
    print(f"\nMcNemar {top_name!r} vs {second_name!r}: "
          f"p={outcome.p_value:.3f} ({verdict} at 5%)")


if __name__ == "__main__":
    main()
