"""Evasion study: what happens when malware mimics benign behaviour?

Trains the paper's detectors on honest malware, then sweeps the evasion
strength of each malware family — the fraction of payload activity an
attacker replaces with benign-looking cover work — and plots (as a text
table) the two-sided trade-off:

* the defender's detection recall erodes with disguise strength;
* the attacker's payload throughput erodes with it too.

The interesting region is where both curves are mid-range: a detector
that forces the attacker below ~50% payload throughput has made the
attack materially more expensive even when some samples slip through.

Run:
    python examples/evasion_study.py
"""

from repro import DetectorConfig, HMDDetector, app_level_split, default_corpus
from repro.workloads import (
    BENIGN_FAMILIES,
    MALWARE_FAMILIES,
    CorpusBuilder,
    evasive_families,
    payload_throughput,
)

STRENGTHS = (0.0, 0.2, 0.4, 0.6, 0.8)


def main() -> None:
    corpus = default_corpus(seed=2018, windows_per_app=40)
    split = app_level_split(corpus, train_fraction=0.7, seed=7)

    detectors = {
        name: HMDDetector(config).fit(split.train)
        for name, config in (
            ("8HPC general REPTree", DetectorConfig("REPTree", "general", 8)),
            ("4HPC bagging JRip", DetectorConfig("JRip", "bagging", 4)),
            ("2HPC boosted REPTree", DetectorConfig("REPTree", "boosted", 2)),
        )
    }

    print("malware recall vs evasion strength "
          "(attacker's remaining payload in the header)")
    header = " ".join(
        f"{f'{s:.0%}/{payload_throughput(s):.0%}':>9s}" for s in STRENGTHS
    )
    print(f"{'detector':24s} {header}")

    per_family_drop: dict[str, float] = {}
    for name, detector in detectors.items():
        recalls = []
        for strength in STRENGTHS:
            families = BENIGN_FAMILIES + evasive_families(MALWARE_FAMILIES, strength)
            evaded = CorpusBuilder(families, seed=4242, windows_per_app=16).build()
            malware_rows = evaded.labels == 1
            flags = detector.predict(evaded)
            recalls.append(float(flags[malware_rows].mean()))
            if strength == 0.6 and name.startswith("8HPC"):
                app_family = [evaded.app_families[a] for a in evaded.app_ids]
                for family in set(app_family):
                    if not family.endswith("_evasive60"):
                        continue
                    rows = [i for i, f in enumerate(app_family) if f == family]
                    per_family_drop[family] = float(flags[rows].mean())
        print(f"{name:24s} " + " ".join(f"{r:>9.2f}" for r in recalls))

    print("\nhardest families to keep detecting at 60% evasion (8HPC REPTree):")
    for family, recall in sorted(per_family_drop.items(), key=lambda kv: kv[1])[:4]:
        print(f"  {family:40s} recall={recall:.2f}")

    print(
        "\nreading: at 40% evasion the attacker has already given up 40% of "
        "payload throughput\nwhile detectors still catch roughly half of the "
        "malicious windows — disguise is not free."
    )


if __name__ == "__main__":
    main()
