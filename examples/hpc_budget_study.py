"""HPC budget study: the accuracy/robustness vs counter-count trade-off.

Sweeps the HPC budget (16/8/4/2) for several classifiers in general,
boosted and bagging form — a miniature of the paper's Figures 3 and 5 —
and prints how much of the 16-HPC performance each small-budget ensemble
detector recovers.

Run:
    python examples/hpc_budget_study.py
"""

from repro import DetectorConfig, MatrixRunner, default_corpus
from repro.analysis import figure3_table, figure5_table, improvement_summary

CLASSIFIERS = ("BayesNet", "JRip", "REPTree", "SMO")


def main() -> None:
    corpus = default_corpus(seed=2018, windows_per_app=40)
    runner = MatrixRunner(corpus, train_fraction=0.7, seeds=(7,))

    configs = [
        DetectorConfig(classifier, ensemble, n_hpcs)
        for classifier in CLASSIFIERS
        for n_hpcs in (16, 8, 4, 2)
        for ensemble in ("general", "boosted", "bagging")
    ]
    print(f"evaluating {len(configs)} detector variants...")
    records = runner.evaluate_grid(configs)

    print()
    print(figure3_table(records))
    print()
    print(figure5_table(records))
    print()
    print(improvement_summary(records))

    # Budget recovery: what fraction of each classifier's 16-HPC
    # performance do the 2-HPC detectors reach?
    by_key = {(r.classifier, r.ensemble, r.n_hpcs): r for r in records}
    print("\n2-HPC performance as a fraction of the 16-HPC general detector:")
    for classifier in CLASSIFIERS:
        base = by_key[(classifier, "general", 16)].performance
        general = by_key[(classifier, "general", 2)].performance / base
        boosted = by_key[(classifier, "boosted", 2)].performance / base
        bagging = by_key[(classifier, "bagging", 2)].performance / base
        print(
            f"  {classifier:10s} general={general:.0%}  "
            f"boosted={boosted:.0%}  bagging={bagging:.0%}"
        )


if __name__ == "__main__":
    main()
