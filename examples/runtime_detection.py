"""Run-time detection: stream live executions through a deployed detector.

This is the deployment scenario the paper argues for: a detector whose
event budget fits the 4 physical counter registers classifies every 10 ms
window of a *single* execution — no re-runs, no multiplexing error.  The
script also demonstrates the constraint that motivates the whole paper: a
16-HPC detector cannot be deployed at run time on a 4-counter CPU.

Run:
    python examples/runtime_detection.py
"""

import numpy as np

from repro import DetectorConfig, HMDDetector, RuntimeMonitor, app_level_split, default_corpus
from repro.hpc import ContainerPool, CounterCapacityError
from repro.workloads import BENIGN_FAMILIES, MALWARE_FAMILIES
from repro.workloads.dataset import MALWARE


def main() -> None:
    corpus = default_corpus(seed=2018, windows_per_app=40)
    split = app_level_split(corpus, train_fraction=0.7, seed=7)

    # A 4-HPC bagging JRip detector — one of the paper's most robust
    # small-budget configurations (Table 2).
    detector = HMDDetector(DetectorConfig("JRip", "bagging", n_hpcs=4))
    detector.fit(split.train)
    monitor = RuntimeMonitor(detector, n_counters=4, vote_threshold=0.5)
    print(f"deployed {detector.name}, reading: {', '.join(detector.monitored_events)}")

    # Fresh, never-seen application instances (new draws from each family).
    rng = np.random.default_rng(424242)
    pool = ContainerPool(seed=99, destroy_after_run=True)
    print(f"\n{'application':30s} {'truth':8s} {'verdict':8s} {'flagged':>8s} {'latency':>8s}")
    correct = 0
    families = BENIGN_FAMILIES + MALWARE_FAMILIES
    for family in families:
        app = family.instantiate(rng)[0]
        is_malware = family.label == MALWARE
        verdict = monitor.monitor(app, n_windows=60, pool=pool, is_malware=is_malware)
        latency = monitor.detection_latency_windows(verdict)
        latency_text = f"{latency * 10} ms" if latency is not None else "-"
        correct += verdict.is_malware == is_malware
        print(
            f"{app.name:30s} {'malware' if is_malware else 'benign':8s} "
            f"{'malware' if verdict.is_malware else 'benign':8s} "
            f"{verdict.malware_fraction:>7.0%} {latency_text:>8s}"
        )
    print(f"\napplication-level accuracy: {correct}/{len(families)}")

    # And the impossibility the paper starts from: 16 events, 4 registers.
    wide = HMDDetector(DetectorConfig("REPTree", "general", n_hpcs=16))
    wide.fit(split.train)
    try:
        RuntimeMonitor(wide, n_counters=4)
    except CounterCapacityError as error:
        print(f"\nas expected, the 16-HPC detector is rejected:\n  {error}")


if __name__ == "__main__":
    main()
