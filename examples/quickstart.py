"""Quickstart: train and evaluate one hardware malware detector.

Builds the synthetic HPC corpus (122 applications, 44 events), performs
the paper's 70/30 application-level split, trains a 2-HPC boosted REPTree
— the paper's headline detector — and evaluates it on applications the
detector has never seen.

Run:
    python examples/quickstart.py
"""

from repro import DetectorConfig, HMDDetector, app_level_split, default_corpus


def main() -> None:
    print("building corpus (122 apps x 40 windows x 44 events)...")
    corpus = default_corpus(seed=2018, windows_per_app=40)
    print(corpus.summary())

    split = app_level_split(corpus, train_fraction=0.7, seed=7)
    print(f"train apps: {len(split.train_apps)}, test apps: {len(split.test_apps)}")

    # The paper's headline result: a 2-HPC AdaBoost-REPTree detector that
    # matches the accuracy of a 16-HPC general detector.
    config = DetectorConfig(classifier="REPTree", ensemble="boosted", n_hpcs=2)
    detector = HMDDetector(config).fit(split.train)

    print(f"\ndetector: {detector.name}")
    print(f"monitored HPC events: {', '.join(detector.monitored_events)}")

    scores = detector.evaluate(split.test)
    print(f"accuracy    = {scores.accuracy:.3f}")
    print(f"AUC         = {scores.auc:.3f}")
    print(f"performance = {scores.performance:.3f}  (ACC x AUC)")

    # Compare with the 16-HPC general REPTree it is meant to match.
    general = HMDDetector(DetectorConfig("REPTree", "general", n_hpcs=16))
    general.fit(split.train)
    gscores = general.evaluate(split.test)
    print(f"\n16HPC general REPTree accuracy = {gscores.accuracy:.3f} "
          f"(2HPC boosted reaches {scores.accuracy:.3f} with 8x fewer counters)")


if __name__ == "__main__":
    main()
