"""Hardware cost explorer: latency/area of detectors under fabric budgets.

Trains a set of detectors, lowers each trained model to a hardware design
(the paper's §4.4 methodology), and explores how the classification
latency responds to the functional-unit budget of the FPGA fabric — the
kind of design-space exploration Table 3 supports.

Run:
    python examples/hardware_cost_explorer.py
"""

from repro import (
    DetectorConfig,
    FabricConfig,
    HMDDetector,
    app_level_split,
    default_corpus,
    lower,
)


def main() -> None:
    corpus = default_corpus(seed=2018, windows_per_app=40)
    split = app_level_split(corpus, train_fraction=0.7, seed=7)

    print("Table 3-style costs (8HPC general vs 4/2HPC boosted):")
    print(f"{'detector':26s} {'cycles':>7s} {'ns':>8s} {'area %':>7s} {'DSPs':>5s}")
    for classifier in ("OneR", "JRip", "REPTree", "BayesNet", "SGD", "MLP"):
        for n_hpcs, ensemble in ((8, "general"), (4, "boosted"), (2, "boosted")):
            detector = HMDDetector(DetectorConfig(classifier, ensemble, n_hpcs))
            detector.fit(split.train)
            design = lower(detector.model)
            print(
                f"{detector.name:26s} {design.latency_cycles:>7d} "
                f"{design.latency_ns:>8.0f} {design.area_percent:>6.1f}% "
                f"{design.resources.dsps:>5d}"
            )

    # Fabric exploration: how does the MLP's latency scale with the
    # number of floating-point units the HLS solution may instantiate?
    detector = HMDDetector(DetectorConfig("MLP", "general", 8)).fit(split.train)
    print("\nMLP latency vs floating-point fabric budget:")
    print(f"{'fp mul/add units':>18s} {'cycles':>8s} {'area %':>8s}")
    for units in (1, 2, 4, 8):
        fabric = FabricConfig(float_multipliers=units, float_adders=units)
        design = lower(detector.model, fabric)
        print(f"{units:>18d} {design.latency_cycles:>8d} {design.area_percent:>7.1f}%")

    # The paper's sampling deadline: a window arrives every 10 ms; even
    # the slowest detector classifies in microseconds — hardware keeps up
    # where the tens-of-milliseconds software implementation cannot.
    slowest = lower(detector.model)
    print(
        f"\nslowest detector latency: {slowest.latency_ns / 1000:.1f} us per window "
        f"vs the 10 ms sampling interval -> "
        f"{10e6 / slowest.latency_ns:,.0f}x headroom"
    )


if __name__ == "__main__":
    main()
