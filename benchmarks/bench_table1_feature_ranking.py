"""Table 1 — the sixteen most important HPCs by correlation evaluation.

Regenerates the paper's feature ranking on the synthetic corpus and
benchmarks the correlation-attribute-evaluation pass over all 44 events.
"""

from repro.analysis.report import table1_table
from repro.features import rank_features
from repro.hpc import TABLE1_RANKED_EVENTS


def test_table1_feature_ranking(benchmark, split, ranking):
    result = benchmark.pedantic(
        rank_features, args=(split.train,), rounds=3, iterations=1
    )
    print()
    print(table1_table(result, k=16))
    overlap = set(result.top(16)) & set(TABLE1_RANKED_EVENTS)
    print(f"\noverlap with the paper's Table 1: {len(overlap)}/16 events")
    print("paper-only:", sorted(set(TABLE1_RANKED_EVENTS) - set(result.top(16))))
    # shape checks: branch/TLB events lead; raw cycle counts do not rank
    assert result.names[0] in ("branch_instructions", "iTLB_load_misses")
    assert "cpu_cycles" not in result.top(8)
    assert len(overlap) >= 8
