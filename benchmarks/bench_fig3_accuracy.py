"""Figure 3 — detection accuracy of all 16 detector kinds vs HPC budget.

Renders the full accuracy grid (8 classifiers x {general, boosted,
bagging} x {16, 8, 4, 2} HPCs) from the cached evaluation matrix and
benchmarks one representative train-and-evaluate cycle.
"""

from repro.analysis.report import figure3_table
from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector


def _train_eval(split):
    detector = HMDDetector(DetectorConfig("REPTree", "boosted", 2))
    detector.fit(split.train)
    return detector.evaluate(split.test)


def test_fig3_accuracy_grid(benchmark, split, grid_records):
    benchmark.pedantic(_train_eval, args=(split,), rounds=3, iterations=1)
    print()
    print(figure3_table(grid_records))

    by_key = {(r.classifier, r.ensemble, r.n_hpcs): r for r in grid_records}

    # Shape check 1: with 16 HPCs the strong general classifiers exceed 80%.
    for name in ("BayesNet", "MLP"):
        assert by_key[(name, "general", 16)].accuracy > 0.80, name

    # Shape check 2: OneR is flat across budgets (uses one attribute).
    oner = [by_key[("OneR", "general", k)].accuracy for k in (16, 8, 4, 2)]
    assert max(oner) - min(oner) < 0.06

    # Shape check 3: general accuracy degrades from 16 to 2 HPCs on average.
    wide = [by_key[(c, "general", 16)].accuracy for c, _, _ in by_key
            if False] or [
        by_key[(c, "general", 16)].accuracy
        for c in ("BayesNet", "J48", "JRip", "MLP", "REPTree")
    ]
    narrow = [
        by_key[(c, "general", 2)].accuracy
        for c in ("BayesNet", "J48", "JRip", "MLP", "REPTree")
    ]
    assert sum(wide) / len(wide) > sum(narrow) / len(narrow)

    # Shape check 4 (the paper's REPTree observation): 2HPC-Boosted
    # REPTree recovers to within a few points of its 16HPC accuracy.
    rep16 = by_key[("REPTree", "general", 16)].accuracy
    rep2b = by_key[("REPTree", "boosted", 2)].accuracy
    assert rep2b >= rep16 - 0.04
