"""Parallel evaluation matrix: determinism, crash-safe cache, warm re-render.

Demonstrates the production evaluation path: the same grid slice is
trained serially and with a 4-worker pool (records must be identical),
results land in a content-addressed per-record cache, and a second
runner re-renders the Figure 3 / Table 2 / Table 3 tables from the warm
cache with **zero** detector fits.  The benchmark measures that warm
re-render — the steady-state cost of regenerating every table.
"""

from repro.analysis.cache import ResultCache
from repro.analysis.matrix import MatrixRunner
from repro.analysis.parallel import ParallelMatrixRunner
from repro.analysis.report import figure3_table, table2_table, table3_table
from repro.core.config import DetectorConfig

SPLIT_SEED = 7  # matches conftest.SPLIT_SEED

#: A fast slice of the paper grid (cheap classifiers, all ensemble modes).
EVAL_SLICE = [
    DetectorConfig(classifier, ensemble, n_hpcs)
    for classifier in ("OneR", "REPTree")
    for ensemble in ("general", "boosted", "bagging")
    for n_hpcs in (4, 2)
]

#: Matching Table 3 slice.
HARDWARE_SLICE = [
    DetectorConfig(classifier, ensemble, n_hpcs)
    for classifier in ("OneR", "REPTree")
    for ensemble, n_hpcs in (("general", 8), ("boosted", 4), ("boosted", 2))
]


def test_parallel_matrix_determinism_and_warm_cache(
    benchmark, corpus, tmp_path_factory
):
    cache_dir = tmp_path_factory.mktemp("parallel_matrix_cache")

    serial = MatrixRunner(corpus, seeds=(SPLIT_SEED,))
    serial_records = serial.evaluate_grid(EVAL_SLICE)

    cold = ParallelMatrixRunner(
        corpus, seeds=(SPLIT_SEED,), workers=4, cache=ResultCache(cache_dir)
    )
    parallel_records = cold.evaluate_grid(EVAL_SLICE)
    hardware_records = cold.hardware_grid(HARDWARE_SLICE)

    # Determinism: 4-worker fan-out is bit-identical to the serial run.
    assert parallel_records == serial_records
    assert cold.n_fits == len(EVAL_SLICE) + len(HARDWARE_SLICE)

    # Warm cache: a fresh runner re-renders every table without a
    # single detector fit.
    warm = ParallelMatrixRunner(
        corpus, seeds=(SPLIT_SEED,), workers=4, cache=ResultCache(cache_dir)
    )

    def rerender():
        eval_records = warm.evaluate_grid(EVAL_SLICE)
        table3_records = warm.hardware_grid(HARDWARE_SLICE)
        return (
            figure3_table(eval_records),
            table2_table(eval_records),
            table3_table(table3_records),
        )

    fig3, table2, table3 = benchmark.pedantic(rerender, rounds=3, iterations=1)
    assert warm.n_fits == 0
    assert warm.cache.stats.corrupt == 0
    print()
    print(fig3)
    print()
    print(table2)
    print()
    print(table3)
    assert "Figure 3" in fig3 and "Table 2" in table2 and "Table 3" in table3
