"""Shared benchmark fixtures: corpus, splits, and the cached result grid.

The paper's full evaluation grid (96 detector variants) takes minutes to
train, so it is computed once per machine and cached as JSON next to this
file; every bench then re-renders its table from the cache and benchmarks
a representative computation.  Delete ``.bench_cache`` to force a
recompute (e.g. after changing the workload model).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.cache import ResultCache
from repro.analysis.matrix import load_records, paper_grid, save_records, table3_grid
from repro.analysis.parallel import ParallelMatrixRunner
from repro.core.config import DetectorConfig
from repro.features import rank_features
from repro.ml.validation import app_level_split
from repro.workloads import default_corpus

CACHE_DIR = Path(__file__).parent / ".bench_cache"
#: Bump when the workload model or classifiers change materially.
CACHE_VERSION = "v2"

CORPUS_SEED = 2018
WINDOWS_PER_APP = 40
SPLIT_SEED = 7

#: Figure 4's detector selections.
FIG4A_CONFIGS = [
    DetectorConfig(name, "bagging", 4) for name in ("BayesNet", "JRip", "MLP", "OneR")
]
FIG4B_CONFIGS = [
    DetectorConfig("JRip", "general", 8),
    DetectorConfig("JRip", "boosted", 2),
    DetectorConfig("OneR", "general", 8),
    DetectorConfig("OneR", "boosted", 2),
]


@pytest.fixture(scope="session")
def corpus():
    return default_corpus(seed=CORPUS_SEED, windows_per_app=WINDOWS_PER_APP)


@pytest.fixture(scope="session")
def split(corpus):
    return app_level_split(corpus, 0.7, seed=SPLIT_SEED)


@pytest.fixture(scope="session")
def ranking(split):
    return rank_features(split.train)


@pytest.fixture(scope="session")
def result_cache():
    """Per-record crash-safe cache: an interrupted grid run resumes."""
    return ResultCache(CACHE_DIR / f"{CACHE_VERSION}_records")


@pytest.fixture(scope="session")
def runner(corpus, result_cache):
    """Parallel, cache-backed grid runner (REPRO_BENCH_WORKERS overrides)."""
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "0")) or None
    return ParallelMatrixRunner(
        corpus, train_fraction=0.7, seeds=(SPLIT_SEED,),
        workers=workers, cache=result_cache,
    )


def _cached(name: str, compute):
    CACHE_DIR.mkdir(exist_ok=True)
    path = CACHE_DIR / f"{CACHE_VERSION}_{name}.json"
    if path.exists():
        return load_records(path)
    records = compute()
    save_records(path, records)
    return records


@pytest.fixture(scope="session")
def grid_records(runner):
    """All 96 eval records behind Figures 3/5 and Table 2 (cached)."""
    return _cached("grid", lambda: runner.evaluate_grid(paper_grid()))


@pytest.fixture(scope="session")
def hardware_records(runner):
    """The 24 hardware records of Table 3 (cached)."""
    return _cached("hardware", lambda: runner.hardware_grid(table3_grid()))


@pytest.fixture(scope="session")
def roc_records(runner):
    """Figure 4's ROC curves (cached)."""
    return _cached(
        "roc", lambda: [runner.roc(c) for c in FIG4A_CONFIGS + FIG4B_CONFIGS]
    )
