"""Extension — heterogeneous committee of the paper's eight classifiers.

The paper observes "there is no unique classifier that delivers the best
results across various metrics."  The natural follow-up: what does a
*committee* of the eight base learners do at a small HPC budget, and do
OOB-learned member weights beat uniform voting?
"""

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.core.registry import build_base_classifier
from repro.features.reduction import FeatureReducer
from repro.ml.ensemble.voting import VotingEnsemble
from repro.ml.metrics import evaluate_detector

COMMITTEE = ("BayesNet", "J48", "JRip", "OneR", "REPTree", "SGD", "SMO")


def test_extension_voting_committee(benchmark, split):
    reducer = FeatureReducer(n_features=4).fit(split.train)
    train = reducer.transform(split.train)
    test = reducer.transform(split.test)

    def run():
        members = [build_base_classifier(name) for name in COMMITTEE]
        results = {}
        uniform = VotingEnsemble([m.clone() for m in members], voting="soft")
        uniform.fit(train.features, train.labels)
        results["uniform-soft"] = (
            evaluate_detector(
                test.labels,
                uniform.predict(test.features),
                uniform.decision_scores(test.features),
            ),
            uniform.member_weights,
        )
        weighted = VotingEnsemble(
            [m.clone() for m in members], voting="soft", holdout_fraction=0.25, seed=5
        )
        weighted.fit(train.features, train.labels)
        results["oob-weighted"] = (
            evaluate_detector(
                test.labels,
                weighted.predict(test.features),
                weighted.decision_scores(test.features),
            ),
            weighted.member_weights,
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nExtension: committee of the paper's classifiers @4HPC")
    for name, (scores, weights) in results.items():
        weight_text = ", ".join(
            f"{member}:{weight:.2f}" for member, weight in zip(COMMITTEE, weights)
        )
        print(f"{name:14s} acc={scores.accuracy:.3f} auc={scores.auc:.3f} "
              f"perf={scores.performance:.3f}")
        print(f"               weights: {weight_text}")

    # Compare against the best homogeneous general classifier at 4HPC.
    best_single = max(
        HMDDetector(DetectorConfig(name, "general", 4))
        .fit(split.train)
        .evaluate(split.test)
        .performance
        for name in ("REPTree", "JRip")
    )
    committee_best = max(scores.performance for scores, _ in results.values())
    print(f"\nbest single general @4HPC perf={best_single:.3f} "
          f"vs committee {committee_best:.3f}")
    assert committee_best > 0.9 * best_single
    for name, (scores, _) in results.items():
        assert scores.accuracy > 0.7, name
