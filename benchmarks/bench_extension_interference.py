"""Extension — deployment robustness: detection under co-running load.

The paper's data is collected in isolated containers; a deployed
detector shares the machine.  This bench sweeps co-runner memory
intensity and counter-bleed and measures the accuracy a clean-trained
detector retains — plus how much of the loss an interference-aware
detector (trained on perturbed data) recovers.
"""

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.hpc.microarch import ApplicationBehavior, PhaseMix, PhaseParameters
from repro.ml import accuracy
from repro.workloads.interference import InterferenceModel, perturb_dataset_features

LEVELS = (
    ("idle", InterferenceModel(memory_intensity=0.0, timeslice_bleed=0.0, seed=1)),
    ("light", InterferenceModel(memory_intensity=0.3, timeslice_bleed=0.05, seed=1)),
    ("heavy", InterferenceModel(memory_intensity=0.8, timeslice_bleed=0.2, seed=1)),
    ("hostile", InterferenceModel(memory_intensity=1.0, timeslice_bleed=0.4, seed=1)),
)


def _neighbour_trace():
    streamer = ApplicationBehavior(
        "neighbour",
        [PhaseMix(PhaseParameters(load_ratio=0.4, l1d_load_miss_rate=0.08), 1.0)],
    )
    return streamer.execute(64, np.random.default_rng(77))


def test_extension_interference(benchmark, split):
    detector = HMDDetector(DetectorConfig("J48", "general", 8)).fit(split.train)
    cols = [split.test.feature_names.index(e) for e in detector.monitored_events]
    neighbour = _neighbour_trace()

    def run():
        results = {}
        for name, model in LEVELS:
            noisy = perturb_dataset_features(
                split.test.features, split.test.feature_names, model, neighbour
            )
            results[name] = accuracy(
                split.test.labels, detector.model.predict(noisy[:, cols])
            )
        # interference-aware training: perturb the training set too
        heavy = LEVELS[2][1]
        noisy_train = perturb_dataset_features(
            split.train.features, split.train.feature_names, heavy, neighbour
        )
        aware = HMDDetector(DetectorConfig("J48", "general", 8))
        aware.reducer.ranking_ = detector.reducer.ranking_
        aware.model.fit(noisy_train[:, cols], split.train.labels)
        aware.fitted_ = True
        noisy_test = perturb_dataset_features(
            split.test.features, split.test.feature_names, heavy, neighbour
        )
        results["heavy (aware)"] = accuracy(
            split.test.labels, aware.model.predict(noisy_test[:, cols])
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nExtension: accuracy under co-running interference (J48 @8HPC)")
    for name, acc in results.items():
        print(f"  {name:14s} acc={acc:.3f}")

    assert results["idle"] > 0.75
    # robustness degrades with interference severity
    assert results["idle"] >= results["hostile"]
    # interference-aware training recovers part of the heavy-load loss
    assert results["heavy (aware)"] >= results["heavy"] - 0.02
