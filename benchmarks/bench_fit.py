"""Training throughput: detector fits per second, per learner and mode.

PR 5 made inference cheap; this bench pins what the fit-vectorization
work did to *training*, the other half of the paper's evaluation-matrix
budget.  It measures three things:

1. Wall-clock of every cell of the 16-HPC evaluation matrix (8 learners
   x general/boosted/bagging) through the vectorized fit paths AND
   through the retained scalar references (``repro.fitmode``), plus the
   corpus build through both sampler paths.
2. Bit-identical agreement between the two paths: every cell's fast- and
   scalar-fitted detectors must emit byte-equal probabilities and
   classes on the held-out split.  CI fails on any disagreement.
3. Speedup floors for the learners whose fit hot loops were vectorized
   (split/cut/bucket scans, mini-batch SGD, the discretizer behind
   BayesNet).  SMO and MLP carry no floor: their training protocols are
   sequential by construction (SMO's partner draws consume the rng at
   every KKT-violating visit against live weights; the MLP updates
   weights every 32-row mini-batch), so both paths already share the
   same batched arithmetic and only bookkeeping differs — see
   EXPERIMENTS.md for the measurements behind that claim.

``REPRO_BENCH_QUICK=1`` shrinks the corpus for CI smoke runs; the
agreement assertions run identically in both modes.  Results land in
``BENCH_fit.json`` (cwd, or ``$REPRO_BENCH_DIR``).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro import fitmode
from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.workloads import default_corpus

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
#: Training windows per fit (the full split holds 3400 at 40 w/app).
TRAIN_ROWS = 250 if QUICK else 10**9
#: Windows per app for the corpus-build timing.
CORPUS_WINDOWS = 6 if QUICK else 40

CLASSIFIERS = ("BayesNet", "J48", "JRip", "MLP", "OneR", "REPTree", "SGD", "SMO")
ENSEMBLES = ("general", "boosted", "bagging")
N_HPCS = 16

#: Acceptance floors, fast vs scalar-reference fit wall-clock, general
#: mode.  Only learners whose *scalar reference* is itself the slow
#: pre-vectorization loop carry a floor; OneR/SGD/JRip scalar
#: references already share the vectorized bucket/margin primitives, so
#: their scalar-vs-fast gap is bookkeeping only (their seed-commit
#: ratios — 4.7x, 6.8x, 1.9x — live in the EXPERIMENTS.md table).
#: Values sit far below the full-size ratios (BayesNet runs ~25x on the
#: 3400-row corpus) so the quick CI corpus clears them too.
MIN_FIT_SPEEDUP = {"BayesNet": 2.5}
#: Floor for the whole 24-cell matrix, dominated by the protocol-bound
#: SMO and MLP cells (see module docstring).
MIN_MATRIX_SPEEDUP = 1.3

#: One-off wall-clock of the same 24-cell matrix at the pre-PR commit
#: (6e45713, "fleet-scale historical analytics"), measured on the same
#: machine as the EXPERIMENTS.md table (2026-08-08): full corpus (seed
#: 2018, 40 windows/app, 3400 train rows), serial, best of 1.  Recorded
#: so the JSON carries the historical anchor next to the reproducible
#: scalar-mode baseline; not re-measured by this bench.  The fast paths
#: bring the same full-size matrix to ~55s (3.3x) — the six learners
#: with vectorizable scans drop 7.8x (116.3s -> 14.8s) while the
#: protocol-bound SMO/MLP cells drop 1.6x (65.8s -> 40.4s).
SEED_COMMIT_BASELINE = {
    "commit": "6e45713",
    "corpus_seconds": 1.48,
    "fit_total_seconds": 182.07,
    "six_vectorizable_learners_seconds": 116.29,
    "smo_mlp_seconds": 65.82,
}


def _bench_out_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_DIR", ".")) / "BENCH_fit.json"


def _subsample(dataset, n_rows: int, seed: int = 0):
    if dataset.n_samples <= n_rows:
        return dataset
    keep = np.sort(
        np.random.default_rng(seed).choice(
            dataset.n_samples, size=n_rows, replace=False
        )
    )
    return replace(
        dataset,
        features=dataset.features[keep],
        labels=dataset.labels[keep],
        app_ids=dataset.app_ids[keep],
    )


def _fit_cell(name: str, ensemble: str, train, ranking_dataset):
    """Fit one matrix cell; returns (detector, seconds)."""
    detector = HMDDetector(DetectorConfig(name, ensemble, N_HPCS))
    start = time.perf_counter()
    detector.fit(train, ranking_dataset=ranking_dataset)
    return detector, time.perf_counter() - start


def test_fit_matrix_throughput_and_agreement(corpus, split):
    train = _subsample(split.train, TRAIN_ROWS)

    # -- corpus build through both sampler paths ----------------------
    start = time.perf_counter()
    default_corpus(seed=3, windows_per_app=CORPUS_WINDOWS)
    corpus_fast = time.perf_counter() - start
    with fitmode.scalar_fit():
        start = time.perf_counter()
        default_corpus(seed=3, windows_per_app=CORPUS_WINDOWS)
        corpus_scalar = time.perf_counter() - start

    # -- the 24-cell 16-HPC matrix, both fit modes --------------------
    results: dict[str, dict] = {}
    fast_total = 0.0
    scalar_total = 0.0
    for name in CLASSIFIERS:
        results[name] = {}
        for ensemble in ENSEMBLES:
            fast_det, fast_s = _fit_cell(name, ensemble, train, split.train)
            with fitmode.scalar_fit():
                ref_det, scalar_s = _fit_cell(name, ensemble, train, split.train)
            fast_total += fast_s
            scalar_total += scalar_s

            # agreement: the two fitted detectors are interchangeable,
            # bit for bit, on held-out windows
            held_out = fast_det.reducer.transform(split.test).features
            assert np.array_equal(
                fast_det.model.predict_proba(held_out),
                ref_det.model.predict_proba(held_out),
            ), f"{name}/{ensemble}: fast and scalar fits disagree"
            assert np.array_equal(
                fast_det.model.predict(held_out),
                ref_det.model.predict(held_out),
            )

            results[name][ensemble] = {
                "fit_seconds": fast_s,
                "scalar_fit_seconds": scalar_s,
                "fits_per_second": 1.0 / fast_s,
                "speedup": scalar_s / fast_s,
            }

    print()
    for name, by_ensemble in results.items():
        row = "  ".join(
            f"{ensemble}: {stats['fit_seconds']:7.2f}s ({stats['speedup']:4.1f}x)"
            for ensemble, stats in by_ensemble.items()
        )
        print(f"{name:>8}  {row}")
    matrix_speedup = scalar_total / fast_total
    print(
        f"matrix: {scalar_total:.1f}s scalar -> {fast_total:.1f}s fast "
        f"({matrix_speedup:.2f}x); corpus {corpus_scalar:.2f}s -> "
        f"{corpus_fast:.2f}s ({corpus_scalar / corpus_fast:.1f}x)"
    )

    for name, floor in MIN_FIT_SPEEDUP.items():
        speedup = results[name]["general"]["speedup"]
        assert speedup >= floor, (
            f"{name} vectorized fit is only {speedup:.1f}x the scalar "
            f"reference (need >= {floor}x)"
        )
    assert matrix_speedup >= MIN_MATRIX_SPEEDUP, (
        f"matrix wall-clock speedup {matrix_speedup:.2f}x is below the "
        f"{MIN_MATRIX_SPEEDUP}x floor"
    )

    out = _bench_out_path()
    out.write_text(
        json.dumps(
            {
                "bench": "fit",
                "quick": QUICK,
                "n_hpcs": N_HPCS,
                "train_rows": int(train.n_samples),
                "matrix": {
                    "fast_seconds": fast_total,
                    "scalar_seconds": scalar_total,
                    "speedup": matrix_speedup,
                },
                "corpus_build": {
                    "windows_per_app": CORPUS_WINDOWS,
                    "fast_seconds": corpus_fast,
                    "scalar_seconds": corpus_scalar,
                    "speedup": corpus_scalar / corpus_fast,
                },
                "seed_commit_baseline": SEED_COMMIT_BASELINE,
                "min_fit_speedup": MIN_FIT_SPEEDUP,
                "min_matrix_speedup": MIN_MATRIX_SPEEDUP,
                "detectors": results,
            },
            indent=1,
        )
    )
    print(f"wrote {out}")
