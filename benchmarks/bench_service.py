"""Streaming service throughput: windows/s across producer × worker
geometries, with and without injected worker crashes.

Three questions gate ``repro-hmd serve`` as a run-time deployment shape:

1. Sustained throughput — windows/s through the full produce → publish
   → assemble → classify pipeline, per geometry.
2. Correctness tax of concurrency — verdicts must stay bit-identical to
   a serial :class:`~repro.core.runtime.RuntimeMonitor` sweep at every
   geometry (no faults), so the speedup is free of semantic drift.
3. Chaos tax — with seeded worker crashes injected, every closed window
   must still emit exactly one verdict (bit-identical again), and the
   bench reports how much throughput the crash/recover cycle costs.

``REPRO_BENCH_QUICK=1`` shrinks the geometry sweep and the job count
for CI smoke runs.  Results land in ``BENCH_service.json`` (cwd, or
``$REPRO_BENCH_DIR``) so CI can track the trajectory across PRs.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.core.runtime import RuntimeMonitor
from repro.hpc.faults import ServiceFaultPlan
from repro.hpc.lxc import ContainerPool
from repro.serve import DetectionService, ServeJob
from repro.workloads.benign import BENIGN_FAMILIES
from repro.workloads.dataset import MALWARE
from repro.workloads.malware import MALWARE_FAMILIES

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

GEOMETRIES = ((1, 1), (2, 1)) if QUICK else ((1, 1), (2, 2), (4, 2))
N_WINDOWS = 10 if QUICK else 20
ROUNDS = 2 if QUICK else 4
QUEUE_DEPTH = 16
POOL_SEED = 2025
# Rate 1.0 makes the chaos column deterministic: every worker's first
# max_crashes_per_worker incarnations crash, then drain cleanly.
CHAOS = ServiceFaultPlan(seed=11, worker_crash_rate=1.0, max_crashes_per_worker=3)


def _jobs():
    rng = np.random.default_rng(47)
    hosts = [
        (family.instantiate(rng)[0], family.label == MALWARE)
        for family in BENIGN_FAMILIES + MALWARE_FAMILIES
    ]
    return [
        ServeJob(app, N_WINDOWS, truth)
        for _ in range(ROUNDS)
        for app, truth in hosts
    ]


def _bench_out_path():
    return Path(os.environ.get("REPRO_BENCH_DIR", ".")) / "BENCH_service.json"


def test_service_throughput_and_chaos_identity(benchmark, split):
    detector = HMDDetector(DetectorConfig("REPTree", "boosted", 4)).fit(split.train)
    jobs = _jobs()

    # The serial truth every geometry must reproduce bit-for-bit.
    monitor = RuntimeMonitor(detector, n_counters=4)
    start = time.perf_counter()
    serial_verdicts = [
        monitor.monitor(
            job.app, job.n_windows, ContainerPool(seed=POOL_SEED + i), job.is_malware
        )
        for i, job in enumerate(jobs)
    ]
    serial_seconds = time.perf_counter() - start
    serial_windows = sum(v.n_windows for v in serial_verdicts)

    rows = []
    for producers, workers in GEOMETRIES:
        for plan in (None, CHAOS):
            service = DetectionService(
                detector,
                producers=producers,
                workers=workers,
                queue_depth=QUEUE_DEPTH,
                pool_seed=POOL_SEED,
                faults=plan,
            )
            report = service.run(jobs)
            assert len(report.verdicts) == len(jobs), (
                f"{producers}x{workers} chaos={plan is not None}: "
                f"{len(report.verdicts)} verdicts for {len(jobs)} executions"
            )
            assert list(report.verdicts) == serial_verdicts, (
                f"{producers}x{workers} chaos={plan is not None}: "
                "verdicts diverged from the serial monitor"
            )
            rows.append(
                {
                    "producers": producers,
                    "workers": workers,
                    "chaos": plan is not None,
                    "windows": report.n_windows,
                    "windows_per_second": report.windows_per_second,
                    "wall_seconds": report.wall_seconds,
                    "worker_crashes": report.worker_crashes,
                    "recovered_windows": report.recovered_windows,
                    "backpressure_waits": report.backpressure_waits,
                }
            )

    # Pin the benchmark timer on the largest pristine geometry.
    producers, workers = GEOMETRIES[-1]
    timed = DetectionService(
        detector,
        producers=producers,
        workers=workers,
        queue_depth=QUEUE_DEPTH,
        pool_seed=POOL_SEED,
    )
    benchmark.pedantic(lambda: timed.run(jobs), rounds=1, iterations=1)

    chaos_rows = [row for row in rows if row["chaos"]]
    assert all(row["worker_crashes"] > 0 for row in chaos_rows), (
        "chaos sweep injected no crashes; the chaos column is meaningless"
    )

    print()
    print("geometry   chaos  windows/s   crashes  recovered  backpressure")
    for row in rows:
        print(
            f"{row['producers']}p x {row['workers']}w   "
            f"{'yes' if row['chaos'] else 'no ':5s} "
            f"{row['windows_per_second']:>9,.0f}   "
            f"{row['worker_crashes']:>7d}  {row['recovered_windows']:>9d}  "
            f"{row['backpressure_waits']:>12d}"
        )
    print(f"serial     no    {serial_windows / serial_seconds:>9,.0f}")

    out = _bench_out_path()
    out.write_text(
        json.dumps(
            {
                "bench": "service",
                "quick": QUICK,
                "n_jobs": len(jobs),
                "n_windows_per_job": N_WINDOWS,
                "queue_depth": QUEUE_DEPTH,
                "serial_windows_per_second": serial_windows / serial_seconds,
                "geometries": rows,
            },
            indent=1,
        )
    )
    print(f"wrote {out}")
