"""Model registry: warm-start latency vs fit-at-startup, mmap sharing.

The registry exists to amortize training: fit once (``train``), then
every monitor/fleet/serve process loads the compiled artifact instead
of refitting.  Three numbers gate that claim:

1. Warm-start speedup — ``ModelRegistry.load_detector`` (mmap) vs
   ``HMDDetector.fit`` for a representative boosted detector, with the
   loaded model's decision scores asserted **bit-identical** to the
   fitted one on the held-out split.
2. Save latency — ``save_detector`` (content hash + atomic npz +
   manifest), and the idempotent re-save no-op.
3. Share cost — loading the same artifact N times with ``mmap=True``
   vs ``mmap=False``: mapped loads share pages, so repeat loads
   should pay parse cost only, not array-copy cost.

``REPRO_BENCH_QUICK=1`` shrinks the detector for CI smoke runs.
Results land in ``BENCH_registry.json`` (cwd, or ``$REPRO_BENCH_DIR``)
so CI can track the trajectory.
"""

import json
import os
import time
from pathlib import Path

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.registry import ModelRegistry

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: A deployment-shaped cell: the paper's boosted tree at a real budget.
CONFIG = DetectorConfig(
    "REPTree", "boosted", 4, n_estimators=4 if QUICK else 10
)
FIT_ROUNDS = 2 if QUICK else 5
LOAD_ROUNDS = 10 if QUICK else 50
SHARE_LOADS = 4 if QUICK else 16


def _bench_out_path():
    return Path(os.environ.get("REPRO_BENCH_DIR", ".")) / "BENCH_registry.json"


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_registry_warm_start(benchmark, split, tmp_path):
    registry = ModelRegistry(tmp_path / "registry")

    # -- fit-at-startup cost (what the registry saves) -----------------
    fit_seconds = min(
        _timed(lambda: HMDDetector(CONFIG).fit(split.train))
        for _ in range(FIT_ROUNDS)
    )
    detector = HMDDetector(CONFIG).fit(split.train)
    reference = detector.decision_scores(split.test)

    # -- save ----------------------------------------------------------
    save_seconds = _timed(lambda: registry.save_detector(detector, tags=["bench"]))
    entry = registry.resolve("bench")
    resave_seconds = _timed(lambda: registry.save_detector(detector))
    payload_bytes = sum(
        p.stat().st_size
        for p in (registry.root / "models" / entry.model_id).iterdir()
    )

    # -- warm start ----------------------------------------------------
    load_seconds = min(
        _timed(lambda: registry.load_detector(entry.model_id))
        for _ in range(LOAD_ROUNDS)
    )
    load_verified_seconds = _timed(
        lambda: registry.load_detector(entry.model_id, verify=True)
    )
    loaded = registry.load_detector(entry.model_id)
    assert loaded.decision_scores(split.test).tobytes() == reference.tobytes(), (
        "registry-loaded detector diverged from the fitted one"
    )

    # -- share cost: N mapped loads vs N copying loads -----------------
    mmap_share_seconds = _timed(lambda: [
        registry.load_detector(entry.model_id, mmap=True)
        for _ in range(SHARE_LOADS)
    ])
    copy_share_seconds = _timed(lambda: [
        registry.load_detector(entry.model_id, mmap=False)
        for _ in range(SHARE_LOADS)
    ])

    benchmark.pedantic(
        lambda: registry.load_detector(entry.model_id), rounds=3, iterations=1
    )

    speedup = fit_seconds / load_seconds if load_seconds > 0 else float("inf")
    print()
    print(
        f"fit:  {fit_seconds * 1e3:8.1f} ms  ({CONFIG.name}, "
        f"{len(split.train.labels):,} training windows)"
    )
    print(
        f"load: {load_seconds * 1e3:8.1f} ms mmap "
        f"({load_verified_seconds * 1e3:.1f} ms verified) -> "
        f"{speedup:,.0f}x warm-start speedup, bit-identical scores"
    )
    print(
        f"save: {save_seconds * 1e3:8.1f} ms "
        f"({payload_bytes / 1e3:.1f} kB payload, "
        f"re-save no-op {resave_seconds * 1e3:.2f} ms)"
    )
    print(
        f"share: {SHARE_LOADS} loads {mmap_share_seconds * 1e3:.1f} ms mapped "
        f"vs {copy_share_seconds * 1e3:.1f} ms copied"
    )

    out = _bench_out_path()
    out.write_text(
        json.dumps(
            {
                "bench": "registry",
                "quick": QUICK,
                "config": CONFIG.name,
                "train_windows": int(len(split.train.labels)),
                "payload_bytes": payload_bytes,
                "fit_seconds": fit_seconds,
                "save_seconds": save_seconds,
                "resave_seconds": resave_seconds,
                "load_seconds": load_seconds,
                "load_verified_seconds": load_verified_seconds,
                "warm_start_speedup": speedup,
                "share_loads": SHARE_LOADS,
                "mmap_share_seconds": mmap_share_seconds,
                "copy_share_seconds": copy_share_seconds,
            },
            indent=1,
        )
    )
    print(f"wrote {out}")
