"""Health-evaluation cost: alert throughput and the disabled-path tax.

``HealthEvaluator`` sits on the fleet's verdict path, so two numbers
gate whether live health monitoring is acceptable at run time:

1. Throughput: verdicts/second through :meth:`observe_verdict` with a
   realistic rule+SLO set attached (every verdict triggers a full rule
   evaluation pass), and trace events/second through :meth:`ingest`
   (the ``watch`` replay path).
2. Disabled path: a monitor built with ``health=None`` pays one
   attribute check per execution — the same near-zero contract
   ``bench_obs_overhead.py`` pins for the null tracer/registry.

Results land in ``BENCH_health.json`` (cwd, or ``$REPRO_BENCH_DIR``)
so CI can track the trajectory across PRs.
"""

import json
import os
import time
from pathlib import Path

from repro.obs import HealthEvaluator, parse_alert_spec, parse_slo

N_VERDICTS = 20_000
MICRO_OPS = 100_000
#: Same ceiling bench_obs_overhead.py pins for disabled telemetry ops.
MAX_DISABLED_OP_SECONDS = 5e-6
#: Evaluating rules on every verdict must still clear this rate.
MIN_VERDICTS_PER_SECOND = 20_000

RULES = [
    parse_alert_spec("degraded_ratio>=0.2:critical:5:0.1"),
    parse_alert_spec("windows_lost_fraction>=0.1:warning"),
    parse_alert_spec("retry_rate>=0.5:warning:10"),
    parse_alert_spec("detection_rate>=0.9:info"),
]
SLOS = [
    parse_slo("nondegraded>=0.95"),
    parse_slo("windows_kept>=0.9"),
    parse_slo("p95_classify_s<=0.01"),
]


def _make_evaluator():
    return HealthEvaluator(rules=list(RULES), slos=list(SLOS), window_s=30.0)


def _feed_verdicts(evaluator, n=N_VERDICTS):
    for i in range(n):
        evaluator.observe_verdict(
            "app",
            is_malware=i % 3 == 0,
            degraded=i % 7 == 0,
            n_windows=10,
            n_windows_lost=i % 11 == 0,
            retries=i % 13 == 0,
            ts=i * 0.01,
        )


def _bench_out_path():
    return Path(os.environ.get("REPRO_BENCH_DIR", ".")) / "BENCH_health.json"


def test_health_evaluation_throughput(benchmark):
    # observe path: every verdict slides the window and evaluates rules.
    evaluator = _make_evaluator()
    elapsed = benchmark.pedantic(
        lambda: _feed_verdicts(evaluator), rounds=1, iterations=1
    )
    start = time.perf_counter()
    observe_evaluator = _make_evaluator()
    _feed_verdicts(observe_evaluator)
    observe_seconds = time.perf_counter() - start
    observe_rate = N_VERDICTS / observe_seconds

    # ingest path: the same verdicts as fleet.verdict trace events.
    events = [
        {
            "type": "event", "name": "fleet.verdict", "ts": i * 0.01,
            "attrs": {
                "app": "app", "is_malware": i % 3 == 0,
                "degraded": i % 7 == 0, "n_windows": 10,
                "n_windows_lost": int(i % 11 == 0), "attempts": 1 + (i % 13 == 0),
            },
        }
        for i in range(N_VERDICTS)
    ]
    ingest_evaluator = _make_evaluator()
    start = time.perf_counter()
    for event in events:
        ingest_evaluator.ingest(event)
    ingest_seconds = time.perf_counter() - start
    ingest_rate = N_VERDICTS / ingest_seconds

    # disabled path: the monitors guard the hook with one None check.
    health = None
    start = time.perf_counter()
    for _ in range(MICRO_OPS):
        if health is not None:
            raise AssertionError("unreachable")
    per_disabled_op = (time.perf_counter() - start) / MICRO_OPS

    print()
    print(
        f"health observe: {observe_rate:,.0f} verdicts/s  "
        f"ingest: {ingest_rate:,.0f} events/s  "
        f"disabled check: {per_disabled_op * 1e9:.1f}ns"
    )
    assert observe_rate > MIN_VERDICTS_PER_SECOND
    assert ingest_rate > MIN_VERDICTS_PER_SECOND
    assert per_disabled_op < MAX_DISABLED_OP_SECONDS
    # Both paths fed identical evidence -> identical lifetime totals.
    assert (
        ingest_evaluator.window.total_degraded
        == observe_evaluator.window.total_degraded
    )

    out = _bench_out_path()
    out.write_text(
        json.dumps(
            {
                "bench": "health",
                "n_verdicts": N_VERDICTS,
                "rules": len(RULES),
                "slos": len(SLOS),
                "observe_verdicts_per_second": observe_rate,
                "ingest_events_per_second": ingest_rate,
                "disabled_check_seconds": per_disabled_op,
                "alerts_fired": sum(
                    s.fired_count for s in observe_evaluator.states
                ),
            },
            indent=1,
        )
    )
    print(f"wrote {out}")
