"""Quality-tracking cost and drift-detection latency.

The quality tracker sits next to the verdict path, so three numbers
gate whether drift observability is acceptable at run time:

1. Verdict integrity: a serve run with ``quality=`` enabled must emit
   verdicts bit-identical to a ``quality=None`` run over the same
   seeded jobs.  CI fails on any disagreement.
2. Overhead: the enabled worker path shares one reduce + one
   probability pass between the verdict and the drift scorer
   (:meth:`~repro.core.detector.HMDDetector.grade_windows`), so serve
   throughput with tracking on must stay within 10% of the
   ``quality=None`` baseline (best-of-rounds on both sides), and the
   disabled path must cost one attribute check.
3. Detection latency: feeding a :class:`QualityTracker` evasion-shifted
   corpora directly (deterministic timestamps, no threads) pins how
   many live feature windows each shift strength needs before the
   default PSI rule fires — and that a stationary held-out stream
   never fires it (false-alarm count 0).

``REPRO_BENCH_QUICK=1`` shrinks the corpus and the round counts for CI
smoke runs; the bit-identity and false-alarm assertions run identically
in both modes.  Results land in ``BENCH_quality.json`` (cwd, or
``$REPRO_BENCH_DIR``) so CI can track the trajectory across PRs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.ml import app_level_split
from repro.obs import QualityTracker, build_reference_profile
from repro.serve import DetectionService, ServeJob
from repro.workloads import (
    BENIGN_FAMILIES,
    MALWARE,
    MALWARE_FAMILIES,
    CorpusBuilder,
    default_corpus,
    evasive_families,
)

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

CORPUS_SEED = 2018
SPLIT_SEED = 7
WINDOWS_PER_APP = 6 if QUICK else 12
#: Windows per served execution in the overhead loop.  Deliberately on
#: the long side: the tracker's per-execution cost is fixed (binning is
#: vectorized, scoring runs once per observation) while serve cost
#: scales with windows, so short executions overstate relative overhead.
SERVE_WINDOWS = 40
#: Passes over the family list forming the serve job stream.
SERVE_ROUNDS = 2
#: Serve geometry for the throughput comparison.
PRODUCERS, WORKERS, QUEUE_DEPTH = 2, 2, 64
#: Timing rounds for the best-of-rounds throughput comparison.
TIMING_ROUNDS = 4 if QUICK else 5
#: Enabled-path throughput floor relative to the quality=None baseline.
MIN_THROUGHPUT_RATIO = 0.9

#: Evasion strengths swept for windows-to-alert latency.
SHIFT_STRENGTHS = (0.2, 0.4, 0.8)
#: Passes over the live corpus before declaring a strength undetected.
MAX_FEED_ROUNDS = 4 if QUICK else 6

MICRO_OPS = 100_000
#: Same ceiling the other obs benches pin for a disabled-path check.
MAX_DISABLED_OP_SECONDS = 5e-6

CONFIG = DetectorConfig("REPTree", "boosted", 4)


def _bench_out_path():
    return Path(os.environ.get("REPRO_BENCH_DIR", ".")) / "BENCH_quality.json"


def _fit_detector():
    corpus = default_corpus(seed=CORPUS_SEED, windows_per_app=WINDOWS_PER_APP)
    split = app_level_split(corpus, 0.7, seed=SPLIT_SEED)
    detector = HMDDetector(CONFIG).fit(split.train)
    return split, detector


def _serve_jobs():
    """Deterministic serve job stream (reseeded per call)."""
    rng = np.random.default_rng(CORPUS_SEED + 100)
    return [
        ServeJob(family.instantiate(rng)[0], SERVE_WINDOWS, family.label == MALWARE)
        for _ in range(SERVE_ROUNDS)
        for family in BENIGN_FAMILIES + MALWARE_FAMILIES
    ]


def _serve_pass(detector, quality):
    """One seeded serve run; per-execution pools make traces identical
    across passes regardless of the quality hook."""
    service = DetectionService(
        detector,
        producers=PRODUCERS,
        workers=WORKERS,
        queue_depth=QUEUE_DEPTH,
        pool_seed=CORPUS_SEED + 7000,
        quality=quality,
    )
    return service.run(_serve_jobs())


def _feed_corpus(profile, detector, dataset, rounds):
    """Feed every app of ``dataset`` to a fresh tracker, ``rounds`` times.

    Executions arrive one second apart and the sliding window spans
    exactly one pass over the corpus, so after warm-up every evaluation
    sees each application exactly once: a stationary replay of the
    reference corpus reproduces the reference counts exactly (PSI 0.0
    by construction), while a shifted corpus diverges at full coverage.
    The evidence floor is pinned to the full reference window count so
    no rule can evaluate a partial application mixture.  Returns the
    tracker, the number of live feature windows observed when the first
    rule fired (None if it never did), and the total windows fed.
    """
    reduced = detector.reducer.transform(dataset)
    features = np.asarray(reduced.features, dtype=float)
    apps = np.unique(reduced.app_ids)
    tracker = QualityTracker(
        profile, window_s=float(len(apps)), min_windows=profile.n_windows
    )
    ts = 0.0
    windows_fed = 0
    windows_to_alert = None
    for _ in range(rounds):
        for app in apps:
            rows = features[reduced.app_ids == app]
            scores = detector.model.decision_scores(rows)
            flags = detector.model.predict(rows)
            truth = bool(reduced.labels[reduced.app_ids == app][0] == MALWARE)
            tracker.observe_execution(
                "bench",
                rows,
                scores,
                margin=float(flags.mean()) - 0.5,
                truth=truth,
                ts=ts,
            )
            ts += 1.0
            windows_fed += rows.shape[0]
            if windows_to_alert is None and tracker.drift_fired():
                windows_to_alert = windows_fed
    return tracker, windows_to_alert, windows_fed


def test_quality_disabled_is_bit_identical_and_enabled_is_cheap():
    split, detector = _fit_detector()
    profile = build_reference_profile(detector, split.train)

    # Bit-identity: same seeded job stream, with and without tracking.
    baseline = _serve_pass(detector, quality=None)
    tracker = QualityTracker(profile, window_s=1e9)
    tracked = _serve_pass(detector, quality=tracker)
    assert tracked.verdicts == baseline.verdicts
    assert tracker.total_executions == len(baseline.verdicts)

    # Throughput: interleaved best-of-rounds on both sides, so neither
    # warm-up effects nor scheduler noise lands on just one of them.
    base_rate = quality_rate = 0.0
    for _ in range(TIMING_ROUNDS):
        report = _serve_pass(detector, quality=None)
        base_rate = max(base_rate, report.windows_per_second)
        report = _serve_pass(
            detector, quality=QualityTracker(profile, window_s=1e9)
        )
        quality_rate = max(quality_rate, report.windows_per_second)
    ratio = quality_rate / base_rate

    # Disabled path: the monitors guard the hook with one None check.
    quality = None
    start = time.perf_counter()
    for _ in range(MICRO_OPS):
        if quality is not None:
            raise AssertionError("unreachable")
    per_disabled_op = (time.perf_counter() - start) / MICRO_OPS

    print()
    print(
        f"quality off: {base_rate:,.0f} windows/s  "
        f"on: {quality_rate:,.0f} windows/s  ratio {ratio:.3f}  "
        f"disabled check: {per_disabled_op * 1e9:.1f}ns"
    )
    assert ratio >= MIN_THROUGHPUT_RATIO
    assert per_disabled_op < MAX_DISABLED_OP_SECONDS

    out = _bench_out_path()
    payload = {
        "bench": "quality",
        "quick": QUICK,
        "config": CONFIG.name,
        "windows_per_app": WINDOWS_PER_APP,
        "serve_windows": SERVE_WINDOWS,
        "serve_geometry": [PRODUCERS, WORKERS, QUEUE_DEPTH],
        "baseline_windows_per_second": base_rate,
        "quality_windows_per_second": quality_rate,
        "throughput_ratio": ratio,
        "disabled_check_seconds": per_disabled_op,
        "verdicts_bit_identical": True,
    }
    out.write_text(json.dumps(payload, indent=1))
    print(f"wrote {out}")


def test_drift_detection_latency_and_stationary_silence():
    split, detector = _fit_detector()
    profile = build_reference_profile(detector, split.train)
    families = BENIGN_FAMILIES + MALWARE_FAMILIES

    # Stationary control: replay the training split itself — a live
    # stream drawn from the reference distribution must never fire the
    # default PSI rule.  (Held-out apps are *not* a stationary control:
    # an app-level split changes the application mixture, which is real
    # covariate novelty — the CLI smoke covers that case with a raised
    # threshold.)
    stationary, _, stationary_windows = _feed_corpus(
        profile, detector, split.train, rounds=MAX_FEED_ROUNDS
    )
    stationary_fired = sum(s.fired_count for s in stationary.states)
    stationary_psi = stationary.signals()["max_feature_psi"]

    latencies = {}
    for strength in SHIFT_STRENGTHS:
        shifted_corpus = CorpusBuilder(
            families=evasive_families(families, strength),
            seed=CORPUS_SEED + 1,
            windows_per_app=WINDOWS_PER_APP,
        ).build()
        tracker, windows_to_alert, fed = _feed_corpus(
            profile, detector, shifted_corpus, rounds=MAX_FEED_ROUNDS
        )
        latencies[strength] = {
            "windows_to_alert": windows_to_alert,
            "windows_fed": fed,
            "max_feature_psi": tracker.signals()["max_feature_psi"],
        }

    print()
    print(
        f"stationary: 0 alerts over {stationary_windows} windows "
        f"(max PSI {stationary_psi:.3f}, floor {stationary.min_windows})"
    )
    for strength, row in latencies.items():
        print(
            f"shift {strength:.1f}: alert after "
            f"{row['windows_to_alert']} windows "
            f"(PSI {row['max_feature_psi']:.3f})"
        )
    assert stationary_fired == 0
    # The strongest evasion sweep must be caught; weaker ones are
    # recorded so the JSON tracks the sensitivity frontier across PRs.
    assert latencies[0.8]["windows_to_alert"] is not None

    out = _bench_out_path()
    payload = json.loads(out.read_text()) if out.exists() else {"bench": "quality"}
    payload["drift_latency"] = {
        "min_windows_floor": stationary.min_windows,
        "stationary_windows_fed": stationary_windows,
        "stationary_false_alarms": stationary_fired,
        "stationary_max_feature_psi": stationary_psi,
        "shifts": {str(k): v for k, v in latencies.items()},
    }
    out.write_text(json.dumps(payload, indent=1))
    print(f"wrote {out}")
