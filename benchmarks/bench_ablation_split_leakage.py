"""Ablation — application-level vs sample-level splitting.

The paper splits train/test by *application* (unknown apps at test
time).  Splitting by sample leaks application identity — windows of the
same app land on both sides — and inflates every metric.  This bench
quantifies the inflation, justifying the protocol choice.
"""

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.ml.validation import app_level_split, sample_level_split

CLASSIFIERS = ("BayesNet", "J48", "REPTree")


def test_ablation_split_leakage(benchmark, corpus):
    def run():
        rows = {}
        honest = app_level_split(corpus, 0.7, seed=7)
        leaky = sample_level_split(corpus, 0.7, seed=7)
        for classifier in CLASSIFIERS:
            config = DetectorConfig(classifier, "general", 8)
            h = HMDDetector(config).fit(honest.train).evaluate(honest.test)
            l = HMDDetector(config).fit(leaky.train).evaluate(leaky.test)
            rows[classifier] = (h, l)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nAblation: honest (app-level) vs leaky (sample-level) split @8HPC")
    print(f"{'classifier':12s} {'honest acc':>11s} {'leaky acc':>10s} {'inflation':>10s}")
    inflations = []
    for classifier, (honest, leaky) in rows.items():
        inflation = leaky.accuracy - honest.accuracy
        inflations.append(inflation)
        print(f"{classifier:12s} {honest.accuracy:>11.3f} {leaky.accuracy:>10.3f} "
              f"{inflation:>+10.3f}")

    # Sample-level splitting systematically inflates accuracy.
    assert sum(inflations) / len(inflations) > 0.02
