"""Table 2 — AUC (robustness) of general and ensemble detectors.

Renders the AUC grid from the cached matrix and benchmarks the ROC/AUC
computation itself.
"""

import numpy as np

from repro.analysis.report import table2_table
from repro.ml.metrics import roc_auc


def test_table2_auc_grid(benchmark, grid_records):
    rng = np.random.default_rng(0)
    labels = rng.integers(0, 2, 5000)
    labels[0], labels[1] = 0, 1
    scores = rng.normal(size=5000) + labels
    benchmark.pedantic(roc_auc, args=(labels, scores), rounds=10, iterations=5)

    print()
    print(table2_table(grid_records))

    by_key = {(r.classifier, r.ensemble, r.n_hpcs): r for r in grid_records}

    # Shape check 1: SMO's hard votes give the weakest general AUC
    # (the paper's 0.65 row), and boosting lifts it substantially.
    smo_general = by_key[("SMO", "general", 4)].auc
    smo_boosted = by_key[("SMO", "boosted", 4)].auc
    general_aucs = [
        by_key[(c, "general", 4)].auc
        for c in ("BayesNet", "J48", "JRip", "MLP", "OneR", "REPTree")
    ]
    assert smo_general <= min(general_aucs) + 0.02
    assert smo_boosted > smo_general

    # Shape check 2: BayesNet and JRip with 4HPC ensembles are the most
    # robust small-budget detectors (paper: 0.94 / 0.93).
    bayes_bag4 = by_key[("BayesNet", "bagging", 4)].auc
    jrip_bag4 = by_key[("JRip", "bagging", 4)].auc
    assert bayes_bag4 > 0.82
    assert jrip_bag4 > 0.82

    # Shape check 3: boosting improves the AUC of weak 2HPC detectors on
    # average (paper Figure 4-b).
    improvements = [
        by_key[(c, "boosted", 2)].auc - by_key[(c, "general", 2)].auc
        for c in ("JRip", "OneR", "REPTree", "SMO")
    ]
    assert float(np.mean(improvements)) > 0.0
