"""Ablation — split variance: error bars the single-split paper hides.

Cross-validates the headline detectors over stratified application-level
folds and reports mean ± std, quantifying how far one lucky/unlucky
70/30 split can move the reported numbers.
"""

from repro.analysis.crossval import cross_validated_record, stability_table
from repro.core.config import DetectorConfig

CONFIGS = (
    DetectorConfig("REPTree", "general", 16),
    DetectorConfig("REPTree", "boosted", 2),
    DetectorConfig("JRip", "bagging", 4),
    DetectorConfig("OneR", "general", 2),
)


def test_ablation_split_variance(benchmark, corpus):
    def run():
        return [
            cross_validated_record(corpus, config, n_folds=4, seed=3)
            for config in CONFIGS
        ]

    records = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(stability_table(records))

    by_name = {r.config.name: r for r in records}
    # fold-to-fold variation is real: at least a point of accuracy std
    assert any(r.accuracy_std > 0.01 for r in records)
    # and the paper's headline survives the error bars: 2HPC-Boosted
    # REPTree's mean accuracy sits within one std of the 16HPC general's.
    wide = by_name["16HPC-REPTree"]
    narrow = by_name["2HPC-Boosted-REPTree"]
    spread = wide.accuracy_std + narrow.accuracy_std
    assert narrow.accuracy_mean >= wide.accuracy_mean - spread - 0.02
