"""Inference throughput: windows classified per second, per detector.

The paper's run-time argument prices every 10 ms HPC window through the
detector, so windows/second *is* the deployment budget.  This bench pins
three things:

1. Throughput of the vectorized batch kernels for all 8 base learners
   and their boosted/bagged ensemble forms on the seeded evaluation
   corpus (the same corpus/split seeds the figure benches use).
2. Bit-identical agreement between the vectorized paths and the retained
   scalar references (``route``-based tree descent, the JRip mask loop,
   the sequential ensemble accumulation) — same probabilities, same
   classes.  CI fails on any disagreement.
3. The tree-family speedup: the flat-array kernels must classify at
   least ``MIN_TREE_SPEEDUP``× faster than the pre-vectorization scalar
   loop they replaced.

``REPRO_BENCH_QUICK=1`` shrinks the batch for CI smoke runs; the
agreement assertions run identically in both modes.  Results land in
``BENCH_inference.json`` (cwd, or ``$REPRO_BENCH_DIR``).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.ml.base import proba_from_counts
from repro.ml.tree import leaf_counts_matrix_scalar

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
#: Tiling factor applied to the evaluation windows for stable timing.
TILE = 4 if QUICK else 32
#: Timing repetitions (best-of).
REPS = 2 if QUICK else 4
#: Training windows per detector fit (inference is what's measured).
TRAIN_ROWS = 300 if QUICK else 1000
#: Acceptance floor for the flat-tree kernels vs the scalar loop.
MIN_TREE_SPEEDUP = 10.0

CLASSIFIERS = ("BayesNet", "J48", "JRip", "MLP", "OneR", "REPTree", "SGD", "SMO")
TREE_FAMILY = ("J48", "REPTree")
ENSEMBLES = ("general", "boosted", "bagging")
N_HPCS = 4


def _bench_out_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_DIR", ".")) / "BENCH_inference.json"


def _rate(fn, features: np.ndarray, reps: int = REPS) -> float:
    """Best-of-``reps`` windows/second of ``fn(features)``."""
    fn(features)  # warm up caches and lazy state
    best = np.inf
    for _ in range(reps):
        start = time.perf_counter()
        fn(features)
        best = min(best, time.perf_counter() - start)
    return features.shape[0] / best


def _scalar_tree_proba(model, features: np.ndarray) -> np.ndarray:
    """Pre-vectorization J48/REPTree prediction path, verbatim."""
    return proba_from_counts(leaf_counts_matrix_scalar(model.root_, features))


def _scalar_tree_ensemble_proba(model, features: np.ndarray) -> np.ndarray:
    """Pre-vectorization boosted/bagged prediction over scalar members."""
    if hasattr(model, "estimator_weights_"):  # AdaBoostM1
        votes = np.zeros((features.shape[0], 2))
        for member, alpha in zip(model.estimators_, model.estimator_weights_):
            predictions = (
                _scalar_tree_proba(member, features)[:, 1] >= 0.5
            ).astype(np.intp)
            votes[np.arange(len(predictions)), predictions] += alpha
        total = votes.sum(axis=1, keepdims=True)
        return votes / np.where(total > 0, total, 1.0)
    total = np.zeros((features.shape[0], 2))  # Bagging
    for member in model.estimators_:
        total += _scalar_tree_proba(member, features)
    return total / len(model.estimators_)


def _scalar_jrip_proba(model, features: np.ndarray) -> np.ndarray:
    smoothed = model._counts_scalar(features) + 1.0
    return smoothed / smoothed.sum(axis=1, keepdims=True)


def _subsample(dataset, n_rows: int, seed: int = 0):
    if dataset.n_samples <= n_rows:
        return dataset
    keep = np.sort(
        np.random.default_rng(seed).choice(
            dataset.n_samples, size=n_rows, replace=False
        )
    )
    return replace(
        dataset,
        features=dataset.features[keep],
        labels=dataset.labels[keep],
        app_ids=dataset.app_ids[keep],
    )


def test_inference_throughput_and_agreement(corpus, split):
    train = _subsample(split.train, TRAIN_ROWS)
    results: dict[str, dict] = {}
    speedups: dict[str, float] = {}

    for name in CLASSIFIERS:
        results[name] = {}
        for ensemble in ENSEMBLES:
            detector = HMDDetector(DetectorConfig(name, ensemble, N_HPCS))
            detector.fit(train, ranking_dataset=split.train)
            features = detector.reducer.transform(split.test).features
            batch = np.tile(features, (TILE, 1))
            model = detector.model
            vec_rate = _rate(model.predict_proba, batch)
            results[name][ensemble] = {"windows_per_second": vec_rate}

            scalar_proba = None
            if name in TREE_FAMILY and ensemble == "general":
                scalar_proba = _scalar_tree_proba
            elif name in TREE_FAMILY:
                scalar_proba = _scalar_tree_ensemble_proba
            elif name == "JRip" and ensemble == "general":
                scalar_proba = _scalar_jrip_proba
            if scalar_proba is None:
                continue

            # agreement: same probabilities, same classes, bit for bit
            got = model.predict_proba(features)
            want = scalar_proba(model, features)
            assert np.array_equal(got, want), (
                f"{name}/{ensemble}: vectorized and scalar paths disagree"
            )
            assert np.array_equal(
                model.predict(features), (want[:, 1] >= 0.5).astype(np.intp)
            )

            scalar_rate = _rate(
                lambda b: scalar_proba(model, b), batch, reps=min(REPS, 2)
            )
            speedup = vec_rate / scalar_rate
            results[name][ensemble].update(
                scalar_windows_per_second=scalar_rate, speedup=speedup
            )
            if name in TREE_FAMILY and ensemble == "general":
                speedups[name] = speedup

    print()
    for name, by_ensemble in results.items():
        row = "  ".join(
            f"{ensemble}: {stats['windows_per_second']:>12,.0f} w/s"
            for ensemble, stats in by_ensemble.items()
        )
        print(f"{name:>8}  {row}")
    for name, speedup in speedups.items():
        print(f"{name}: {speedup:.1f}x over the scalar loop")
        assert speedup >= MIN_TREE_SPEEDUP, (
            f"{name} vectorized kernel is only {speedup:.1f}x the scalar "
            f"reference (need >= {MIN_TREE_SPEEDUP}x)"
        )

    out = _bench_out_path()
    out.write_text(
        json.dumps(
            {
                "bench": "inference",
                "quick": QUICK,
                "n_hpcs": N_HPCS,
                "batch_windows": int(split.test.features.shape[0] * TILE),
                "min_tree_speedup": MIN_TREE_SPEEDUP,
                "tree_speedups": speedups,
                "detectors": results,
            },
            indent=1,
        )
    )
    print(f"wrote {out}")
