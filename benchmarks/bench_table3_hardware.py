"""Table 3 — hardware implementation cost of the detectors.

Renders the latency (cycles @ 10 ns) and area (% of an OpenSPARC core)
grid for 8HPC-general, 4HPC-Boosted and 2HPC-Boosted variants of every
classifier, and benchmarks one model-to-hardware lowering.
"""

from repro.analysis.report import table3_table
from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.hardware import lower


def test_table3_hardware_costs(benchmark, split, hardware_records):
    detector = HMDDetector(DetectorConfig("MLP", "general", 8)).fit(split.train)
    benchmark.pedantic(lower, args=(detector.model,), rounds=5, iterations=1)

    print()
    print(table3_table(hardware_records))

    by_key = {(r.classifier, r.ensemble, r.n_hpcs): r for r in hardware_records}

    # Shape check 1: OneR is the cheapest and fastest general detector
    # (paper: 1 cycle).
    assert by_key[("OneR", "general", 8)].latency_cycles == 1

    # Shape check 2: JRip classifies in a handful of cycles (paper: 4).
    assert by_key[("JRip", "general", 8)].latency_cycles <= 6

    # Shape check 3: the MLP dominates both latency and area among the
    # general detectors (paper: 302 cycles, 61% area).
    mlp = by_key[("MLP", "general", 8)]
    for classifier in ("BayesNet", "J48", "JRip", "OneR", "REPTree", "SGD", "SMO"):
        other = by_key[(classifier, "general", 8)]
        assert mlp.latency_cycles > other.latency_cycles, classifier
        assert mlp.area_percent > 3 * other.area_percent, classifier

    # Shape check 4 (the paper's §4.4 highlight): the 2HPC Boosted-MLP
    # needs substantially *less* area than the 8HPC general MLP
    # (paper: ~19% reduction).
    assert by_key[("MLP", "boosted", 2)].area_percent < 0.9 * mlp.area_percent

    # Shape check 5: boosting raises latency (sequential member
    # evaluation) for every classifier.
    for classifier in ("BayesNet", "J48", "JRip", "OneR", "REPTree", "SGD", "SMO"):
        assert (
            by_key[(classifier, "boosted", 4)].latency_cycles
            > by_key[(classifier, "general", 8)].latency_cycles
        ), classifier

    # Shape check 6: every detector finishes orders of magnitude inside
    # the 10 ms sampling deadline.
    for record in hardware_records:
        assert record.latency_ns < 1e5  # < 100 us
