"""Ablation — feature ranking method: correlation vs information gain.

The paper uses WEKA's CorrelationAttributeEval; an entropy ranker is the
obvious alternative.  This bench compares the detectors built on each
ranking at the 4-HPC budget.
"""

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.features import rank_features

CLASSIFIERS = ("BayesNet", "J48", "REPTree")


def test_ablation_ranking_method(benchmark, split):
    def run():
        out = {}
        for method in ("correlation", "information_gain"):
            ranking = rank_features(split.train, method=method)
            out[method] = {"top4": ranking.top(4), "scores": {}}
            for classifier in CLASSIFIERS:
                config = DetectorConfig(classifier, "general", 4,
                                        feature_method=method)
                detector = HMDDetector(config).fit(split.train)
                out[method]["scores"][classifier] = detector.evaluate(split.test)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nAblation: feature-ranking method @4HPC")
    for method, data in out.items():
        print(f"\n{method}: top4 = {', '.join(data['top4'])}")
        for classifier, scores in data["scores"].items():
            print(f"  {classifier:10s} acc={scores.accuracy:.3f} auc={scores.auc:.3f}")

    # Both rankers find informative events: every detector beats chance.
    for data in out.values():
        for scores in data["scores"].values():
            assert scores.accuracy > 0.6
    # And the two rankings agree on at least one of the top-4 events.
    overlap = set(out["correlation"]["top4"]) & set(out["information_gain"]["top4"])
    assert overlap
