"""Related-work baselines vs the paper's ensemble detectors (paper §5).

Compares, at the practical 4-HPC budget:

* the paper's approach — general classifiers boosted/bagged;
* Khasawneh et al. [11] — specialized per-family logistic detectors;
* Demme et al. [3] — KNN (strong offline, unusable in hardware);
* Tang / Garcia-Serrano [15, 5] — unsupervised benign-density anomaly
  detection (needs no malware labels, weaker supervised accuracy);

and checks the paper's §5 narrative holds: no baseline strictly beats the
boosted/bagged detectors, KNN's deployment cost is its training set, and
the anomaly detector trades accuracy for label-freeness.
"""

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.core.specialized import SpecializedEnsembleDetector
from repro.features.reduction import FeatureReducer
from repro.ml.baselines import GaussianAnomalyDetector, KNearestNeighbors
from repro.ml.metrics import evaluate_detector


def _eval_model(model, train, test):
    model.fit(train.features, train.labels)
    return evaluate_detector(
        test.labels, model.predict(test.features), model.decision_scores(test.features)
    )


def test_baseline_comparison(benchmark, split):
    reducer = FeatureReducer(n_features=4).fit(split.train)
    train = reducer.transform(split.train)
    test = reducer.transform(split.test)

    def run():
        results = {}
        for name in ("JRip", "REPTree"):
            for ensemble in ("boosted", "bagging"):
                detector = HMDDetector(DetectorConfig(name, ensemble, 4))
                detector.fit(split.train)
                results[f"{ensemble}-{name}"] = detector.evaluate(split.test)
        specialized = SpecializedEnsembleDetector(n_hpcs=4).fit(split.train)
        results["specialized-logistic [11]"] = specialized.evaluate(split.test)
        results["knn [3]"] = _eval_model(KNearestNeighbors(k=7), train, test)
        results["anomaly [5,15]"] = _eval_model(
            GaussianAnomalyDetector(seed=3), train, test
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nRelated-work baselines @4HPC")
    print(f"{'detector':28s} {'acc':>7s} {'auc':>7s} {'acc*auc':>8s}")
    for name, scores in sorted(results.items(), key=lambda kv: -kv[1].performance):
        print(f"{name:28s} {scores.accuracy:>7.3f} {scores.auc:>7.3f} "
              f"{scores.performance:>8.3f}")

    ours = max(
        results["boosted-JRip"].performance,
        results["bagging-JRip"].performance,
        results["boosted-REPTree"].performance,
        results["bagging-REPTree"].performance,
    )
    # The unsupervised anomaly detector pays for needing no malware labels.
    assert results["anomaly [5,15]"].performance < ours
    # The specialized per-family design does not strictly beat the
    # paper's boosted general detectors at equal budget.
    assert results["specialized-logistic [11]"].performance < ours + 0.05
    # Every supervised baseline is a working detector.
    for name, scores in results.items():
        assert scores.accuracy > 0.55, name
