"""Design-space analysis: Pareto front and architectural recommendation.

The paper's conclusion argues detectors must be compared "by taking all
of these parameters into consideration" (performance, latency, area) and
that the results guide which HPCs future architectures should implement.
This bench joins the cached evaluation and hardware grids, extracts the
Pareto-optimal detector set, adds a significance check on the headline
comparison, and prints the recommended counter sets.
"""

import numpy as np

from repro.analysis.pareto import join_records, pareto_front, pareto_table, recommend_counters
from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.ml.stats import bootstrap_metric_ci, mcnemar_test
from repro.ml.metrics import roc_auc


def test_pareto_design_space(benchmark, grid_records, hardware_records, ranking, split):
    points = join_records(grid_records, hardware_records)
    front = benchmark.pedantic(pareto_front, args=(points,), rounds=20, iterations=1)

    print()
    print(pareto_table(points))
    print(f"\nPareto-optimal detectors: {len(front)}/{len(points)}")

    # The front must contain both extremes of the trade-off: something
    # near-free (OneR-like) and something high-performance.
    assert 1 <= len(front) < len(points)
    assert min(p.area_percent for p in front) <= min(p.area_percent for p in points) + 1e-9
    assert max(p.performance for p in front) == max(p.performance for p in points)
    # The MLP's general detector never wins the cost-aware comparison
    # outright: if it is on the front it is there for performance only,
    # and cheaper near-equals exist.
    mlp_general = [p for p in points if p.classifier == "MLP" and p.ensemble == "general"]
    cheapest_front_area = min(p.area_percent for p in front)
    assert all(p.area_percent > 3 * cheapest_front_area for p in mlp_general)

    print("\nRecommended counters for future architectures:")
    for budget in (2, 4, 8):
        events = recommend_counters(ranking, budget)
        print(f"  {budget} registers: {', '.join(events)}")

    # Statistical check on the paper's headline: 2HPC-boosted REPTree vs
    # 8HPC general REPTree on identical test windows.
    boosted2 = HMDDetector(DetectorConfig("REPTree", "boosted", 2)).fit(split.train)
    general8 = HMDDetector(DetectorConfig("REPTree", "general", 8)).fit(split.train)
    test = split.test
    pred_a = boosted2.predict(test)
    pred_b = general8.predict(test)
    outcome = mcnemar_test(test.labels, pred_a, pred_b)
    ci = bootstrap_metric_ci(
        roc_auc, test.labels, boosted2.decision_scores(test),
        groups=np.asarray(test.app_ids), n_resamples=300,
    )
    print(f"\nMcNemar 2HPC-Boosted vs 8HPC-General REPTree: "
          f"b={outcome.b} c={outcome.c} p={outcome.p_value:.3f}")
    print(f"2HPC-Boosted REPTree AUC (app-level bootstrap): {ci}")
    assert 0.0 <= outcome.p_value <= 1.0
    assert ci.low <= ci.point <= ci.high
