"""Ablation — AdaBoost reweighting vs resampling.

WEKA's AdaBoostM1 reweights instances for weight-aware learners and
resamples otherwise; forcing resampling everywhere (``-Q``) is the other
design point.  This bench compares both modes on the weight-aware tree
learners at the 2-HPC budget.
"""

from repro.core.config import DetectorConfig
from repro.core.registry import build_base_classifier
from repro.features.reduction import FeatureReducer
from repro.ml.ensemble.adaboost import AdaBoostM1
from repro.ml.metrics import evaluate_detector

CLASSIFIERS = ("J48", "REPTree")


def test_ablation_boost_mode(benchmark, split):
    reducer = FeatureReducer(n_features=2).fit(split.train)
    train = reducer.transform(split.train)
    test = reducer.transform(split.test)

    def run():
        results = {}
        for classifier in CLASSIFIERS:
            for resample in (False, True):
                model = AdaBoostM1(
                    build_base_classifier(classifier),
                    n_estimators=10,
                    use_resampling=resample,
                    seed=3,
                )
                model.fit(train.features, train.labels)
                scores = evaluate_detector(
                    test.labels,
                    model.predict(test.features),
                    model.decision_scores(test.features),
                )
                results[(classifier, resample)] = (scores, model.n_models)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nAblation: AdaBoost reweight vs resample @2HPC")
    print(f"{'classifier':12s} {'mode':>9s} {'models':>7s} {'acc':>7s} {'auc':>7s}")
    for (classifier, resample), (scores, n_models) in results.items():
        mode = "resample" if resample else "reweight"
        print(f"{classifier:12s} {mode:>9s} {n_models:>7d} "
              f"{scores.accuracy:>7.3f} {scores.auc:>7.3f}")

    # Both modes produce working boosted detectors of comparable quality.
    for scores, n_models in results.values():
        assert scores.accuracy > 0.6
        assert n_models >= 1
    for classifier in CLASSIFIERS:
        reweight = results[(classifier, False)][0].performance
        resample = results[(classifier, True)][0].performance
        assert abs(reweight - resample) < 0.15
