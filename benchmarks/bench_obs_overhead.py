"""Disabled-instrumentation overhead: telemetry must be free when off.

Every hot path in the evaluation pipeline calls into ``repro.obs`` —
``MatrixRunner`` wraps fits in spans, ``ResultCache`` counts bytes,
``RuntimeMonitor`` observes per-window latency.  The contract that makes
this acceptable is that a **disabled** tracer/registry is a shared
null object whose calls cost nanoseconds, so uninstrumented runs pay
essentially nothing.  This bench pins that contract two ways:

1. Micro: a disabled span/counter/histogram op must cost < 5 µs each
   (in practice ~0.1 µs — attribute lookup plus a no-op call).
2. Macro: an uninstrumented matrix slice must run within a few percent
   of one constructed with explicitly disabled telemetry objects (they
   are the same code path, so this is a tautology check), and the
   *enabled* overhead on a real grid slice stays small relative to
   detector training time.

``REPRO_BENCH_QUICK=1`` shrinks the corpus and the grid slice for CI
smoke runs.  Results land in ``BENCH_obs.json`` (cwd, or
``$REPRO_BENCH_DIR``) so CI can track the trajectory across PRs.
"""

import json
import os
import time
from pathlib import Path

from repro.analysis.matrix import MatrixRunner
from repro.core.config import DetectorConfig
from repro.obs import NULL_REGISTRY, NULL_TRACER, Registry, Tracer
from repro.workloads import default_corpus

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

SPLIT_SEED = 7  # matches conftest.SPLIT_SEED

#: Cheap slice: enough fits to dominate any instrumentation cost.
SLICE = [
    DetectorConfig("OneR", ensemble, n_hpcs)
    for ensemble in ("general", "boosted")
    for n_hpcs in ((4,) if QUICK else (4, 2))
]

MICRO_OPS = 20_000 if QUICK else 100_000
#: Generous ceiling; a disabled op is an attr lookup + no-op call.
MAX_DISABLED_OP_SECONDS = 5e-6


def _per_op(func, n=MICRO_OPS):
    start = time.perf_counter()
    for _ in range(n):
        func()
    return (time.perf_counter() - start) / n


def _bench_out_path():
    return Path(os.environ.get("REPRO_BENCH_DIR", ".")) / "BENCH_obs.json"


def test_disabled_telemetry_is_effectively_free(benchmark, corpus):
    if QUICK:
        corpus = default_corpus(seed=2018, windows_per_app=6)
    tracer = Tracer(enabled=False)
    registry = Registry(enabled=False)
    counter = registry.counter("c")
    hist = registry.histogram("h")

    def span_op():
        with tracer.span("x", k=1):
            pass

    per_span = _per_op(span_op)
    per_inc = _per_op(counter.inc)
    per_obs = _per_op(lambda: hist.observe(0.5))
    print()
    print(
        f"disabled per-op: span {per_span * 1e6:.3f}us  "
        f"counter.inc {per_inc * 1e6:.3f}us  "
        f"histogram.observe {per_obs * 1e6:.3f}us"
    )
    assert per_span < MAX_DISABLED_OP_SECONDS
    assert per_inc < MAX_DISABLED_OP_SECONDS
    assert per_obs < MAX_DISABLED_OP_SECONDS

    # Macro: default-constructed runner (null telemetry) vs. one with
    # enabled telemetry on the same slice.  The grid is dominated by
    # detector fits; enabled tracing must not change the records and
    # its overhead must be a small fraction of the run.
    plain = MatrixRunner(corpus, seeds=(SPLIT_SEED,))

    def run_plain():
        return plain.evaluate_grid(SLICE)

    baseline_records = benchmark.pedantic(run_plain, rounds=3, iterations=1)

    traced_runner = MatrixRunner(
        corpus, seeds=(SPLIT_SEED,), tracer=Tracer(), metrics=Registry()
    )
    start = time.perf_counter()
    traced_records = traced_runner.evaluate_grid(SLICE)
    traced_seconds = time.perf_counter() - start

    assert traced_records == baseline_records
    snap = traced_runner.metrics.snapshot()
    assert snap["counters"]["matrix_cells_computed_total"]["value"] == len(SLICE)
    print(f"enabled-telemetry slice: {traced_seconds:.3f}s for {len(SLICE)} cells")
    assert plain.tracer is NULL_TRACER
    assert plain.metrics is NULL_REGISTRY

    out = _bench_out_path()
    out.write_text(
        json.dumps(
            {
                "bench": "obs",
                "quick": QUICK,
                "micro_ops": MICRO_OPS,
                "disabled_span_seconds": per_span,
                "disabled_counter_inc_seconds": per_inc,
                "disabled_histogram_observe_seconds": per_obs,
                "grid_cells": len(SLICE),
                "enabled_slice_seconds": traced_seconds,
                "records_match_baseline": traced_records == baseline_records,
            },
            indent=1,
        )
    )
    print(f"wrote {out}")
