"""Extension — evasive malware: how much detection survives disguise?

The follow-up literature to the paper asks whether HPC detectors can be
evaded by malware that shapes its microarchitectural footprint toward
benign behaviour.  This bench sweeps the evasion strength (the fraction
of payload activity replaced by benign-looking cover work) and measures
malware recall of detectors trained on honest malware — including the
attacker's side of the trade-off: payload throughput lost to disguise.
"""

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.workloads.benign import BENIGN_FAMILIES
from repro.workloads.corpus import CorpusBuilder
from repro.workloads.evasion import evasive_families, payload_throughput
from repro.workloads.malware import MALWARE_FAMILIES

STRENGTHS = (0.0, 0.2, 0.4, 0.6, 0.8)
DETECTORS = (
    ("8HPC-REPTree", DetectorConfig("REPTree", "general", 8)),
    ("4HPC-Bagging-JRip", DetectorConfig("JRip", "bagging", 4)),
    ("2HPC-Boosted-REPTree", DetectorConfig("REPTree", "boosted", 2)),
)


def test_extension_evasion_robustness(benchmark, split):
    detectors = {
        name: HMDDetector(config).fit(split.train) for name, config in DETECTORS
    }

    def sweep():
        recalls = {name: [] for name in detectors}
        for strength in STRENGTHS:
            families = BENIGN_FAMILIES + evasive_families(MALWARE_FAMILIES, strength)
            corpus = CorpusBuilder(families, seed=4242, windows_per_app=16).build()
            malware_rows = corpus.labels == 1
            for name, detector in detectors.items():
                flags = detector.predict(corpus)
                recalls[name].append(float(flags[malware_rows].mean()))
        return recalls

    recalls = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nExtension: malware recall vs evasion strength")
    header = " ".join(f"{f'{s:.0%}':>7s}" for s in STRENGTHS)
    print(f"{'detector':24s} {header}  (payload kept: "
          + ", ".join(f"{payload_throughput(s):.0%}" for s in STRENGTHS) + ")")
    for name, series in recalls.items():
        print(f"{name:24s} " + " ".join(f"{r:>7.2f}" for r in series))

    for name, series in recalls.items():
        # honest malware is well detected...
        assert series[0] > 0.6, name
        # ...and evasion monotonically-ish erodes recall
        assert series[-1] < series[0], name
    # The attacker pays: at 80% evasion only 20% of the payload remains.
    # Detection should still be better than chance against moderate
    # evasion (40%), where the attacker keeps 60% throughput.
    moderate = [series[2] for series in recalls.values()]
    assert float(np.mean(moderate)) > 0.35
