"""Ablation — sampling window length.

The paper samples HPCs every 10 ms.  Longer windows average away noise
(better per-window class signal, slower detection); shorter windows are
noisier but catch malware sooner.  This bench sweeps the window length
at fixed total observation time.
"""

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.ml.validation import app_level_split
from repro.workloads.benign import BENIGN_FAMILIES
from repro.workloads.corpus import CorpusBuilder
from repro.workloads.malware import MALWARE_FAMILIES

FAMILIES = BENIGN_FAMILIES + MALWARE_FAMILIES
WINDOWS_MS = (1.0, 10.0, 50.0)


def test_ablation_sampling_window(benchmark):
    def run():
        results = {}
        for window_ms in WINDOWS_MS:
            corpus = CorpusBuilder(
                FAMILIES, seed=2018, windows_per_app=24, window_ms=window_ms
            ).build()
            split = app_level_split(corpus, 0.7, seed=7)
            detector = HMDDetector(DetectorConfig("J48", "general", 8))
            detector.fit(split.train)
            results[window_ms] = detector.evaluate(split.test)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nAblation: sampling window length (J48 @8HPC)")
    print(f"{'window':>8s} {'accuracy':>9s} {'auc':>7s} {'detection delay/window':>24s}")
    for window_ms, scores in results.items():
        print(f"{window_ms:>6.0f}ms {scores.accuracy:>9.3f} {scores.auc:>7.3f} "
              f"{window_ms:>21.0f}ms")

    # every window length yields a working detector
    for scores in results.values():
        assert scores.accuracy > 0.6
