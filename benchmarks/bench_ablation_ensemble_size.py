"""Ablation — ensemble size: how many members do the ensembles need?

The paper fixes both AdaBoost and Bagging at WEKA's default of 10
members.  This sweep shows the accuracy-vs-size curve for the headline
2HPC boosted REPTree, and that most of the benefit arrives well before
10 members (latency/area grow linearly with members — Table 3 — so this
is a real design trade-off).
"""

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector

SIZES = (1, 2, 5, 10, 15, 25)


def test_ablation_ensemble_size(benchmark, split):
    def sweep():
        results = {}
        for size in SIZES:
            config = DetectorConfig("REPTree", "boosted", 2, n_estimators=size)
            detector = HMDDetector(config).fit(split.train)
            results[size] = detector.evaluate(split.test)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nAblation: boosted REPTree @2HPC vs ensemble size")
    print(f"{'members':>8s} {'accuracy':>9s} {'auc':>6s} {'acc*auc':>8s}")
    for size in SIZES:
        scores = results[size]
        print(f"{size:>8d} {scores.accuracy:>9.3f} {scores.auc:>6.3f} "
              f"{scores.performance:>8.3f}")

    # Growing the ensemble from 1 to 10 members must help…
    assert results[10].performance > results[1].performance
    # …and 25 members add little over 10 (diminishing returns).
    assert results[25].performance < results[10].performance + 0.05
