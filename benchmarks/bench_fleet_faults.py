"""Extension — graceful degradation: fleet accuracy vs dropped windows.

The paper's run-time argument assumes every 10 ms window reaches the
detector.  Real samplers drop windows under load, so the fleet monitor
votes by quorum over whatever survives.  This bench sweeps the
per-window drop rate and measures application-level accuracy, mean
detection latency (in windows), and mean verdict confidence — the
numbers behind the EXPERIMENTS.md degradation table.  Everything is
seeded, so the sweep is reproducible bit-for-bit.
"""

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.core.fleet import FleetJob, FleetMonitor
from repro.core.runtime import detection_latency_windows
from repro.hpc.faults import FaultPlan
from repro.workloads.benign import BENIGN_FAMILIES
from repro.workloads.dataset import MALWARE
from repro.workloads.malware import MALWARE_FAMILIES

DROP_RATES = (0.0, 0.05, 0.10, 0.20)
N_WINDOWS = 30
POOL_SEED = 2024
VOTE_THRESHOLD = 0.5


def test_fleet_accuracy_degrades_gracefully_with_drops(benchmark, split):
    detector = HMDDetector(DetectorConfig("REPTree", "boosted", 4)).fit(split.train)
    rng = np.random.default_rng(314)
    jobs = [
        FleetJob(family.instantiate(rng)[0], N_WINDOWS, family.label == MALWARE)
        for family in BENIGN_FAMILIES + MALWARE_FAMILIES
    ]

    def sweep():
        rows = []
        for drop_rate in DROP_RATES:
            faults = (
                FaultPlan(seed=99, drop_rate=drop_rate) if drop_rate else None
            )
            fleet = FleetMonitor(
                detector,
                workers=4,
                vote_threshold=VOTE_THRESHOLD,
                faults=faults,
                pool_seed=POOL_SEED,
            )
            verdicts = fleet.monitor_fleet(jobs)
            accuracy = float(
                np.mean([v.is_malware == j.is_malware for v, j in zip(verdicts, jobs)])
            )
            latencies = [
                detection_latency_windows(v.window_flags, VOTE_THRESHOLD)
                for v, j in zip(verdicts, jobs)
                if j.is_malware
            ]
            detected = [lat for lat in latencies if lat is not None]
            rows.append(
                {
                    "drop_rate": drop_rate,
                    "accuracy": accuracy,
                    "mean_latency": float(np.mean(detected)) if detected else None,
                    "mean_confidence": float(
                        np.mean([v.confidence for v in verdicts])
                    ),
                    "degraded": sum(v.degraded for v in verdicts),
                    "windows_lost": sum(v.n_windows_lost for v in verdicts),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nExtension: fleet accuracy vs dropped-window rate "
          f"({len(jobs)} apps, {N_WINDOWS} windows, quorum {VOTE_THRESHOLD:.0%})")
    print(f"{'drop rate':>9s} {'accuracy':>9s} {'det. latency':>13s} "
          f"{'confidence':>11s} {'degraded':>9s} {'lost':>5s}")
    for row in rows:
        latency = (
            f"{row['mean_latency']:.1f}" if row["mean_latency"] is not None else "-"
        )
        print(f"{row['drop_rate']:>9.0%} {row['accuracy']:>9.3f} {latency:>13s} "
              f"{row['mean_confidence']:>11.2f} {row['degraded']:>9d} "
              f"{row['windows_lost']:>5d}")

    # Fault-free fleet is the serial baseline; drops only nibble at it.
    assert rows[0]["degraded"] == 0
    assert rows[0]["mean_confidence"] == 1.0
    for row in rows[1:]:
        # Quorum voting absorbs lost windows: accuracy degrades by at
        # most a few applications even at a 20% drop rate.
        assert row["accuracy"] >= rows[0]["accuracy"] - 0.1
        assert row["mean_confidence"] <= 1.0
    assert rows[-1]["windows_lost"] > rows[1]["windows_lost"]
