"""Figure 4 — ROC curves: 4HPC-Bagging detectors and 8HPC vs 2HPC-Boosted.

Renders the paper's two ROC panels (as ASCII curves) from the cached
records and benchmarks the ROC-curve extraction.
"""

import numpy as np

from repro.analysis.report import roc_ascii
from repro.ml.metrics import roc_curve


def test_fig4_roc_curves(benchmark, roc_records):
    rng = np.random.default_rng(1)
    labels = rng.integers(0, 2, 5000)
    labels[0], labels[1] = 0, 1
    scores = rng.normal(size=5000) + 0.8 * labels
    benchmark.pedantic(roc_curve, args=(labels, scores), rounds=10, iterations=5)

    by_name = {r.name: r for r in roc_records}

    print("\n--- Figure 4a: 4HPC-Bagging detectors ---")
    for name in ("4HPC-Bagging-BayesNet", "4HPC-Bagging-JRip",
                 "4HPC-Bagging-MLP", "4HPC-Bagging-OneR"):
        print(roc_ascii(by_name[name]))
        print()

    print("--- Figure 4b: 8HPC general vs 2HPC-Boosted ---")
    for name in ("8HPC-JRip", "2HPC-Boosted-JRip", "8HPC-OneR", "2HPC-Boosted-OneR"):
        print(roc_ascii(by_name[name]))
        print()

    # Shape check (paper Fig 4-b): for OneR, 2HPC boosting matches or
    # beats the 8HPC general detector's robustness.  For JRip our 8HPC
    # general detector is stronger than the paper's (AUC ~0.91 vs their
    # 0.86), so the weaker claim — boosting recovers most of the 8HPC
    # robustness from a quarter of the counters — is asserted instead;
    # EXPERIMENTS.md records the deviation.
    assert by_name["2HPC-Boosted-OneR"].auc >= by_name["8HPC-OneR"].auc - 0.02
    assert by_name["2HPC-Boosted-JRip"].auc >= by_name["8HPC-JRip"].auc - 0.10

    # Curves are valid ROC step functions.
    for record in roc_records:
        fpr, tpr = np.array(record.fpr), np.array(record.tpr)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)
        assert fpr[0] == 0.0 and tpr[-1] == 1.0
