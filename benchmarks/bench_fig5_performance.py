"""Figure 5 — performance (ACC x AUC) of all detector kinds vs HPC budget.

Renders the combined-metric grid and the paper's headline improvement
deltas (boosted small-budget vs 8HPC general); benchmarks the end-to-end
detector evaluation that produces one grid cell.
"""

from repro.analysis.report import figure5_table, improvement_summary
from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector


def _one_cell(split):
    detector = HMDDetector(DetectorConfig("SMO", "boosted", 2))
    detector.fit(split.train)
    return detector.evaluate(split.test).performance


def test_fig5_performance_grid(benchmark, split, grid_records):
    benchmark.pedantic(_one_cell, args=(split,), rounds=3, iterations=1)

    print()
    print(figure5_table(grid_records))
    print()
    print(improvement_summary(grid_records))

    by_key = {(r.classifier, r.ensemble, r.n_hpcs): r for r in grid_records}

    # Shape check 1 (the paper's SMO claim): boosting SMO at 2-4 HPCs
    # improves ACC x AUC over small-budget general SMO by a clear margin
    # (paper: +16%/+17%).
    for n_hpcs in (4, 2):
        general = by_key[("SMO", "general", n_hpcs)].performance
        boosted = by_key[("SMO", "boosted", n_hpcs)].performance
        assert boosted > general * 1.05, n_hpcs

    # Shape check 2 (REPTree): 2HPC-Boosted recovers most of the 8HPC
    # general detector's performance (paper reports +11%; our 8HPC
    # baseline is stronger, so recovery tops out near 88% — the
    # *accuracy* claim, 2HPC-Boosted ~= 16HPC, holds and is asserted in
    # bench_fig3).
    rep8 = by_key[("REPTree", "general", 8)].performance
    rep2b = by_key[("REPTree", "boosted", 2)].performance
    assert rep2b > 0.85 * rep8

    # Shape check 3 (JRip): 4HPC ensembles improve on 4HPC general
    # (paper: +10% boosting, +7% bagging vs 8HPC).
    jrip4 = by_key[("JRip", "general", 4)].performance
    assert by_key[("JRip", "boosted", 4)].performance > jrip4
    assert by_key[("JRip", "bagging", 4)].performance > jrip4

    # Shape check 4: ensembles at 4 HPCs recover most of the 16HPC
    # general performance across the classifier suite.
    recovered = 0
    for classifier in ("BayesNet", "J48", "JRip", "OneR", "REPTree", "SMO"):
        p16 = by_key[(classifier, "general", 16)].performance
        best4 = max(
            by_key[(classifier, "boosted", 4)].performance,
            by_key[(classifier, "bagging", 4)].performance,
        )
        recovered += best4 >= 0.9 * p16
    assert recovered >= 5
