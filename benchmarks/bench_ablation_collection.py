"""Ablation — batched multi-run collection vs single-run multiplexing.

The paper re-runs each application 11 times to cover 44 events with 4
registers.  The run-time-friendly alternative — time-multiplexing the
register file in one run — extrapolates counts from a duty cycle and
degrades sample fidelity.  This bench trains identical detectors on both
collections, and also quantifies the cost of *not* destroying containers
between runs (the paper's contamination concern).
"""

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.ml.validation import app_level_split
from repro.workloads.benign import BENIGN_FAMILIES
from repro.workloads.corpus import CorpusBuilder
from repro.workloads.malware import MALWARE_FAMILIES

FAMILIES = BENIGN_FAMILIES + MALWARE_FAMILIES


def _evaluate(corpus):
    split = app_level_split(corpus, 0.7, seed=7)
    detector = HMDDetector(DetectorConfig("REPTree", "general", 8))
    detector.fit(split.train)
    return detector.evaluate(split.test)


def test_ablation_collection_strategy(benchmark):
    def run():
        results = {}
        for mode in ("batched", "multiplexed"):
            corpus = CorpusBuilder(
                FAMILIES, seed=2018, windows_per_app=24, collection=mode
            ).build()
            results[mode] = _evaluate(corpus)
        results["contaminated"] = _evaluate(
            CorpusBuilder(
                FAMILIES, seed=2018, windows_per_app=24, destroy_containers=False
            ).build()
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nAblation: collection strategy (REPTree @8HPC)")
    for mode, scores in results.items():
        print(f"  {mode:14s} acc={scores.accuracy:.3f} auc={scores.auc:.3f}")

    # All collection modes yield usable detectors...
    for scores in results.values():
        assert scores.accuracy > 0.6
    # ...and the batched protocol is at least competitive with the
    # duty-cycle-extrapolated multiplexed one.
    assert results["batched"].performance >= results["multiplexed"].performance - 0.05
    # Container reuse looks *better* — suspiciously so: every malware run
    # raises the shared container's noise level, so noise level itself
    # becomes a class-correlated (leaked) feature.  The inflated accuracy
    # is an artifact of the contaminated environment, not detector skill
    # — precisely why the paper destroys the container after each run.
    assert results["contaminated"].accuracy > results["batched"].accuracy
