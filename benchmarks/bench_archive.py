"""Archive throughput: trace ingest MB/s, roll-up query latency, and
replay speed against the live service.

Three numbers gate ``repro.obs.archive`` as the fleet's historical
store:

1. Ingest rate — MB/s of raw JSONL trace (plus metrics snapshots)
   through :meth:`Archive.ingest_trace` into columnar segments, and
   the idempotency guarantee that a second pass over the same runs is
   a pure no-op (content-addressed segments, no duplicates).
2. Query latency — seconds for :func:`fleet_report_data` to roll up
   detection-rate trends, alert frequencies, and exact merged latency
   quantiles across every archived run, with round-trip fidelity
   asserted against the generated traffic (no row lost or invented).
3. Replay speed — how much faster than the archived wall clock the
   PR-6 :class:`DetectionService` re-drives an archived serve run,
   with every replayed verdict bit-identical to the archive.

``REPRO_BENCH_QUICK=1`` shrinks the simulated fleet and the replay
workload for CI smoke runs.  Results land in ``BENCH_archive.json``
(cwd, or ``$REPRO_BENCH_DIR``) so CI can track the trajectory.
"""

import json
import os
import time
from pathlib import Path

from repro.obs import Registry, Tracer
from repro.obs.archive import Archive
from repro.obs.rollup import fleet_report_data
from repro.serve import DetectionService
from repro.serve.replay import build_serve_workload, replay_segment, serve_run_meta

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Simulated fleet history: one archived run per day per batch.
N_DAYS = 2 if QUICK else 5
N_HOSTS = 4 if QUICK else 10
VERDICTS_PER_HOST = 40 if QUICK else 400
DAY_SECONDS = 86_400.0
QUERY_ROUNDS = 3 if QUICK else 10

REPLAY_META = serve_run_meta(
    seed=11, windows=6 if QUICK else 40, split_seed=7,
    classifier="REPTree", ensemble="general", hpcs=4, counters=4,
    vote_threshold=0.5, stride=7 if QUICK else 1,
    rounds=1 if QUICK else 3, host_vote_windows=4,
    producers=1, workers=1, queue_depth=16,
)
REPLAY_REPEAT = 2 if QUICK else 4
#: The service's wall clock is noisy at bench scale; keep the best trial.
REPLAY_TRIALS = 1 if QUICK else 3


def _bench_out_path():
    return Path(os.environ.get("REPRO_BENCH_DIR", ".")) / "BENCH_archive.json"


def _simulated_run(day: int) -> tuple[list[dict], dict]:
    """One day's trace events + metrics snapshot for the whole fleet."""
    base = day * DAY_SECONDS
    events: list[dict] = [
        {"type": "span", "name": "serve.run", "ts": base,
         "dur": N_HOSTS * VERDICTS_PER_HOST * 0.01, "pid": 1, "tid": 1}
    ]
    registry = Registry()
    classify = registry.histogram(
        "serve_window_classify_seconds",
        buckets=(0.0005, 0.001, 0.0015, 0.002, 0.005),
    )
    index = 0
    for host in range(N_HOSTS):
        for i in range(VERDICTS_PER_HOST):
            malware = (host + i + day) % 3 == 0
            events.append(
                {
                    "type": "event", "name": "serve.verdict",
                    "ts": base + index * 0.01, "pid": 1, "tid": 1,
                    "attrs": {
                        "index": index, "host": f"host-{host:02d}",
                        "app": f"app-{i % 7}", "is_malware": malware,
                        "malware_fraction": 0.8 if malware else 0.1,
                        "n_windows": 10, "n_windows_lost": int(i % 17 == 0),
                        "degraded": i % 17 == 0,
                        "detection_latency_windows": 3 if malware else None,
                    },
                }
            )
            classify.observe(0.0004 + 0.0002 * ((host + i) % 9))
            index += 1
        events.append(
            {
                "type": "event", "name": "health.alert",
                "ts": base + index * 0.01, "pid": 1, "tid": 1,
                "attrs": {
                    "rule": "degraded_ratio", "severity": "critical",
                    "state": "firing" if day % 2 == 0 else "cleared",
                    "value": 0.25,
                },
            }
        )
    registry.counter("serve_verdicts_total").inc(index)
    return events, registry.snapshot()


def _write_runs(root: Path) -> tuple[list[tuple[Path, Path]], int, int, int]:
    """Dump each simulated run as (trace.jsonl, metrics.json) files."""
    runs = []
    n_verdicts = n_alerts = total_bytes = 0
    for day in range(N_DAYS):
        events, snapshot = _simulated_run(day)
        trace = root / f"day{day}.jsonl"
        metrics = root / f"day{day}-metrics.json"
        trace.write_text("".join(json.dumps(e) + "\n" for e in events))
        metrics.write_text(json.dumps(snapshot))
        runs.append((trace, metrics))
        n_verdicts += sum(
            1 for e in events if e.get("name") == "serve.verdict"
        )
        n_alerts += sum(1 for e in events if e.get("name") == "health.alert")
        total_bytes += trace.stat().st_size + metrics.stat().st_size
    return runs, n_verdicts, n_alerts, total_bytes


def test_archive_ingest_query_replay(benchmark, tmp_path):
    runs, n_verdicts, n_alerts, total_bytes = _write_runs(tmp_path)
    archive = Archive(tmp_path / "fleet-archive")

    # 1. ingest: JSONL -> columnar segments, then prove idempotency.
    start = time.perf_counter()
    results = [
        archive.ingest_trace(trace, metrics_path=metrics, source="serve")
        for trace, metrics in runs
    ]
    ingest_seconds = time.perf_counter() - start
    assert all(r.ingested for r in results)
    assert sum(r.n_verdicts for r in results) == n_verdicts
    second_pass = [
        archive.ingest_trace(trace, metrics_path=metrics, source="serve")
        for trace, metrics in runs
    ]
    assert not any(r.ingested for r in second_pass), "re-ingest must no-op"
    assert len(archive) == N_DAYS
    ingest_mb_per_second = total_bytes / 1e6 / ingest_seconds

    # 2. query: full-archive roll-up, with round-trip fidelity pinned.
    query_seconds = min(
        _timed(lambda: fleet_report_data(archive)) for _ in range(QUERY_ROUNDS)
    )
    report = fleet_report_data(archive)
    assert report["verdicts"] == n_verdicts, "roll-up lost or invented rows"
    assert report["alerts"] == n_alerts
    assert len(report["hosts"]) == N_HOSTS
    assert len(report["detection_rate_trend"]) == N_DAYS * N_HOSTS
    quantiles = report["latency_quantiles"]["serve_window_classify_seconds"]
    assert quantiles["count"] == n_verdicts
    benchmark.pedantic(lambda: fleet_report_data(archive), rounds=1, iterations=1)

    # 3. replay: archive a real serve run, then re-drive it faster.
    detector, jobs = build_serve_workload(REPLAY_META)
    tracer = Tracer()
    service = DetectionService(
        detector,
        producers=REPLAY_META["producers"], workers=REPLAY_META["workers"],
        queue_depth=REPLAY_META["queue_depth"],
        n_counters=REPLAY_META["counters"],
        vote_threshold=REPLAY_META["vote_threshold"],
        host_vote_windows=REPLAY_META["host_vote_windows"],
        pool_seed=REPLAY_META["seed"] + 99,
        tracer=tracer,
    )
    service.run(jobs)
    archive.ingest_events(
        tracer.events, run_meta=REPLAY_META, source="serve", run_id="replay-src"
    )
    replay = max(
        (
            replay_segment(archive, repeat=REPLAY_REPEAT)
            for _ in range(REPLAY_TRIALS)
        ),
        key=lambda r: r.speedup,
    )
    assert replay.matched == REPLAY_REPEAT * len(jobs), "replay diverged"

    print()
    print(
        f"ingest: {ingest_mb_per_second:.1f} MB/s over {N_DAYS} runs "
        f"({n_verdicts:,} verdicts, {total_bytes / 1e6:.2f} MB raw)"
    )
    print(
        f"query:  {query_seconds * 1e3:.1f} ms full-archive fleet report"
    )
    print(
        f"replay: {replay.speedup:.1f}x archived wall "
        f"({replay.windows_per_second:,.0f} windows/s, "
        f"{replay.matched} verdicts bit-identical)"
    )

    out = _bench_out_path()
    out.write_text(
        json.dumps(
            {
                "bench": "archive",
                "quick": QUICK,
                "n_runs": N_DAYS,
                "n_verdicts": n_verdicts,
                "n_alerts": n_alerts,
                "raw_bytes": total_bytes,
                "ingest_seconds": ingest_seconds,
                "ingest_mb_per_second": ingest_mb_per_second,
                "query_seconds": query_seconds,
                "replay": {
                    "repeat": replay.repeat,
                    "executions": replay.executions,
                    "matched": replay.matched,
                    "archived_seconds": replay.archived_seconds,
                    "replay_seconds": replay.replay_seconds,
                    "speedup": replay.speedup,
                    "windows_per_second": replay.windows_per_second,
                },
            },
            indent=1,
        )
    )
    print(f"wrote {out}")


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
