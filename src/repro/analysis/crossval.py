"""Cross-validated evaluation: mean ± deviation for the result grid.

The paper reports one 70/30 split.  With ~37 test applications, split
luck moves accuracies by several points; a production evaluation should
say so.  :func:`cross_validated_record` runs a detector config over
stratified application-level folds and reports mean and standard
deviation for accuracy, AUC and ACC×AUC; :func:`stability_table` renders
a grid slice with error bars.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.ml.validation import app_level_kfold
from repro.workloads.dataset import Dataset


@dataclass(frozen=True)
class CrossValRecord:
    """Fold-aggregated scores of one detector config.

    Attributes:
        config: the evaluated detector variant.
        accuracy_mean / accuracy_std: across folds.
        auc_mean / auc_std: across folds.
        n_folds: fold count.
    """

    config: DetectorConfig
    accuracy_mean: float
    accuracy_std: float
    auc_mean: float
    auc_std: float
    n_folds: int

    @property
    def performance_mean(self) -> float:
        return self.accuracy_mean * self.auc_mean

    def __str__(self) -> str:
        return (
            f"{self.config.name}: acc={self.accuracy_mean:.3f}±{self.accuracy_std:.3f} "
            f"auc={self.auc_mean:.3f}±{self.auc_std:.3f} ({self.n_folds} folds)"
        )


def sample_std(values: list[float] | np.ndarray) -> float:
    """Sample standard deviation (ddof=1); 0.0 for fewer than two values.

    Fold scores are a small *sample* of the split distribution, so the
    population formula (ddof=0) systematically understates the spread —
    by ~10% at 5 folds.  A single fold has no spread estimate at all.
    """
    values = np.asarray(values, dtype=float)
    if values.size < 2:
        return 0.0
    return float(np.std(values, ddof=1))


def cross_validated_record(
    dataset: Dataset,
    config: DetectorConfig,
    n_folds: int = 5,
    seed: int = 0,
) -> CrossValRecord:
    """Evaluate one config over stratified application-level folds."""
    folds = app_level_kfold(dataset, n_folds=n_folds, seed=seed)
    accuracies, aucs = [], []
    for fold in folds:
        detector = HMDDetector(config).fit(fold.train)
        scores = detector.evaluate(fold.test)
        accuracies.append(scores.accuracy)
        aucs.append(scores.auc)
    return CrossValRecord(
        config=config,
        accuracy_mean=float(np.mean(accuracies)),
        accuracy_std=sample_std(accuracies),
        auc_mean=float(np.mean(aucs)),
        auc_std=sample_std(aucs),
        n_folds=n_folds,
    )


def stability_table(records: list[CrossValRecord]) -> str:
    """Render cross-validated records with error bars."""
    lines = [
        "Cross-validated detector performance (mean ± std over folds)",
        f"{'detector':26s} {'accuracy':>16s} {'AUC':>16s} {'ACCxAUC':>8s}",
    ]
    for record in sorted(records, key=lambda r: -r.performance_mean):
        lines.append(
            f"{record.config.name:26s} "
            f"{record.accuracy_mean:>8.3f}±{record.accuracy_std:<6.3f} "
            f"{record.auc_mean:>8.3f}±{record.auc_std:<6.3f} "
            f"{record.performance_mean:>8.3f}"
        )
    return "\n".join(lines)
