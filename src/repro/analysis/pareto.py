"""Pareto analysis over detection performance and hardware cost.

The paper's conclusion: "it is important to compare classifiers by
taking all of these parameters into consideration" (accuracy, latency,
area).  This module makes that comparison executable: it joins the
evaluation records (ACC×AUC) with the hardware records (latency, area)
and extracts the Pareto-optimal detector set, plus the architectural
recommendation the paper motivates — which HPC events are worth
implementing for a given counter budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.records import EvalRecord, HardwareRecord
from repro.features.correlation import FeatureRanking


@dataclass(frozen=True)
class DesignPoint:
    """One detector in the performance/latency/area design space."""

    name: str
    classifier: str
    ensemble: str
    n_hpcs: int
    performance: float
    latency_cycles: int
    area_percent: float

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance: no worse on all axes, better on one."""
        no_worse = (
            self.performance >= other.performance
            and self.latency_cycles <= other.latency_cycles
            and self.area_percent <= other.area_percent
        )
        better = (
            self.performance > other.performance
            or self.latency_cycles < other.latency_cycles
            or self.area_percent < other.area_percent
        )
        return no_worse and better


def join_records(
    eval_records: list[EvalRecord], hardware_records: list[HardwareRecord]
) -> list[DesignPoint]:
    """Join evaluation and hardware records on (classifier, ensemble, hpcs)."""
    hw = {(r.classifier, r.ensemble, r.n_hpcs): r for r in hardware_records}
    points = []
    for record in eval_records:
        key = (record.classifier, record.ensemble, record.n_hpcs)
        if key not in hw:
            continue
        cost = hw[key]
        points.append(
            DesignPoint(
                name=record.name,
                classifier=record.classifier,
                ensemble=record.ensemble,
                n_hpcs=record.n_hpcs,
                performance=record.performance,
                latency_cycles=cost.latency_cycles,
                area_percent=cost.area_percent,
            )
        )
    return points


def pareto_front(points: list[DesignPoint]) -> list[DesignPoint]:
    """Non-dominated design points, sorted by descending performance."""
    front = [
        p for p in points if not any(q.dominates(p) for q in points if q is not p)
    ]
    return sorted(front, key=lambda p: -p.performance)


def pareto_table(points: list[DesignPoint]) -> str:
    """Render a design-point list in Table 3 style, front first."""
    front = set(id(p) for p in pareto_front(points))
    lines = [
        "Design space (perf = ACC x AUC; * = Pareto-optimal)",
        f"{'detector':26s} {'perf':>6s} {'cycles':>7s} {'area %':>7s}",
    ]
    for p in sorted(points, key=lambda p: -p.performance):
        marker = "*" if id(p) in front else " "
        lines.append(
            f"{p.name:26s} {p.performance:>6.3f} {p.latency_cycles:>7d} "
            f"{p.area_percent:>6.1f}% {marker}"
        )
    return "\n".join(lines)


def recommend_counters(
    ranking: FeatureRanking, budget: int
) -> tuple[str, ...]:
    """The architectural recommendation of the paper's conclusion.

    Given the importance ranking and a hardware budget of counter
    registers, return the events a future architecture should implement:
    the top-``budget`` ranked events (the same prefix rule the paper's
    8/4/2-HPC detectors use).
    """
    return ranking.top(budget)
