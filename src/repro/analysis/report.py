"""Plain-text renderers for every table and figure of the paper.

Each function takes the records the matrix runner produced and prints the
same rows/series the paper reports: Figure 3 (accuracy), Table 2 (AUC),
Figure 4 (ROC curves, rendered as ASCII), Figure 5 (ACC×AUC), Table 3
(hardware cost), plus Table 1 (feature ranking).
"""

from __future__ import annotations

from repro.analysis.matrix import MatrixTiming
from repro.analysis.records import EvalRecord, HardwareRecord, RocRecord
from repro.core.config import CLASSIFIER_NAMES
from repro.features.correlation import FeatureRanking

#: Column order of Figures 3 and 5 (per classifier).
FIGURE_COLUMNS: tuple[tuple[int, str], ...] = (
    (16, "general"),
    (8, "general"),
    (4, "general"),
    (4, "boosted"),
    (4, "bagging"),
    (2, "general"),
    (2, "boosted"),
    (2, "bagging"),
)

#: Column order of the paper's Table 2.
TABLE2_COLUMNS: tuple[tuple[int, str], ...] = (
    (16, "general"),
    (8, "general"),
    (4, "general"),
    (4, "boosted"),
    (4, "bagging"),
    (2, "general"),
    (2, "boosted"),
    (2, "bagging"),
)


def _index(records: list[EvalRecord]) -> dict[tuple[str, str, int], EvalRecord]:
    return {(r.classifier, r.ensemble, r.n_hpcs): r for r in records}


def _column_header(columns: tuple[tuple[int, str], ...]) -> str:
    labels = []
    for n_hpcs, ensemble in columns:
        suffix = {"general": "", "boosted": "-Boost", "bagging": "-Bag"}[ensemble]
        labels.append(f"{n_hpcs}HPC{suffix}")
    return " ".join(f"{label:>10s}" for label in labels)


def _grid_table(
    records: list[EvalRecord],
    columns: tuple[tuple[int, str], ...],
    cell,
    title: str,
) -> str:
    index = _index(records)
    lines = [title, f"{'Classifier':12s} " + _column_header(columns)]
    for classifier in CLASSIFIER_NAMES:
        cells = []
        for n_hpcs, ensemble in columns:
            record = index.get((classifier, ensemble, n_hpcs))
            cells.append(f"{cell(record):>10s}" if record else f"{'-':>10s}")
        lines.append(f"{classifier:12s} " + " ".join(cells))
    return "\n".join(lines)


def figure3_table(records: list[EvalRecord]) -> str:
    """Figure 3: accuracy (%) for all classifiers and HPC budgets."""
    return _grid_table(
        records,
        FIGURE_COLUMNS,
        lambda r: f"{100 * r.accuracy:.1f}",
        "Figure 3 — Detection accuracy (%) vs number of HPCs",
    )


def table2_table(records: list[EvalRecord]) -> str:
    """Table 2: AUC for general and ensemble detectors."""
    return _grid_table(
        records,
        TABLE2_COLUMNS,
        lambda r: f"{r.auc:.2f}",
        "Table 2 — AUC (classification robustness)",
    )


def figure5_table(records: list[EvalRecord]) -> str:
    """Figure 5: performance = ACC×AUC (%)."""
    return _grid_table(
        records,
        FIGURE_COLUMNS,
        lambda r: f"{100 * r.performance:.1f}",
        "Figure 5 — Performance (ACC x AUC, %) vs number of HPCs",
    )


def table1_table(ranking: FeatureRanking, k: int = 16) -> str:
    """Table 1: the k most important HPCs, in order of importance."""
    lines = [f"Table 1 — Top {k} hardware performance counters ({ranking.method})"]
    for i, name in enumerate(ranking.top(k), start=1):
        lines.append(f"{i:3d}. {name:28s} score={ranking.score_of(name):.4f}")
    return "\n".join(lines)


def table3_table(records: list[HardwareRecord]) -> str:
    """Table 3: latency (cycles @ 10 ns) and area (% of OpenSPARC)."""
    index = {(r.classifier, r.ensemble, r.n_hpcs): r for r in records}
    columns = ((8, "general"), (4, "boosted"), (2, "boosted"))
    header = (
        f"{'Classifier':12s} "
        + " ".join(
            f"{f'{k}HPC-{e[:5].title()}':>9s}{'lat':>5s}{'area%':>7s}"
            for k, e in columns
        )
    )
    lines = ["Table 3 — Hardware implementation results", header]
    for classifier in CLASSIFIER_NAMES:
        cells = []
        for n_hpcs, ensemble in columns:
            record = index.get((classifier, ensemble, n_hpcs))
            if record:
                cells.append(
                    f"{'':>9s}{record.latency_cycles:>5d}{record.area_percent:>7.1f}"
                )
            else:
                cells.append(f"{'':>9s}{'-':>5s}{'-':>7s}")
        lines.append(f"{classifier:12s} " + " ".join(cells))
    return "\n".join(lines)


def roc_ascii(record: RocRecord, width: int = 61, height: int = 21) -> str:
    """Render one ROC curve as an ASCII plot (Figure 4 material)."""
    grid = [[" "] * width for _ in range(height)]
    for x in range(width):  # diagonal reference
        y = int(round(x / (width - 1) * (height - 1)))
        grid[height - 1 - y][x] = "."
    for fpr, tpr in zip(record.fpr, record.tpr):
        x = int(round(fpr * (width - 1)))
        y = int(round(tpr * (height - 1)))
        grid[height - 1 - y][x] = "*"
    lines = [f"ROC {record.name}  (AUC={record.auc:.3f})"]
    lines += ["|" + "".join(row) + "|" for row in grid]
    lines.append("+" + "-" * width + "+")
    lines.append(" FPR 0 " + " " * (width - 12) + "1.0")
    return "\n".join(lines)


def figure4_report(records: list[RocRecord]) -> str:
    """Figure 4: ROC curves for the selected detectors."""
    return "\n\n".join(roc_ascii(record) for record in records)


def timing_table(timings: list[MatrixTiming]) -> str:
    """Per-config fit/eval wall time of one matrix run, plus totals."""
    lines = [
        "Matrix timing — per-config wall time (seconds)",
        f"{'detector':26s} {'kind':>8s} {'fit':>8s} {'eval':>8s} {'total':>8s}  source",
    ]
    for t in timings:
        lines.append(
            f"{t.name:26s} {t.kind:>8s} {t.fit_seconds:>8.3f} "
            f"{t.eval_seconds:>8.3f} {t.total_seconds:>8.3f}  "
            f"{'cache' if t.cached else 'trained'}"
        )
    cached = sum(1 for t in timings if t.cached)
    compute = sum(t.total_seconds for t in timings)
    lines.append(
        f"{len(timings)} cells: {cached} from cache, "
        f"{len(timings) - cached} trained, {compute:.3f}s compute"
    )
    return "\n".join(lines)


def improvement_summary(records: list[EvalRecord]) -> str:
    """The paper's headline deltas: ensemble-at-small-budget vs general.

    Reports, per classifier, the ACC×AUC improvement of the 4HPC and
    2HPC boosted/bagging detectors over the 8HPC general detector —
    the comparison behind the paper's "up to 17%" claim.
    """
    index = _index(records)
    lines = ["Ensemble improvement over 8HPC-general (ACC x AUC, relative %)"]
    for classifier in CLASSIFIER_NAMES:
        base = index.get((classifier, "general", 8))
        if base is None or base.performance <= 0:
            continue
        deltas = []
        for n_hpcs in (4, 2):
            for ensemble in ("boosted", "bagging"):
                record = index.get((classifier, ensemble, n_hpcs))
                if record:
                    delta = 100.0 * (record.performance / base.performance - 1.0)
                    tag = "B" if ensemble == "boosted" else "G"
                    deltas.append(f"{n_hpcs}{tag}:{delta:+.1f}%")
        lines.append(f"{classifier:12s} " + "  ".join(deltas))
    return "\n".join(lines)
