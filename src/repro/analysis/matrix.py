"""Evaluation-matrix runners regenerating the paper's result grid.

The paper's evaluation (§4) is one grid: 8 classifiers × {general,
AdaBoost, Bagging} × {16, 8, 4, 2} HPCs, measured for accuracy (Fig. 3),
AUC (Table 2, Fig. 4), ACC×AUC (Fig. 5), and hardware cost (Table 3).
:class:`MatrixRunner` computes any slice of that grid against one corpus
and split protocol, optionally averaged over several split seeds (the
paper uses one split; averaging is our variance-reduction deviation,
recorded in EXPERIMENTS.md), and caches results as JSON so benchmarks
and reports can re-render tables without re-training 96 detectors.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.analysis.records import EvalRecord, HardwareRecord, RocRecord
from repro.core.config import CLASSIFIER_NAMES, DetectorConfig
from repro.core.detector import HMDDetector
from repro.features.reduction import FeatureReducer
from repro.hardware.lowering import lower
from repro.ml.metrics import roc_curve
from repro.ml.validation import app_level_split
from repro.workloads.dataset import Dataset


def paper_grid() -> list[DetectorConfig]:
    """All 96 detector configs behind Figures 3/5 and Table 2."""
    configs = []
    for classifier in CLASSIFIER_NAMES:
        for n_hpcs in (16, 8, 4, 2):
            for ensemble in ("general", "boosted", "bagging"):
                configs.append(DetectorConfig(classifier, ensemble, n_hpcs))
    return configs


def table3_grid() -> list[DetectorConfig]:
    """The 24 configs of the paper's hardware Table 3."""
    configs = []
    for classifier in CLASSIFIER_NAMES:
        configs.append(DetectorConfig(classifier, "general", 8))
        configs.append(DetectorConfig(classifier, "boosted", 4))
        configs.append(DetectorConfig(classifier, "boosted", 2))
    return configs


class MatrixRunner:
    """Evaluates detector configs on a shared corpus/split/ranking.

    Args:
        dataset: full 44-event corpus.
        train_fraction: application-level split ratio (paper: 0.7).
        seeds: split seeds to average over.
    """

    def __init__(
        self,
        dataset: Dataset,
        train_fraction: float = 0.7,
        seeds: tuple[int, ...] = (7,),
    ) -> None:
        if not seeds:
            raise ValueError("need at least one split seed")
        self.dataset = dataset
        self.train_fraction = train_fraction
        self.seeds = tuple(seeds)
        self._splits = {
            seed: app_level_split(dataset, train_fraction, seed=seed)
            for seed in self.seeds
        }
        # One shared feature ranking per split, like the paper's Table 1.
        self._rankings = {
            seed: FeatureReducer(n_features=dataset.n_features)
            .fit(split.train)
            .ranking_
            for seed, split in self._splits.items()
        }

    # ------------------------------------------------------------------
    def _fit_detector(self, config: DetectorConfig, seed: int) -> HMDDetector:
        split = self._splits[seed]
        detector = HMDDetector(config)
        ranking = self._rankings[seed]
        assert ranking is not None
        detector.reducer.ranking_ = ranking  # reuse the split's ranking
        reduced = detector.reducer.transform(split.train)
        detector.model.fit(reduced.features, reduced.labels)
        detector.fitted_ = True
        return detector

    def evaluate(self, config: DetectorConfig) -> EvalRecord:
        """Accuracy/AUC of one config, averaged over the split seeds."""
        accs, aucs = [], []
        for seed in self.seeds:
            detector = self._fit_detector(config, seed)
            scores = detector.evaluate(self._splits[seed].test)
            accs.append(scores.accuracy)
            aucs.append(scores.auc)
        return EvalRecord(
            classifier=config.classifier,
            ensemble=config.ensemble,
            n_hpcs=config.n_hpcs,
            accuracy=float(np.mean(accs)),
            auc=float(np.mean(aucs)),
            n_seeds=len(self.seeds),
        )

    def evaluate_grid(self, configs: list[DetectorConfig]) -> list[EvalRecord]:
        return [self.evaluate(config) for config in configs]

    def roc(self, config: DetectorConfig, max_points: int = 200) -> RocRecord:
        """ROC curve of one config on the first split seed (Figure 4)."""
        seed = self.seeds[0]
        detector = self._fit_detector(config, seed)
        test = self._splits[seed].test
        reduced = detector.reducer.transform(test)
        scores = detector.model.decision_scores(reduced.features)
        fpr, tpr, _ = roc_curve(reduced.labels, scores)
        auc = float(np.trapezoid(tpr, fpr))
        if len(fpr) > max_points:
            idx = np.linspace(0, len(fpr) - 1, max_points).astype(int)
            fpr, tpr = fpr[idx], tpr[idx]
        return RocRecord(
            classifier=config.classifier,
            ensemble=config.ensemble,
            n_hpcs=config.n_hpcs,
            fpr=tuple(float(v) for v in fpr),
            tpr=tuple(float(v) for v in tpr),
            auc=auc,
        )

    def hardware(self, config: DetectorConfig) -> HardwareRecord:
        """Hardware cost of one config trained on the first split seed."""
        detector = self._fit_detector(config, self.seeds[0])
        design = lower(detector.model)
        return HardwareRecord(
            classifier=config.classifier,
            ensemble=config.ensemble,
            n_hpcs=config.n_hpcs,
            latency_cycles=design.latency_cycles,
            area_percent=round(design.area_percent, 2),
            luts=design.resources.luts,
            ffs=design.resources.ffs,
            dsps=design.resources.dsps,
            brams=design.resources.brams,
        )

    def hardware_grid(self, configs: list[DetectorConfig]) -> list[HardwareRecord]:
        return [self.hardware(config) for config in configs]


# ----------------------------------------------------------------------
# JSON caching so tables can be re-rendered without re-training
# ----------------------------------------------------------------------

def save_records(path: str | Path, records: list) -> None:
    """Serialize eval/hardware/roc records to a JSON file."""
    payload = [
        {"kind": type(r).__name__, "data": r.to_dict()} for r in records
    ]
    Path(path).write_text(json.dumps(payload, indent=1))


def load_records(path: str | Path) -> list:
    """Load records previously written by :func:`save_records`."""
    kinds = {
        "EvalRecord": EvalRecord,
        "HardwareRecord": HardwareRecord,
        "RocRecord": RocRecord,
    }
    payload = json.loads(Path(path).read_text())
    return [kinds[item["kind"]].from_dict(item["data"]) for item in payload]
