"""Evaluation-matrix runners regenerating the paper's result grid.

The paper's evaluation (§4) is one grid: 8 classifiers × {general,
AdaBoost, Bagging} × {16, 8, 4, 2} HPCs, measured for accuracy (Fig. 3),
AUC (Table 2, Fig. 4), ACC×AUC (Fig. 5), and hardware cost (Table 3).
:class:`MatrixRunner` computes any slice of that grid against one corpus
and split protocol, optionally averaged over several split seeds (the
paper uses one split; averaging is our variance-reduction deviation,
recorded in EXPERIMENTS.md).

Results can be backed by a content-addressed, crash-safe
:class:`~repro.analysis.cache.ResultCache` (per-record granularity,
atomic writes) so interrupted runs resume instead of restarting and
benchmarks/CLI re-render tables without retraining; the legacy
whole-file JSON cache (:func:`save_records` / :func:`load_records`)
remains for exporting finished record lists.  For fan-out over many
worker processes see :class:`~repro.analysis.parallel.ParallelMatrixRunner`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.analysis.cache import CacheError, ResultCache, atomic_write_text, dataset_fingerprint, record_cache_key
from repro.analysis.records import (
    EvalRecord,
    HardwareRecord,
    RocRecord,
    record_from_payload,
    record_to_payload,
)
from repro.core.config import CLASSIFIER_NAMES, DetectorConfig
from repro.core.detector import HMDDetector
from repro.features.correlation import FeatureRanking, rank_features
from repro.hardware.lowering import lower
from repro.ml.metrics import roc_curve
from repro.ml.validation import app_level_split
from repro.obs import NULL_REGISTRY, NULL_TRACER, Registry, Tracer
from repro.workloads.dataset import Dataset

#: Record kinds a runner can produce (and cache) per grid cell.
RECORD_KIND_EVAL = "eval"
RECORD_KIND_HARDWARE = "hardware"
RECORD_KIND_ROC = "roc"


def paper_grid() -> list[DetectorConfig]:
    """All 96 detector configs behind Figures 3/5 and Table 2."""
    configs = []
    for classifier in CLASSIFIER_NAMES:
        for n_hpcs in (16, 8, 4, 2):
            for ensemble in ("general", "boosted", "bagging"):
                configs.append(DetectorConfig(classifier, ensemble, n_hpcs))
    return configs


def table3_grid() -> list[DetectorConfig]:
    """The 24 configs of the paper's hardware Table 3."""
    configs = []
    for classifier in CLASSIFIER_NAMES:
        configs.append(DetectorConfig(classifier, "general", 8))
        configs.append(DetectorConfig(classifier, "boosted", 4))
        configs.append(DetectorConfig(classifier, "boosted", 2))
    return configs


@dataclass(frozen=True)
class MatrixTiming:
    """Wall-clock instrumentation of one evaluated grid cell.

    Attributes:
        name: config label, e.g. ``"4HPC-Boosted-JRip"``.
        kind: ``"eval"``, ``"hardware"`` or ``"roc"``.
        fit_seconds: time spent training (summed over split seeds).
        eval_seconds: time spent scoring / lowering after training.
        cached: True when the record came from the result cache
            (both timings are then zero).
    """

    name: str
    kind: str
    fit_seconds: float
    eval_seconds: float
    cached: bool = False

    @property
    def total_seconds(self) -> float:
        return self.fit_seconds + self.eval_seconds


class MatrixRunner:
    """Evaluates detector configs on a shared corpus/split/ranking.

    Args:
        dataset: full 44-event corpus.
        train_fraction: application-level split ratio (paper: 0.7).
        seeds: split seeds to average over.
        cache: optional content-addressed result cache; hits skip
            training entirely, misses are written back per record.
        progress: optional callback invoked with a :class:`MatrixTiming`
            as each grid cell completes (cache hits included).
        tracer: optional :class:`~repro.obs.Tracer` receiving
            ``matrix.fit`` / ``matrix.eval`` / ``matrix.roc`` /
            ``matrix.hardware`` / ``matrix.ranking`` spans; defaults to
            the disabled :data:`~repro.obs.NULL_TRACER` (a no-op).
        metrics: optional :class:`~repro.obs.Registry` counting cached
            vs computed cells and observing per-stage wall-time
            histograms; defaults to the disabled registry.
    """

    def __init__(
        self,
        dataset: Dataset,
        train_fraction: float = 0.7,
        seeds: tuple[int, ...] = (7,),
        cache: ResultCache | None = None,
        progress: Callable[[MatrixTiming], None] | None = None,
        tracer: Tracer | None = None,
        metrics: Registry | None = None,
    ) -> None:
        if not seeds:
            raise ValueError("need at least one split seed")
        self.dataset = dataset
        self.train_fraction = train_fraction
        self.seeds = tuple(seeds)
        self.cache = cache
        self.progress = progress
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._c_cached = self.metrics.counter(
            "matrix_cells_cached_total", "grid cells served from the result cache"
        )
        self._c_computed = self.metrics.counter(
            "matrix_cells_computed_total", "grid cells trained and evaluated"
        )
        self._c_rankings = self.metrics.counter(
            "matrix_rankings_computed_total", "shared feature rankings computed"
        )
        self._h_fit = self.metrics.histogram(
            "matrix_fit_seconds", "per-cell detector training wall time"
        )
        self._h_eval = self.metrics.histogram(
            "matrix_eval_seconds", "per-cell scoring/lowering wall time"
        )
        self.timings: list[MatrixTiming] = []
        #: Detectors trained by this runner (0 on a fully warm cache).
        self.n_fits = 0
        self._splits = {
            seed: app_level_split(dataset, train_fraction, seed=seed)
            for seed in self.seeds
        }
        # One shared feature ranking per (split, method), like the
        # paper's Table 1; computed lazily so warm-cache re-renders
        # rank nothing.
        self._rankings: dict[tuple[int, str], FeatureRanking] = {}
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # shared split/ranking plumbing
    # ------------------------------------------------------------------
    def ranking(self, seed: int, method: str) -> FeatureRanking:
        """The shared feature ranking of one split, per requested method."""
        key = (seed, method)
        if key not in self._rankings:
            with self.tracer.span("matrix.ranking", seed=seed, method=method):
                self._rankings[key] = rank_features(
                    self._splits[seed].train, method=method
                )
            self._c_rankings.inc()
        return self._rankings[key]

    def _fit_detector(self, config: DetectorConfig, seed: int) -> HMDDetector:
        split = self._splits[seed]
        detector = HMDDetector(config)
        # Reuse the split's shared ranking — computed with the config's
        # own ranking method, not silently the default one.
        detector.reducer.ranking_ = self.ranking(seed, config.feature_method)
        reduced = detector.reducer.transform(split.train)
        detector.model.fit(reduced.features, reduced.labels)
        detector.fitted_ = True
        self.n_fits += 1
        return detector

    # ------------------------------------------------------------------
    # cache plumbing
    # ------------------------------------------------------------------
    def corpus_fingerprint(self) -> str:
        """Content fingerprint of the evaluation corpus (cached)."""
        if self._fingerprint is None:
            self._fingerprint = dataset_fingerprint(self.dataset)
        return self._fingerprint

    def cache_key(
        self, config: DetectorConfig, kind: str, extra: dict | None = None
    ) -> str:
        """Content address of one grid cell under this runner's protocol."""
        return record_cache_key(
            corpus=self.corpus_fingerprint(),
            train_fraction=self.train_fraction,
            seeds=self.seeds,
            config=config,
            kind=kind,
            extra=extra,
        )

    def cache_lookup(
        self, config: DetectorConfig, kind: str, extra: dict | None = None
    ):
        """The cached record for one grid cell, or None (also on no cache)."""
        if self.cache is None:
            return None
        record = self.cache.get(self.cache_key(config, kind, extra))
        if record is not None:
            self._note(MatrixTiming(config.name, kind, 0.0, 0.0, cached=True))
        return record

    def cache_store(
        self, config: DetectorConfig, kind: str, record, extra: dict | None = None
    ) -> None:
        """Write one computed record back to the cache (if configured)."""
        if self.cache is not None:
            self.cache.put(self.cache_key(config, kind, extra), record)

    def _note(self, timing: MatrixTiming) -> None:
        self.timings.append(timing)
        if timing.cached:
            self._c_cached.inc()
        else:
            self._c_computed.inc()
            self._h_fit.observe(timing.fit_seconds)
            self._h_eval.observe(timing.eval_seconds)
        if self.progress is not None:
            self.progress(timing)

    # ------------------------------------------------------------------
    # timed single-cell computations (no cache interaction)
    # ------------------------------------------------------------------
    def timed_evaluate(self, config: DetectorConfig) -> tuple[EvalRecord, MatrixTiming]:
        """Accuracy/AUC of one config plus its fit/eval wall time."""
        accs, aucs = [], []
        fit_seconds = eval_seconds = 0.0
        for seed in self.seeds:
            start = time.perf_counter()
            with self.tracer.span("matrix.fit", config=config.name, seed=seed):
                detector = self._fit_detector(config, seed)
            fitted = time.perf_counter()
            with self.tracer.span("matrix.eval", config=config.name, seed=seed):
                scores = detector.evaluate(self._splits[seed].test)
            done = time.perf_counter()
            fit_seconds += fitted - start
            eval_seconds += done - fitted
            accs.append(scores.accuracy)
            aucs.append(scores.auc)
        record = EvalRecord(
            classifier=config.classifier,
            ensemble=config.ensemble,
            n_hpcs=config.n_hpcs,
            accuracy=float(np.mean(accs)),
            auc=float(np.mean(aucs)),
            n_seeds=len(self.seeds),
        )
        return record, MatrixTiming(
            config.name, RECORD_KIND_EVAL, fit_seconds, eval_seconds
        )

    def timed_roc(
        self, config: DetectorConfig, max_points: int = 200
    ) -> tuple[RocRecord, MatrixTiming]:
        """ROC curve of one config on the first split seed (Figure 4)."""
        seed = self.seeds[0]
        start = time.perf_counter()
        with self.tracer.span("matrix.fit", config=config.name, seed=seed):
            detector = self._fit_detector(config, seed)
        fitted = time.perf_counter()
        with self.tracer.span("matrix.roc", config=config.name, seed=seed):
            test = self._splits[seed].test
            reduced = detector.reducer.transform(test)
            scores = detector.model.decision_scores(reduced.features)
            fpr, tpr, _ = roc_curve(reduced.labels, scores)
            auc = float(np.trapezoid(tpr, fpr))
            if len(fpr) > max_points:
                idx = np.linspace(0, len(fpr) - 1, max_points).astype(int)
                fpr, tpr = fpr[idx], tpr[idx]
        record = RocRecord(
            classifier=config.classifier,
            ensemble=config.ensemble,
            n_hpcs=config.n_hpcs,
            fpr=tuple(float(v) for v in fpr),
            tpr=tuple(float(v) for v in tpr),
            auc=auc,
        )
        done = time.perf_counter()
        return record, MatrixTiming(
            config.name, RECORD_KIND_ROC, fitted - start, done - fitted
        )

    def timed_hardware(
        self, config: DetectorConfig
    ) -> tuple[HardwareRecord, MatrixTiming]:
        """Hardware cost of one config trained on the first split seed."""
        start = time.perf_counter()
        with self.tracer.span("matrix.fit", config=config.name, seed=self.seeds[0]):
            detector = self._fit_detector(config, self.seeds[0])
        fitted = time.perf_counter()
        with self.tracer.span("matrix.hardware", config=config.name):
            design = lower(detector.model)
        record = HardwareRecord(
            classifier=config.classifier,
            ensemble=config.ensemble,
            n_hpcs=config.n_hpcs,
            latency_cycles=design.latency_cycles,
            area_percent=round(design.area_percent, 2),
            luts=design.resources.luts,
            ffs=design.resources.ffs,
            dsps=design.resources.dsps,
            brams=design.resources.brams,
        )
        done = time.perf_counter()
        return record, MatrixTiming(
            config.name, RECORD_KIND_HARDWARE, fitted - start, done - fitted
        )

    def compute_record(self, config: DetectorConfig, kind: str, **kwargs):
        """Compute one grid cell (no cache read), store it, note timing."""
        if kind == RECORD_KIND_EVAL:
            record, timing = self.timed_evaluate(config)
        elif kind == RECORD_KIND_HARDWARE:
            record, timing = self.timed_hardware(config)
        elif kind == RECORD_KIND_ROC:
            record, timing = self.timed_roc(config, **kwargs)
        else:
            raise ValueError(f"unknown record kind {kind!r}")
        self.cache_store(config, kind, record, kwargs or None)
        self._note(timing)
        return record

    # ------------------------------------------------------------------
    # public cache-aware API
    # ------------------------------------------------------------------
    def evaluate(self, config: DetectorConfig) -> EvalRecord:
        """Accuracy/AUC of one config, averaged over the split seeds."""
        record = self.cache_lookup(config, RECORD_KIND_EVAL)
        if record is None:
            record = self.compute_record(config, RECORD_KIND_EVAL)
        return record

    def evaluate_grid(self, configs: list[DetectorConfig]) -> list[EvalRecord]:
        return [self.evaluate(config) for config in configs]

    def roc(self, config: DetectorConfig, max_points: int = 200) -> RocRecord:
        """ROC curve of one config on the first split seed (Figure 4)."""
        extra = {"max_points": max_points}
        record = self.cache_lookup(config, RECORD_KIND_ROC, extra)
        if record is None:
            record = self.compute_record(config, RECORD_KIND_ROC, max_points=max_points)
        return record

    def roc_grid(
        self, configs: list[DetectorConfig], max_points: int = 200
    ) -> list[RocRecord]:
        return [self.roc(config, max_points=max_points) for config in configs]

    def hardware(self, config: DetectorConfig) -> HardwareRecord:
        """Hardware cost of one config trained on the first split seed."""
        record = self.cache_lookup(config, RECORD_KIND_HARDWARE)
        if record is None:
            record = self.compute_record(config, RECORD_KIND_HARDWARE)
        return record

    def hardware_grid(self, configs: list[DetectorConfig]) -> list[HardwareRecord]:
        return [self.hardware(config) for config in configs]


# ----------------------------------------------------------------------
# whole-file JSON export so finished record lists can be shipped around
# ----------------------------------------------------------------------

def save_records(path: str | Path, records: list) -> None:
    """Serialize eval/hardware/roc records to a JSON file, atomically.

    The file is written next to the target and renamed into place
    (``tempfile`` + ``os.replace``), so an interrupted save never
    truncates or corrupts an existing cache file.
    """
    payload = [record_to_payload(r) for r in records]
    atomic_write_text(Path(path), json.dumps(payload, indent=1))


def load_records(path: str | Path) -> list:
    """Load records previously written by :func:`save_records`.

    Raises:
        CacheError: if the file is not valid JSON (e.g. truncated by an
            interrupted legacy writer) or does not contain a list of
            tagged record payloads.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise CacheError(
            f"record cache {path} is corrupt or partially written "
            f"(invalid JSON: {exc}); delete it to force a recompute"
        ) from exc
    if not isinstance(payload, list):
        raise CacheError(
            f"record cache {path} does not contain a record list; "
            "delete it to force a recompute"
        )
    try:
        return [record_from_payload(item) for item in payload]
    except ValueError as exc:
        raise CacheError(
            f"record cache {path} holds an unreadable record ({exc}); "
            "delete it to force a recompute"
        ) from exc
