"""Content-addressed, crash-safe on-disk cache for evaluation records.

The full evaluation grid trains 96 detectors; a production evaluation
must survive being killed halfway through.  :class:`ResultCache` stores
one JSON file per grid cell, addressed by a SHA-256 key over everything
the result depends on — corpus fingerprint, split protocol, detector
config, and record kind — so a resumed run recomputes only the missing
cells and a changed corpus or ranking method can never alias a stale
result.  All writes go through :func:`atomic_write_text`
(``tempfile`` + ``os.replace``), so a crash mid-write leaves either the
old file or the new one, never a truncated hybrid.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.analysis.records import record_from_payload, record_to_payload
from repro.core.config import DetectorConfig

# Re-exported for backward compatibility: the atomic writer now lives in
# repro.ioutil so every JSON/binary dump in the repo shares one
# implementation of the write-temp-fsync-replace discipline.
from repro.ioutil import atomic_write_text
from repro.obs import NULL_REGISTRY, Registry
from repro.workloads.dataset import Dataset


class CacheError(RuntimeError):
    """A record cache file is corrupt, truncated, or schema-mismatched."""


def dataset_fingerprint(dataset: Dataset) -> str:
    """SHA-256 content fingerprint of a corpus (features, labels, provenance)."""
    digest = hashlib.sha256(b"repro-corpus-v1")
    digest.update(np.ascontiguousarray(dataset.features, dtype=np.float64).tobytes())
    digest.update(np.ascontiguousarray(dataset.labels, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(dataset.app_ids, dtype=np.int64).tobytes())
    for names in (dataset.feature_names, dataset.app_names, dataset.app_families):
        digest.update("\x1f".join(names).encode())
        digest.update(b"\x1e")
    return digest.hexdigest()


def record_cache_key(
    *,
    corpus: str,
    train_fraction: float,
    seeds: tuple[int, ...],
    config: DetectorConfig,
    kind: str,
    extra: dict | None = None,
) -> str:
    """Content address of one grid cell.

    Args:
        corpus: :func:`dataset_fingerprint` of the evaluation corpus.
        train_fraction: application-level split ratio.
        seeds: split seeds the runner averages over.
        config: the detector variant (includes classifier, ensemble,
            HPC budget, ensemble size, ranking method, and model seed).
        kind: ``"eval"``, ``"hardware"`` or ``"roc"``.
        extra: kind-specific parameters (e.g. ROC ``max_points``).
    """
    payload = {
        "corpus": corpus,
        "train_fraction": train_fraction,
        "seeds": list(seeds),
        "config": asdict(config),
        "kind": kind,
        "extra": extra or {},
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    def __str__(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.writes} writes, {self.corrupt} corrupt"
        )


@dataclass
class ResultCache:
    """Per-record JSON cache under one root directory.

    Layout: ``root/<key[:2]>/<key>.json`` (two-level fan-out keeps
    directories small on full-grid runs).  Corrupt entries — e.g. a file
    truncated by an external crash — are treated as misses, deleted, and
    recomputed, so a damaged cache degrades to extra work, never to a
    wrong or unreadable result.

    Args:
        root: cache directory (created on first write).
        metrics: optional :class:`~repro.obs.Registry`; when given the
            cache publishes hit/miss/corrupt/write counters, bytes
            written, and an atomic-replace latency histogram alongside
            the in-process :class:`CacheStats`.
    """

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)
    metrics: Registry | None = None

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.root.exists() and not self.root.is_dir():
            raise CacheError(
                f"result cache root {self.root} exists but is not a directory"
            )
        registry = self.metrics if self.metrics is not None else NULL_REGISTRY
        self._c_hits = registry.counter(
            "cache_hits_total", "result-cache lookups served from disk"
        )
        self._c_misses = registry.counter(
            "cache_misses_total", "result-cache lookups that forced a recompute"
        )
        self._c_corrupt = registry.counter(
            "cache_corrupt_total", "corrupt cache entries discarded"
        )
        self._c_writes = registry.counter(
            "cache_writes_total", "records written back to the cache"
        )
        self._c_bytes = registry.counter(
            "cache_bytes_written_total", "serialized record bytes written"
        )
        self._h_write = registry.histogram(
            "cache_write_seconds", "atomic tempfile+replace write latency"
        )

    def path_of(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str):
        """The cached record for ``key``, or None on a miss.

        A corrupt entry counts as a miss and is removed so the slot can
        be rewritten by the recomputed record.
        """
        path = self.path_of(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            self.stats.misses += 1
            self._c_misses.inc()
            return None
        try:
            record = record_from_payload(json.loads(text))
        except (ValueError, json.JSONDecodeError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            self._c_corrupt.inc()
            self._c_misses.inc()
            with contextlib.suppress(OSError):
                path.unlink()
            return None
        self.stats.hits += 1
        self._c_hits.inc()
        return record

    def put(self, key: str, record) -> None:
        """Store one record atomically under its content address."""
        text = json.dumps(record_to_payload(record), indent=1)
        start = time.perf_counter()
        atomic_write_text(self.path_of(key), text)
        self._h_write.observe(time.perf_counter() - start)
        self.stats.writes += 1
        self._c_writes.inc()
        self._c_bytes.inc(len(text))

    def __contains__(self, key: str) -> bool:
        return self.path_of(key).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached record; returns how many were removed."""
        removed = 0
        for path in list(self.root.glob("*/*.json")):
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
        return removed
