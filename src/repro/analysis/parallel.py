"""Parallel, restartable evaluation of the paper's result grid.

:class:`ParallelMatrixRunner` fans a config grid out over a
``concurrent.futures.ProcessPoolExecutor``.  Each worker process builds
one :class:`~repro.analysis.matrix.MatrixRunner` in its initializer, so
the per-seed split and feature-ranking work is shared across every
config that worker evaluates — the same sharing the serial runner does,
just partitioned.  Every record is a pure function of (corpus, split
protocol, config), so parallel results are bit-identical to serial ones
regardless of scheduling; the grid methods additionally return records
in input order.

With a :class:`~repro.analysis.cache.ResultCache` attached, the parent
process resolves cache hits before fanning out, dispatches only the
missing cells, and writes each result back as it arrives — killing the
run at any point loses at most the cells currently in flight.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable

from repro.analysis.cache import ResultCache
from repro.analysis.matrix import MatrixRunner, MatrixTiming
from repro.analysis.records import EvalRecord, HardwareRecord, RocRecord
from repro.core.config import DetectorConfig
from repro.obs import Registry, Tracer
from repro.workloads.dataset import Dataset

#: Per-worker-process runner, built once by :func:`_init_worker`.
_WORKER_RUNNER: MatrixRunner | None = None
#: Per-worker observability buffers, drained back to the parent with
#: every completed cell (events carry the worker's pid).
_WORKER_TRACER: Tracer | None = None
_WORKER_METRICS: Registry | None = None


def _init_worker(
    dataset: Dataset,
    train_fraction: float,
    seeds: tuple[int, ...],
    trace_enabled: bool = False,
    metrics_enabled: bool = False,
) -> None:
    """Build the worker's shared runner (splits computed once per worker)."""
    global _WORKER_RUNNER, _WORKER_TRACER, _WORKER_METRICS
    _WORKER_TRACER = Tracer(enabled=trace_enabled)
    _WORKER_METRICS = Registry(enabled=metrics_enabled)
    _WORKER_RUNNER = MatrixRunner(
        dataset, train_fraction=train_fraction, seeds=seeds,
        tracer=_WORKER_TRACER, metrics=_WORKER_METRICS,
    )


def _worker_task(task: tuple[str, DetectorConfig, dict]):
    """Evaluate one grid cell in the worker.

    Returns ``(record, timing, fits, trace_events, metrics_snapshot)``;
    the observability payloads are empty/None when disabled so the
    pickle cost of the default path stays unchanged.
    """
    kind, config, kwargs = task
    runner = _WORKER_RUNNER
    assert runner is not None, "worker used before initialization"
    fits_before = runner.n_fits
    if kind == "eval":
        record, timing = runner.timed_evaluate(config)
    elif kind == "hardware":
        record, timing = runner.timed_hardware(config)
    elif kind == "roc":
        record, timing = runner.timed_roc(config, **kwargs)
    else:
        raise ValueError(f"unknown record kind {kind!r}")
    events = _WORKER_TRACER.drain() if _WORKER_TRACER.enabled else []
    snapshot = _WORKER_METRICS.drain() if _WORKER_METRICS.enabled else None
    return record, timing, runner.n_fits - fits_before, events, snapshot


class ParallelMatrixRunner:
    """Drop-in grid runner that trains cache-missing cells in parallel.

    Args:
        dataset: full 44-event corpus.
        train_fraction: application-level split ratio (paper: 0.7).
        seeds: split seeds to average over.
        workers: worker processes; ``None`` uses the CPU count, ``1``
            runs inline without a pool (still cache-aware).
        cache: optional crash-safe result cache; hits are resolved in
            the parent and never dispatched.
        progress: per-cell :class:`MatrixTiming` callback (cache hits
            and worker results alike), invoked in the parent process.
        tracer: optional :class:`~repro.obs.Tracer`; each worker traces
            into its own buffer and the parent absorbs the drained
            events as results arrive, so one trace covers the fan-out.
        metrics: optional :class:`~repro.obs.Registry`; worker
            snapshots are merged into it alongside the parent's own
            counters.
    """

    def __init__(
        self,
        dataset: Dataset,
        train_fraction: float = 0.7,
        seeds: tuple[int, ...] = (7,),
        workers: int | None = None,
        cache: ResultCache | None = None,
        progress: Callable[[MatrixTiming], None] | None = None,
        tracer: Tracer | None = None,
        metrics: Registry | None = None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._serial = MatrixRunner(
            dataset, train_fraction=train_fraction, seeds=seeds,
            cache=cache, progress=progress, tracer=tracer, metrics=metrics,
        )
        self._worker_fits = 0

    # -- shared state exposed with the serial runner's vocabulary -------
    @property
    def dataset(self) -> Dataset:
        return self._serial.dataset

    @property
    def seeds(self) -> tuple[int, ...]:
        return self._serial.seeds

    @property
    def train_fraction(self) -> float:
        return self._serial.train_fraction

    @property
    def cache(self) -> ResultCache | None:
        return self._serial.cache

    @property
    def timings(self) -> list[MatrixTiming]:
        return self._serial.timings

    @property
    def tracer(self) -> Tracer:
        return self._serial.tracer

    @property
    def metrics(self) -> Registry:
        return self._serial.metrics

    @property
    def n_fits(self) -> int:
        """Detectors trained on behalf of this runner, workers included."""
        return self._serial.n_fits + self._worker_fits

    # -- single-cell API delegates to the serial runner -----------------
    def evaluate(self, config: DetectorConfig) -> EvalRecord:
        return self._serial.evaluate(config)

    def roc(self, config: DetectorConfig, max_points: int = 200) -> RocRecord:
        return self._serial.roc(config, max_points=max_points)

    def hardware(self, config: DetectorConfig) -> HardwareRecord:
        return self._serial.hardware(config)

    # -- parallel grid API ----------------------------------------------
    def evaluate_grid(self, configs: list[DetectorConfig]) -> list[EvalRecord]:
        return self._run_grid(configs, "eval")

    def hardware_grid(self, configs: list[DetectorConfig]) -> list[HardwareRecord]:
        return self._run_grid(configs, "hardware")

    def roc_grid(
        self, configs: list[DetectorConfig], max_points: int = 200
    ) -> list[RocRecord]:
        return self._run_grid(configs, "roc", {"max_points": max_points})

    def _run_grid(
        self, configs: list[DetectorConfig], kind: str, kwargs: dict | None = None
    ) -> list:
        kwargs = kwargs or {}
        serial = self._serial
        results: list = [None] * len(configs)
        pending: list[tuple[int, DetectorConfig]] = []
        for i, config in enumerate(configs):
            record = serial.cache_lookup(config, kind, kwargs or None)
            if record is None:
                pending.append((i, config))
            else:
                results[i] = record
        if not pending:
            return results
        if self.workers == 1 or len(pending) == 1:
            for i, config in pending:
                results[i] = serial.compute_record(config, kind, **kwargs)
            return results
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(pending)),
            initializer=_init_worker,
            initargs=(
                serial.dataset, serial.train_fraction, serial.seeds,
                serial.tracer.enabled, serial.metrics.enabled,
            ),
        ) as pool:
            futures = {
                pool.submit(_worker_task, (kind, config, kwargs)): (i, config)
                for i, config in pending
            }
            # Persist each record the moment it lands: a killed run
            # loses only the cells still in flight.
            for future in as_completed(futures):
                i, config = futures[future]
                record, timing, fits, events, snapshot = future.result()
                results[i] = record
                self._worker_fits += fits
                serial.tracer.absorb(events)
                if snapshot is not None:
                    serial.metrics.merge(snapshot)
                serial.cache_store(config, kind, record, kwargs or None)
                serial._note(timing)
        return results


def make_matrix_runner(
    dataset: Dataset,
    train_fraction: float = 0.7,
    seeds: tuple[int, ...] = (7,),
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[MatrixTiming], None] | None = None,
    tracer: Tracer | None = None,
    metrics: Registry | None = None,
) -> MatrixRunner | ParallelMatrixRunner:
    """Serial runner for ``workers == 1``, parallel runner otherwise."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1:
        return MatrixRunner(
            dataset, train_fraction=train_fraction, seeds=seeds,
            cache=cache, progress=progress, tracer=tracer, metrics=metrics,
        )
    return ParallelMatrixRunner(
        dataset, train_fraction=train_fraction, seeds=seeds,
        workers=workers, cache=cache, progress=progress,
        tracer=tracer, metrics=metrics,
    )
