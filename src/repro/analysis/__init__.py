"""Evaluation matrix runners and table/figure renderers (paper §4)."""

from repro.analysis.crossval import (
    CrossValRecord,
    cross_validated_record,
    stability_table,
)
from repro.analysis.matrix import (
    MatrixRunner,
    load_records,
    paper_grid,
    save_records,
    table3_grid,
)
from repro.analysis.pareto import (
    DesignPoint,
    join_records,
    pareto_front,
    pareto_table,
    recommend_counters,
)
from repro.analysis.records import EvalRecord, HardwareRecord, RocRecord
from repro.analysis.report import (
    figure3_table,
    figure4_report,
    figure5_table,
    improvement_summary,
    roc_ascii,
    table1_table,
    table2_table,
    table3_table,
)

__all__ = [
    "CrossValRecord",
    "DesignPoint",
    "EvalRecord",
    "HardwareRecord",
    "MatrixRunner",
    "RocRecord",
    "figure3_table",
    "figure4_report",
    "figure5_table",
    "improvement_summary",
    "join_records",
    "load_records",
    "pareto_front",
    "pareto_table",
    "recommend_counters",
    "paper_grid",
    "roc_ascii",
    "cross_validated_record",
    "save_records",
    "stability_table",
    "table1_table",
    "table2_table",
    "table3_table",
]
