"""Evaluation matrix runners and table/figure renderers (paper §4)."""

from repro.analysis.cache import (
    CacheError,
    CacheStats,
    ResultCache,
    atomic_write_text,
    dataset_fingerprint,
    record_cache_key,
)
from repro.analysis.crossval import (
    CrossValRecord,
    cross_validated_record,
    sample_std,
    stability_table,
)
from repro.analysis.matrix import (
    MatrixRunner,
    MatrixTiming,
    load_records,
    paper_grid,
    save_records,
    table3_grid,
)
from repro.analysis.parallel import ParallelMatrixRunner, make_matrix_runner
from repro.analysis.pareto import (
    DesignPoint,
    join_records,
    pareto_front,
    pareto_table,
    recommend_counters,
)
from repro.analysis.records import EvalRecord, HardwareRecord, RocRecord
from repro.analysis.report import (
    figure3_table,
    figure4_report,
    figure5_table,
    improvement_summary,
    roc_ascii,
    table1_table,
    table2_table,
    table3_table,
    timing_table,
)

__all__ = [
    "CacheError",
    "CacheStats",
    "CrossValRecord",
    "DesignPoint",
    "EvalRecord",
    "HardwareRecord",
    "MatrixRunner",
    "MatrixTiming",
    "ParallelMatrixRunner",
    "ResultCache",
    "RocRecord",
    "atomic_write_text",
    "dataset_fingerprint",
    "figure3_table",
    "figure4_report",
    "figure5_table",
    "improvement_summary",
    "join_records",
    "load_records",
    "make_matrix_runner",
    "pareto_front",
    "pareto_table",
    "recommend_counters",
    "paper_grid",
    "record_cache_key",
    "roc_ascii",
    "cross_validated_record",
    "sample_std",
    "save_records",
    "stability_table",
    "table1_table",
    "table2_table",
    "table3_table",
    "timing_table",
]
