"""Result records produced by the evaluation and hardware matrices."""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class EvalRecord:
    """One evaluated detector variant (a cell of Figures 3/5, Table 2).

    Attributes:
        classifier: WEKA name of the base learner.
        ensemble: ``"general"``, ``"boosted"`` or ``"bagging"``.
        n_hpcs: HPC feature budget.
        accuracy: test accuracy on unknown applications, in [0, 1].
        auc: area under the ROC curve (the paper's robustness metric).
        n_seeds: how many split seeds the record averages over.
    """

    classifier: str
    ensemble: str
    n_hpcs: int
    accuracy: float
    auc: float
    n_seeds: int = 1

    @property
    def performance(self) -> float:
        """ACC×AUC, the paper's §4.3 combined metric."""
        return self.accuracy * self.auc

    @property
    def name(self) -> str:
        if self.ensemble == "general":
            return f"{self.n_hpcs}HPC-{self.classifier}"
        suffix = "Boosted" if self.ensemble == "boosted" else "Bagging"
        return f"{self.n_hpcs}HPC-{suffix}-{self.classifier}"

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EvalRecord":
        return cls(**data)


@dataclass(frozen=True)
class HardwareRecord:
    """One hardware implementation estimate (a cell of Table 3)."""

    classifier: str
    ensemble: str
    n_hpcs: int
    latency_cycles: int
    area_percent: float
    luts: int
    ffs: int
    dsps: int
    brams: int

    @property
    def latency_ns(self) -> float:
        return self.latency_cycles * 10.0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "HardwareRecord":
        return cls(**data)


@dataclass(frozen=True)
class RocRecord:
    """ROC curve points of one detector (Figure 4 material)."""

    classifier: str
    ensemble: str
    n_hpcs: int
    fpr: tuple[float, ...]
    tpr: tuple[float, ...]
    auc: float

    @property
    def name(self) -> str:
        if self.ensemble == "general":
            return f"{self.n_hpcs}HPC-{self.classifier}"
        suffix = "Boosted" if self.ensemble == "boosted" else "Bagging"
        return f"{self.n_hpcs}HPC-{suffix}-{self.classifier}"

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RocRecord":
        data = dict(data)
        data["fpr"] = tuple(data["fpr"])
        data["tpr"] = tuple(data["tpr"])
        return cls(**data)


#: Serializable record classes, by payload ``kind`` tag.
RECORD_KINDS: dict[str, type] = {
    "EvalRecord": EvalRecord,
    "HardwareRecord": HardwareRecord,
    "RocRecord": RocRecord,
}


def record_to_payload(record) -> dict:
    """Tagged JSON payload (``{"kind", "data"}``) of one record."""
    kind = type(record).__name__
    if kind not in RECORD_KINDS:
        raise TypeError(f"cannot serialize {kind}; expected one of {sorted(RECORD_KINDS)}")
    return {"kind": kind, "data": record.to_dict()}


def record_from_payload(payload) -> EvalRecord | HardwareRecord | RocRecord:
    """Rebuild a record from :func:`record_to_payload` output.

    Raises:
        ValueError: if the payload is not a tagged record dict, names an
            unknown kind, or its data does not match the record schema.
    """
    if not isinstance(payload, dict) or "kind" not in payload or "data" not in payload:
        raise ValueError("malformed record payload: expected {'kind', 'data'} object")
    kind = payload["kind"]
    cls = RECORD_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown record kind {kind!r}; expected one of {sorted(RECORD_KINDS)}"
        )
    try:
        return cls.from_dict(payload["data"])
    except (TypeError, KeyError, ValueError) as exc:
        raise ValueError(f"{kind} payload does not match its schema: {exc}") from exc
