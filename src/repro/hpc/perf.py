"""Perf-style event collection on top of the counter register file.

Linux ``perf`` abstracts the physical counter registers behind
``perf_event_open``.  When more events are requested than registers exist,
real deployments either (a) re-run the workload once per event batch — the
paper's protocol: 44 events / 4 registers = 11 runs per application — or
(b) time-multiplex the register file within a single run and scale counts
by the observation duty cycle, which trades accuracy for a single run.

This module implements both strategies so their accuracy trade-off can be
studied (:class:`BatchedCollection` reproduces the paper,
:class:`MultiplexedCollection` is the run-time-friendly alternative whose
inaccuracy motivates keeping the event budget at or below the register
count in the first place).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.hpc.counters import CounterRegisterFile, sample_trace
from repro.hpc.events import ALL_EVENTS
from repro.hpc.lxc import ContainerPool
from repro.hpc.microarch import DEFAULT_WINDOW_MS, ApplicationBehavior


def batch_events(events: tuple[str, ...] | list[str], n_counters: int) -> list[list[str]]:
    """Partition an event list into groups of at most ``n_counters``.

    With the paper's numbers (44 events, 4 registers) this yields the 11
    batches of 4 events the paper describes.
    """
    events = list(events)
    if n_counters < 1:
        raise ValueError(f"n_counters must be positive, got {n_counters}")
    return [events[i : i + n_counters] for i in range(0, len(events), n_counters)]


@dataclass(frozen=True)
class CollectionResult:
    """Per-window event measurements for one application.

    Attributes:
        app_name: the application measured.
        events: measured event names (column order of ``samples``).
        samples: array ``(n_windows, len(events))`` of per-window counts.
        n_runs: how many executions were needed to cover all events.
    """

    app_name: str
    events: tuple[str, ...]
    samples: np.ndarray
    n_runs: int


class BatchedCollection:
    """The paper's collection protocol: one fresh run per event batch.

    Each batch of at most ``n_counters`` events is measured in its own
    container run; the per-window readings of all batches are stitched
    into one sample matrix.  Because batches come from *different*
    executions, stitched samples carry genuine inter-run variation — the
    artifact that makes multi-run collection unusable for run-time
    detection and motivates the paper.

    Args:
        n_counters: programmable registers available (4 on Xeon X5550).
        window_ms: sampling interval (paper: 10 ms).
    """

    def __init__(self, n_counters: int = 4, window_ms: float = DEFAULT_WINDOW_MS) -> None:
        self.n_counters = n_counters
        self.window_ms = window_ms

    def collect(
        self,
        app: ApplicationBehavior,
        events: tuple[str, ...] | list[str],
        n_windows: int,
        pool: ContainerPool,
        is_malware: bool,
    ) -> CollectionResult:
        """Measure ``events`` for ``app`` over ``n_windows`` windows."""
        events = tuple(events)
        batches = batch_events(events, self.n_counters)
        samples = np.zeros((n_windows, len(events)))
        col = {name: i for i, name in enumerate(events)}
        for batch in batches:
            trace = pool.run(app, n_windows, is_malware, window_ms=self.window_ms)
            register_file = CounterRegisterFile(self.n_counters)
            register_file.program(batch)
            readings = sample_trace(register_file, trace, ALL_EVENTS)
            for j, event in enumerate(batch):
                samples[:, col[event]] = readings[:, j]
        return CollectionResult(
            app_name=app.name, events=events, samples=samples, n_runs=len(batches)
        )


class MultiplexedCollection:
    """Single-run collection with round-robin counter multiplexing.

    The register file rotates through the event batches window by window;
    a given event is only observed every ``len(batches)`` windows and its
    count is extrapolated by the duty-cycle factor, as ``perf`` does when
    over-subscribed.  Extrapolation error grows with the over-subscription
    ratio, which is why run-time detectors should request at most
    ``n_counters`` events.
    """

    def __init__(self, n_counters: int = 4, window_ms: float = DEFAULT_WINDOW_MS) -> None:
        self.n_counters = n_counters
        self.window_ms = window_ms

    def collect(
        self,
        app: ApplicationBehavior,
        events: tuple[str, ...] | list[str],
        n_windows: int,
        pool: ContainerPool,
        is_malware: bool,
    ) -> CollectionResult:
        """Measure ``events`` in a single run, multiplexing the registers.

        Every window, one batch is live; other events receive their last
        extrapolated estimate.  The first rotation is seeded with the
        first observed window so no sample is left empty.
        """
        events = tuple(events)
        batches = batch_events(events, self.n_counters)
        n_batches = len(batches)
        trace = pool.run(app, n_windows, is_malware, window_ms=self.window_ms)
        samples = np.zeros((n_windows, len(events)))
        col = {name: i for i, name in enumerate(events)}
        event_column = {name: i for i, name in enumerate(ALL_EVENTS)}
        last_estimate = np.full(len(events), np.nan)
        for w in range(n_windows):
            live = batches[w % n_batches]
            for event in live:
                observed = float(trace[w, event_column[event]])
                # perf scales over-subscribed counts by time_enabled/time_running.
                last_estimate[col[event]] = observed
            samples[w] = last_estimate
        # Backfill leading NaNs (events not yet observed in the first rotation)
        # with the first estimate each column ever produced.
        for j in range(len(events)):
            column = samples[:, j]
            valid = np.flatnonzero(~np.isnan(column))
            if valid.size == 0:
                raise RuntimeError("event never observed; trace shorter than rotation")
            column[: valid[0]] = column[valid[0]]
        return CollectionResult(
            app_name=app.name, events=events, samples=samples, n_runs=1
        )


def runs_required(n_events: int, n_counters: int) -> int:
    """Number of full executions the batched protocol needs.

    >>> runs_required(44, 4)
    11
    """
    if n_events <= 0:
        raise ValueError(f"n_events must be positive, got {n_events}")
    return math.ceil(n_events / n_counters)
