"""Isolated execution contexts modelled after Linux Containers (LXC).

The paper executes every application inside an LXC container and destroys
the container after each run so that a malware run cannot contaminate the
measurements of the next application.  This module models that protocol:

* a :class:`Container` provides an isolated execution of one
  :class:`~repro.hpc.microarch.ApplicationBehavior` with its own random
  stream;
* running *malware* inside a container leaves **contamination** behind
  (background daemons, dirty caches, stray processes) that inflates the
  event noise of any later run in the same container;
* :class:`ContainerPool` enforces the paper's destroy-after-run policy and
  exposes a knob to disable it, so the contamination effect itself can be
  measured (an ablation the paper motivates but does not quantify).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hpc.microarch import DEFAULT_WINDOW_MS, ApplicationBehavior

#: Extra run-to-run noise added per contaminated prior run.
CONTAMINATION_SIGMA_STEP: float = 0.08


class ContainerDestroyedError(RuntimeError):
    """Raised when an execution is attempted in a destroyed container."""


@dataclass
class Container:
    """One operating-system-level virtualized execution environment.

    Attributes:
        container_id: unique id within the pool.
        seed: seed of the container's private random stream.
        contamination_level: number of malicious runs executed in this
            container since creation; inflates noise of later runs.
    """

    container_id: int
    seed: int
    contamination_level: int = 0
    destroyed: bool = field(default=False, repr=False)
    runs_executed: int = field(default=0, repr=False)

    def execute(
        self,
        app: ApplicationBehavior,
        n_windows: int,
        is_malware: bool,
        window_ms: float = DEFAULT_WINDOW_MS,
    ) -> np.ndarray:
        """Execute an application and return its raw 44-event trace.

        Args:
            app: behaviour model to execute.
            n_windows: number of 10 ms sampling windows to run for.
            is_malware: whether the application is malicious; malicious
                runs contaminate the container for subsequent runs.
            window_ms: sampling window length.

        Returns:
            Array ``(n_windows, 44)`` of raw event activity.

        Raises:
            ContainerDestroyedError: if the container was destroyed.
        """
        if self.destroyed:
            raise ContainerDestroyedError(
                f"container {self.container_id} has been destroyed"
            )
        rng = np.random.default_rng((self.seed, self.runs_executed))
        run_sigma = 0.05 + CONTAMINATION_SIGMA_STEP * self.contamination_level
        trace = app.execute(n_windows, rng, window_ms=window_ms, run_sigma=run_sigma)
        self.runs_executed += 1
        if is_malware:
            self.contamination_level += 1
        return trace

    def destroy(self) -> None:
        """Tear the container down; further executions raise."""
        self.destroyed = True


class ContainerPool:
    """Factory applying the paper's destroy-after-each-run policy.

    Args:
        seed: base seed; each container derives a unique stream from it.
        destroy_after_run: when True (the paper's protocol) every
            :meth:`run` gets a fresh container which is destroyed
            afterwards.  When False a single container is reused and
            malware runs progressively contaminate it.
    """

    def __init__(self, seed: int = 0, destroy_after_run: bool = True) -> None:
        self.seed = seed
        self.destroy_after_run = destroy_after_run
        self._next_id = 0
        self._reused: Container | None = None
        self.containers_created = 0

    def _create(self) -> Container:
        container = Container(container_id=self._next_id, seed=self.seed + self._next_id)
        self._next_id += 1
        self.containers_created += 1
        return container

    def run(
        self,
        app: ApplicationBehavior,
        n_windows: int,
        is_malware: bool,
        window_ms: float = DEFAULT_WINDOW_MS,
    ) -> np.ndarray:
        """Execute one application under the pool's isolation policy."""
        if self.destroy_after_run:
            container = self._create()
            try:
                return container.execute(app, n_windows, is_malware, window_ms)
            finally:
                container.destroy()
        if self._reused is None:
            self._reused = self._create()
        return self._reused.execute(app, n_windows, is_malware, window_ms)
