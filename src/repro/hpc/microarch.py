"""Behavioural microarchitecture model that synthesizes HPC event counts.

The paper collects event counts from a real Intel Xeon X5550 (Nehalem) with
Linux ``perf``.  Offline we cannot execute real binaries, so this module
implements the closest synthetic equivalent: a *latent-parameter* model of
a program phase.  A small set of interpretable microarchitectural rates
(IPC, branch density, cache/TLB miss rates, prefetch intensity, NUMA
locality, stall fractions) fully determines the expected value of every
one of the 44 catalogued events for a sampling window; multiplicative
log-normal noise models measurement and execution variability.

Deriving all 44 events from ~16 latent rates gives the synthetic data the
property the paper's experiments depend on: events are *correlated* (e.g.
``LLC_loads`` is downstream of ``L1_dcache_load_misses``), so no single
counter carries all the class information and feature reduction is a real
trade-off.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro import fitmode
from repro.hpc.events import ALL_EVENTS

#: Nominal core frequency of the modelled Xeon X5550.
DEFAULT_FREQUENCY_HZ: float = 2.67e9

#: Sampling window used by the paper (Perf sampling time of 10 ms).
DEFAULT_WINDOW_MS: float = 10.0


@dataclass(frozen=True)
class PhaseParameters:
    """Latent microarchitectural rates describing one program phase.

    All ``*_rate``/``*_ratio``/``*_frac`` fields are dimensionless in
    ``[0, 1]`` unless noted.  The defaults describe an unremarkable
    compute phase.

    Attributes:
        ipc: retired instructions per core cycle (0 < ipc <= 4 on Nehalem).
        utilization: fraction of the window the program is on-core.
        branch_ratio: branch instructions per retired instruction.
        branch_mispred_rate: mispredictions per branch.
        bpu_miss_rate: BPU (branch target buffer) lookup miss rate.
        load_ratio: data loads per retired instruction.
        store_ratio: data stores per retired instruction.
        l1d_load_miss_rate: L1D misses per load.
        l1d_store_miss_rate: L1D misses per store.
        l1i_miss_rate: L1I misses per fetch access.
        llc_miss_rate: LLC misses per LLC access.
        dtlb_load_miss_rate: dTLB misses per load lookup.
        dtlb_store_miss_rate: dTLB misses per store lookup.
        itlb_miss_rate: iTLB misses per fetch lookup.
        prefetch_intensity: hardware prefetches issued per demand L1D miss.
        prefetch_miss_rate: fraction of prefetches that miss their level.
        node_remote_ratio: fraction of memory traffic hitting a remote node.
        frontend_stall_frac: cycles with no uops issued / total cycles.
        backend_stall_frac: cycles with back-end stalled / total cycles.
        noise_sigma: per-window log-normal noise scale for this phase.
    """

    ipc: float = 1.2
    utilization: float = 0.95
    branch_ratio: float = 0.18
    branch_mispred_rate: float = 0.04
    bpu_miss_rate: float = 0.03
    load_ratio: float = 0.28
    store_ratio: float = 0.12
    l1d_load_miss_rate: float = 0.03
    l1d_store_miss_rate: float = 0.02
    l1i_miss_rate: float = 0.01
    llc_miss_rate: float = 0.25
    dtlb_load_miss_rate: float = 0.004
    dtlb_store_miss_rate: float = 0.003
    itlb_miss_rate: float = 0.002
    prefetch_intensity: float = 0.6
    prefetch_miss_rate: float = 0.35
    node_remote_ratio: float = 0.08
    frontend_stall_frac: float = 0.18
    backend_stall_frac: float = 0.25
    noise_sigma: float = 0.08

    def perturbed(self, rng: np.random.Generator, sigma: float = 0.05) -> "PhaseParameters":
        """Return a jittered copy modelling run-to-run variation.

        Every latent rate is scaled by an independent log-normal factor
        ``exp(N(0, sigma))`` and clipped back to a sane range.  Used by the
        execution context so that re-running an application (as the paper
        does, 11 times per app) never reproduces identical counts.

        One batched ``rng.normal`` call draws all factors; the generator
        fills arrays from the same bit stream as repeated scalar draws,
        so this consumes the stream exactly like the retained per-field
        reference (:meth:`_perturbed_scalar`).
        """
        if fitmode.scalar_fit_enabled():
            return self._perturbed_scalar(rng, sigma)
        names = [f.name for f in dataclasses.fields(self) if f.name != "noise_sigma"]
        factors = np.exp(rng.normal(0.0, sigma, size=len(names)))
        values = np.array([getattr(self, name) for name in names])
        # ipc and prefetch_intensity are counts-per-event, not
        # probabilities; they may exceed 1.
        ceilings = np.array(
            [4.0 if name in ("ipc", "prefetch_intensity") else 1.0 for name in names]
        )
        clipped = np.clip(values * factors, 1e-6, ceilings)
        fields = {name: float(v) for name, v in zip(names, clipped)}
        fields["noise_sigma"] = self.noise_sigma
        return PhaseParameters(**fields)

    def _perturbed_scalar(
        self, rng: np.random.Generator, sigma: float = 0.05
    ) -> "PhaseParameters":
        """Per-field jitter loop (differential reference for `perturbed`)."""
        fields = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if field.name == "noise_sigma":
                fields[field.name] = value
                continue
            factor = float(np.exp(rng.normal(0.0, sigma)))
            ceiling = 4.0 if field.name in ("ipc", "prefetch_intensity") else 1.0
            fields[field.name] = float(np.clip(value * factor, 1e-6, ceiling))
        return PhaseParameters(**fields)


def synthesize_windows(
    params: PhaseParameters,
    n_windows: int,
    rng: np.random.Generator,
    window_ms: float = DEFAULT_WINDOW_MS,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
) -> np.ndarray:
    """Synthesize per-window counts for all 44 events of one phase.

    Args:
        params: latent rates of the phase.
        n_windows: number of consecutive sampling windows to produce.
        rng: random generator for the multiplicative noise.
        window_ms: sampling window length in milliseconds.
        frequency_hz: modelled core frequency.

    Returns:
        Array of shape ``(n_windows, 44)`` with columns ordered like
        :data:`repro.hpc.events.ALL_EVENTS`.  Counts are non-negative
        floats (fractional counts model pro-rated multiplexing).
    """
    if n_windows < 0:
        raise ValueError(f"n_windows must be non-negative, got {n_windows}")
    if n_windows == 0:
        return np.zeros((0, len(ALL_EVENTS)))

    def jitter(shape: tuple[int, ...], scale: float = 1.0) -> np.ndarray:
        return np.exp(rng.normal(0.0, params.noise_sigma * scale, size=shape))

    n = n_windows
    cycles = frequency_hz * (window_ms / 1000.0) * params.utilization * jitter((n,))
    instructions = cycles * params.ipc * jitter((n,))

    branches = instructions * params.branch_ratio * jitter((n,))
    # Misprediction counts are noisy (speculation depth varies window to
    # window); BPU lookups track retired branches almost deterministically.
    branch_misses = branches * params.branch_mispred_rate * jitter((n,), 1.8)
    branch_loads = branches * 1.05 * jitter((n,), 0.25)
    branch_load_misses = branch_loads * params.bpu_miss_rate * jitter((n,))

    loads = instructions * params.load_ratio * jitter((n,))
    stores = instructions * params.store_ratio * jitter((n,))

    l1d_load_misses = loads * params.l1d_load_miss_rate * jitter((n,))
    l1d_store_misses = stores * params.l1d_store_miss_rate * jitter((n,))
    l1d_prefetches = l1d_load_misses * params.prefetch_intensity * jitter((n,), 3.0)
    l1d_prefetch_misses = l1d_prefetches * params.prefetch_miss_rate * jitter((n,), 3.0)

    # The front end fetches roughly one L1I access per issued instruction
    # bundle (4-wide on Nehalem), so fetches scale with instructions.
    l1i_loads = instructions * 0.27 * jitter((n,))
    l1i_load_misses = l1i_loads * params.l1i_miss_rate * jitter((n,))
    l1i_prefetches = l1i_load_misses * 0.5 * jitter((n,), 3.0)
    l1i_prefetch_misses = l1i_prefetches * params.prefetch_miss_rate * jitter((n,), 3.0)

    # LLC demand traffic is downstream of the L1 misses.
    llc_loads = (l1d_load_misses + l1i_load_misses) * jitter((n,))
    llc_load_misses = llc_loads * params.llc_miss_rate * jitter((n,))
    llc_stores = l1d_store_misses * jitter((n,))
    llc_store_misses = llc_stores * params.llc_miss_rate * 0.9 * jitter((n,))
    llc_prefetches = (l1d_prefetch_misses + l1i_prefetch_misses) * jitter((n,), 3.0)
    llc_prefetch_misses = llc_prefetches * params.prefetch_miss_rate * jitter((n,), 3.0)

    cache_references = llc_loads + llc_stores + llc_prefetches
    cache_misses = llc_load_misses + llc_store_misses + llc_prefetch_misses

    dtlb_loads = loads * jitter((n,))
    dtlb_load_misses = dtlb_loads * params.dtlb_load_miss_rate * jitter((n,))
    dtlb_stores = stores * jitter((n,))
    dtlb_store_misses = dtlb_stores * params.dtlb_store_miss_rate * jitter((n,))
    dtlb_prefetches = l1d_prefetches * 0.8 * jitter((n,), 3.0)
    dtlb_prefetch_misses = dtlb_prefetches * params.dtlb_load_miss_rate * jitter((n,), 3.0)

    itlb_loads = l1i_loads * 0.5 * jitter((n,))
    itlb_load_misses = itlb_loads * params.itlb_miss_rate * jitter((n,))

    # Memory-node traffic is what escapes the LLC, split by NUMA locality.
    remote = params.node_remote_ratio
    memory_loads = llc_load_misses + llc_prefetch_misses
    node_loads = memory_loads * (1.0 - remote) * jitter((n,))
    node_load_misses = memory_loads * remote * jitter((n,))
    node_stores = llc_store_misses * (1.0 - remote) * jitter((n,))
    node_store_misses = llc_store_misses * remote * jitter((n,))
    node_prefetches = llc_prefetch_misses * (1.0 - remote) * jitter((n,), 3.0)
    node_prefetch_misses = llc_prefetch_misses * remote * 0.5 * jitter((n,), 3.0)

    mem_loads = memory_loads * jitter((n,))
    mem_stores = llc_store_misses * jitter((n,))

    stalled_frontend = cycles * params.frontend_stall_frac * jitter((n,))
    stalled_backend = cycles * params.backend_stall_frac * jitter((n,))
    ref_cycles = cycles * jitter((n,))
    bus_cycles = cycles / 8.0 * jitter((n,))

    columns = {
        "cpu_cycles": cycles,
        "instructions": instructions,
        "ref_cycles": ref_cycles,
        "bus_cycles": bus_cycles,
        "stalled_cycles_frontend": stalled_frontend,
        "stalled_cycles_backend": stalled_backend,
        "branch_instructions": branches,
        "branch_misses": branch_misses,
        "cache_references": cache_references,
        "cache_misses": cache_misses,
        "L1_dcache_loads": loads,
        "L1_dcache_load_misses": l1d_load_misses,
        "L1_dcache_stores": stores,
        "L1_dcache_store_misses": l1d_store_misses,
        "L1_dcache_prefetches": l1d_prefetches,
        "L1_dcache_prefetch_misses": l1d_prefetch_misses,
        "L1_icache_loads": l1i_loads,
        "L1_icache_load_misses": l1i_load_misses,
        "L1_icache_prefetches": l1i_prefetches,
        "L1_icache_prefetch_misses": l1i_prefetch_misses,
        "LLC_loads": llc_loads,
        "LLC_load_misses": llc_load_misses,
        "LLC_stores": llc_stores,
        "LLC_store_misses": llc_store_misses,
        "LLC_prefetches": llc_prefetches,
        "LLC_prefetch_misses": llc_prefetch_misses,
        "dTLB_loads": dtlb_loads,
        "dTLB_load_misses": dtlb_load_misses,
        "dTLB_stores": dtlb_stores,
        "dTLB_store_misses": dtlb_store_misses,
        "dTLB_prefetches": dtlb_prefetches,
        "dTLB_prefetch_misses": dtlb_prefetch_misses,
        "iTLB_loads": itlb_loads,
        "iTLB_load_misses": itlb_load_misses,
        "branch_loads": branch_loads,
        "branch_load_misses": branch_load_misses,
        "node_loads": node_loads,
        "node_load_misses": node_load_misses,
        "node_stores": node_stores,
        "node_store_misses": node_store_misses,
        "node_prefetches": node_prefetches,
        "node_prefetch_misses": node_prefetch_misses,
        "mem_loads": mem_loads,
        "mem_stores": mem_stores,
    }
    missing = set(ALL_EVENTS) - set(columns)
    if missing:
        raise RuntimeError(f"synthesizer does not cover events: {sorted(missing)}")
    return np.column_stack([columns[name] for name in ALL_EVENTS])


@dataclass(frozen=True)
class PhaseMix:
    """One phase of an application together with its expected time share."""

    params: PhaseParameters
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"phase weight must be positive, got {self.weight}")


class ApplicationBehavior:
    """Microarchitectural behaviour of one application as a phase mixture.

    An application dwells in one phase for a geometrically distributed
    number of windows, then switches to another phase with probability
    proportional to the phase weights.  This yields the bursty,
    phase-structured traces real programs produce under ``perf``.

    Args:
        name: unique application identifier.
        phases: the application's phases and their time shares.
        mean_dwell_windows: average number of consecutive windows spent in
            a phase before re-drawing.
    """

    def __init__(
        self,
        name: str,
        phases: list[PhaseMix],
        mean_dwell_windows: float = 8.0,
    ) -> None:
        if not phases:
            raise ValueError("an application needs at least one phase")
        if mean_dwell_windows < 1.0:
            raise ValueError("mean_dwell_windows must be >= 1")
        self.name = name
        self.phases = list(phases)
        self.mean_dwell_windows = mean_dwell_windows
        total = sum(p.weight for p in self.phases)
        self._weights = np.array([p.weight / total for p in self.phases])

    def phase_schedule(self, n_windows: int, rng: np.random.Generator) -> np.ndarray:
        """Draw the per-window phase index sequence for one execution.

        Both paths produce the same schedule from the same generator
        state and leave the generator at the same stream position.  The
        reference consumes the stream draw by draw — one ``rng.choice``
        to enter the first phase, one switch uniform per later window,
        one more ``rng.choice`` at each switch.  The fast path draws a
        ``2 * n_windows`` buffer up front (the worst-case consumption),
        decodes it with the same comparisons (``Generator.choice`` with
        probabilities spends exactly one uniform, mapped through the
        weight CDF), then rewinds the generator and advances it by the
        draws actually consumed.

        An empty schedule consumes nothing on either path; previously a
        phase was drawn even for zero windows.
        """
        if n_windows <= 0:
            return np.empty(0, dtype=np.intp)
        if fitmode.scalar_fit_enabled():
            return self._phase_schedule_scalar(n_windows, rng)
        from bisect import bisect_right

        state = rng.bit_generator.state
        buffer = rng.random(2 * n_windows).tolist()
        # Generator.choice normalizes its CDF by the last element before
        # the searchsorted lookup; replicate exactly
        cdf_array = np.cumsum(self._weights)
        cdf_array /= cdf_array[-1]
        cdf = cdf_array.tolist()
        last_index = len(self.phases) - 1
        switch_prob = 1.0 / self.mean_dwell_windows
        schedule = np.empty(n_windows, dtype=np.intp)
        current = min(bisect_right(cdf, buffer[0]), last_index)
        schedule[0] = current
        position = 1
        for i in range(1, n_windows):
            switch = buffer[position] < switch_prob
            position += 1
            if switch:
                current = min(bisect_right(cdf, buffer[position]), last_index)
                position += 1
            schedule[i] = current
        rng.bit_generator.state = state
        rng.random(position)
        return schedule

    def _phase_schedule_scalar(
        self, n_windows: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw-by-draw schedule loop (differential reference)."""
        schedule = np.empty(n_windows, dtype=np.intp)
        switch_prob = 1.0 / self.mean_dwell_windows
        current = int(rng.choice(len(self.phases), p=self._weights))
        for i in range(n_windows):
            if i > 0 and rng.random() < switch_prob:
                current = int(rng.choice(len(self.phases), p=self._weights))
            schedule[i] = current
        return schedule

    def execute(
        self,
        n_windows: int,
        rng: np.random.Generator,
        window_ms: float = DEFAULT_WINDOW_MS,
        run_sigma: float = 0.05,
    ) -> np.ndarray:
        """Simulate one execution and return all 44 event counts per window.

        Each execution perturbs the phase parameters once (run-to-run
        variation) and then walks the phase schedule, synthesizing every
        window from the active phase.

        Returns:
            Array of shape ``(n_windows, 44)`` in ``ALL_EVENTS`` order.
        """
        if n_windows <= 0:
            raise ValueError(f"n_windows must be positive, got {n_windows}")
        run_params = [mix.params.perturbed(rng, run_sigma) for mix in self.phases]
        schedule = self.phase_schedule(n_windows, rng)
        trace = np.zeros((n_windows, len(ALL_EVENTS)))
        for phase_idx in np.unique(schedule):
            mask = schedule == phase_idx
            trace[mask] = synthesize_windows(
                run_params[phase_idx], int(mask.sum()), rng, window_ms=window_ms
            )
        return trace
