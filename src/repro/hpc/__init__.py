"""Hardware performance counter substrate.

Models the measurement stack the paper's data collection runs on: the
44-event catalogue (:mod:`~repro.hpc.events`), a latent-parameter
microarchitecture model that synthesizes correlated event counts
(:mod:`~repro.hpc.microarch`), a fixed-capacity counter register file
(:mod:`~repro.hpc.counters`), LXC-style isolated execution contexts
(:mod:`~repro.hpc.lxc`), and Perf-style batched/multiplexed collection
(:mod:`~repro.hpc.perf`).
"""

from repro.hpc.counters import (
    COUNTER_BITS,
    XEON_X5550_COUNTERS,
    CounterCapacityError,
    CounterRegister,
    CounterRegisterFile,
    CounterStateError,
    sample_trace,
)
from repro.hpc.events import (
    ALL_EVENTS,
    EVENT_DESCRIPTORS,
    EVENT_INDEX,
    TABLE1_RANKED_EVENTS,
    EventClass,
    EventDescriptor,
    events_of_class,
)
from repro.hpc.faults import (
    NO_FAULTS,
    ContainerCrashError,
    CounterReadGlitchError,
    FaultDraw,
    FaultInjectionError,
    FaultPlan,
    FaultyContainerPool,
    GlitchyCounterRegisterFile,
    PermanentHostError,
    ServiceFaultPlan,
    WorkerCrashError,
)
from repro.hpc.lxc import Container, ContainerDestroyedError, ContainerPool
from repro.hpc.microarch import (
    DEFAULT_FREQUENCY_HZ,
    DEFAULT_WINDOW_MS,
    ApplicationBehavior,
    PhaseMix,
    PhaseParameters,
    synthesize_windows,
)
from repro.hpc.trace import TraceRecording, record_application, replay
from repro.hpc.perf import (
    BatchedCollection,
    CollectionResult,
    MultiplexedCollection,
    batch_events,
    runs_required,
)

__all__ = [
    "ALL_EVENTS",
    "COUNTER_BITS",
    "DEFAULT_FREQUENCY_HZ",
    "DEFAULT_WINDOW_MS",
    "EVENT_DESCRIPTORS",
    "EVENT_INDEX",
    "TABLE1_RANKED_EVENTS",
    "XEON_X5550_COUNTERS",
    "ApplicationBehavior",
    "BatchedCollection",
    "CollectionResult",
    "Container",
    "ContainerDestroyedError",
    "ContainerPool",
    "ContainerCrashError",
    "CounterCapacityError",
    "CounterReadGlitchError",
    "CounterRegister",
    "CounterRegisterFile",
    "CounterStateError",
    "EventClass",
    "EventDescriptor",
    "FaultDraw",
    "FaultInjectionError",
    "FaultPlan",
    "FaultyContainerPool",
    "GlitchyCounterRegisterFile",
    "NO_FAULTS",
    "MultiplexedCollection",
    "PermanentHostError",
    "PhaseMix",
    "PhaseParameters",
    "ServiceFaultPlan",
    "TraceRecording",
    "WorkerCrashError",
    "batch_events",
    "events_of_class",
    "record_application",
    "replay",
    "runs_required",
    "sample_trace",
    "synthesize_windows",
]
