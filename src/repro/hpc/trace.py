"""Trace recording and replay — the ``perf record`` / ``perf report`` split.

Collection is expensive (the paper re-runs every application 11 times);
analysis is iterative.  Real workflows therefore *record* counter traces
once and replay them through different detectors offline.  This module
provides that:

* :class:`TraceRecording` — one application's per-window measurements
  with full collection metadata;
* JSONL persistence (one window per line, self-describing header);
* :func:`record_application` — run the batched collector and capture the
  result as a recording;
* :func:`replay` — stream a recording through a fitted detector as if it
  were live, yielding per-window verdicts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.hpc.lxc import ContainerPool
from repro.hpc.microarch import DEFAULT_WINDOW_MS, ApplicationBehavior
from repro.hpc.perf import BatchedCollection

_FORMAT = "repro-hpc-trace-v1"


@dataclass(frozen=True)
class TraceRecording:
    """One application's recorded HPC trace.

    Attributes:
        app_name: application identifier.
        events: recorded event names (column order of ``samples``).
        window_ms: sampling interval used at record time.
        n_runs: executions the collection needed (batching artifact).
        samples: array ``(n_windows, len(events))``.
    """

    app_name: str
    events: tuple[str, ...]
    window_ms: float
    n_runs: int
    samples: np.ndarray

    @property
    def n_windows(self) -> int:
        return int(self.samples.shape[0])

    @property
    def duration_ms(self) -> float:
        return self.n_windows * self.window_ms

    def project(self, events: tuple[str, ...] | list[str]) -> np.ndarray:
        """Samples restricted to (and ordered by) the given events."""
        index = {name: i for i, name in enumerate(self.events)}
        missing = [e for e in events if e not in index]
        if missing:
            raise KeyError(f"recording lacks events: {missing}")
        return self.samples[:, [index[e] for e in events]]

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the recording as self-describing JSONL."""
        path = Path(path)
        with path.open("w") as handle:
            header = {
                "format": _FORMAT,
                "app_name": self.app_name,
                "events": list(self.events),
                "window_ms": self.window_ms,
                "n_runs": self.n_runs,
            }
            handle.write(json.dumps(header) + "\n")
            for row in self.samples:
                handle.write(json.dumps([float(v) for v in row]) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "TraceRecording":
        """Load a recording written by :meth:`save`."""
        path = Path(path)
        with path.open() as handle:
            header = json.loads(handle.readline())
            if header.get("format") != _FORMAT:
                raise ValueError(f"{path} is not a {_FORMAT} file")
            rows = [json.loads(line) for line in handle if line.strip()]
        samples = np.array(rows) if rows else np.zeros((0, len(header["events"])))
        if samples.size and samples.shape[1] != len(header["events"]):
            raise ValueError(f"{path} rows do not match the declared event list")
        return cls(
            app_name=header["app_name"],
            events=tuple(header["events"]),
            window_ms=float(header["window_ms"]),
            n_runs=int(header["n_runs"]),
            samples=samples,
        )


def record_application(
    app: ApplicationBehavior,
    events: tuple[str, ...] | list[str],
    n_windows: int,
    pool: ContainerPool,
    is_malware: bool,
    n_counters: int = 4,
    window_ms: float = DEFAULT_WINDOW_MS,
) -> TraceRecording:
    """Collect one application's events and capture them as a recording."""
    collector = BatchedCollection(n_counters=n_counters, window_ms=window_ms)
    result = collector.collect(app, tuple(events), n_windows, pool, is_malware)
    return TraceRecording(
        app_name=result.app_name,
        events=result.events,
        window_ms=window_ms,
        n_runs=result.n_runs,
        samples=result.samples,
    )


def replay(recording: TraceRecording, detector) -> np.ndarray:
    """Stream a recording through a fitted detector window by window.

    Args:
        recording: must contain (at least) the detector's monitored events.
        detector: a fitted :class:`~repro.core.detector.HMDDetector`.

    Returns:
        Per-window 0/1 flags, as live monitoring would have produced.
    """
    windows = recording.project(detector.monitored_events)
    return detector.predict_windows(windows)
