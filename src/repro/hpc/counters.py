"""Model of a processor's hardware performance counter register file.

Modern processors expose only a handful of programmable counter registers
(4 on the Nehalem Xeon X5550 the paper uses; 2–8 across the market).  This
module models that constraint explicitly: a :class:`CounterRegisterFile`
has a fixed number of programmable slots, each of which must be bound to
one event before it accumulates counts, and counters saturate at their
physical bit width.

The constraint is what makes the paper's problem real: measuring more
events than there are registers requires either time multiplexing or
re-running the workload, both handled by :mod:`repro.hpc.perf`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hpc.events import EVENT_INDEX

#: Number of programmable counter registers on the paper's Xeon X5550.
XEON_X5550_COUNTERS: int = 4

#: Physical width of a Nehalem performance counter register.
COUNTER_BITS: int = 48


class CounterCapacityError(RuntimeError):
    """Raised when more events are programmed than registers exist."""


class CounterStateError(RuntimeError):
    """Raised on invalid register operations (e.g. reading an unbound slot)."""


@dataclass
class CounterRegister:
    """One programmable performance counter register.

    Attributes:
        index: position of the register within the register file.
        event: bound event name, or ``None`` when the slot is free.
        value: accumulated count, saturating at ``2**COUNTER_BITS - 1``.
        enabled: whether the register is currently counting.
    """

    index: int
    event: str | None = None
    value: int = 0
    enabled: bool = False
    overflowed: bool = field(default=False, repr=False)

    @property
    def max_value(self) -> int:
        return (1 << COUNTER_BITS) - 1

    def program(self, event: str) -> None:
        """Bind this register to an event and reset its count."""
        if event not in EVENT_INDEX:
            raise KeyError(f"unknown performance event: {event!r}")
        self.event = event
        self.value = 0
        self.overflowed = False
        self.enabled = True

    def accumulate(self, count: float) -> None:
        """Add an observed count, saturating at the register width."""
        if not self.enabled or self.event is None:
            raise CounterStateError(f"register {self.index} is not programmed")
        if count < 0:
            raise ValueError(f"counts are non-negative, got {count}")
        total = self.value + int(round(count))
        if total > self.max_value:
            self.overflowed = True
            total = self.max_value
        self.value = total

    def release(self) -> None:
        """Unbind the register, freeing the slot."""
        self.event = None
        self.enabled = False
        self.value = 0
        self.overflowed = False


class CounterRegisterFile:
    """A fixed-size file of programmable HPC registers.

    Args:
        n_counters: number of programmable registers (2–8 on real parts).
    """

    def __init__(self, n_counters: int = XEON_X5550_COUNTERS) -> None:
        if n_counters < 1:
            raise ValueError(f"need at least one counter, got {n_counters}")
        self.registers = [CounterRegister(index=i) for i in range(n_counters)]

    @property
    def n_counters(self) -> int:
        return len(self.registers)

    @property
    def programmed_events(self) -> tuple[str, ...]:
        return tuple(r.event for r in self.registers if r.event is not None)

    def program(self, events: list[str] | tuple[str, ...]) -> None:
        """Bind a set of events, one per register.

        Raises:
            CounterCapacityError: if more events are requested than the
                register file has slots — the physical constraint the
                paper's multi-run collection works around.
        """
        events = list(events)
        if len(events) > self.n_counters:
            raise CounterCapacityError(
                f"cannot monitor {len(events)} events concurrently with "
                f"{self.n_counters} counter registers"
            )
        if len(set(events)) != len(events):
            raise ValueError("duplicate events in one programming group")
        self.reset()
        for register, event in zip(self.registers, events):
            register.program(event)

    def observe_window(self, window_counts: dict[str, float]) -> None:
        """Feed one sampling window's raw event activity into the registers.

        Only programmed events are accumulated; everything else is
        invisible, exactly as on real hardware.
        """
        for register in self.registers:
            if register.enabled and register.event is not None:
                register.accumulate(window_counts.get(register.event, 0.0))

    def read(self) -> dict[str, int]:
        """Read the counts of all programmed registers."""
        return {
            r.event: r.value for r in self.registers if r.enabled and r.event is not None
        }

    def reset(self) -> None:
        """Release every register."""
        for register in self.registers:
            register.release()


def sample_trace(
    register_file: CounterRegisterFile,
    trace: np.ndarray,
    event_names: tuple[str, ...],
) -> np.ndarray:
    """Run a synthesized trace through the register file window by window.

    Args:
        register_file: programmed register file; only its bound events are
            observable.
        trace: array ``(n_windows, n_events)`` of raw per-window activity.
        event_names: column names of ``trace``.

    Returns:
        Array ``(n_windows, n_programmed)`` of per-window readings for the
        programmed events, in programming order.  Registers are reset
        between windows (sampling mode), so each row is a window delta.
    """
    programmed = register_file.programmed_events
    if not programmed:
        raise CounterStateError("no events programmed")
    column = {name: i for i, name in enumerate(event_names)}
    readings = np.zeros((trace.shape[0], len(programmed)))
    for w in range(trace.shape[0]):
        window_counts = {ev: float(trace[w, column[ev]]) for ev in programmed}
        for register in register_file.registers:
            if register.enabled:
                register.value = 0
        register_file.observe_window(window_counts)
        row = register_file.read()
        readings[w] = [row[ev] for ev in programmed]
    return readings
