"""Catalogue of the CPU performance events used throughout the framework.

The paper collects 44 CPU events exposed by the Linux ``perf`` tool on an
Intel Xeon X5550 (Nehalem).  This module defines the same event namespace:
generalized hardware events plus the hardware-cache event matrix
(``<cache>_<op>`` / ``<cache>_<op>_misses``), and the 16-event ranking of
the paper's Table 1.

Events are identified by name (``str``).  :data:`ALL_EVENTS` fixes a
canonical ordering that the rest of the framework (counter scheduling,
dataset columns, feature reduction) relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class EventClass(Enum):
    """Coarse microarchitectural category of a performance event."""

    PIPELINE = "pipeline"
    BRANCH = "branch"
    CACHE = "cache"
    TLB = "tlb"
    MEMORY = "memory"


@dataclass(frozen=True)
class EventDescriptor:
    """Static description of one hardware performance event.

    Attributes:
        name: canonical ``perf``-style identifier, e.g. ``"branch_instructions"``.
        event_class: coarse category used by reports and the workload model.
        description: human-readable meaning of the count.
    """

    name: str
    event_class: EventClass
    description: str


def _d(name: str, event_class: EventClass, description: str) -> EventDescriptor:
    return EventDescriptor(name=name, event_class=event_class, description=description)


#: The 44 CPU events collected by the paper's data-collection stage.
#: Generalized hardware events first, then the hardware-cache matrix.
EVENT_DESCRIPTORS: tuple[EventDescriptor, ...] = (
    # -- generalized hardware events -------------------------------------
    _d("cpu_cycles", EventClass.PIPELINE, "Core clock cycles elapsed"),
    _d("instructions", EventClass.PIPELINE, "Instructions retired"),
    _d("ref_cycles", EventClass.PIPELINE, "Reference (unhalted) clock cycles"),
    _d("bus_cycles", EventClass.PIPELINE, "Bus clock cycles"),
    _d("stalled_cycles_frontend", EventClass.PIPELINE, "Cycles the front-end issued no uops"),
    _d("stalled_cycles_backend", EventClass.PIPELINE, "Cycles the back-end accepted no uops"),
    _d("branch_instructions", EventClass.BRANCH, "Branch instructions retired"),
    _d("branch_misses", EventClass.BRANCH, "Mispredicted branch instructions"),
    _d("cache_references", EventClass.CACHE, "Last-level cache references"),
    _d("cache_misses", EventClass.CACHE, "Last-level cache misses"),
    # -- L1 data cache ----------------------------------------------------
    _d("L1_dcache_loads", EventClass.CACHE, "L1D load accesses"),
    _d("L1_dcache_load_misses", EventClass.CACHE, "L1D load misses"),
    _d("L1_dcache_stores", EventClass.CACHE, "L1D store accesses"),
    _d("L1_dcache_store_misses", EventClass.CACHE, "L1D store misses"),
    _d("L1_dcache_prefetches", EventClass.CACHE, "L1D hardware prefetches issued"),
    _d("L1_dcache_prefetch_misses", EventClass.CACHE, "L1D prefetches that missed"),
    # -- L1 instruction cache ----------------------------------------------
    _d("L1_icache_loads", EventClass.CACHE, "L1I fetch accesses"),
    _d("L1_icache_load_misses", EventClass.CACHE, "L1I fetch misses"),
    _d("L1_icache_prefetches", EventClass.CACHE, "L1I prefetches issued"),
    _d("L1_icache_prefetch_misses", EventClass.CACHE, "L1I prefetches that missed"),
    # -- last-level cache ---------------------------------------------------
    _d("LLC_loads", EventClass.CACHE, "LLC load accesses"),
    _d("LLC_load_misses", EventClass.CACHE, "LLC load misses"),
    _d("LLC_stores", EventClass.CACHE, "LLC store accesses"),
    _d("LLC_store_misses", EventClass.CACHE, "LLC store misses"),
    _d("LLC_prefetches", EventClass.CACHE, "LLC prefetches issued"),
    _d("LLC_prefetch_misses", EventClass.CACHE, "LLC prefetches that missed"),
    # -- data TLB -----------------------------------------------------------
    _d("dTLB_loads", EventClass.TLB, "dTLB load lookups"),
    _d("dTLB_load_misses", EventClass.TLB, "dTLB load misses (page walks)"),
    _d("dTLB_stores", EventClass.TLB, "dTLB store lookups"),
    _d("dTLB_store_misses", EventClass.TLB, "dTLB store misses (page walks)"),
    _d("dTLB_prefetches", EventClass.TLB, "dTLB prefetch lookups"),
    _d("dTLB_prefetch_misses", EventClass.TLB, "dTLB prefetch misses"),
    # -- instruction TLB ------------------------------------------------------
    _d("iTLB_loads", EventClass.TLB, "iTLB fetch lookups"),
    _d("iTLB_load_misses", EventClass.TLB, "iTLB fetch misses (page walks)"),
    # -- branch prediction unit (perf 'branch' cache) -------------------------
    _d("branch_loads", EventClass.BRANCH, "BPU lookups (branch loads)"),
    _d("branch_load_misses", EventClass.BRANCH, "BPU lookup misses"),
    # -- NUMA node (local memory controller) ----------------------------------
    _d("node_loads", EventClass.MEMORY, "Local-node memory loads"),
    _d("node_load_misses", EventClass.MEMORY, "Remote-node memory loads"),
    _d("node_stores", EventClass.MEMORY, "Local-node memory stores"),
    _d("node_store_misses", EventClass.MEMORY, "Remote-node memory stores"),
    _d("node_prefetches", EventClass.MEMORY, "Node-level prefetches"),
    _d("node_prefetch_misses", EventClass.MEMORY, "Node-level prefetch misses"),
    # -- off-core memory traffic ------------------------------------------------
    _d("mem_loads", EventClass.MEMORY, "Off-core memory load transactions"),
    _d("mem_stores", EventClass.MEMORY, "Off-core memory store transactions"),
)

#: Canonical names of all 44 events, in catalogue order.
ALL_EVENTS: tuple[str, ...] = tuple(d.name for d in EVENT_DESCRIPTORS)

#: Fast lookup from event name to its descriptor.
EVENT_INDEX: dict[str, EventDescriptor] = {d.name: d for d in EVENT_DESCRIPTORS}

#: The paper's Table 1: the sixteen most important HPCs, in order of
#: importance as determined by correlation attribute evaluation.
TABLE1_RANKED_EVENTS: tuple[str, ...] = (
    "branch_instructions",
    "branch_loads",
    "iTLB_load_misses",
    "dTLB_load_misses",
    "dTLB_store_misses",
    "L1_dcache_stores",
    "cache_misses",
    "node_loads",
    "dTLB_stores",
    "iTLB_loads",
    "L1_icache_load_misses",
    "branch_load_misses",
    "branch_misses",
    "LLC_store_misses",
    "node_stores",
    "L1_dcache_load_misses",
)


def validate_catalogue() -> None:
    """Check internal consistency of the event catalogue.

    Raises:
        ValueError: if the catalogue does not contain exactly 44 unique
            events or Table 1 references an unknown event.
    """
    if len(ALL_EVENTS) != 44:
        raise ValueError(f"expected 44 events, catalogue has {len(ALL_EVENTS)}")
    if len(set(ALL_EVENTS)) != len(ALL_EVENTS):
        raise ValueError("event catalogue contains duplicate names")
    unknown = [name for name in TABLE1_RANKED_EVENTS if name not in EVENT_INDEX]
    if unknown:
        raise ValueError(f"Table 1 references unknown events: {unknown}")
    if len(TABLE1_RANKED_EVENTS) != 16:
        raise ValueError("Table 1 must rank exactly 16 events")


def events_of_class(event_class: EventClass) -> tuple[str, ...]:
    """Return the names of all events in one microarchitectural category."""
    return tuple(d.name for d in EVENT_DESCRIPTORS if d.event_class is event_class)


validate_catalogue()
