"""Deterministic fault injection for the measurement substrate.

Real deployments do not hand the detector pristine traces: containers
die mid-run, counter reads glitch under contention, and the sampler
drops windows when the machine is saturated.  This module models those
failure modes *deterministically* — every fault is drawn from a seeded
RNG keyed on ``(plan seed, application, attempt)``, so a failing fleet
run can be replayed bit-for-bit from its seed.

Three fault classes, mirroring what run-time HMD papers report:

* **container crash** — the execution dies after ``k`` windows; the
  partial trace survives and is carried on the raised
  :class:`ContainerCrashError` so a caller can degrade onto it.
* **counter-read glitch** — a transient failure while reading the
  register file (:class:`GlitchyCounterRegisterFile` raises
  :class:`CounterReadGlitchError` on one configured ``read()``); the
  windows sampled before the glitch remain valid.
* **dropped windows** — the sampler silently loses a subset of windows;
  no exception, but the surviving evidence shrinks.

A fourth, **permanent host failure**, is drawn per application (not per
attempt): retrying cannot help, and :class:`FaultyContainerPool` raises
:class:`PermanentHostError` on every attempt for that application.

Crash and permanent faults surface through :class:`FaultyContainerPool`,
a drop-in wrapper around :class:`~repro.hpc.lxc.ContainerPool`; glitches
and drops apply at sampling time and are consumed by
:class:`~repro.core.fleet.FleetMonitor` via :meth:`FaultPlan.draw`.
Because draws are pure functions of the key, the pool and the monitor
can each draw independently and see the same faults.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.hpc.counters import CounterRegisterFile
from repro.hpc.lxc import ContainerPool
from repro.hpc.microarch import DEFAULT_WINDOW_MS, ApplicationBehavior

#: Domain tag separating the per-app permanent-failure stream from the
#: per-attempt transient stream (both derive from the same plan seed).
_PERMANENT_STREAM = 0x9E37
#: Domain tag for the retry-backoff jitter stream.
_JITTER_STREAM = 0xB0FF
#: Domain tag for the streaming service's worker-crash stream.
_WORKER_STREAM = 0xC4A5


class FaultInjectionError(RuntimeError):
    """Base class for injected measurement faults."""


class ContainerCrashError(FaultInjectionError):
    """The container died mid-run; the partial trace survives.

    Attributes:
        partial_trace: array ``(windows_completed, 44)`` of the windows
            executed before the crash (possibly empty).
    """

    def __init__(self, message: str, partial_trace: np.ndarray) -> None:
        super().__init__(message)
        self.partial_trace = partial_trace


class CounterReadGlitchError(FaultInjectionError):
    """A transient register-file read failure.

    Attributes:
        windows_read: number of windows successfully read before the
            glitch; their readings remain valid evidence.
    """

    def __init__(self, message: str, windows_read: int) -> None:
        super().__init__(message)
        self.windows_read = windows_read


class PermanentHostError(FaultInjectionError):
    """The application's host is gone; retrying cannot succeed."""


class WorkerCrashError(FaultInjectionError):
    """An injected detector-worker crash inside the streaming service.

    Raised by a :class:`~repro.serve.DetectionService` worker while it
    is processing a message — the message (and every message the worker
    consumed before it) is lost with the worker's in-memory assembly
    state, which is exactly the failure the service's supervisor must
    recover from without dropping or duplicating a verdict.
    """


def app_key(app_name: str) -> int:
    """Stable integer key for an application name (CRC-32)."""
    return zlib.crc32(app_name.encode("utf-8"))


@dataclass(frozen=True)
class FaultDraw:
    """The concrete faults one (application, attempt) pair will suffer.

    Attributes:
        crash_after: window count after which the container crashes, or
            None for no crash.
        glitch_read: 0-based register-file ``read()`` index that fails,
            or None for no glitch.
        dropped: sorted window indices the sampler loses.
        permanent: the application's host has failed permanently.
    """

    crash_after: int | None = None
    glitch_read: int | None = None
    dropped: tuple[int, ...] = ()
    permanent: bool = False

    @property
    def is_clean(self) -> bool:
        return (
            self.crash_after is None
            and self.glitch_read is None
            and not self.dropped
            and not self.permanent
        )


#: The draw a fault-free run gets (shared; FaultDraw is immutable).
NO_FAULTS = FaultDraw()


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of how unreliable the substrate is.

    Rates are independent per-run probabilities in ``[0, 1]`` except
    ``drop_rate``, which is a per-window loss probability.  All draws
    are deterministic functions of ``(seed, application, attempt)``.

    Args:
        seed: base seed; two plans with equal fields behave identically.
        crash_rate: probability an attempt's container crashes mid-run.
        glitch_rate: probability an attempt suffers one counter-read
            glitch.
        drop_rate: per-window probability the sampler drops the window.
        permanent_rate: per-application probability the host is
            permanently gone (independent of attempt).
    """

    seed: int = 0
    crash_rate: float = 0.0
    glitch_rate: float = 0.0
    drop_rate: float = 0.0
    permanent_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "glitch_rate", "drop_rate", "permanent_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")

    def _rng(self, *key: int) -> np.random.Generator:
        return np.random.default_rng((self.seed, *key))

    def is_permanent(self, app_name: str) -> bool:
        """Whether this application's host is permanently failed."""
        if self.permanent_rate == 0.0:
            return False
        rng = self._rng(app_key(app_name), _PERMANENT_STREAM)
        return bool(rng.random() < self.permanent_rate)

    def draw(self, app_name: str, attempt: int, n_windows: int) -> FaultDraw:
        """The faults injected into one monitoring attempt.

        Pure in its arguments: the same (plan, app, attempt, windows)
        always yields the same draw, which is what makes fleet runs
        replayable and lets the container pool and the monitor draw
        independently without coordinating.
        """
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        permanent = self.is_permanent(app_name)
        rng = self._rng(app_key(app_name), attempt)
        crash_after = None
        if n_windows > 0 and rng.random() < self.crash_rate:
            crash_after = int(rng.integers(0, n_windows))
        glitch_read = None
        if n_windows > 0 and rng.random() < self.glitch_rate:
            glitch_read = int(rng.integers(0, n_windows))
        dropped: tuple[int, ...] = ()
        if n_windows > 0 and self.drop_rate > 0.0:
            dropped = tuple(
                int(i) for i in np.flatnonzero(rng.random(n_windows) < self.drop_rate)
            )
        return FaultDraw(
            crash_after=crash_after,
            glitch_read=glitch_read,
            dropped=dropped,
            permanent=permanent,
        )

    def jitter_rng(self, app_name: str, attempt: int) -> np.random.Generator:
        """Deterministic RNG stream for retry-backoff jitter."""
        return self._rng(app_key(app_name), attempt, _JITTER_STREAM)


@dataclass(frozen=True)
class ServiceFaultPlan:
    """Seeded chaos plan for the streaming service's own workers.

    Where :class:`FaultPlan` breaks the *measurement substrate* under a
    monitor, this plan breaks the *detection service itself*: detector
    workers crash mid-stream, losing whatever per-host assembly state
    they held, and the supervisor must restart them and redeliver.  All
    draws are pure functions of ``(seed, worker, incarnation)``, so a
    chaos run replays bit-for-bit.

    Args:
        seed: base seed; equal fields ⇒ identical behaviour.
        worker_crash_rate: probability a given worker incarnation
            crashes at some point in its life.
        max_crashes_per_worker: incarnations at or beyond this index
            never crash, bounding the chaos so every stream drains
            (liveness guard — with it, any plan terminates).

    """

    seed: int = 0
    worker_crash_rate: float = 0.0
    max_crashes_per_worker: int = 5

    def __post_init__(self) -> None:
        if not 0.0 <= self.worker_crash_rate <= 1.0:
            raise ValueError(
                f"worker_crash_rate must be in [0, 1], got {self.worker_crash_rate}"
            )
        if self.max_crashes_per_worker < 0:
            raise ValueError(
                f"max_crashes_per_worker cannot be negative, got "
                f"{self.max_crashes_per_worker}"
            )

    def crash_after(
        self, worker_index: int, incarnation: int, scale: int = 64
    ) -> int | None:
        """Messages this worker incarnation consumes before crashing.

        Returns None for a clean incarnation.  ``scale`` sets the draw
        range (callers pass roughly the messages-per-execution so
        crashes land mid-assembly, the interesting case); the result is
        always >= 1, so every incarnation makes progress.
        """
        if worker_index < 0 or incarnation < 0:
            raise ValueError("worker_index and incarnation must be >= 0")
        if incarnation >= self.max_crashes_per_worker:
            return None
        if self.worker_crash_rate == 0.0:
            return None
        rng = np.random.default_rng(
            (self.seed, _WORKER_STREAM, worker_index, incarnation)
        )
        if rng.random() >= self.worker_crash_rate:
            return None
        return int(rng.integers(1, max(scale, 2)))


class FaultyContainerPool:
    """Drop-in :class:`~repro.hpc.lxc.ContainerPool` that injects faults.

    Wraps a real pool and consults a :class:`FaultPlan` before and after
    every run: a permanently-failed host raises
    :class:`PermanentHostError` without executing anything, and a drawn
    crash truncates the (fully deterministic) underlying trace and
    raises :class:`ContainerCrashError` carrying the surviving windows.

    Glitches and drops are *not* applied here — they are sampling-time
    faults the monitor applies from the same draw.

    Args:
        pool: the real container pool to execute on.
        plan: fault plan consulted per run.
    """

    def __init__(self, pool: ContainerPool, plan: FaultPlan) -> None:
        self.pool = pool
        self.plan = plan

    def run(
        self,
        app: ApplicationBehavior,
        n_windows: int,
        is_malware: bool,
        window_ms: float = DEFAULT_WINDOW_MS,
        attempt: int = 0,
    ) -> np.ndarray:
        """Execute one application, injecting this attempt's faults."""
        draw = self.plan.draw(app.name, attempt, n_windows)
        if draw.permanent:
            raise PermanentHostError(
                f"host for {app.name!r} has failed permanently"
            )
        trace = self.pool.run(app, n_windows, is_malware, window_ms=window_ms)
        if draw.crash_after is not None and draw.crash_after < n_windows:
            raise ContainerCrashError(
                f"container running {app.name!r} crashed after "
                f"{draw.crash_after}/{n_windows} windows (attempt {attempt})",
                partial_trace=trace[: draw.crash_after],
            )
        return trace


class GlitchyCounterRegisterFile(CounterRegisterFile):
    """Register file whose ``read()`` can suffer one transient glitch.

    Behaves exactly like :class:`~repro.hpc.counters.CounterRegisterFile`
    except that the ``glitch_read``-th call to :meth:`read` raises
    :class:`CounterReadGlitchError` instead of returning counts — the
    model of a transient MSR read failure.  Reads before the glitch are
    valid; the error reports how many completed.

    Args:
        n_counters: register-file capacity.
        glitch_read: 0-based read index that fails (None = never).
    """

    def __init__(self, n_counters: int = 4, glitch_read: int | None = None) -> None:
        super().__init__(n_counters)
        self.glitch_read = glitch_read
        self.reads_completed = 0

    def read(self) -> dict[str, int]:
        if self.glitch_read is not None and self.reads_completed == self.glitch_read:
            raise CounterReadGlitchError(
                f"transient counter read failure at read {self.reads_completed}",
                windows_read=self.reads_completed,
            )
        counts = super().read()
        self.reads_completed += 1
        return counts
