"""Command-line interface: build corpora, train detectors, render tables.

Installed as ``repro-hmd``.  Subcommands:

* ``corpus``   — build the synthetic corpus and write it to CSV/ARFF.
* ``rank``     — reproduce Table 1 (feature ranking).
* ``evaluate`` — train/evaluate one detector variant.
* ``train``    — train a detector and save it to the model registry.
* ``profile``  — capture a detector's drift reference profile.
* ``matrix``   — run a slice of the paper's evaluation grid.
* ``hardware`` — reproduce Table 3 (hardware cost estimates).
* ``monitor``  — run-time detection demo on freshly executed applications.
* ``fleet``    — fault-tolerant fleet monitoring with optional fault injection.
* ``serve``    — streaming detection service over bounded queues.
* ``verilog``  — emit RTL for a trained detector.
* ``crossval`` — cross-validated scores with error bars.
* ``evasion``  — malware recall vs evasion strength.
* ``stats``    — summarize trace/metrics files from a previous run.
* ``watch``    — live health monitoring over a trace/metrics pair.
* ``report``   — fleet-wide roll-ups over the historical verdict archive.
* ``replay``   — re-drive the detection service from archived traffic.

``matrix``/``hardware``/``monitor``/``fleet``/``serve``/``crossval``
accept ``--trace-out PATH`` (JSONL span/event trace) and
``--metrics-out PATH`` (JSON metrics snapshot); instrumentation is off
— and free — unless one of them is given.
``monitor``/``fleet``/``serve`` additionally accept
``--health-out`` / ``--alerts`` / ``--alert`` / ``--slo`` to evaluate
health in-process and write a final health report, and
``--quality-ref`` / ``--quality-out`` / ``--quality-alert`` to score
the live stream against a ``profile``-captured reference for model
drift; ``watch`` follows the files of a live (or finished, with
``--once``) run and exits non-zero when a critical health or drift
alert fired.
``fleet``/``serve`` accept ``--archive-dir DIR`` to rotate the finished
run into the content-addressed fleet archive that ``report`` queries
and ``replay`` re-drives.
``monitor``/``fleet``/``serve`` accept ``--model-id REF --registry-dir
DIR`` to deploy a detector previously saved by ``train`` instead of
refitting: the compiled artifact is mmap-loaded, so startup performs
zero fits (the trace shows a ``cli.load_model`` span where ``cli.fit``
would be).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import __version__
from repro.analysis import (
    CacheError,
    ResultCache,
    figure3_table,
    figure5_table,
    improvement_summary,
    make_matrix_runner,
    table1_table,
    table2_table,
    table3_grid,
    table3_table,
    timing_table,
)
from repro.core import (
    CLASSIFIER_NAMES,
    DetectorConfig,
    FleetJob,
    FleetMonitor,
    HMDDetector,
    RetryPolicy,
    RuntimeMonitor,
)
from repro.core.config import ENSEMBLE_MODES
from repro.features import rank_features
from repro.hpc import ContainerPool, FaultPlan, ServiceFaultPlan
from repro.ml import app_level_split
from repro.obs import (
    Archive,
    ArchiveError,
    HealthConfigError,
    HealthEvaluator,
    MatrixProgressSink,
    MetricsError,
    MetricsFollower,
    QualityError,
    QualityTracker,
    ReferenceProfile,
    Registry,
    TraceFollower,
    Tracer,
    build_reference_profile,
    health_table,
    load_alert_rules,
    load_metrics,
    fleet_report,
    fleet_report_data,
    load_trace,
    merge_snapshots,
    metrics_table,
    parse_alert_spec,
    parse_quality_alert_spec,
    parse_slo,
    span_table,
)
from repro.registry import ModelRegistry, RegistryError
from repro.serve import DetectionService, ServeJob, replay_segment, serve_run_meta
from repro.workloads import BENIGN_FAMILIES, MALWARE_FAMILIES, default_corpus
from repro.workloads.dataset import MALWARE


def _add_corpus_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2018, help="corpus seed")
    parser.add_argument(
        "--windows", type=int, default=40, help="10 ms windows collected per app"
    )


def _build_corpus(args: argparse.Namespace):
    return default_corpus(seed=args.seed, windows_per_app=args.windows)


def _add_model_args(parser: argparse.ArgumentParser) -> None:
    """Registry warm-start flags shared by monitor/fleet/serve."""
    parser.add_argument(
        "--model-id", default=None, metavar="REF",
        help="deploy a registry model (id, unique id prefix, or tag) "
        "instead of fitting at startup; --classifier/--ensemble/--hpcs "
        "are ignored",
    )
    parser.add_argument(
        "--registry-dir", default="models", metavar="DIR",
        help="model registry directory --model-id resolves against "
        "(default: models)",
    )


def cmd_corpus(args: argparse.Namespace) -> int:
    """Build the corpus, print its summary, optionally export it."""
    corpus = _build_corpus(args)
    print(corpus.summary())
    if args.csv:
        corpus.to_csv(args.csv)
        print(f"wrote {args.csv}")
    if args.arff:
        corpus.to_arff(args.arff)
        print(f"wrote {args.arff}")
    return 0


def cmd_rank(args: argparse.Namespace) -> int:
    """Reproduce Table 1: the ranked most-important HPC events."""
    corpus = _build_corpus(args)
    split = app_level_split(corpus, 0.7, seed=args.split_seed)
    ranking = rank_features(split.train, method=args.method)
    print(table1_table(ranking, k=args.top))
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    """Train one detector variant and print its test scores."""
    corpus = _build_corpus(args)
    split = app_level_split(corpus, 0.7, seed=args.split_seed)
    config = DetectorConfig(args.classifier, args.ensemble, args.hpcs)
    detector = HMDDetector(config).fit(split.train)
    scores = detector.evaluate(split.test)
    print(f"{config.name}: accuracy={scores.accuracy:.3f} auc={scores.auc:.3f} "
          f"performance={scores.performance:.3f}")
    print(f"monitored events: {', '.join(detector.monitored_events)}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    """Train a detector and save its compiled artifact to the registry.

    Uses the same corpus/split/fit pipeline as ``monitor``/``fleet``/
    ``serve``, so a model trained with matching flags is exactly the
    detector those commands would fit at startup — deploy it with
    their ``--model-id``/``--registry-dir`` and they skip the fit.
    """
    tracer, metrics = _make_obs(args)
    with tracer.span("cli.corpus"):
        corpus = _build_corpus(args)
    split = app_level_split(corpus, 0.7, seed=args.split_seed)
    config = DetectorConfig(args.classifier, args.ensemble, args.hpcs)
    with tracer.span("cli.fit", config=config.name):
        detector = HMDDetector(config).fit(split.train)
    try:
        registry = ModelRegistry(args.registry_dir)
        entry = registry.save_detector(detector, tags=tuple(args.tag or ()))
    except (OSError, RegistryError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    scores = detector.evaluate(split.test)
    print(f"saved model {entry.model_id}")
    print(
        f"  config: {config.name}  accuracy={scores.accuracy:.3f} "
        f"auc={scores.auc:.3f}"
    )
    if entry.tags:
        print(f"  tags: {', '.join(entry.tags)}")
    print(
        f"  deploy: repro-hmd serve --registry-dir {args.registry_dir} "
        f"--model-id {entry.short_id}"
    )
    _dump_obs(args, tracer, metrics)
    return 0


def cmd_models(args: argparse.Namespace) -> int:
    """List the models saved in a registry directory."""
    try:
        entries = ModelRegistry(args.registry_dir).entries()
    except (OSError, RegistryError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    if not entries:
        print(f"no models in {args.registry_dir}")
        return 0
    print(f"{'id':12s} {'kind':12s} {'name':24s} tags")
    for entry in entries:
        print(
            f"{entry.short_id:12s} {entry.kind:12s} {entry.name:24s} "
            f"{', '.join(entry.tags)}"
        )
    return 0


def _load_or_fit_detector(args: argparse.Namespace, tracer, split):
    """Deploy a detector: registry warm-start when --model-id is given,
    otherwise the usual fit-at-startup path.

    The two paths emit distinct trace spans (``cli.load_model`` vs
    ``cli.fit``) so a trace proves which one ran — the registry-smoke
    CI job asserts the warm path performs zero fits.
    """
    if getattr(args, "model_id", None):
        try:
            registry = ModelRegistry(args.registry_dir)
            with tracer.span("cli.load_model", ref=args.model_id):
                detector = registry.load_detector(args.model_id)
        except (OSError, RegistryError) as exc:
            raise SystemExit(f"error: {exc}") from exc
        return detector
    config = DetectorConfig(args.classifier, args.ensemble, args.hpcs)
    with tracer.span("cli.fit", config=config.name):
        return HMDDetector(config).fit(split.train)


def cmd_profile(args: argparse.Namespace) -> int:
    """Train a detector and capture its drift reference profile.

    Uses the same corpus/split/fit pipeline as ``monitor``/``fleet``/
    ``serve``, so a profile built with matching flags describes exactly
    the detector those commands deploy — hand the written file to their
    ``--quality-ref`` to score the live stream against it.
    """
    corpus = _build_corpus(args)
    split = app_level_split(corpus, 0.7, seed=args.split_seed)
    config = DetectorConfig(args.classifier, args.ensemble, args.hpcs)
    detector = HMDDetector(config).fit(split.train)
    try:
        profile = build_reference_profile(
            detector,
            split.train,
            n_bins=args.bins,
            vote_threshold=args.vote_threshold,
            meta={
                "command": "profile",
                "seed": args.seed,
                "windows": args.windows,
                "split_seed": args.split_seed,
                "config": config.name,
            },
        )
        profile_id = profile.save(args.out)
    except (OSError, QualityError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    print(
        f"wrote reference profile {args.out} (id {profile_id[:12]}): "
        f"{profile.n_features} features x {profile.feature_cells} cells, "
        f"{profile.n_windows} training windows, detector {config.name}"
    )
    print(f"monitored events: {', '.join(profile.feature_names)}")
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _vote_threshold(text: str) -> float:
    """Validate --vote-threshold against the (0, 1] constructor check."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}") from None
    if not 0.0 < value <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in (0, 1], got {text}")
    return value


#: --faults key → FaultPlan field.
_FAULT_KEYS = {
    "crash": "crash_rate",
    "glitch": "glitch_rate",
    "drop": "drop_rate",
    "permanent": "permanent_rate",
}


def _fault_rates(text: str) -> dict:
    """Parse ``crash=0.2,glitch=0.1,drop=0.05,permanent=0.01`` specs."""
    rates: dict = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, raw = part.partition("=")
        if not sep or key not in _FAULT_KEYS:
            known = "/".join(_FAULT_KEYS)
            raise argparse.ArgumentTypeError(
                f"bad fault spec {part!r}; expected {known} entries like crash=0.2"
            )
        try:
            rate = float(raw)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad fault rate {raw!r} for {key}"
            ) from None
        if not 0.0 <= rate <= 1.0:
            raise argparse.ArgumentTypeError(
                f"fault rate {key} must be in [0, 1], got {raw}"
            )
        rates[_FAULT_KEYS[key]] = rate
    if not rates:
        raise argparse.ArgumentTypeError("empty fault spec")
    return rates


def _service_faults(text: str) -> dict:
    """Parse ``crash=0.5`` / ``crash=0.5,max=3`` service chaos specs."""
    fields: dict = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, raw = part.partition("=")
        if not sep or key not in ("crash", "max"):
            raise argparse.ArgumentTypeError(
                f"bad service fault spec {part!r}; expected crash=R[,max=N]"
            )
        if key == "crash":
            try:
                rate = float(raw)
            except ValueError:
                raise argparse.ArgumentTypeError(
                    f"bad crash rate {raw!r}"
                ) from None
            if not 0.0 <= rate <= 1.0:
                raise argparse.ArgumentTypeError(
                    f"crash rate must be in [0, 1], got {raw}"
                )
            fields["worker_crash_rate"] = rate
        else:
            try:
                fields["max_crashes_per_worker"] = int(raw)
            except ValueError:
                raise argparse.ArgumentTypeError(
                    f"bad max crashes {raw!r}"
                ) from None
    if "worker_crash_rate" not in fields:
        raise argparse.ArgumentTypeError(
            "service fault spec needs a crash rate, e.g. crash=0.5"
        )
    return fields


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=_positive_int, default=1,
        help="worker processes for grid evaluation (1 = serial)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="crash-safe result cache directory; warm entries skip training",
    )
    parser.add_argument(
        "--timings", action="store_true",
        help="stream per-config progress and print the fit/eval timing table",
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a JSONL span/event trace of this run to PATH "
        "(render with: repro-hmd stats --trace PATH)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write a JSON metrics snapshot of this run to PATH "
        "(render with: repro-hmd stats --metrics PATH)",
    )


def _make_obs(args: argparse.Namespace) -> tuple[Tracer, Registry]:
    """Tracer/registry for this invocation — enabled only when asked.

    ``--archive-dir`` also enables both: the archive ingests this run's
    trace events and metrics snapshot, so archiving implies observing.
    """
    archiving = bool(getattr(args, "archive_dir", None))
    return (
        Tracer(enabled=bool(args.trace_out) or archiving),
        Registry(enabled=bool(args.metrics_out) or archiving),
    )


def _dump_obs(args: argparse.Namespace, tracer: Tracer, metrics: Registry) -> None:
    if args.trace_out:
        n = tracer.dump(args.trace_out)
        print(f"wrote trace {args.trace_out} ({n} events)", file=sys.stderr)
    if args.metrics_out:
        metrics.dump(args.metrics_out)
        print(f"wrote metrics {args.metrics_out}", file=sys.stderr)


def _add_archive_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--archive-dir", default=None, metavar="DIR",
        help="archive this run's verdicts/alerts/spans and metrics into "
        "the fleet history at DIR (query with: repro-hmd report)",
    )


def _archive_run(
    args: argparse.Namespace, tracer: Tracer, metrics: Registry, run_meta: dict
) -> None:
    """Ingest the finished run into the fleet archive when asked.

    The segment is content-addressed, so re-running the identical
    workload archives a new segment only if its records differ (the
    timestamps will), while re-ingesting this run's own ``--trace-out``
    file later is a no-op.
    """
    if not args.archive_dir:
        return
    try:
        result = Archive(args.archive_dir).ingest_events(
            tracer.events,
            metrics=metrics.snapshot(),
            run_meta=run_meta,
            run_id=args.trace_out,
            source=run_meta.get("command", "trace"),
        )
    except (OSError, ArchiveError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    print(
        f"archived segment {result.segment_id[:12]} "
        f"({result.n_verdicts} verdicts, {result.n_alerts} alerts)"
        + ("" if result.ingested else " [already archived]"),
        file=sys.stderr,
    )


def _alert_spec(text: str) -> object:
    try:
        return parse_alert_spec(text)
    except HealthConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _slo_spec(text: str) -> object:
    try:
        return parse_slo(text)
    except HealthConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_health_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--health-out", default=None, metavar="PATH",
        help="write a final health report JSON (signals, alert states, SLOs)",
    )
    parser.add_argument(
        "--alerts", default=None, metavar="RULES.json",
        help="JSON file of alert rules (a list, or {'rules': [...]})",
    )
    parser.add_argument(
        "--alert", type=_alert_spec, action="append", metavar="SPEC",
        help="inline alert rule, e.g. degraded_ratio>=0.2:critical:5:0.1 "
        "(SIGNAL OP THRESHOLD[:severity[:for_s[:clear_threshold]]]); repeatable",
    )
    parser.add_argument(
        "--slo", type=_slo_spec, action="append", metavar="SPEC",
        help="service-level objective, e.g. nondegraded>=0.95 or "
        "p95_classify_s<=0.01; repeatable",
    )
    parser.add_argument(
        "--health-window", type=float, default=60.0, metavar="SECONDS",
        help="sliding window for derived health signals (default 60)",
    )


def _health_rules_and_slos(args: argparse.Namespace) -> tuple[list, list]:
    try:
        rules = list(load_alert_rules(args.alerts)) if args.alerts else []
    except (OSError, HealthConfigError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    return rules + list(args.alert or []), list(args.slo or [])


def _quality_alert_spec(text: str) -> object:
    try:
        return parse_quality_alert_spec(text)
    except HealthConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_quality_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--quality-ref", default=None, metavar="PROFILE.json",
        help="reference profile (from: repro-hmd profile --out) to score "
        "live executions against for model drift",
    )
    parser.add_argument(
        "--quality-out", default=None, metavar="PATH",
        help="write a final quality report JSON (drift signals, per-feature "
        "PSI/KS, alert states); needs --quality-ref",
    )
    parser.add_argument(
        "--quality-alert", type=_quality_alert_spec, action="append",
        metavar="SPEC",
        help="inline drift alert rule, e.g. max_feature_psi>=0.25:critical"
        " (same grammar as --alert over the drift signals); repeatable, "
        "default: max_feature_psi>=0.25:critical with hysteresis clear 0.1",
    )
    parser.add_argument(
        "--quality-window", type=float, default=60.0, metavar="SECONDS",
        help="sliding live window for drift scoring (default 60)",
    )
    parser.add_argument(
        "--quality-min-windows", type=int, default=None, metavar="N",
        help="feature windows required before drift signals report "
        "(default: 75%% of the profile's reference windows)",
    )


def _make_quality(
    args: argparse.Namespace, tracer: Tracer, metrics: Registry
) -> QualityTracker | None:
    """Build the in-process drift tracker when --quality-ref asks.

    Drift observations and alert transitions land in the run's
    tracer/registry (and stderr), so ``--trace-out`` artifacts carry the
    drift history for ``watch`` / ``report`` to consume.
    """
    if not args.quality_ref:
        if args.quality_out or args.quality_alert:
            raise SystemExit(
                "error: --quality-out/--quality-alert need --quality-ref"
            )
        return None
    try:
        profile = ReferenceProfile.load(args.quality_ref)
    except QualityError as exc:
        raise SystemExit(f"error: {exc}") from exc
    return QualityTracker(
        profile,
        rules=args.quality_alert or None,
        window_s=args.quality_window,
        min_windows=args.quality_min_windows,
        tracer=tracer,
        metrics=metrics,
        stream=sys.stderr,
    )


def _finish_quality(
    args: argparse.Namespace, quality: QualityTracker | None
) -> None:
    if quality is None:
        return
    report = quality.report()
    psi = report["signals"]["max_feature_psi"]
    print(
        f"quality: {report['totals']['executions']} executions / "
        f"{report['totals']['windows']} windows scored, "
        f"max feature PSI {'-' if psi != psi else format(psi, '.3f')}, "
        f"drift alerts fired: {'yes' if report['drift_fired'] else 'no'}",
        file=sys.stderr,
    )
    if args.quality_out:
        quality.dump(args.quality_out)
        print(f"wrote quality report {args.quality_out}", file=sys.stderr)


def _make_health(
    args: argparse.Namespace, tracer: Tracer, metrics: Registry
) -> HealthEvaluator | None:
    """Build the in-process health evaluator when any health flag asks.

    Alert transitions are rendered to stderr as they happen and also
    recorded into the run's tracer/registry, so ``--trace-out`` /
    ``--metrics-out`` artifacts carry the health history.
    """
    rules, slos = _health_rules_and_slos(args)
    if not (args.health_out or rules or slos):
        return None
    return HealthEvaluator(
        rules=rules,
        slos=slos,
        window_s=args.health_window,
        tracer=tracer,
        metrics=metrics,
        stream=sys.stderr,
    )


def _finish_health(args: argparse.Namespace, health: HealthEvaluator | None) -> None:
    if health is None:
        return
    firing = [state.rule.name for state in health.firing]
    print(
        f"health: {int(health.window.total_verdicts)} verdicts observed, "
        f"{len(firing)} alert(s) firing"
        + (f" ({', '.join(firing)})" if firing else ""),
        file=sys.stderr,
    )
    if args.health_out:
        health.dump(args.health_out)
        print(f"wrote health report {args.health_out}", file=sys.stderr)


def _make_runner(
    corpus,
    seeds: tuple[int, ...],
    args: argparse.Namespace,
    total: int,
    tracer: Tracer,
    metrics: Registry,
):
    try:
        cache = (
            ResultCache(args.cache_dir, metrics=metrics) if args.cache_dir else None
        )
    except CacheError as exc:
        raise SystemExit(f"error: {exc}") from exc
    progress = None
    if args.timings or tracer.enabled:
        # One code path for stderr progress lines and per-cell trace
        # events; silent (trace-only) when --timings was not given.
        progress = MatrixProgressSink(
            total,
            tracer=tracer,
            metrics=metrics,
            stream=sys.stderr if args.timings else None,
        )
    return make_matrix_runner(
        corpus, seeds=seeds, workers=args.workers, cache=cache,
        progress=progress, tracer=tracer, metrics=metrics,
    )


def _report_timings(runner, args: argparse.Namespace) -> None:
    if args.timings:
        print()
        print(timing_table(runner.timings))
        if runner.cache is not None:
            print(f"cache {args.cache_dir}: {runner.cache.stats}")


def cmd_matrix(args: argparse.Namespace) -> int:
    """Run a slice of the evaluation grid and print Figs 3/5, Table 2."""
    tracer, metrics = _make_obs(args)
    with tracer.span("cli.corpus"):
        corpus = _build_corpus(args)
    configs = [
        DetectorConfig(classifier, ensemble, n_hpcs)
        for classifier in (args.classifiers or CLASSIFIER_NAMES)
        for n_hpcs in args.budgets
        for ensemble in args.ensembles
    ]
    runner = _make_runner(
        corpus, tuple(args.split_seeds), args, len(configs), tracer, metrics
    )
    with tracer.span("cli.grid", cells=len(configs)):
        records = runner.evaluate_grid(configs)
    with tracer.span("cli.render"):
        print(figure3_table(records))
        print()
        print(table2_table(records))
        print()
        print(figure5_table(records))
        print()
        print(improvement_summary(records))
        _report_timings(runner, args)
    _dump_obs(args, tracer, metrics)
    return 0


def cmd_hardware(args: argparse.Namespace) -> int:
    """Reproduce Table 3: hardware latency/area estimates."""
    tracer, metrics = _make_obs(args)
    with tracer.span("cli.corpus"):
        corpus = _build_corpus(args)
    configs = table3_grid()
    runner = _make_runner(
        corpus, (args.split_seed,), args, len(configs), tracer, metrics
    )
    with tracer.span("cli.grid", cells=len(configs)):
        records = runner.hardware_grid(configs)
    with tracer.span("cli.render"):
        print(table3_table(records))
        _report_timings(runner, args)
    _dump_obs(args, tracer, metrics)
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    """Deploy a detector and stream fresh executions through it."""
    tracer, metrics = _make_obs(args)
    with tracer.span("cli.corpus"):
        corpus = _build_corpus(args)
    split = app_level_split(corpus, 0.7, seed=args.split_seed)
    detector = _load_or_fit_detector(args, tracer, split)
    health = _make_health(args, tracer, metrics)
    quality = _make_quality(args, tracer, metrics)
    monitor = RuntimeMonitor(
        detector,
        n_counters=args.counters,
        vote_threshold=args.vote_threshold,
        tracer=tracer,
        metrics=metrics,
        health=health,
        quality=quality,
    )
    pool = ContainerPool(seed=args.seed + 99)
    import numpy as np

    rng = np.random.default_rng(args.seed + 100)
    correct = 0
    total = 0
    with tracer.span("cli.monitor"):
        for family in (BENIGN_FAMILIES + MALWARE_FAMILIES)[:: args.stride]:
            app = family.instantiate(rng)[0]
            truth = family.label == MALWARE
            verdict = monitor.monitor(app, args.windows, pool, is_malware=truth)
            total += 1
            correct += verdict.is_malware == truth
            print(
                f"{app.name:28s} truth={'malware' if truth else 'benign ':7s} "
                f"verdict={'malware' if verdict.is_malware else 'benign ':7s} "
                f"flagged={verdict.malware_fraction:.0%}"
            )
    print(f"\napplication-level accuracy: {correct}/{total}")
    _finish_health(args, health)
    _finish_quality(args, quality)
    _dump_obs(args, tracer, metrics)
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Monitor a fleet of fresh executions, optionally under faults."""
    import numpy as np

    tracer, metrics = _make_obs(args)
    with tracer.span("cli.corpus"):
        corpus = _build_corpus(args)
    split = app_level_split(corpus, 0.7, seed=args.split_seed)
    detector = _load_or_fit_detector(args, tracer, split)
    faults = (
        FaultPlan(seed=args.seed + 123, **args.faults)
        if args.faults is not None
        else None
    )
    health = _make_health(args, tracer, metrics)
    quality = _make_quality(args, tracer, metrics)
    fleet = FleetMonitor(
        detector,
        workers=args.fleet_workers,
        n_counters=args.counters,
        vote_threshold=args.vote_threshold,
        faults=faults,
        retry=RetryPolicy(max_attempts=args.retries),
        pool_seed=args.seed + 99,
        tracer=tracer,
        metrics=metrics,
        health=health,
        quality=quality,
    )
    rng = np.random.default_rng(args.seed + 100)
    jobs = []
    for family in (BENIGN_FAMILIES + MALWARE_FAMILIES)[:: args.stride]:
        app = family.instantiate(rng)[0]
        jobs.append(FleetJob(app, args.windows, family.label == MALWARE))
    verdicts = fleet.monitor_fleet(jobs)
    print(
        f"{'application':28s} {'truth':7s} {'verdict':7s} "
        f"{'flagged':>7s} {'conf':>5s} {'lost':>4s} degraded"
    )
    correct = 0
    for job, verdict in zip(jobs, verdicts):
        truth = job.is_malware
        correct += verdict.is_malware == truth
        print(
            f"{verdict.app_name:28s} {'malware' if truth else 'benign':7s} "
            f"{'malware' if verdict.is_malware else 'benign':7s} "
            f"{verdict.malware_fraction:>7.0%} {verdict.confidence:>5.2f} "
            f"{verdict.n_windows_lost:>4d} {'yes' if verdict.degraded else 'no'}"
        )
    degraded = sum(v.degraded for v in verdicts)
    lost = sum(v.n_windows_lost for v in verdicts)
    mean_conf = sum(v.confidence for v in verdicts) / len(verdicts) if verdicts else 0.0
    print(
        f"\nfleet accuracy: {correct}/{len(verdicts)}  "
        f"degraded: {degraded}  windows lost: {lost}  "
        f"mean confidence: {mean_conf:.2f}"
    )
    _finish_health(args, health)
    _finish_quality(args, quality)
    _dump_obs(args, tracer, metrics)
    _archive_run(
        args, tracer, metrics,
        {
            "command": "fleet",
            "seed": args.seed,
            "windows": args.windows,
            "split_seed": args.split_seed,
            # the *deployed* detector's config — with --model-id the
            # classifier/ensemble/hpcs flags are unused, so recording
            # them would misdescribe the archived run
            "classifier": detector.config.classifier,
            "ensemble": detector.config.ensemble,
            "hpcs": detector.config.n_hpcs,
            "counters": args.counters,
            "vote_threshold": args.vote_threshold,
            "stride": args.stride,
            "workers": args.fleet_workers,
            "retries": args.retries,
            "faulted": args.faults is not None,
        },
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Stream executions through the long-running detection service."""
    import numpy as np

    tracer, metrics = _make_obs(args)
    with tracer.span("cli.corpus"):
        corpus = _build_corpus(args)
    split = app_level_split(corpus, 0.7, seed=args.split_seed)
    detector = _load_or_fit_detector(args, tracer, split)
    faults = (
        ServiceFaultPlan(seed=args.seed + 321, **args.faults)
        if args.faults is not None
        else None
    )
    health = _make_health(args, tracer, metrics)
    quality = _make_quality(args, tracer, metrics)
    service = DetectionService(
        detector,
        producers=args.producers,
        workers=args.serve_workers,
        queue_depth=args.queue_depth,
        n_counters=args.counters,
        vote_threshold=args.vote_threshold,
        host_vote_windows=args.host_vote_windows,
        faults=faults,
        pool_seed=args.seed + 99,
        tracer=tracer,
        metrics=metrics,
        health=health,
        quality=quality,
    )
    rng = np.random.default_rng(args.seed + 100)
    families = BENIGN_FAMILIES + MALWARE_FAMILIES
    if args.drift:
        # Shift the whole live workload toward the branchy cover profile
        # — the detector stays frozen on its training distribution, so
        # this is the injected-drift scenario the quality tracker exists
        # to catch (and the quality-smoke CI job asserts on).
        from repro.workloads import evasive_families

        families = evasive_families(families, args.drift)
    # Same host appears once per round, exercising the per-host sliding
    # vote window across executions.
    hosts = []
    for family in families[:: args.stride]:
        app = family.instantiate(rng)[0]
        hosts.append((app, family.label == MALWARE))
    jobs = [
        ServeJob(app, args.windows, truth)
        for _ in range(args.rounds)
        for app, truth in hosts
    ]
    report = service.run(jobs)
    if len(report.verdicts) != len(jobs):  # pragma: no cover - invariant
        raise SystemExit(
            f"verdict totality violated: {len(report.verdicts)} verdicts "
            f"for {len(jobs)} executions"
        )
    print(f"{'application':28s} {'truth':7s} {'verdict':7s} {'flagged':>7s}")
    correct = 0
    for job, verdict in zip(jobs, report.verdicts):
        correct += verdict.is_malware == job.is_malware
        print(
            f"{verdict.app_name:28s} "
            f"{'malware' if job.is_malware else 'benign':7s} "
            f"{'malware' if verdict.is_malware else 'benign':7s} "
            f"{verdict.malware_fraction:>7.0%}"
        )
    for alert in report.alerts:
        print(
            f"ALERT host={alert['host']} flagged={alert['fraction']:.0%} "
            f"over last {alert['windows']} windows"
        )
    print(
        f"\nserve accuracy: {correct}/{len(report.verdicts)}  "
        f"windows: {report.n_windows}  "
        f"throughput: {report.windows_per_second:.0f} windows/s\n"
        f"worker crashes: {report.worker_crashes}  "
        f"recovered windows: {report.recovered_windows}  "
        f"backpressure waits: {report.backpressure_waits}  "
        f"host alerts: {len(report.alerts)}"
    )
    _finish_health(args, health)
    _finish_quality(args, quality)
    _dump_obs(args, tracer, metrics)
    _archive_run(
        args, tracer, metrics,
        serve_run_meta(
            seed=args.seed,
            windows=args.windows,
            split_seed=args.split_seed,
            classifier=detector.config.classifier,
            ensemble=detector.config.ensemble,
            hpcs=detector.config.n_hpcs,
            counters=args.counters,
            vote_threshold=args.vote_threshold,
            stride=args.stride,
            rounds=args.rounds,
            host_vote_windows=args.host_vote_windows,
            producers=args.producers,
            workers=args.serve_workers,
            queue_depth=args.queue_depth,
        ),
    )
    return 0


def cmd_verilog(args: argparse.Namespace) -> int:
    """Train a detector and emit its RTL implementation."""
    from repro.hardware.verilog import generate

    corpus = _build_corpus(args)
    split = app_level_split(corpus, 0.7, seed=args.split_seed)
    config = DetectorConfig(args.classifier, "general", args.hpcs)
    detector = HMDDetector(config).fit(split.train)
    text = generate(detector.model, name=args.module)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    print(f"// monitored events: {', '.join(detector.monitored_events)}")
    return 0


def cmd_crossval(args: argparse.Namespace) -> int:
    """Cross-validated detector scores with fold error bars."""
    from repro.analysis.crossval import cross_validated_record, stability_table

    tracer, metrics = _make_obs(args)
    c_folds = metrics.counter(
        "crossval_records_total", "cross-validated records computed"
    )
    with tracer.span("cli.corpus"):
        corpus = _build_corpus(args)
    records = []
    with tracer.span("cli.crossval", folds=args.folds):
        for classifier in args.classifiers or ("REPTree", "JRip", "OneR"):
            config = DetectorConfig(classifier, args.ensemble, args.hpcs)
            with tracer.span("crossval.record", config=config.name):
                records.append(
                    cross_validated_record(
                        corpus, config, n_folds=args.folds, seed=args.split_seed
                    )
                )
            c_folds.inc()
    print(stability_table(records))
    _dump_obs(args, tracer, metrics)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Summarize trace/metrics files written by --trace-out/--metrics-out.

    ``--trace`` and ``--metrics`` both accept several files (e.g. one
    per worker, or a rotated series).  Traces are concatenated and
    sorted by event timestamp, metrics are merged with the exact
    histogram merge, so either way the tables read as one run.
    """
    if not args.trace and not args.metrics:
        raise SystemExit("error: stats needs --trace and/or --metrics")
    sections = []
    try:
        if args.trace:
            events = [
                event for path in args.trace for event in load_trace(path)
            ]
            events.sort(key=lambda event: float(event.get("ts", 0.0)))
            sections.append(span_table(events))
        if args.metrics:
            snapshot = merge_snapshots(load_metrics(path) for path in args.metrics)
            sections.append(metrics_table(snapshot))
    except (OSError, ValueError, MetricsError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    print("\n\n".join(sections))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Fleet-wide roll-ups over the archive; optionally ingest first.

    ``--ingest`` rotates ``--trace-out`` JSONL files (with optional
    paired ``--ingest-metrics`` snapshots, same order) into the archive
    before querying — re-ingesting an already-archived run is a no-op.
    ``--json`` emits the machine-readable report for CI gates.
    """
    import json as json_mod

    try:
        archive = Archive(args.archive_dir)
        for i, trace_path in enumerate(args.ingest or []):
            metrics_path = (
                args.ingest_metrics[i]
                if args.ingest_metrics and i < len(args.ingest_metrics)
                else None
            )
            result = archive.ingest_trace(
                trace_path, metrics_path, run_id=trace_path
            )
            print(
                f"ingested {trace_path} -> segment {result.segment_id[:12]} "
                f"({result.n_verdicts} verdicts)"
                + ("" if result.ingested else " [already archived]"),
                file=sys.stderr,
            )
        hosts = tuple(args.host) if args.host else None
        sources = tuple(args.source) if args.source else None
        if args.json:
            data = fleet_report_data(
                archive, hosts=hosts, sources=sources,
                since=args.since, until=args.until, bucket_s=args.bucket,
            )
            print(json_mod.dumps(data, indent=1, sort_keys=True))
        else:
            print(
                fleet_report(
                    archive, hosts=hosts, sources=sources,
                    since=args.since, until=args.until, bucket_s=args.bucket,
                )
            )
    except (OSError, ValueError, ArchiveError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Re-drive the detection service from an archived segment.

    At ``--repeat 1`` this is the archive's end-to-end integrity check
    (every replayed verdict is asserted bit-identical to the archived
    record); higher repeats answer capacity questions — how many times
    the archived traffic the chosen geometry sustains per unit time.
    """
    try:
        archive = Archive(args.archive_dir)
        result = replay_segment(
            archive,
            segment_id=args.segment,
            repeat=args.repeat,
            producers=args.producers,
            workers=args.serve_workers,
            queue_depth=args.queue_depth,
        )
    except (OSError, ValueError, ArchiveError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    print(
        f"replayed segment {result.segment_id[:12]} x{result.repeat}: "
        f"{result.executions} executions, {result.n_windows} windows, "
        f"{result.matched} verdicts matched bit-identical\n"
        f"geometry: {result.producers} producers x {result.workers} workers "
        f"(queue depth {result.queue_depth})\n"
        f"archived wall: {result.archived_seconds:.3f}s  "
        f"replay wall: {result.replay_seconds:.3f}s  "
        f"speed: {result.speedup:.2f}x archived traffic "
        f"({result.windows_per_second:.0f} windows/s)"
    )
    return 0


def _quality_transition(event: dict) -> tuple[int, int]:
    """(transition, critical-firing) tally for one trace event.

    ``quality.alert`` events are emitted by the in-process
    :class:`~repro.obs.quality.QualityTracker`; ``watch`` gates on the
    critical firings exactly like it gates on its own health rules.
    """
    if event.get("type") != "event" or event.get("name") != "quality.alert":
        return 0, 0
    attrs = event.get("attrs", {})
    critical = (
        attrs.get("severity") == "critical" and attrs.get("state") == "firing"
    )
    return 1, int(critical)


def cmd_watch(args: argparse.Namespace) -> int:
    """Follow a run's trace/metrics pair and evaluate health live.

    With ``--once`` the files are read in full, evaluated at their own
    event timestamps (so repeated invocations on the same artifacts
    report identical transitions), and the process exits 1 if any
    critical alert fired — the CI assertion mode.  Without it, the
    files are tailed and a refreshing health table renders every
    ``--interval`` seconds until Ctrl-C or ``--duration`` elapses.
    Critical drift alerts (``quality.alert`` events a ``--quality-ref``
    run recorded) trip the exit gate the same way health criticals do.
    """
    rules, slos = _health_rules_and_slos(args)
    evaluator = HealthEvaluator(
        rules=rules, slos=slos, window_s=args.health_window, stream=sys.stderr
    )
    q_transitions = q_critical = 0
    if args.once:
        try:
            events = load_trace(args.trace)
        except OSError as exc:
            raise SystemExit(f"error: {exc}") from exc
        last_ts = 0.0
        for event in events:
            evaluator.ingest(event)
            t, c = _quality_transition(event)
            q_transitions += t
            q_critical += c
            last_ts = max(last_ts, float(event.get("ts", 0.0)))
        if args.metrics:
            try:
                snapshot = load_metrics(args.metrics)
            except (OSError, ValueError) as exc:
                raise SystemExit(f"error: {exc}") from exc
            evaluator.absorb_metrics(snapshot, ts=last_ts)
            evaluator.tick(last_ts)
        print(health_table(evaluator.report()))
        if q_transitions:
            print(
                f"quality: {q_transitions} drift alert transition(s), "
                f"{q_critical} critical firing",
                file=sys.stderr,
            )
        if args.health_out:
            evaluator.dump(args.health_out)
            print(f"wrote health report {args.health_out}", file=sys.stderr)
        return 1 if evaluator.critical_fired() or q_critical else 0
    trace_follower = TraceFollower(args.trace)
    metrics_follower = MetricsFollower(args.metrics) if args.metrics else None
    deadline = time.monotonic() + args.duration if args.duration else None
    try:
        while True:
            for event in trace_follower.poll():
                evaluator.ingest(event)
                t, c = _quality_transition(event)
                q_transitions += t
                q_critical += c
            if metrics_follower is not None:
                delta = metrics_follower.poll()
                if delta is not None:
                    evaluator.absorb_metrics(delta)
            evaluator.tick()
            table = health_table(evaluator.report())
            # Clear-and-home on a real terminal; plain append otherwise
            # (pipes and tests get one table per refresh).
            prefix = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""
            print(prefix + table, flush=True)
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    if q_transitions:
        print(
            f"quality: {q_transitions} drift alert transition(s), "
            f"{q_critical} critical firing",
            file=sys.stderr,
        )
    if args.health_out:
        evaluator.dump(args.health_out)
        print(f"wrote health report {args.health_out}", file=sys.stderr)
    return 1 if evaluator.critical_fired() or q_critical else 0


def cmd_evasion(args: argparse.Namespace) -> int:
    """Malware recall against evasion-strength-swept variants."""
    from repro.workloads import evasive_families, payload_throughput
    from repro.workloads.corpus import CorpusBuilder

    corpus = _build_corpus(args)
    split = app_level_split(corpus, 0.7, seed=args.split_seed)
    config = DetectorConfig(args.classifier, args.ensemble, args.hpcs)
    detector = HMDDetector(config).fit(split.train)
    print(f"detector: {detector.name}")
    print(f"{'strength':>9s} {'recall':>7s} {'payload kept':>13s}")
    for strength in args.strengths:
        families = BENIGN_FAMILIES + evasive_families(MALWARE_FAMILIES, strength)
        evaded = CorpusBuilder(
            families, seed=args.seed + 50, windows_per_app=max(args.windows // 2, 4)
        ).build()
        flags = detector.predict(evaded)
        recall = float(flags[evaded.labels == 1].mean())
        print(f"{strength:>9.0%} {recall:>7.2f} {payload_throughput(strength):>12.0%}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro-hmd argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro-hmd",
        description="Hardware-based malware detection with ensemble learning "
        "(DAC 2018 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("corpus", help="build the synthetic corpus")
    _add_corpus_args(p)
    p.add_argument("--csv", help="write corpus to this CSV path")
    p.add_argument("--arff", help="write corpus to this WEKA ARFF path")
    p.set_defaults(func=cmd_corpus)

    p = sub.add_parser("rank", help="reproduce Table 1 (feature ranking)")
    _add_corpus_args(p)
    p.add_argument("--split-seed", type=int, default=7)
    p.add_argument("--method", default="correlation",
                   choices=("correlation", "information_gain"))
    p.add_argument("--top", type=int, default=16)
    p.set_defaults(func=cmd_rank)

    p = sub.add_parser("evaluate", help="train and evaluate one detector")
    _add_corpus_args(p)
    p.add_argument("--split-seed", type=int, default=7)
    p.add_argument("--classifier", default="REPTree", choices=CLASSIFIER_NAMES)
    p.add_argument("--ensemble", default="general", choices=ENSEMBLE_MODES)
    p.add_argument("--hpcs", type=int, default=4)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser(
        "train", help="train a detector and save it to the model registry"
    )
    _add_corpus_args(p)
    p.add_argument("--split-seed", type=int, default=7)
    p.add_argument("--classifier", default="REPTree", choices=CLASSIFIER_NAMES)
    p.add_argument("--ensemble", default="boosted", choices=ENSEMBLE_MODES)
    p.add_argument("--hpcs", type=int, default=4)
    p.add_argument("--registry-dir", required=True, metavar="DIR",
                   help="model registry directory (created if missing)")
    p.add_argument("--tag", action="append", metavar="NAME",
                   help="tag the saved model (repeatable); tags resolve "
                   "in --model-id lookups")
    _add_obs_args(p)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("models", help="list models saved in a registry")
    p.add_argument("--registry-dir", required=True, metavar="DIR",
                   help="model registry directory")
    p.set_defaults(func=cmd_models)

    p = sub.add_parser(
        "profile", help="capture a detector's drift reference profile"
    )
    _add_corpus_args(p)
    p.add_argument("--split-seed", type=int, default=7)
    p.add_argument("--classifier", default="REPTree", choices=CLASSIFIER_NAMES)
    p.add_argument("--ensemble", default="boosted", choices=ENSEMBLE_MODES)
    p.add_argument("--hpcs", type=int, default=4)
    p.add_argument("--vote-threshold", type=_vote_threshold, default=0.5,
                   help="vote threshold the deployed monitors will use")
    p.add_argument("--bins", type=_positive_int, default=12,
                   help="histogram bins per feature (default 12)")
    p.add_argument("--out", required=True, metavar="PROFILE.json",
                   help="write the reference profile here (feed to "
                   "monitor/fleet/serve --quality-ref)")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("matrix", help="run a slice of the evaluation grid")
    _add_corpus_args(p)
    p.add_argument("--split-seeds", type=int, nargs="+", default=[7])
    p.add_argument("--classifiers", nargs="*", choices=CLASSIFIER_NAMES)
    p.add_argument("--budgets", type=int, nargs="+", default=[16, 8, 4, 2])
    p.add_argument("--ensembles", nargs="+", default=list(ENSEMBLE_MODES),
                   choices=ENSEMBLE_MODES)
    _add_runner_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_matrix)

    p = sub.add_parser("hardware", help="reproduce Table 3 (hardware costs)")
    _add_corpus_args(p)
    p.add_argument("--split-seed", type=int, default=7)
    _add_runner_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_hardware)

    p = sub.add_parser("monitor", help="run-time detection demo")
    _add_corpus_args(p)
    p.add_argument("--split-seed", type=int, default=7)
    p.add_argument("--classifier", default="REPTree", choices=CLASSIFIER_NAMES)
    p.add_argument("--ensemble", default="boosted", choices=ENSEMBLE_MODES)
    p.add_argument("--hpcs", type=int, default=4)
    _add_model_args(p)
    p.add_argument("--counters", type=int, default=4)
    p.add_argument("--vote-threshold", type=_vote_threshold, default=0.5,
                   help="flagged-window fraction that raises the alarm, in (0, 1]")
    p.add_argument("--stride", type=int, default=1,
                   help="monitor every Nth family only")
    _add_obs_args(p)
    _add_health_args(p)
    _add_quality_args(p)
    p.set_defaults(func=cmd_monitor)

    p = sub.add_parser(
        "fleet", help="fault-tolerant fleet monitoring with fault injection"
    )
    _add_corpus_args(p)
    p.add_argument("--split-seed", type=int, default=7)
    p.add_argument("--classifier", default="REPTree", choices=CLASSIFIER_NAMES)
    p.add_argument("--ensemble", default="boosted", choices=ENSEMBLE_MODES)
    p.add_argument("--hpcs", type=int, default=4)
    _add_model_args(p)
    p.add_argument("--counters", type=int, default=4)
    p.add_argument("--vote-threshold", type=_vote_threshold, default=0.5,
                   help="flagged-window quorum over surviving windows, in (0, 1]")
    p.add_argument("--stride", type=int, default=1,
                   help="monitor every Nth family only")
    p.add_argument("--fleet-workers", type=_positive_int, default=4,
                   help="monitoring threads (1 = serial)")
    p.add_argument("--faults", type=_fault_rates, default=None, metavar="SPEC",
                   help="inject faults, e.g. crash=0.2,glitch=0.1,drop=0.05,"
                   "permanent=0.01 (rates in [0, 1]; omit for a pristine run)")
    p.add_argument("--retries", type=_positive_int, default=3, metavar="N",
                   help="max attempts per application on transient faults")
    _add_obs_args(p)
    _add_health_args(p)
    _add_quality_args(p)
    _add_archive_args(p)
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser(
        "serve", help="streaming detection service over bounded queues"
    )
    _add_corpus_args(p)
    p.add_argument("--split-seed", type=int, default=7)
    p.add_argument("--classifier", default="REPTree", choices=CLASSIFIER_NAMES)
    p.add_argument("--ensemble", default="boosted", choices=ENSEMBLE_MODES)
    p.add_argument("--hpcs", type=int, default=4)
    _add_model_args(p)
    p.add_argument("--counters", type=int, default=4)
    p.add_argument("--vote-threshold", type=_vote_threshold, default=0.5,
                   help="flagged-window quorum for verdicts and host alerts")
    p.add_argument("--stride", type=int, default=1,
                   help="stream every Nth family only")
    p.add_argument("--rounds", type=_positive_int, default=1,
                   help="times each host executes (exercises the per-host "
                   "sliding vote window)")
    p.add_argument("--producers", type=_positive_int, default=2,
                   help="concurrent execution/publish threads")
    p.add_argument("--serve-workers", type=_positive_int, default=2,
                   metavar="N", dest="serve_workers",
                   help="sharded detector workers (and shard channels)")
    p.add_argument("--queue-depth", type=_positive_int, default=32,
                   help="bound of each shard channel (backpressure knob)")
    p.add_argument("--host-vote-windows", type=_positive_int, default=16,
                   help="length of each host's sliding vote window")
    p.add_argument("--faults", type=_service_faults, default=None,
                   metavar="SPEC",
                   help="inject worker crashes, e.g. crash=0.5 or "
                   "crash=0.5,max=3 (omit for a pristine run)")
    p.add_argument("--drift", type=float, default=0.0, metavar="STRENGTH",
                   help="shift the whole live workload toward a benign "
                   "cover profile at this evasion strength in [0, 1] "
                   "(injected model drift; 0 = stationary)")
    _add_obs_args(p)
    _add_health_args(p)
    _add_quality_args(p)
    _add_archive_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("verilog", help="emit RTL for a trained detector")
    _add_corpus_args(p)
    p.add_argument("--split-seed", type=int, default=7)
    p.add_argument("--classifier", default="REPTree",
                   choices=("OneR", "J48", "REPTree", "JRip", "SGD", "SMO"))
    p.add_argument("--hpcs", type=int, default=4)
    p.add_argument("--module", default=None, help="generated module name")
    p.add_argument("--output", default=None, help="write RTL to this file")
    p.set_defaults(func=cmd_verilog)

    p = sub.add_parser("crossval", help="cross-validated scores with error bars")
    _add_corpus_args(p)
    p.add_argument("--split-seed", type=int, default=0)
    p.add_argument("--classifiers", nargs="*", choices=CLASSIFIER_NAMES)
    p.add_argument("--ensemble", default="general", choices=ENSEMBLE_MODES)
    p.add_argument("--hpcs", type=int, default=4)
    p.add_argument("--folds", type=int, default=4)
    _add_obs_args(p)
    p.set_defaults(func=cmd_crossval)

    p = sub.add_parser(
        "stats", help="summarize trace/metrics files from a previous run"
    )
    p.add_argument("--trace", metavar="PATH", nargs="+",
                   help="JSONL trace(s) written by --trace-out; several "
                   "(e.g. per-worker or rotated) files merge sorted by "
                   "event timestamp")
    p.add_argument("--metrics", metavar="PATH", nargs="+",
                   help="JSON metrics snapshot(s) written by --metrics-out; "
                   "several (e.g. per-worker) files merge exactly")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "report", help="fleet-wide roll-ups over the verdict archive"
    )
    p.add_argument("--archive-dir", required=True, metavar="DIR",
                   help="fleet archive directory (written by "
                   "serve/fleet --archive-dir or report --ingest)")
    p.add_argument("--ingest", metavar="TRACE", nargs="+",
                   help="rotate these --trace-out JSONL files into the "
                   "archive before reporting (idempotent)")
    p.add_argument("--ingest-metrics", metavar="SNAPSHOT", nargs="+",
                   help="--metrics-out snapshots paired with --ingest "
                   "traces, same order")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable report (CI gate)")
    p.add_argument("--host", action="append", metavar="NAME",
                   help="restrict to this host (repeatable)")
    p.add_argument("--source", action="append", metavar="NAME",
                   choices=("serve", "fleet", "monitor", "trace"),
                   help="restrict to segments from this source (repeatable)")
    p.add_argument("--since", type=float, default=None, metavar="UNIX_TS",
                   help="only events at or after this unix timestamp")
    p.add_argument("--until", type=float, default=None, metavar="UNIX_TS",
                   help="only events at or before this unix timestamp")
    p.add_argument("--bucket", type=float, default=86400.0, metavar="SECONDS",
                   help="trend bucket width (default 86400 = 1 day)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "replay", help="re-drive the detection service from archived traffic"
    )
    p.add_argument("--archive-dir", required=True, metavar="DIR",
                   help="fleet archive directory holding the segment")
    p.add_argument("--segment", default=None, metavar="ID",
                   help="segment id or unique prefix (default: the most "
                   "recently archived serve run)")
    p.add_argument("--repeat", type=_positive_int, default=1,
                   help="stream the archived workload this many times "
                   "back-to-back (capacity planning; default 1)")
    p.add_argument("--producers", type=_positive_int, default=None,
                   help="override the archived producer count")
    p.add_argument("--serve-workers", type=_positive_int, default=None,
                   metavar="N", dest="serve_workers",
                   help="override the archived worker count")
    p.add_argument("--queue-depth", type=_positive_int, default=None,
                   help="override the archived queue depth")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser(
        "watch", help="live health monitoring over a trace/metrics pair"
    )
    p.add_argument("--trace", required=True, metavar="PATH",
                   help="JSONL trace a run writes via --trace-out "
                   "(may still be growing)")
    p.add_argument("--metrics", metavar="PATH",
                   help="JSON metrics snapshot the same run writes via "
                   "--metrics-out (classify-latency source)")
    _add_health_args(p)
    p.add_argument("--once", action="store_true",
                   help="evaluate the files once and exit; exit code 1 when "
                   "any critical alert fired (CI mode)")
    p.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                   help="refresh period while following (default 2)")
    p.add_argument("--duration", type=float, default=None, metavar="SECONDS",
                   help="stop following after this long (default: until Ctrl-C)")
    p.set_defaults(func=cmd_watch)

    p = sub.add_parser("evasion", help="malware recall vs evasion strength")
    _add_corpus_args(p)
    p.add_argument("--split-seed", type=int, default=7)
    p.add_argument("--classifier", default="REPTree", choices=CLASSIFIER_NAMES)
    p.add_argument("--ensemble", default="general", choices=ENSEMBLE_MODES)
    p.add_argument("--hpcs", type=int, default=8)
    p.add_argument("--strengths", type=float, nargs="+",
                   default=[0.0, 0.3, 0.6])
    p.set_defaults(func=cmd_evasion)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
