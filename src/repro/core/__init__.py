"""Core HMD framework: detector configs, pipeline, run-time monitoring."""

from repro.core.config import (
    BAGGING,
    BOOSTED,
    CLASSIFIER_NAMES,
    ENSEMBLE_MODES,
    GENERAL,
    HPC_BUDGETS,
    DetectorConfig,
)
from repro.core.detector import HMDDetector
from repro.core.registry import build_base_classifier, build_model
from repro.core.policies import (
    AlarmPolicy,
    ConsecutiveWindows,
    EwmaAlarm,
    MajorityVote,
    PolicyDecision,
)
from repro.core.fleet import FleetJob, FleetMonitor, RetryPolicy
from repro.core.runtime import (
    DetectionVerdict,
    RuntimeMonitor,
    classify_trace,
    detection_latency_windows,
    validate_deployment,
)
from repro.core.specialized import SpecializedEnsembleDetector

__all__ = [
    "BAGGING",
    "BOOSTED",
    "CLASSIFIER_NAMES",
    "ENSEMBLE_MODES",
    "GENERAL",
    "HPC_BUDGETS",
    "AlarmPolicy",
    "ConsecutiveWindows",
    "DetectionVerdict",
    "DetectorConfig",
    "EwmaAlarm",
    "FleetJob",
    "FleetMonitor",
    "HMDDetector",
    "MajorityVote",
    "PolicyDecision",
    "RetryPolicy",
    "RuntimeMonitor",
    "SpecializedEnsembleDetector",
    "build_base_classifier",
    "build_model",
    "classify_trace",
    "detection_latency_windows",
    "validate_deployment",
]
