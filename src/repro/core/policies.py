"""Alarm policies: turning per-window flags into an application verdict.

The detector classifies every 10 ms window independently; deployment
needs a policy that decides *when to raise the alarm* for the running
application.  Different policies trade detection latency against false
alarms:

* :class:`MajorityVote` — flag when the running fraction of malicious
  windows crosses a threshold (the paper-style aggregate decision).
* :class:`ConsecutiveWindows` — flag after k malicious windows in a row;
  robust to isolated misclassifications, slower on bursty malware.
* :class:`EwmaAlarm` — exponentially weighted moving average of the
  flags; recent windows dominate, so dormant-then-active malware
  (backdoors) is caught when it wakes up.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PolicyDecision:
    """Outcome of applying an alarm policy to one execution's flags.

    Attributes:
        is_malware: whether the alarm fired at any point.
        latency_windows: first window index at which it fired, or None.
    """

    is_malware: bool
    latency_windows: int | None


class AlarmPolicy(abc.ABC):
    """Maps a 0/1 window-flag sequence to an alarm decision."""

    @abc.abstractmethod
    def decide(self, flags: np.ndarray) -> PolicyDecision:
        """Evaluate the policy over one execution's window flags."""

    @staticmethod
    def _check(flags: np.ndarray) -> np.ndarray:
        flags = np.asarray(flags)
        if flags.ndim != 1:
            raise ValueError("flags must be a 1-D 0/1 sequence")
        bad = set(np.unique(flags)) - {0, 1}
        if bad:
            raise ValueError(f"flags must be 0/1, found {sorted(bad)}")
        return flags.astype(float)


class MajorityVote(AlarmPolicy):
    """Alarm when the cumulative malicious-window fraction crosses a bar.

    Args:
        threshold: fraction of flagged windows that raises the alarm.
        min_windows: observation windows required before a decision is
            allowed (prevents a single early false positive from firing).
    """

    def __init__(self, threshold: float = 0.5, min_windows: int = 1) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if min_windows < 1:
            raise ValueError("min_windows must be positive")
        self.threshold = threshold
        self.min_windows = min_windows

    def decide(self, flags: np.ndarray) -> PolicyDecision:
        flags = self._check(flags)
        if flags.size == 0:
            return PolicyDecision(is_malware=False, latency_windows=None)
        fraction = np.cumsum(flags) / (np.arange(flags.size) + 1)
        eligible = np.arange(flags.size) >= self.min_windows - 1
        crossed = np.flatnonzero((fraction >= self.threshold) & eligible)
        if crossed.size == 0:
            return PolicyDecision(is_malware=False, latency_windows=None)
        return PolicyDecision(is_malware=True, latency_windows=int(crossed[0]))


class ConsecutiveWindows(AlarmPolicy):
    """Alarm after ``k`` consecutive malicious windows."""

    def __init__(self, k: int = 3) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k

    def decide(self, flags: np.ndarray) -> PolicyDecision:
        flags = self._check(flags)
        run = 0
        for i, flag in enumerate(flags):
            run = run + 1 if flag else 0
            if run >= self.k:
                return PolicyDecision(is_malware=True, latency_windows=i)
        return PolicyDecision(is_malware=False, latency_windows=None)


class EwmaAlarm(AlarmPolicy):
    """Alarm when an EWMA of the flags crosses a threshold.

    Args:
        alpha: smoothing weight of the newest window (higher = jumpier).
        threshold: EWMA level that raises the alarm.
    """

    def __init__(self, alpha: float = 0.2, threshold: float = 0.6) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.alpha = alpha
        self.threshold = threshold

    def decide(self, flags: np.ndarray) -> PolicyDecision:
        flags = self._check(flags)
        level = 0.0
        for i, flag in enumerate(flags):
            level = self.alpha * flag + (1.0 - self.alpha) * level
            if level >= self.threshold:
                return PolicyDecision(is_malware=True, latency_windows=i)
        return PolicyDecision(is_malware=False, latency_windows=None)
