"""Run-time streaming detection — the deployment the paper argues for.

A trained detector whose event budget fits the physical counter registers
can classify every 10 ms window of a *single* execution, with no re-runs
and no multiplexing error.  :class:`RuntimeMonitor` wires a fitted
:class:`~repro.core.detector.HMDDetector` to the counter register file
and streams verdicts; :class:`DetectionVerdict` aggregates per-window
decisions into an application-level alarm with a configurable vote.

The constructor enforces the paper's central practicality constraint: a
detector that monitors more events than there are registers cannot run
at run time and is rejected outright.

:class:`DetectionVerdict` also carries the degraded-evidence fields
(``confidence`` / ``n_windows_lost`` / ``degraded``) used by
:class:`~repro.core.fleet.FleetMonitor` when windows are lost to
injected faults; a pristine single-execution verdict always reports
full confidence with nothing lost, so serial and fleet verdicts stay
bit-comparable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.detector import HMDDetector
from repro.hpc.counters import CounterCapacityError, CounterRegisterFile, sample_trace
from repro.hpc.events import ALL_EVENTS
from repro.hpc.lxc import ContainerPool
from repro.hpc.microarch import DEFAULT_WINDOW_MS, ApplicationBehavior
from repro.obs import (
    FAST_LATENCY_BUCKETS,
    NULL_REGISTRY,
    NULL_TRACER,
    HealthEvaluator,
    QualityTracker,
    Registry,
    Tracer,
)


def validate_deployment(
    detector: HMDDetector, n_counters: int, vote_threshold: float
) -> None:
    """Reject deployments that cannot run at run time.

    Shared by :class:`RuntimeMonitor` and
    :class:`~repro.core.fleet.FleetMonitor` so both enforce the paper's
    register-capacity constraint identically.
    """
    if not detector.fitted_:
        raise RuntimeError("detector must be fitted before deployment")
    if not 0.0 < vote_threshold <= 1.0:
        raise ValueError("vote_threshold must be in (0, 1]")
    events = detector.monitored_events
    if len(events) > n_counters:
        raise CounterCapacityError(
            f"detector monitors {len(events)} events but the CPU has "
            f"{n_counters} counter registers; run-time detection needs "
            f"a detector with n_hpcs <= {n_counters}"
        )


def reduce_trace(
    detector: HMDDetector,
    n_counters: int,
    trace: np.ndarray,
    register_file: CounterRegisterFile | None = None,
) -> np.ndarray:
    """Sample a raw 44-event trace down to the detector's feature windows.

    Args:
        detector: fitted detector whose events are programmed.
        n_counters: register-file capacity when ``register_file`` is None.
        trace: array ``(n_windows, 44)`` of raw event activity.
        register_file: optional pre-built register file (e.g. a
            :class:`~repro.hpc.faults.GlitchyCounterRegisterFile`); a
            pristine one is built when omitted.

    Returns:
        Per-window counter readings ``(n_windows, n_monitored_events)``
        — the exact matrix the detector classifies, and the matrix the
        quality tracker profiles.
    """
    if register_file is None:
        register_file = CounterRegisterFile(n_counters)
    register_file.program(list(detector.monitored_events))
    return sample_trace(register_file, trace, ALL_EVENTS)


def classify_trace(
    detector: HMDDetector,
    n_counters: int,
    trace: np.ndarray,
    register_file: CounterRegisterFile | None = None,
) -> np.ndarray:
    """Sample a raw 44-event trace through a register file and classify it.

    Args:
        detector: fitted detector whose events are programmed.
        n_counters: register-file capacity when ``register_file`` is None.
        trace: array ``(n_windows, 44)`` of raw event activity.
        register_file: optional pre-built register file (e.g. a
            :class:`~repro.hpc.faults.GlitchyCounterRegisterFile`); a
            pristine one is built when omitted.

    Returns:
        Per-window 0/1 flags.  An empty trace classifies to an empty
        flag array without touching the registers.

    The whole trace goes through the classifier as one batch, so this
    hot path runs at the vectorized inference-kernel rates pinned by
    ``benchmarks/bench_inference.py`` (flat-array tree descent, compiled
    rule lists, stacked ensemble members) — never a per-window Python
    loop.
    """
    if trace.shape[0] == 0:
        return np.zeros(0, dtype=np.intp)
    readings = reduce_trace(detector, n_counters, trace, register_file)
    return detector.predict_windows(readings)


def observe_execution_quality(
    quality: QualityTracker,
    detector: HMDDetector,
    n_counters: int,
    trace: np.ndarray,
    verdict: "DetectionVerdict",
    vote_threshold: float,
    truth: bool,
    host: str,
    ts: float | None = None,
    readings: np.ndarray | None = None,
    scores: np.ndarray | None = None,
) -> None:
    """Feed one classified execution to a quality tracker.

    Shared by :class:`RuntimeMonitor`, the fleet, and the serving stack
    so all three score drift identically: the execution's reduced
    windows are scored with the detector's graded outputs and handed to
    the tracker along with the verdict's vote margin and the ground
    truth that calibrates the score bins.  Callers whose verdict path
    already reduced the trace through a *pristine* register file (the
    monitor, the serving workers) pass ``readings`` — and ``scores``
    when they graded via :meth:`~repro.core.detector.HMDDetector.
    grade_windows` — so nothing is computed twice; the fleet omits them
    because its readings may have gone through a glitchy register file,
    and glitched readings would make fault injection look like model
    drift.  The tracker only observes — the verdict is already final.
    """
    if readings is None:
        readings = reduce_trace(detector, n_counters, trace)
    if scores is None:
        scores = detector.decision_scores_windows(readings)
    quality.observe_execution(
        host,
        readings,
        scores,
        margin=verdict.malware_fraction - vote_threshold,
        truth=truth,
        ts=ts,
    )


def detection_latency_windows(
    window_flags: np.ndarray, vote_threshold: float
) -> int | None:
    """First window index at which the cumulative vote crosses the
    alarm threshold, or None if it never does.

    This is the run-time detection delay (in sampling windows) the
    paper's run-time argument is about.
    """
    flags = np.asarray(window_flags)
    if flags.size == 0:
        return None
    cumulative = np.cumsum(flags) / (np.arange(flags.size) + 1)
    crossed = np.flatnonzero(cumulative >= vote_threshold)
    return int(crossed[0]) if crossed.size else None


@dataclass(frozen=True, eq=False)
class DetectionVerdict:
    """Outcome of monitoring one application execution.

    Attributes:
        app_name: monitored application.
        window_flags: per-window 0/1 classifications, stored as a
            read-only copy (the verdict is evidence; callers must not
            be able to rewrite it, and the constructor's array may be
            reused by the caller).
        malware_fraction: fraction of surviving windows flagged malicious.
        is_malware: application-level alarm decision.
        confidence: fraction of requested windows that survived faults
            (1.0 for a pristine execution, 0.0 when every window was
            lost and the quorum is vacuous).
        n_windows_lost: windows requested but never classified (dropped
            by the sampler, lost to a container crash, or lost to a
            counter-read glitch).
        degraded: True when the verdict rests on partial evidence.
        n_windows: number of windows actually observed.
    """

    app_name: str
    window_flags: np.ndarray
    malware_fraction: float
    is_malware: bool
    confidence: float = 1.0
    n_windows_lost: int = 0
    degraded: bool = False

    def __post_init__(self) -> None:
        flags = np.array(self.window_flags, dtype=np.intp, copy=True)
        flags.setflags(write=False)
        object.__setattr__(self, "window_flags", flags)

    @classmethod
    def from_flags(
        cls,
        app_name: str,
        window_flags: np.ndarray,
        vote_threshold: float,
        n_windows_lost: int = 0,
        degraded: bool = False,
    ) -> "DetectionVerdict":
        """Build a verdict from per-window flags by quorum vote.

        The vote runs over the *surviving* windows only: the alarm is
        raised when the flagged fraction of observed windows reaches
        ``vote_threshold``, and ``confidence`` reports how much of the
        requested evidence that quorum actually saw.
        """
        if not 0.0 < vote_threshold <= 1.0:
            raise ValueError("vote_threshold must be in (0, 1]")
        if n_windows_lost < 0:
            raise ValueError("n_windows_lost cannot be negative")
        flags = np.asarray(window_flags)
        fraction = float(flags.mean()) if flags.size else 0.0
        requested = int(flags.size) + n_windows_lost
        confidence = float(flags.size) / requested if requested else 1.0
        return cls(
            app_name=app_name,
            window_flags=flags,
            malware_fraction=fraction,
            is_malware=fraction >= vote_threshold,
            confidence=confidence,
            n_windows_lost=n_windows_lost,
            degraded=degraded or n_windows_lost > 0,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DetectionVerdict):
            return NotImplemented
        return (
            self.app_name == other.app_name
            and np.array_equal(self.window_flags, other.window_flags)
            and self.malware_fraction == other.malware_fraction
            and self.is_malware == other.is_malware
            and self.confidence == other.confidence
            and self.n_windows_lost == other.n_windows_lost
            and self.degraded == other.degraded
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.app_name,
                self.window_flags.tobytes(),
                self.malware_fraction,
                self.is_malware,
                self.confidence,
                self.n_windows_lost,
                self.degraded,
            )
        )

    @property
    def n_windows(self) -> int:
        return int(self.window_flags.size)

    @property
    def n_windows_requested(self) -> int:
        return self.n_windows + self.n_windows_lost


class RuntimeMonitor:
    """Streams HPC windows of a live execution through a detector.

    Args:
        detector: fitted detector; its event budget must not exceed
            ``n_counters`` (otherwise run-time detection is impossible
            and :class:`~repro.hpc.counters.CounterCapacityError` raises).
        n_counters: physical counter registers of the deployment CPU.
        vote_threshold: fraction of flagged windows that raises the
            application-level alarm.
        window_ms: sampling interval.
        tracer: optional :class:`~repro.obs.Tracer`; every monitored
            execution records ``monitor.app`` / ``monitor.execute`` /
            ``monitor.classify`` spans and one ``monitor.verdict``
            stream event.
        metrics: optional :class:`~repro.obs.Registry` exposing the
            paper's run-time quantities: a per-window classification
            latency histogram (amortized over the vectorized batch) and
            a windows-to-alarm detection-latency gauge.
        health: optional :class:`~repro.obs.HealthEvaluator` fed each
            verdict and classify latency in-process (no file
            round-trip); it observes but never alters verdicts, and
            None costs one attribute check per execution.
        quality: optional :class:`~repro.obs.QualityTracker` fed each
            execution's reduced feature windows, graded scores, and
            vote margin for drift scoring against a reference profile;
            like ``health`` it observes but never alters verdicts, and
            None costs one attribute check per execution.
    """

    def __init__(
        self,
        detector: HMDDetector,
        n_counters: int = 4,
        vote_threshold: float = 0.5,
        window_ms: float = DEFAULT_WINDOW_MS,
        tracer: Tracer | None = None,
        metrics: Registry | None = None,
        health: HealthEvaluator | None = None,
        quality: QualityTracker | None = None,
    ) -> None:
        validate_deployment(detector, n_counters, vote_threshold)
        self.detector = detector
        self.n_counters = n_counters
        self.vote_threshold = vote_threshold
        self.window_ms = window_ms
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.health = health
        self.quality = quality
        self._h_classify = self.metrics.histogram(
            "monitor_window_classify_seconds",
            "per-window classification latency (amortized over the batch)",
            buckets=FAST_LATENCY_BUCKETS,
        )
        self._g_latency = self.metrics.gauge(
            "monitor_detection_latency_windows",
            "windows until the last monitored app crossed the alarm "
            "threshold (-1 = never crossed)",
        )
        self._c_windows = self.metrics.counter(
            "monitor_windows_total", "sampling windows classified"
        )
        self._c_apps = self.metrics.counter(
            "monitor_apps_total", "application executions monitored"
        )
        self._c_alarms = self.metrics.counter(
            "monitor_alarms_total", "application-level malware alarms raised"
        )

    def monitor(
        self,
        app: ApplicationBehavior,
        n_windows: int,
        pool: ContainerPool,
        is_malware: bool,
    ) -> DetectionVerdict:
        """Execute an application once and classify every window live.

        ``is_malware`` is the ground truth used only by the execution
        substrate (container contamination); the verdict comes from the
        detector alone.
        """
        with self.tracer.span("monitor.app", app=app.name, n_windows=n_windows):
            with self.tracer.span("monitor.execute", app=app.name):
                trace = pool.run(
                    app, n_windows, is_malware, window_ms=self.window_ms
                )
            with self.tracer.span("monitor.classify", app=app.name):
                start = time.perf_counter()
                readings = scores = None
                if self.quality is None or trace.shape[0] == 0:
                    flags = classify_trace(self.detector, self.n_counters, trace)
                else:
                    # One reduce + one probability pass serves both the
                    # verdict and the drift scorer; flags stay
                    # bit-identical to the quality=None classify path.
                    readings = reduce_trace(self.detector, self.n_counters, trace)
                    flags, scores = self.detector.grade_windows(readings)
                elapsed = time.perf_counter() - start
            verdict = DetectionVerdict.from_flags(
                app.name, flags, self.vote_threshold
            )
        n = int(flags.size)
        self._c_windows.inc(n)
        if n:
            # The detector classifies the batch vectorized; the honest
            # per-window figure is the amortized share of that batch.
            self._h_classify.observe_many(elapsed / n, n)
        latency = self.detection_latency_windows(verdict)
        self._g_latency.set(-1 if latency is None else latency)
        self._c_apps.inc()
        if verdict.is_malware:
            self._c_alarms.inc()
        self.tracer.event(
            "monitor.verdict",
            app=app.name,
            is_malware=verdict.is_malware,
            malware_fraction=verdict.malware_fraction,
            n_windows=verdict.n_windows,
            detection_latency_windows=latency,
        )
        if self.health is not None:
            if n:
                self.health.observe_classify(elapsed / n, n)
            self.health.observe_verdict(
                app.name,
                is_malware=verdict.is_malware,
                degraded=verdict.degraded,
                n_windows=verdict.n_windows,
                n_windows_lost=verdict.n_windows_lost,
            )
        if self.quality is not None:
            observe_execution_quality(
                self.quality, self.detector, self.n_counters, trace,
                verdict, self.vote_threshold, is_malware, app.name,
                readings=readings, scores=scores,
            )
        return verdict

    def detection_latency_windows(self, verdict: DetectionVerdict) -> int | None:
        """First window index at which the cumulative vote crosses the
        alarm threshold, or None if it never does.
        """
        return detection_latency_windows(verdict.window_flags, self.vote_threshold)
