"""Run-time streaming detection — the deployment the paper argues for.

A trained detector whose event budget fits the physical counter registers
can classify every 10 ms window of a *single* execution, with no re-runs
and no multiplexing error.  :class:`RuntimeMonitor` wires a fitted
:class:`~repro.core.detector.HMDDetector` to the counter register file
and streams verdicts; :class:`DetectionVerdict` aggregates per-window
decisions into an application-level alarm with a configurable vote.

The constructor enforces the paper's central practicality constraint: a
detector that monitors more events than there are registers cannot run
at run time and is rejected outright.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.detector import HMDDetector
from repro.hpc.counters import CounterCapacityError, CounterRegisterFile, sample_trace
from repro.hpc.events import ALL_EVENTS
from repro.hpc.lxc import ContainerPool
from repro.hpc.microarch import DEFAULT_WINDOW_MS, ApplicationBehavior
from repro.obs import (
    FAST_LATENCY_BUCKETS,
    NULL_REGISTRY,
    NULL_TRACER,
    Registry,
    Tracer,
)


@dataclass(frozen=True, eq=False)
class DetectionVerdict:
    """Outcome of monitoring one application execution.

    Attributes:
        app_name: monitored application.
        window_flags: per-window 0/1 classifications, stored as a
            read-only copy (the verdict is evidence; callers must not
            be able to rewrite it, and the constructor's array may be
            reused by the caller).
        malware_fraction: fraction of windows flagged malicious.
        is_malware: application-level alarm decision.
        n_windows: number of windows observed.
    """

    app_name: str
    window_flags: np.ndarray
    malware_fraction: float
    is_malware: bool

    def __post_init__(self) -> None:
        flags = np.array(self.window_flags, dtype=np.intp, copy=True)
        flags.setflags(write=False)
        object.__setattr__(self, "window_flags", flags)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DetectionVerdict):
            return NotImplemented
        return (
            self.app_name == other.app_name
            and np.array_equal(self.window_flags, other.window_flags)
            and self.malware_fraction == other.malware_fraction
            and self.is_malware == other.is_malware
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.app_name,
                self.window_flags.tobytes(),
                self.malware_fraction,
                self.is_malware,
            )
        )

    @property
    def n_windows(self) -> int:
        return int(self.window_flags.size)


class RuntimeMonitor:
    """Streams HPC windows of a live execution through a detector.

    Args:
        detector: fitted detector; its event budget must not exceed
            ``n_counters`` (otherwise run-time detection is impossible
            and :class:`~repro.hpc.counters.CounterCapacityError` raises).
        n_counters: physical counter registers of the deployment CPU.
        vote_threshold: fraction of flagged windows that raises the
            application-level alarm.
        window_ms: sampling interval.
        tracer: optional :class:`~repro.obs.Tracer`; every monitored
            execution records ``monitor.app`` / ``monitor.execute`` /
            ``monitor.classify`` spans and one ``monitor.verdict``
            stream event.
        metrics: optional :class:`~repro.obs.Registry` exposing the
            paper's run-time quantities: a per-window classification
            latency histogram (amortized over the vectorized batch) and
            a windows-to-alarm detection-latency gauge.
    """

    def __init__(
        self,
        detector: HMDDetector,
        n_counters: int = 4,
        vote_threshold: float = 0.5,
        window_ms: float = DEFAULT_WINDOW_MS,
        tracer: Tracer | None = None,
        metrics: Registry | None = None,
    ) -> None:
        if not detector.fitted_:
            raise RuntimeError("detector must be fitted before deployment")
        if not 0.0 < vote_threshold <= 1.0:
            raise ValueError("vote_threshold must be in (0, 1]")
        events = detector.monitored_events
        if len(events) > n_counters:
            raise CounterCapacityError(
                f"detector monitors {len(events)} events but the CPU has "
                f"{n_counters} counter registers; run-time detection needs "
                f"a detector with n_hpcs <= {n_counters}"
            )
        self.detector = detector
        self.n_counters = n_counters
        self.vote_threshold = vote_threshold
        self.window_ms = window_ms
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._h_classify = self.metrics.histogram(
            "monitor_window_classify_seconds",
            "per-window classification latency (amortized over the batch)",
            buckets=FAST_LATENCY_BUCKETS,
        )
        self._g_latency = self.metrics.gauge(
            "monitor_detection_latency_windows",
            "windows until the last monitored app crossed the alarm "
            "threshold (-1 = never crossed)",
        )
        self._c_windows = self.metrics.counter(
            "monitor_windows_total", "sampling windows classified"
        )
        self._c_apps = self.metrics.counter(
            "monitor_apps_total", "application executions monitored"
        )
        self._c_alarms = self.metrics.counter(
            "monitor_alarms_total", "application-level malware alarms raised"
        )

    def monitor(
        self,
        app: ApplicationBehavior,
        n_windows: int,
        pool: ContainerPool,
        is_malware: bool,
    ) -> DetectionVerdict:
        """Execute an application once and classify every window live.

        ``is_malware`` is the ground truth used only by the execution
        substrate (container contamination); the verdict comes from the
        detector alone.
        """
        with self.tracer.span("monitor.app", app=app.name, n_windows=n_windows):
            with self.tracer.span("monitor.execute", app=app.name):
                trace = pool.run(
                    app, n_windows, is_malware, window_ms=self.window_ms
                )
            register_file = CounterRegisterFile(self.n_counters)
            register_file.program(list(self.detector.monitored_events))
            with self.tracer.span("monitor.classify", app=app.name):
                start = time.perf_counter()
                readings = sample_trace(register_file, trace, ALL_EVENTS)
                flags = self.detector.predict_windows(readings)
                elapsed = time.perf_counter() - start
            fraction = float(flags.mean()) if flags.size else 0.0
            verdict = DetectionVerdict(
                app_name=app.name,
                window_flags=flags,
                malware_fraction=fraction,
                is_malware=fraction >= self.vote_threshold,
            )
        n = int(flags.size)
        self._c_windows.inc(n)
        if n:
            # The detector classifies the batch vectorized; the honest
            # per-window figure is the amortized share of that batch.
            per_window = elapsed / n
            for _ in range(n):
                self._h_classify.observe(per_window)
        latency = self.detection_latency_windows(verdict)
        self._g_latency.set(-1 if latency is None else latency)
        self._c_apps.inc()
        if verdict.is_malware:
            self._c_alarms.inc()
        self.tracer.event(
            "monitor.verdict",
            app=app.name,
            is_malware=verdict.is_malware,
            malware_fraction=verdict.malware_fraction,
            n_windows=verdict.n_windows,
            detection_latency_windows=latency,
        )
        return verdict

    def detection_latency_windows(self, verdict: DetectionVerdict) -> int | None:
        """First window index at which the cumulative vote crosses the
        alarm threshold, or None if it never does.

        This is the run-time detection delay (in sampling windows) the
        paper's run-time argument is about.
        """
        flags = verdict.window_flags
        if flags.size == 0:
            return None
        cumulative = np.cumsum(flags) / (np.arange(flags.size) + 1)
        crossed = np.flatnonzero(cumulative >= self.vote_threshold)
        return int(crossed[0]) if crossed.size else None
