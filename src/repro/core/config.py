"""Configuration of one hardware malware detector variant.

The paper's design space is the cross product
``{8 base classifiers} x {general, AdaBoost, Bagging} x {16, 8, 4, 2 HPCs}``.
A :class:`DetectorConfig` names one point of that space; the registry
(:mod:`repro.core.registry`) turns it into a trainable model.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Ensemble modes studied by the paper.
GENERAL, BOOSTED, BAGGING = "general", "boosted", "bagging"
ENSEMBLE_MODES: tuple[str, ...] = (GENERAL, BOOSTED, BAGGING)

#: HPC budgets reported in Figures 3/5 and Tables 2/3.
HPC_BUDGETS: tuple[int, ...] = (16, 8, 4, 2)

#: WEKA names of the eight base classifiers, in the paper's order.
CLASSIFIER_NAMES: tuple[str, ...] = (
    "BayesNet",
    "J48",
    "JRip",
    "MLP",
    "OneR",
    "REPTree",
    "SGD",
    "SMO",
)


@dataclass(frozen=True)
class DetectorConfig:
    """One detector variant: classifier x ensemble mode x HPC budget.

    Attributes:
        classifier: WEKA name of the base learner.
        ensemble: ``"general"``, ``"boosted"`` or ``"bagging"``.
        n_hpcs: feature budget (number of counters read per window).
        n_estimators: ensemble size (ignored for ``"general"``).
        feature_method: ranking method of the reduction stage.
        seed: seed forwarded to stochastic learners and resamplers.
    """

    classifier: str
    ensemble: str = GENERAL
    n_hpcs: int = 4
    n_estimators: int = 10
    feature_method: str = "correlation"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.classifier not in CLASSIFIER_NAMES:
            raise ValueError(
                f"unknown classifier {self.classifier!r}; "
                f"choose from {CLASSIFIER_NAMES}"
            )
        if self.ensemble not in ENSEMBLE_MODES:
            raise ValueError(
                f"unknown ensemble mode {self.ensemble!r}; choose from {ENSEMBLE_MODES}"
            )
        if self.n_hpcs < 1:
            raise ValueError("n_hpcs must be positive")
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be positive")

    @property
    def name(self) -> str:
        """Paper-style label, e.g. ``"4HPC-Boosted-JRip"``."""
        if self.ensemble == GENERAL:
            return f"{self.n_hpcs}HPC-{self.classifier}"
        suffix = "Boosted" if self.ensemble == BOOSTED else "Bagging"
        return f"{self.n_hpcs}HPC-{suffix}-{self.classifier}"

    def with_budget(self, n_hpcs: int) -> "DetectorConfig":
        """Same detector at a different HPC budget."""
        return DetectorConfig(
            classifier=self.classifier,
            ensemble=self.ensemble,
            n_hpcs=n_hpcs,
            n_estimators=self.n_estimators,
            feature_method=self.feature_method,
            seed=self.seed,
        )
