"""The hardware malware detector: feature reduction + classifier pipeline.

:class:`HMDDetector` is the paper's Figure 2 pipeline as one object:
fitted on a training corpus over the full 44-event space, it ranks events
(correlation attribute evaluation), keeps the top ``n_hpcs``, trains the
configured (general or ensemble) classifier on the reduced features, and
then classifies windows — either offline matrices or, via
:mod:`repro.core.runtime`, a live stream read from the counter registers.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.registry import build_model
from repro.features.reduction import FeatureReducer
from repro.ml.base import Classifier
from repro.ml.metrics import DetectorScores, evaluate_detector
from repro.workloads.dataset import Dataset


class HMDDetector:
    """End-to-end hardware-based malware detector.

    Args:
        config: which classifier/ensemble/HPC-budget variant to build.

    Attributes:
        reducer: fitted feature-reduction stage (after :meth:`fit`).
        model: fitted classifier (after :meth:`fit`).
    """

    def __init__(self, config: DetectorConfig) -> None:
        self.config = config
        self.reducer = FeatureReducer(
            n_features=config.n_hpcs, method=config.feature_method
        )
        self.model: Classifier = build_model(config)
        self.fitted_ = False

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def monitored_events(self) -> tuple[str, ...]:
        """The HPC events this detector reads every window."""
        if not self.fitted_:
            raise RuntimeError("detector is not fitted")
        return self.reducer.selected

    def fit(self, train: Dataset, ranking_dataset: Dataset | None = None) -> "HMDDetector":
        """Train the full pipeline on a (44-event or wider) corpus.

        Args:
            train: training samples; must contain at least ``n_hpcs`` events.
            ranking_dataset: optional dataset to rank features on instead
                of ``train`` (the evaluation matrix shares one ranking
                across all detectors, as the paper's Table 1 does).
        """
        self.reducer.fit(ranking_dataset if ranking_dataset is not None else train)
        reduced = self.reducer.transform(train)
        self.model.fit(reduced.features, reduced.labels)
        self.fitted_ = True
        return self

    def _reduce(self, dataset: Dataset) -> Dataset:
        if not self.fitted_:
            raise RuntimeError("detector is not fitted")
        return self.reducer.transform(dataset)

    def predict(self, dataset: Dataset) -> np.ndarray:
        """Hard window classifications (0 benign / 1 malware)."""
        return self.model.predict(self._reduce(dataset).features)

    def decision_scores(self, dataset: Dataset) -> np.ndarray:
        """Graded malware scores for ROC analysis."""
        return self.model.decision_scores(self._reduce(dataset).features)

    def predict_windows(self, windows: np.ndarray) -> np.ndarray:
        """Classify raw windows already projected onto monitored_events."""
        if not self.fitted_:
            raise RuntimeError("detector is not fitted")
        windows = np.asarray(windows, dtype=float)
        if windows.ndim == 1:
            windows = windows[None, :]
        if windows.shape[1] != self.config.n_hpcs:
            raise ValueError(
                f"expected {self.config.n_hpcs} event columns, got {windows.shape[1]}"
            )
        return self.model.predict(windows)

    def decision_scores_windows(self, windows: np.ndarray) -> np.ndarray:
        """Graded malware scores for raw windows on monitored_events.

        Same input contract as :meth:`predict_windows`; an empty batch
        scores to an empty array (some learners reject empty input).
        """
        if not self.fitted_:
            raise RuntimeError("detector is not fitted")
        windows = np.asarray(windows, dtype=float)
        if windows.ndim == 1:
            windows = windows[None, :]
        if windows.shape[1] != self.config.n_hpcs:
            raise ValueError(
                f"expected {self.config.n_hpcs} event columns, got {windows.shape[1]}"
            )
        if windows.shape[0] == 0:
            return np.zeros(0)
        return self.model.decision_scores(windows)

    def grade_windows(self, windows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Flags and graded scores from a single probability pass.

        Every classifier derives both ``predict`` (0.5-threshold) and
        ``decision_scores`` (malware-class probability) from one
        ``predict_proba`` call (:class:`repro.ml.base.Classifier`), so
        computing both from the same batch pass yields flags
        bit-identical to :meth:`predict_windows` at half the inference
        cost — this is what lets the quality tracker grade executions
        without doubling the verdict path's classification work.
        """
        if not self.fitted_:
            raise RuntimeError("detector is not fitted")
        windows = np.asarray(windows, dtype=float)
        if windows.ndim == 1:
            windows = windows[None, :]
        if windows.shape[1] != self.config.n_hpcs:
            raise ValueError(
                f"expected {self.config.n_hpcs} event columns, got {windows.shape[1]}"
            )
        if windows.shape[0] == 0:
            return np.zeros(0, dtype=np.intp), np.zeros(0)
        scores = self.model.predict_proba(windows)[:, 1]
        return (scores >= 0.5).astype(np.intp), scores

    def evaluate(self, test: Dataset) -> DetectorScores:
        """Accuracy/AUC/ACC×AUC on unknown applications (paper §4)."""
        reduced = self._reduce(test)
        predictions = self.model.predict(reduced.features)
        scores = self.model.decision_scores(reduced.features)
        return evaluate_detector(reduced.labels, predictions, scores)
