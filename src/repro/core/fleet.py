"""Fault-tolerant fleet monitoring: many applications, imperfect substrate.

:class:`~repro.core.runtime.RuntimeMonitor` watches one pristine
execution; a deployment watches a *fleet* of applications on machines
where containers crash, counter reads glitch, and sampling windows get
dropped.  :class:`FleetMonitor` runs many monitored executions over a
thread pool and keeps the verdict stream total under those faults:

* transient faults (container crash, counter-read glitch) are retried
  under a :class:`RetryPolicy` — bounded attempts, exponential backoff
  with deterministic jitter, and an optional per-application wall-clock
  timeout;
* permanent faults (host gone) and exhausted retries degrade instead of
  raising: the verdict is computed by quorum over whatever windows
  survived, with ``confidence`` / ``n_windows_lost`` / ``degraded``
  reporting exactly how much evidence backs it;
* every submitted application yields **exactly one** verdict, in
  submission order, no matter what the fault plan does.

Determinism contract: application ``i`` always executes in a private
:class:`~repro.hpc.lxc.ContainerPool` seeded ``pool_seed + i``, which is
the same container-seed sequence a serial monitor draws from one shared
pool — so with ``faults=None`` the fleet's verdicts are bit-identical
(:meth:`DetectionVerdict.__eq__`) to serial
:meth:`RuntimeMonitor.monitor` output regardless of worker count or
scheduling, and with a seeded :class:`~repro.hpc.faults.FaultPlan` the
whole degraded run replays exactly.

Per-application classification goes through
:func:`~repro.core.runtime.classify_trace`, i.e. each execution's
windows (and each retry's salvaged windows) hit the detector as one
batch through the vectorized inference kernels — the fleet's
windows/second ceiling is the per-detector rate pinned by
``benchmarks/bench_inference.py`` times the worker count.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.detector import HMDDetector
from repro.core.runtime import (
    DetectionVerdict,
    classify_trace,
    detection_latency_windows,
    observe_execution_quality,
    validate_deployment,
)
from repro.hpc.events import ALL_EVENTS
from repro.hpc.faults import (
    NO_FAULTS,
    ContainerCrashError,
    CounterReadGlitchError,
    FaultPlan,
    FaultyContainerPool,
    GlitchyCounterRegisterFile,
    PermanentHostError,
)
from repro.hpc.lxc import ContainerPool
from repro.hpc.microarch import DEFAULT_WINDOW_MS, ApplicationBehavior
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    FAST_LATENCY_BUCKETS,
    NULL_REGISTRY,
    NULL_TRACER,
    HealthEvaluator,
    QualityTracker,
    Registry,
    Tracer,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How the fleet reacts to transient faults.

    Args:
        max_attempts: total tries per application (1 = no retries).
        base_backoff_s: sleep before the first retry.
        backoff_multiplier: exponential growth factor per retry.
        max_backoff_s: backoff ceiling (applied before jitter).
        jitter: symmetric jitter fraction; the actual sleep is the
            exponential backoff scaled by a deterministic factor in
            ``[1 - jitter, 1 + jitter]`` drawn from the fault plan's
            seeded jitter stream (thundering-herd protection that still
            replays exactly).
        timeout_s: per-application wall-clock budget; when exceeded the
            fleet stops retrying and degrades immediately (None = no
            timeout).
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.01
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 1.0
    jitter: float = 0.1
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff times cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.timeout_s is not None and self.timeout_s < 0:
            raise ValueError("timeout_s cannot be negative")

    def backoff_s(self, retry_index: int, rng: np.random.Generator) -> float:
        """Sleep before the ``retry_index``-th retry (0-based).

        Always finite: the exponent is clamped in log space before the
        exponential is evaluated, so a high retry index hits
        ``max_backoff_s`` instead of overflowing ``multiplier ** index``
        to infinity (or an OverflowError) on its way to the cap.
        """
        if retry_index < 0:
            raise ValueError(f"retry_index must be >= 0, got {retry_index}")
        if self.base_backoff_s == 0.0 or self.max_backoff_s == 0.0:
            raw = 0.0
        elif self.backoff_multiplier == 1.0:
            raw = min(self.base_backoff_s, self.max_backoff_s)
        else:
            # Smallest exponent at which the exponential reaches the cap;
            # at or past it the answer is exactly max_backoff_s and the
            # power must not be evaluated.
            cap_exponent = math.log(self.max_backoff_s / self.base_backoff_s) / (
                math.log(self.backoff_multiplier)
            )
            if retry_index >= cap_exponent:
                raw = self.max_backoff_s
            else:
                raw = min(
                    self.base_backoff_s * self.backoff_multiplier**retry_index,
                    self.max_backoff_s,
                )
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return raw


@dataclass(frozen=True)
class FleetJob:
    """One application submitted to the fleet."""

    app: ApplicationBehavior
    n_windows: int
    is_malware: bool


class _TransientFault(Exception):
    """Internal: a retryable fault, carrying the surviving raw windows."""

    def __init__(self, kind: str, salvage_trace: np.ndarray) -> None:
        super().__init__(kind)
        self.kind = kind
        self.salvage_trace = salvage_trace


class FleetMonitor:
    """Monitors a fleet of applications concurrently and fault-tolerantly.

    Args:
        detector: fitted detector; the same register-capacity constraint
            as :class:`~repro.core.runtime.RuntimeMonitor` applies.
        workers: thread-pool width (1 = serial in the calling thread).
        n_counters: physical counter registers per monitored host.
        vote_threshold: quorum fraction over surviving windows.
        window_ms: sampling interval.
        faults: optional seeded fault plan; None means a pristine
            substrate (and bit-identity with the serial monitor).
        retry: transient-fault retry policy (default
            :class:`RetryPolicy`()).
        pool_seed: base seed of the per-application container pools.
        tracer: optional tracer; records a ``fleet.run`` span, one
            ``fleet.app`` span per application, and a ``fleet.verdict``
            event per verdict.
        metrics: optional registry; counts faults by kind, retries,
            degraded verdicts, dropped windows, and observes backoff
            sleeps into ``fleet_backoff_sleep_seconds``.
        health: optional :class:`~repro.obs.HealthEvaluator` fed every
            verdict (with its retry count and lost windows) and every
            classify latency in-process, from the worker threads; the
            evaluator observes but never alters verdicts, so fleet
            output stays bit-identical with health enabled.
        quality: optional :class:`~repro.obs.QualityTracker` fed every
            execution's reduced feature windows and graded scores for
            drift scoring (pristine re-reduction, so counter glitches
            never masquerade as drift); observes only, verdicts stay
            bit-identical, and None costs one attribute check.
        sleep: injection point for backoff sleeping (tests pass a
            recorder; production uses :func:`time.sleep`).
    """

    def __init__(
        self,
        detector: HMDDetector,
        workers: int = 4,
        n_counters: int = 4,
        vote_threshold: float = 0.5,
        window_ms: float = DEFAULT_WINDOW_MS,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        pool_seed: int = 0,
        tracer: Tracer | None = None,
        metrics: Registry | None = None,
        health: HealthEvaluator | None = None,
        quality: QualityTracker | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        validate_deployment(detector, n_counters, vote_threshold)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.detector = detector
        self.workers = workers
        self.n_counters = n_counters
        self.vote_threshold = vote_threshold
        self.window_ms = window_ms
        self.faults = faults
        self.retry = retry if retry is not None else RetryPolicy()
        self.pool_seed = pool_seed
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.health = health
        self.quality = quality
        self.sleep = sleep
        # Instrument updates happen from worker threads; Counter.inc is
        # a read-modify-write, so serialize them with one fleet lock.
        self._metrics_lock = threading.Lock()
        self._c_apps = self.metrics.counter(
            "fleet_apps_total", "applications monitored by the fleet"
        )
        self._c_windows = self.metrics.counter(
            "fleet_windows_total", "sampling windows classified by the fleet"
        )
        self._c_alarms = self.metrics.counter(
            "fleet_alarms_total", "application-level malware alarms raised"
        )
        self._c_retries = self.metrics.counter(
            "fleet_retries_total", "transient-fault retries performed"
        )
        self._c_degraded = self.metrics.counter(
            "fleet_degraded_verdicts_total", "verdicts emitted on partial evidence"
        )
        self._c_crashes = self.metrics.counter(
            "fleet_faults_crash_total", "container crashes observed"
        )
        self._c_glitches = self.metrics.counter(
            "fleet_faults_glitch_total", "counter-read glitches observed"
        )
        self._c_permanent = self.metrics.counter(
            "fleet_faults_permanent_total", "permanent host failures observed"
        )
        self._c_dropped = self.metrics.counter(
            "fleet_windows_dropped_total", "sampling windows lost to faults"
        )
        self._h_backoff = self.metrics.histogram(
            "fleet_backoff_sleep_seconds",
            "retry backoff sleeps (exponential, deterministic jitter)",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._h_classify = self.metrics.histogram(
            "fleet_window_classify_seconds",
            "per-window classification latency (amortized over each "
            "attempt's batch)",
            buckets=FAST_LATENCY_BUCKETS,
        )

    def _inc(self, counter, amount: float = 1.0) -> None:
        with self._metrics_lock:
            counter.inc(amount)

    # -- one application ------------------------------------------------
    def _attempt(
        self, job: FleetJob, pool: ContainerPool | FaultyContainerPool, attempt: int
    ) -> DetectionVerdict:
        """One monitoring attempt; raises on permanent/transient faults."""
        draw = (
            self.faults.draw(job.app.name, attempt, job.n_windows)
            if self.faults is not None
            else NO_FAULTS
        )
        try:
            if isinstance(pool, FaultyContainerPool):
                trace = pool.run(
                    job.app,
                    job.n_windows,
                    job.is_malware,
                    window_ms=self.window_ms,
                    attempt=attempt,
                )
            else:
                trace = pool.run(
                    job.app, job.n_windows, job.is_malware, window_ms=self.window_ms
                )
        except ContainerCrashError as exc:
            raise _TransientFault("crash", exc.partial_trace) from exc
        n_lost = 0
        if draw.dropped:
            keep = np.setdiff1d(np.arange(trace.shape[0]), np.array(draw.dropped))
            n_lost = trace.shape[0] - keep.size
            trace = trace[keep]
        register_file = None
        if self.faults is not None:
            register_file = GlitchyCounterRegisterFile(
                self.n_counters, glitch_read=draw.glitch_read
            )
        try:
            start = time.perf_counter()
            flags = classify_trace(
                self.detector, self.n_counters, trace, register_file=register_file
            )
            elapsed = time.perf_counter() - start
        except CounterReadGlitchError as exc:
            raise _TransientFault("glitch", trace[: exc.windows_read]) from exc
        if flags.size:
            per_window = elapsed / flags.size
            with self._metrics_lock:
                self._h_classify.observe_many(per_window, int(flags.size))
            if self.health is not None:
                self.health.observe_classify(per_window, int(flags.size))
        if n_lost:
            self._inc(self._c_dropped, n_lost)
        verdict = DetectionVerdict.from_flags(
            job.app.name, flags, self.vote_threshold, n_windows_lost=n_lost
        )
        if self.quality is not None:
            observe_execution_quality(
                self.quality, self.detector, self.n_counters, trace,
                verdict, self.vote_threshold, job.is_malware, job.app.name,
            )
        return verdict

    def _degrade(self, job: FleetJob, salvage_trace: np.ndarray) -> DetectionVerdict:
        """Quorum verdict over whatever raw windows survived the faults.

        The salvage is classified with a pristine register file — the
        degradation path must itself be fault-free, or the verdict
        stream would stop being total.
        """
        flags = classify_trace(self.detector, self.n_counters, salvage_trace)
        n_lost = job.n_windows - int(salvage_trace.shape[0])
        self._inc(self._c_dropped, n_lost)
        verdict = DetectionVerdict.from_flags(
            job.app.name,
            flags,
            self.vote_threshold,
            n_windows_lost=n_lost,
            degraded=True,
        )
        if self.quality is not None:
            observe_execution_quality(
                self.quality, self.detector, self.n_counters, salvage_trace,
                verdict, self.vote_threshold, job.is_malware, job.app.name,
            )
        return verdict

    def _monitor_app(self, job: FleetJob, index: int) -> DetectionVerdict:
        """Monitor one application to exactly one verdict, never raising."""
        pool: ContainerPool | FaultyContainerPool = ContainerPool(
            seed=self.pool_seed + index
        )
        if self.faults is not None:
            pool = FaultyContainerPool(pool, self.faults)
        no_evidence = np.zeros((0, len(ALL_EVENTS)))
        started = time.monotonic()
        attempts = 0
        with self.tracer.span(
            "fleet.app", app=job.app.name, index=index, n_windows=job.n_windows
        ) as span:
            salvage = no_evidence
            while True:
                attempts += 1
                try:
                    verdict = self._attempt(job, pool, attempts - 1)
                    break
                except PermanentHostError:
                    self._inc(self._c_permanent)
                    verdict = self._degrade(job, no_evidence)
                    break
                except _TransientFault as fault:
                    self._inc(
                        self._c_crashes if fault.kind == "crash" else self._c_glitches
                    )
                    salvage = fault.salvage_trace
                    timed_out = (
                        self.retry.timeout_s is not None
                        and time.monotonic() - started >= self.retry.timeout_s
                    )
                    if attempts >= self.retry.max_attempts or timed_out:
                        verdict = self._degrade(job, salvage)
                        break
                    jitter_rng = (
                        self.faults.jitter_rng(job.app.name, attempts)
                        if self.faults is not None
                        else np.random.default_rng(0)
                    )
                    backoff = self.retry.backoff_s(attempts - 1, jitter_rng)
                    with self._metrics_lock:
                        self._c_retries.inc()
                        self._h_backoff.observe(backoff)
                    self.sleep(backoff)
            span.set(attempts=attempts, degraded=verdict.degraded)
        with self._metrics_lock:
            self._c_apps.inc()
            self._c_windows.inc(verdict.n_windows)
            if verdict.is_malware:
                self._c_alarms.inc()
            if verdict.degraded:
                self._c_degraded.inc()
        self.tracer.event(
            "fleet.verdict",
            app=job.app.name,
            host=job.app.name,
            index=index,
            is_malware=verdict.is_malware,
            malware_fraction=verdict.malware_fraction,
            confidence=verdict.confidence,
            n_windows=verdict.n_windows,
            n_windows_lost=verdict.n_windows_lost,
            degraded=verdict.degraded,
            attempts=attempts,
            detection_latency_windows=detection_latency_windows(
                verdict.window_flags, self.vote_threshold
            ),
        )
        if self.health is not None:
            self.health.observe_verdict(
                job.app.name,
                is_malware=verdict.is_malware,
                degraded=verdict.degraded,
                n_windows=verdict.n_windows,
                n_windows_lost=verdict.n_windows_lost,
                retries=attempts - 1,
            )
        return verdict

    # -- the fleet ------------------------------------------------------
    def monitor_fleet(
        self, jobs: Iterable[FleetJob | Sequence]
    ) -> list[DetectionVerdict]:
        """Monitor every job; returns one verdict per job, in order.

        Jobs may be :class:`FleetJob` instances or ``(app, n_windows,
        is_malware)`` tuples.  The result list is always the same length
        as the input, faults or not.
        """
        normalized = [
            job if isinstance(job, FleetJob) else FleetJob(*job) for job in jobs
        ]
        with self.tracer.span(
            "fleet.run", n_apps=len(normalized), workers=self.workers
        ):
            if self.workers == 1 or len(normalized) <= 1:
                return [
                    self._monitor_app(job, i) for i, job in enumerate(normalized)
                ]
            with ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="fleet"
            ) as executor:
                futures = [
                    executor.submit(self._monitor_app, job, i)
                    for i, job in enumerate(normalized)
                ]
                return [future.result() for future in futures]
