"""Classifier registry: build trainable models from detector configs.

Centralizes the hyper-parameters of every base learner (WEKA defaults,
per paper §3.3) and wraps them in AdaBoost.M1 or Bagging when the config
asks for an ensemble detector.
"""

from __future__ import annotations

from repro.core.config import BAGGING, BOOSTED, DetectorConfig
from repro.ml import (
    MLP,
    SGD,
    SMO,
    AdaBoostM1,
    Bagging,
    BayesNet,
    Classifier,
    J48,
    JRip,
    OneR,
    REPTree,
)


def build_base_classifier(name: str, seed: int = 0) -> Classifier:
    """Instantiate a base learner with the framework's default settings."""
    factories = {
        "BayesNet": lambda: BayesNet(),
        "J48": lambda: J48(),
        "JRip": lambda: JRip(seed=seed + 1),
        "MLP": lambda: MLP(seed=seed),
        "OneR": lambda: OneR(),
        "REPTree": lambda: REPTree(seed=seed + 1),
        "SGD": lambda: SGD(epochs=120, seed=seed),
        "SMO": lambda: SMO(seed=seed),
    }
    if name not in factories:
        raise KeyError(f"unknown classifier {name!r}; choose from {sorted(factories)}")
    return factories[name]()


def build_model(config: DetectorConfig) -> Classifier:
    """Build the (possibly ensemble-wrapped) model for one config."""
    base = build_base_classifier(config.classifier, seed=config.seed)
    if config.ensemble == BOOSTED:
        return AdaBoostM1(base, n_estimators=config.n_estimators, seed=config.seed)
    if config.ensemble == BAGGING:
        return Bagging(base, n_estimators=config.n_estimators, seed=config.seed)
    return base
