"""Specialized per-family ensemble — the Khasawneh et al. baseline.

The paper's related work [11] ("Ensemble learning for low-level
hardware-supported malware detection", RAID 2015) trains one *specialized*
detector per malware type (each against all benign traffic) and fuses
their decisions, rather than boosting a single general detector.  The
paper contrasts its approach with that design; implementing it makes the
comparison measurable.

:class:`SpecializedEnsembleDetector` consumes the corpus's family
provenance: for every malware family in the training set it fits one
binary base model (family vs. all benign windows), then scores a test
window by decision-level fusion (maximum or mean of the specialized
scores).
"""

from __future__ import annotations

import numpy as np

from repro.features.reduction import FeatureReducer
from repro.ml.base import Classifier
from repro.ml.baselines.logistic import LogisticRegression
from repro.ml.metrics import DetectorScores, evaluate_detector
from repro.workloads.dataset import BENIGN, MALWARE, Dataset


class SpecializedEnsembleDetector:
    """One specialized detector per malware family + decision fusion.

    Args:
        base: prototype classifier cloned per family (default logistic
            regression, as in the RAID 2015 work).
        n_hpcs: feature budget, applied with the same correlation
            reduction as the main framework.
        fusion: ``"max"`` (any specialist may raise the alarm) or
            ``"mean"`` (averaged suspicion).
    """

    def __init__(
        self,
        base: Classifier | None = None,
        n_hpcs: int = 4,
        fusion: str = "max",
    ) -> None:
        if fusion not in ("max", "mean"):
            raise ValueError(f"unknown fusion {fusion!r}")
        self.base = base if base is not None else LogisticRegression()
        self.n_hpcs = n_hpcs
        self.fusion = fusion
        self.reducer = FeatureReducer(n_features=n_hpcs)
        self.specialists_: dict[str, Classifier] = {}
        self.fitted_ = False

    @property
    def n_specialists(self) -> int:
        return len(self.specialists_)

    def fit(self, train: Dataset) -> "SpecializedEnsembleDetector":
        """Train one specialist per malware family present in ``train``."""
        self.reducer.fit(train)
        reduced = self.reducer.transform(train)
        benign_rows = reduced.labels == BENIGN
        app_family = np.array(
            [reduced.app_families[a] for a in reduced.app_ids]
        )
        self.specialists_ = {}
        malware_families = sorted(
            {
                reduced.app_families[a]
                for a in np.unique(reduced.app_ids)
                if reduced.app_label(int(a)) == MALWARE
            }
        )
        if not malware_families:
            raise ValueError("training set contains no malware families")
        for family in malware_families:
            family_rows = app_family == family
            rows = benign_rows | family_rows
            labels = family_rows[rows].astype(np.intp)
            model = self.base.clone()
            model.fit(reduced.features[rows], labels)
            self.specialists_[family] = model
        self.fitted_ = True
        return self

    def _reduced_features(self, dataset: Dataset) -> np.ndarray:
        if not self.fitted_:
            raise RuntimeError("detector is not fitted")
        return self.reducer.transform(dataset).features

    def decision_scores(self, dataset: Dataset) -> np.ndarray:
        """Fused malware score per window."""
        features = self._reduced_features(dataset)
        scores = np.column_stack(
            [model.decision_scores(features) for model in self.specialists_.values()]
        )
        if self.fusion == "max":
            return scores.max(axis=1)
        return scores.mean(axis=1)

    def predict(self, dataset: Dataset) -> np.ndarray:
        return (self.decision_scores(dataset) >= 0.5).astype(np.intp)

    def per_family_scores(self, dataset: Dataset) -> dict[str, np.ndarray]:
        """Each specialist's scores, keyed by the family it hunts."""
        features = self._reduced_features(dataset)
        return {
            family: model.decision_scores(features)
            for family, model in self.specialists_.items()
        }

    def evaluate(self, test: Dataset) -> DetectorScores:
        reduced = self.reducer.transform(test)
        scores = self.decision_scores(test)
        return evaluate_detector(
            reduced.labels, (scores >= 0.5).astype(np.intp), scores
        )
