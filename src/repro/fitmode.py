"""Process-wide switch routing fits through retained scalar reference paths.

PR 5 established the pattern for inference: every vectorized kernel keeps
its scalar predecessor as an executable reference, and differential tests
assert bit-identity between the two.  This module extends the pattern to
*training*: learners consult :func:`scalar_fit_enabled` inside ``fit`` and
route to their ``_fit_scalar``/``*_scalar`` reference when the switch is
on.  Tests flip the switch with the :func:`scalar_fit` context manager to
fit the same model twice — once per path — and compare fitted parameters
and predictions bitwise.

The switch is deliberately a module global rather than a per-classifier
flag: an ensemble fit (AdaBoost, Bagging, Voting) constructs its base
learners internally, and the global lets a single ``with scalar_fit():``
drive every member fit through the scalar path without threading a flag
through the ensemble APIs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_scalar = False


def scalar_fit_enabled() -> bool:
    """True while fits should run the retained scalar reference paths."""
    return _scalar


@contextmanager
def scalar_fit() -> Iterator[None]:
    """Route all fits inside the block through the scalar reference paths."""
    global _scalar
    previous = _scalar
    _scalar = True
    try:
        yield
    finally:
        _scalar = previous
