"""Versioned model registry with mmap-able compiled inference artifacts.

The paper's detectors are trained once and deployed for run-time
monitoring, but a fitted model historically lived only in the process
that trained it — every ``serve``/``fleet`` run refit from scratch.  This
module persists the *compiled inference state* of every learner — the
:class:`~repro.ml.tree.FlatTree` parallel arrays, the
:class:`~repro.ml.jrip.CompiledRuleList` stacked condition arrays, the
stacked ensemble member arrays — as one ``.npz`` payload plus a JSON
spec, so a served detector loads as flat numpy arrays with zero refit or
re-flatten.  Because ``np.savez`` stores members uncompressed
(``ZIP_STORED``), each array can be memory-mapped straight out of the
zip container: worker processes serving the same model share one set of
read-only pages, and predictions from the mapped arrays are byte-equal
to the freshly fitted model's (the bytes on disk *are* the fitted
float64 state).

Models are content-addressed: the SHA-256 of the canonical spec JSON
plus every array's dtype/shape/raw bytes is the model id, so re-saving
an identical model is a manifest no-op and two different models can
never collide on a name.  All writes go through
:mod:`repro.ioutil`'s atomic writer, mirroring
:mod:`repro.analysis.cache`'s crash-safety discipline.
"""

from __future__ import annotations

import io
import json
import time
import zipfile
from dataclasses import asdict, dataclass
from hashlib import sha256
from pathlib import Path

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.features.correlation import FeatureRanking
from repro.ioutil import atomic_write_bytes, atomic_write_text, to_jsonable
from repro.ml.base import (
    ArtifactError,
    Classifier,
    classifier_from_artifact,
    export_classifier,
)

#: Format marker embedded in every spec; bump on incompatible layout changes.
PAYLOAD_FORMAT = "repro-model-v1"

MANIFEST_NAME = "manifest.json"


class RegistryError(RuntimeError):
    """A registry payload is missing, corrupt, or ambiguous."""


# ----------------------------------------------------------------------
# content addressing
# ----------------------------------------------------------------------
def _canonical_json(payload: dict) -> str:
    return json.dumps(to_jsonable(payload), sort_keys=True, separators=(",", ":"))


def model_id(spec: dict, arrays: dict) -> str:
    """SHA-256 content address of one ``(spec, arrays)`` payload.

    Hashes the canonical spec JSON plus each array's key, dtype, shape,
    and raw bytes in sorted key order — byte-identical payloads get the
    same id regardless of dict ordering or container timestamps.
    """
    digest = sha256(PAYLOAD_FORMAT.encode())
    digest.update(_canonical_json(spec).encode())
    for key in sorted(arrays):
        arr = np.ascontiguousarray(arrays[key])
        digest.update(key.encode())
        digest.update(b"\x1f")
        digest.update(arr.dtype.str.encode())
        digest.update(b"\x1f")
        digest.update(repr(arr.shape).encode())
        digest.update(b"\x1e")
        digest.update(arr.tobytes())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# mmap-aware npz loading
# ----------------------------------------------------------------------
def _mmap_npz_member(path: Path, info: zipfile.ZipInfo) -> np.ndarray | None:
    """Memory-map one ``ZIP_STORED`` ``.npy`` member of an npz container.

    ``np.load(..., mmap_mode="r")`` silently ignores the mmap request for
    npz files, so we map the member ourselves: parse the zip local file
    header to find where the stored ``.npy`` bytes start, read the npy
    header, and map the raw data that follows.  Returns None when the
    member uses an npy format version we don't parse (caller falls back
    to a plain read).
    """
    with open(path, "rb") as handle:
        handle.seek(info.header_offset)
        local = handle.read(30)
        if len(local) < 30 or local[:4] != b"PK\x03\x04":
            raise RegistryError(f"corrupt zip member header in {path.name}")
        name_len = int.from_bytes(local[26:28], "little")
        extra_len = int.from_bytes(local[28:30], "little")
        handle.seek(info.header_offset + 30 + name_len + extra_len)
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
        else:
            return None
        if dtype.hasobject:
            raise RegistryError(f"object arrays are not loadable: {info.filename}")
        if int(np.prod(shape, dtype=np.int64)) == 0:
            return np.empty(shape, dtype=dtype)
        return np.memmap(
            path,
            dtype=dtype,
            mode="r",
            offset=handle.tell(),
            shape=shape,
            order="F" if fortran else "C",
        )


def load_npz_arrays(path: str | Path, mmap: bool = True) -> dict[str, np.ndarray]:
    """Load every array of an ``.npz`` payload, memory-mapped when possible.

    With ``mmap=True`` each uncompressed member becomes a read-only
    :class:`numpy.memmap` view of the container file — no bytes are
    copied until touched, and concurrent loaders share the page cache.
    Compressed or exotic members fall back to a plain in-memory read.

    Raises:
        RegistryError: the container is missing, truncated, or corrupt.
    """
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    try:
        with zipfile.ZipFile(path) as container:
            for info in container.infolist():
                name = info.filename
                key = name[:-4] if name.endswith(".npy") else name
                if mmap and info.compress_type == zipfile.ZIP_STORED:
                    mapped = _mmap_npz_member(path, info)
                    if mapped is not None:
                        arrays[key] = mapped
                        continue
                with container.open(info) as member:
                    arrays[key] = np.lib.format.read_array(
                        member, allow_pickle=False
                    )
    except RegistryError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError, EOFError) as exc:
        raise RegistryError(f"corrupt model payload {path.name}: {exc}") from exc
    return arrays


def _savez_bytes(arrays: dict[str, np.ndarray]) -> bytes:
    """Uncompressed npz bytes of an array dict (C-contiguous members)."""
    buffer = io.BytesIO()
    np.savez(buffer, **{k: np.ascontiguousarray(v) for k, v in arrays.items()})
    return buffer.getvalue()


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ModelEntry:
    """One manifest row: identity and lookup metadata of a saved model."""

    model_id: str
    payload: str  # "detector" or "classifier"
    kind: str  # classifier class name
    name: str  # human-readable label (detector config name or kind)
    tags: tuple[str, ...]
    saved_unix: float

    @property
    def short_id(self) -> str:
        return self.model_id[:12]


class ModelRegistry:
    """Content-addressed store of fitted detectors and classifiers.

    Layout::

        root/
          manifest.json                  # id -> {payload, kind, name, tags}
          models/<id>/spec.json          # JSON spec (params, config, ranking)
          models/<id>/arrays.npz         # compiled inference arrays

    Every write is atomic (tempfile + ``os.replace``); re-saving an
    identical model only touches the manifest, and only when its tag set
    actually grows.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise RegistryError(f"registry root {self.root} is not a directory")

    # -- manifest ------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _read_manifest(self) -> dict:
        try:
            text = self.manifest_path.read_text()
        except FileNotFoundError:
            return {"version": 1, "models": {}}
        try:
            manifest = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RegistryError(f"corrupt manifest {self.manifest_path}: {exc}") from exc
        if not isinstance(manifest.get("models"), dict):
            raise RegistryError(f"malformed manifest {self.manifest_path}")
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        atomic_write_text(self.manifest_path, json.dumps(manifest, indent=1))

    def entries(self) -> list[ModelEntry]:
        """All saved models, newest first."""
        manifest = self._read_manifest()
        rows = [
            ModelEntry(
                model_id=mid,
                payload=meta.get("payload", "detector"),
                kind=meta.get("kind", ""),
                name=meta.get("name", ""),
                tags=tuple(meta.get("tags", ())),
                saved_unix=float(meta.get("saved_unix", 0.0)),
            )
            for mid, meta in manifest["models"].items()
        ]
        rows.sort(key=lambda e: e.saved_unix, reverse=True)
        return rows

    def __len__(self) -> int:
        return len(self._read_manifest()["models"])

    def resolve(self, ref: str) -> ModelEntry:
        """The unique entry matching an id, id prefix, or tag.

        Raises:
            RegistryError: no match, or the reference is ambiguous.
        """
        entries = self.entries()
        exact = [e for e in entries if e.model_id == ref]
        if exact:
            return exact[0]
        prefixed = [e for e in entries if e.model_id.startswith(ref)] if ref else []
        if not prefixed:
            prefixed = [e for e in entries if ref in e.tags]
        if not prefixed:
            raise RegistryError(f"no model matches {ref!r} in {self.root}")
        if len(prefixed) > 1:
            ids = ", ".join(e.short_id for e in prefixed)
            raise RegistryError(f"ambiguous model reference {ref!r}: {ids}")
        return prefixed[0]

    # -- save ----------------------------------------------------------
    def _model_dir(self, mid: str) -> Path:
        return self.root / "models" / mid

    def _save_payload(
        self, spec: dict, arrays: dict, *, payload: str, name: str, tags: tuple[str, ...]
    ) -> ModelEntry:
        mid = model_id(spec, arrays)
        manifest = self._read_manifest()
        existing = manifest["models"].get(mid)
        if existing is not None:
            merged = sorted(set(existing.get("tags", ())) | set(tags))
            if merged != sorted(existing.get("tags", ())):
                existing["tags"] = merged
                self._write_manifest(manifest)
            return self.resolve(mid)
        target = self._model_dir(mid)
        atomic_write_bytes(target / "arrays.npz", _savez_bytes(arrays))
        atomic_write_text(
            target / "spec.json", json.dumps(to_jsonable(spec), indent=1)
        )
        manifest["models"][mid] = {
            "payload": payload,
            "kind": spec.get("model", {}).get("kind", ""),
            "name": name,
            "tags": sorted(set(tags)),
            "saved_unix": time.time(),
        }
        self._write_manifest(manifest)
        return self.resolve(mid)

    def save_detector(
        self, detector: HMDDetector, tags: tuple[str, ...] | list[str] = ()
    ) -> ModelEntry:
        """Persist a fitted detector (classifier + ranking + config)."""
        if not detector.fitted_ or detector.reducer.ranking_ is None:
            raise RegistryError("cannot save an unfitted detector")
        model_spec, arrays = export_classifier(detector.model)
        ranking = detector.reducer.ranking_
        spec = {
            "format": PAYLOAD_FORMAT,
            "payload": "detector",
            "config": asdict(detector.config),
            "ranking": {
                "names": list(ranking.names),
                "scores": [float(s) for s in ranking.scores],
                "method": ranking.method,
            },
            "model": model_spec,
        }
        return self._save_payload(
            spec, arrays, payload="detector", name=detector.config.name, tags=tuple(tags)
        )

    def save_classifier(
        self, model: Classifier, tags: tuple[str, ...] | list[str] = ()
    ) -> ModelEntry:
        """Persist a bare fitted classifier (no detector pipeline)."""
        model_spec, arrays = export_classifier(model)
        spec = {
            "format": PAYLOAD_FORMAT,
            "payload": "classifier",
            "model": model_spec,
        }
        return self._save_payload(
            spec, arrays, payload="classifier", name=model_spec["kind"], tags=tuple(tags)
        )

    # -- load ----------------------------------------------------------
    def _load_payload(
        self, ref: str, mmap: bool, verify: bool
    ) -> tuple[ModelEntry, dict, dict]:
        entry = self.resolve(ref)
        target = self._model_dir(entry.model_id)
        try:
            spec = json.loads((target / "spec.json").read_text())
        except FileNotFoundError as exc:
            raise RegistryError(f"missing spec for model {entry.short_id}") from exc
        except json.JSONDecodeError as exc:
            raise RegistryError(f"corrupt spec for model {entry.short_id}: {exc}") from exc
        if spec.get("format") != PAYLOAD_FORMAT:
            raise RegistryError(
                f"unsupported payload format {spec.get('format')!r} "
                f"for model {entry.short_id}"
            )
        arrays = load_npz_arrays(target / "arrays.npz", mmap=mmap and not verify)
        if verify and model_id(spec, arrays) != entry.model_id:
            raise RegistryError(
                f"content mismatch for model {entry.short_id}: "
                "payload bytes do not hash to the manifest id"
            )
        return entry, spec, arrays

    def load_classifier(
        self, ref: str, mmap: bool = True, verify: bool = False
    ) -> Classifier:
        """Rebuild the fitted classifier behind an id/prefix/tag reference.

        With ``mmap=True`` (default) the model's arrays stay memory-mapped
        read-only views of the on-disk payload.  ``verify=True`` re-hashes
        the payload against its content id first (forces a full read).
        """
        _, spec, arrays = self._load_payload(ref, mmap, verify)
        try:
            return classifier_from_artifact(spec["model"], arrays)
        except (ArtifactError, KeyError) as exc:
            raise RegistryError(f"cannot rebuild model {ref!r}: {exc}") from exc

    def load_detector(
        self, ref: str, mmap: bool = True, verify: bool = False
    ) -> HMDDetector:
        """Rebuild a full fitted detector with zero refit or re-flatten."""
        entry, spec, arrays = self._load_payload(ref, mmap, verify)
        if spec.get("payload") != "detector":
            raise RegistryError(
                f"model {entry.short_id} is a bare classifier; "
                "use load_classifier()"
            )
        try:
            config = DetectorConfig(**spec["config"])
            detector = HMDDetector(config)
            detector.model = classifier_from_artifact(spec["model"], arrays)
            ranking = spec["ranking"]
            detector.reducer.ranking_ = FeatureRanking(
                names=tuple(ranking["names"]),
                scores=tuple(float(s) for s in ranking["scores"]),
                method=ranking["method"],
            )
        except (ArtifactError, KeyError, TypeError, ValueError) as exc:
            raise RegistryError(
                f"cannot rebuild detector {entry.short_id}: {exc}"
            ) from exc
        detector.fitted_ = True
        return detector
