"""Dataflow graphs and resource-constrained list scheduling.

The arithmetic-dominated detectors (linear models, the MLP) are lowered
to dataflow graphs of hardware operators and scheduled against a fabric
with a bounded number of functional units — a miniature of what Vivado
HLS does when it maps a classifier's inner products onto a handful of
DSP slices.  The schedule length is the design's classification latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.resources import OPERATOR_SPECS, OpType


@dataclass
class Node:
    """One operation in a dataflow graph.

    Attributes:
        op: operator type.
        deps: indices of nodes whose results this node consumes.
    """

    op: OpType
    deps: tuple[int, ...] = ()


@dataclass(frozen=True)
class FabricConfig:
    """Functional units available to the scheduler each cycle.

    Defaults model a compact HLS solution: a few shared DSP
    multiply-accumulate units and a moderate pool of LUT-based ALUs, as a
    malware-detection block squeezed beside a core would get.
    """

    multipliers: int = 2
    adders: int = 4
    lookups: int = 4
    comparators: int = 16
    float_multipliers: int = 2
    float_adders: int = 2
    float_sigmoids: int = 1

    def capacity(self, op: OpType) -> int:
        if op is OpType.MUL:
            return self.multipliers
        if op in (OpType.ADD, OpType.DIV):
            return self.adders
        if op in (OpType.TABLE_LOOKUP, OpType.SIGMOID, OpType.ENCODE):
            return self.lookups
        if op is OpType.FMUL:
            return self.float_multipliers
        if op is OpType.FADD:
            return self.float_adders
        if op is OpType.FSIGMOID:
            return self.float_sigmoids
        return self.comparators


@dataclass
class DataflowGraph:
    """A DAG of operator nodes, built incrementally."""

    nodes: list[Node] = field(default_factory=list)

    def add(self, op: OpType, deps: tuple[int, ...] = ()) -> int:
        """Append a node and return its index."""
        for d in deps:
            if not 0 <= d < len(self.nodes):
                raise ValueError(f"dependency {d} does not exist yet")
        self.nodes.append(Node(op=op, deps=deps))
        return len(self.nodes) - 1

    def reduce_tree(self, op: OpType, inputs: list[int]) -> int:
        """Add a balanced reduction tree over ``inputs``; return its root."""
        if not inputs:
            raise ValueError("cannot reduce zero inputs")
        level = list(inputs)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self.add(op, (level[i], level[i + 1])))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def critical_path(self) -> int:
        """Latency ignoring resource limits (ASAP schedule length)."""
        finish = [0] * len(self.nodes)
        for i, node in enumerate(self.nodes):
            start = max((finish[d] for d in node.deps), default=0)
            finish[i] = start + OPERATOR_SPECS[node.op].latency
        return max(finish, default=0)

    def list_schedule(self, fabric: FabricConfig) -> int:
        """Resource-constrained schedule length in cycles.

        Classic list scheduling: each cycle, ready nodes are issued in
        priority order (longest remaining path first) until the cycle's
        functional-unit budget is exhausted.  Units are fully pipelined
        (initiation interval 1), as HLS operator cores are: a unit
        accepts a new operation every cycle even while earlier ones are
        still in flight.
        """
        n = len(self.nodes)
        if n == 0:
            return 0
        consumers: list[list[int]] = [[] for _ in range(n)]
        indegree = [0] * n
        for i, node in enumerate(self.nodes):
            indegree[i] = len(node.deps)
            for d in node.deps:
                consumers[d].append(i)
        # priority = height (longest path to a sink)
        height = [0] * n
        for i in range(n - 1, -1, -1):
            own = OPERATOR_SPECS[self.nodes[i].op].latency
            height[i] = own + max((height[c] for c in consumers[i]), default=0)

        ready = sorted(
            (i for i in range(n) if indegree[i] == 0), key=lambda i: -height[i]
        )
        pending_finish: list[tuple[int, int]] = []  # (finish_cycle, node)
        scheduled = 0
        cycle = 0
        makespan = 0
        guard = 0
        while scheduled < n:
            guard += 1
            if guard > 100 * n + 100:
                raise RuntimeError("scheduler failed to converge (cyclic graph?)")
            # retire operations finishing at or before this cycle
            still_pending = []
            for finish_cycle, node in pending_finish:
                if finish_cycle <= cycle:
                    for c in consumers[node]:
                        indegree[c] -= 1
                        if indegree[c] == 0:
                            ready.append(c)
                else:
                    still_pending.append((finish_cycle, node))
            pending_finish = still_pending
            ready.sort(key=lambda i: -height[i])
            # issue within this cycle's capacity
            budget: dict[OpType, int] = {}
            issued: list[int] = []
            remaining: list[int] = []
            for i in ready:
                op = self.nodes[i].op
                cap = budget.setdefault(op, None)
                if cap is None:
                    budget[op] = FabricConfig.capacity(fabric, op)
                if budget[op] > 0:
                    budget[op] -= 1
                    issued.append(i)
                else:
                    remaining.append(i)
            ready = remaining
            for i in issued:
                latency = OPERATOR_SPECS[self.nodes[i].op].latency
                finish = cycle + max(latency, 1)
                pending_finish.append((finish, i))
                makespan = max(makespan, finish)
                scheduled += 1
            cycle += 1
        return makespan
