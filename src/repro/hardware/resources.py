"""Virtex-7 resource library and the OpenSPARC area reference.

The paper implements every detector with Vivado HLS on a Xilinx Virtex-7
and reports (a) latency in clock cycles at 10 ns and (b) area as a
percentage of an OpenSPARC (FPGA) core.  This module provides the cost
constants that the lowering stage (:mod:`repro.hardware.lowering`) prices
designs with: per-operator LUT/FF/DSP/BRAM usage and latency, LUT-RAM
density for parameter storage, and the OpenSPARC T1 core budget used as
the 100% area reference.

Numbers are calibrated to public Virtex-7 characterization data (32-bit
fixed-point operators) and to the OpenSPARC T1 FPGA implementation
(~48k LUT-equivalents per core); they are estimates, not synthesis
results, but they preserve the *relative* costs the paper's Table 3 is
about.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class OpType(Enum):
    """Hardware operator vocabulary of the lowering stage."""

    ADD = "add"
    MUL = "mul"
    CMP = "cmp"
    MUX = "mux"
    TABLE_LOOKUP = "table_lookup"
    SIGMOID = "sigmoid"
    DIV = "div"
    AND = "and"
    ENCODE = "encode"
    FADD = "fadd"
    FMUL = "fmul"
    FSIGMOID = "fsigmoid"


@dataclass(frozen=True)
class OperatorSpec:
    """Cost of one hardware operator instance.

    Attributes:
        latency: pipeline latency in clock cycles at 10 ns (0 = fits in
            the combinational slack of the consuming stage).
        luts: 6-input LUTs consumed.
        ffs: flip-flops consumed.
        dsps: DSP48 slices consumed.
        brams: 18 kb block RAMs consumed.
    """

    latency: int
    luts: int
    ffs: int
    dsps: int = 0
    brams: int = 0


#: 32-bit fixed-point operator costs on Virtex-7 @ 100 MHz.
OPERATOR_SPECS: dict[OpType, OperatorSpec] = {
    OpType.ADD: OperatorSpec(latency=1, luts=32, ffs=32),
    OpType.MUL: OperatorSpec(latency=4, luts=40, ffs=64, dsps=3),
    OpType.CMP: OperatorSpec(latency=1, luts=16, ffs=1),
    OpType.MUX: OperatorSpec(latency=0, luts=16, ffs=0),
    OpType.TABLE_LOOKUP: OperatorSpec(latency=1, luts=24, ffs=16),
    OpType.SIGMOID: OperatorSpec(latency=2, luts=64, ffs=32, brams=1),
    OpType.DIV: OperatorSpec(latency=8, luts=180, ffs=160),
    OpType.AND: OperatorSpec(latency=0, luts=4, ffs=0),
    OpType.ENCODE: OperatorSpec(latency=1, luts=12, ffs=8),
    # single-precision floating point (Vivado HLS fp cores) — the MLP's
    # datapath; fp sigmoid is a full expf core plus the divide.
    OpType.FADD: OperatorSpec(latency=8, luts=390, ffs=500),
    OpType.FMUL: OperatorSpec(latency=6, luts=280, ffs=380, dsps=3),
    OpType.FSIGMOID: OperatorSpec(latency=18, luts=2400, ffs=1800, dsps=7, brams=2),
}

#: LUT-equivalents of one DSP48 slice (for single-number area rollups).
DSP_LUT_EQUIVALENT: int = 102

#: LUT-equivalents of one 18 kb BRAM.
BRAM_LUT_EQUIVALENT: int = 180

#: Bits of parameter storage one LUT provides when used as LUT-RAM.
LUTRAM_BITS_PER_LUT: int = 64

#: LUT-equivalent budget of one OpenSPARC T1 core on Virtex-7 — the
#: paper's 100% area reference.
OPENSPARC_LUT_EQUIVALENT: int = 48_000

#: Fixed-point width used for HPC values, thresholds and weights.
DATA_WIDTH_BITS: int = 32

#: Reduced width used for stored model coefficients (quantized weights).
WEIGHT_WIDTH_BITS: int = 16


@dataclass(frozen=True)
class ResourceUsage:
    """Aggregated resource footprint of a design."""

    luts: int = 0
    ffs: int = 0
    dsps: int = 0
    brams: int = 0
    storage_bits: int = 0

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            luts=self.luts + other.luts,
            ffs=self.ffs + other.ffs,
            dsps=self.dsps + other.dsps,
            brams=self.brams + other.brams,
            storage_bits=self.storage_bits + other.storage_bits,
        )

    def scaled(self, factor: float) -> "ResourceUsage":
        """Scale every component (used for shared-fabric discounts)."""
        return ResourceUsage(
            luts=int(round(self.luts * factor)),
            ffs=int(round(self.ffs * factor)),
            dsps=int(round(self.dsps * factor)),
            brams=int(round(self.brams * factor)),
            storage_bits=int(round(self.storage_bits * factor)),
        )

    @property
    def lut_equivalent(self) -> int:
        """Single-number area: LUTs + converted DSP/BRAM + LUT-RAM storage."""
        return (
            self.luts
            + self.dsps * DSP_LUT_EQUIVALENT
            + self.brams * BRAM_LUT_EQUIVALENT
            + -(-self.storage_bits // LUTRAM_BITS_PER_LUT)
        )

    @property
    def area_percent(self) -> float:
        """Area as % of the OpenSPARC core, the paper's Table 3 metric."""
        return 100.0 * self.lut_equivalent / OPENSPARC_LUT_EQUIVALENT


def op_usage(op: OpType, count: int = 1) -> ResourceUsage:
    """Resource usage of ``count`` instances of one operator."""
    if count < 0:
        raise ValueError("count must be non-negative")
    spec = OPERATOR_SPECS[op]
    return ResourceUsage(
        luts=spec.luts * count,
        ffs=spec.ffs * count,
        dsps=spec.dsps * count,
        brams=spec.brams * count,
    )
