"""FPGA implementation cost model (paper §4.4, Table 3)."""

from repro.hardware.graph import DataflowGraph, FabricConfig, Node
from repro.hardware.lowering import (
    HardwareDesign,
    LoweringError,
    lower,
    lower_bayesnet,
    lower_j48,
    lower_jrip,
    lower_linear,
    lower_mlp,
    lower_oner,
    lower_reptree,
)
from repro.hardware.verilog import (
    CodegenError,
    generate,
    generate_jrip,
    generate_linear,
    generate_oner,
    generate_tree,
)
from repro.hardware.resources import (
    DSP_LUT_EQUIVALENT,
    OPENSPARC_LUT_EQUIVALENT,
    OPERATOR_SPECS,
    OperatorSpec,
    OpType,
    ResourceUsage,
    op_usage,
)

__all__ = [
    "CodegenError",
    "DSP_LUT_EQUIVALENT",
    "DataflowGraph",
    "FabricConfig",
    "HardwareDesign",
    "LoweringError",
    "Node",
    "OPENSPARC_LUT_EQUIVALENT",
    "OPERATOR_SPECS",
    "OpType",
    "OperatorSpec",
    "ResourceUsage",
    "generate",
    "generate_jrip",
    "generate_linear",
    "generate_oner",
    "generate_tree",
    "lower",
    "lower_bayesnet",
    "lower_j48",
    "lower_jrip",
    "lower_linear",
    "lower_mlp",
    "lower_oner",
    "lower_reptree",
    "op_usage",
]
