"""Lowering trained classifiers to hardware designs (HLS-style estimation).

Walks the *trained* model structure — tree nodes, rule conditions, CPT
sizes, weight matrices, support vectors — and produces a
:class:`HardwareDesign` with classification latency (cycles @ 10 ns) and
resource usage, the quantities of the paper's Table 3.

Two lowering styles, matching how HLS actually maps these models:

* **decision logic** (OneR, trees, rule lists, BayesNet) is control
  dominated: comparators, muxes and small table lookups; latency follows
  the decision structure's depth analytically;
* **arithmetic** (SGD, SMO, MLP) is dataflow dominated: inner products
  are built as dataflow graphs and list-scheduled against a bounded DSP
  fabric (:mod:`repro.hardware.graph`).

Ensembles are lowered as a *time-multiplexed shared fabric*: members
execute sequentially on the largest member's datapath while per-member
parameters live in local storage.  That reproduces the paper's Table 3
signature — boosted latency is roughly the sum of member latencies plus
per-member dispatch, while boosted *area* stays close to (sometimes below)
the bigger-budget general design because only parameters are replicated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.graph import DataflowGraph, FabricConfig
from repro.hardware.resources import (
    DATA_WIDTH_BITS,
    WEIGHT_WIDTH_BITS,
    OpType,
    ResourceUsage,
    op_usage,
)
from repro.ml.base import Classifier
from repro.ml.bayes import BayesNet
from repro.ml.ensemble.adaboost import AdaBoostM1
from repro.ml.ensemble.bagging import Bagging
from repro.ml.j48 import J48
from repro.ml.jrip import JRip
from repro.ml.mlp import MLP
from repro.ml.oner import OneR
from repro.ml.reptree import REPTree
from repro.ml.sgd import SGD
from repro.ml.smo import SMO

#: Cycles to swap one ensemble member's parameters onto the shared fabric.
MEMBER_DISPATCH_CYCLES: int = 4

#: Cycles for the ensemble's weighted-vote combine stage.
VOTE_COMBINE_CYCLES: int = 2

#: Fixed per-detector shell: HPC shared-memory-bus interface, sample
#: buffer, and control FSM — present once in every design.
SHELL_USAGE = ResourceUsage(luts=700, ffs=520)


@dataclass(frozen=True)
class HardwareDesign:
    """Cost estimate of one detector's hardware implementation.

    Attributes:
        name: classifier description.
        latency_cycles: cycles @ 10 ns to classify one HPC vector.
        resources: fabric + storage footprint.
    """

    name: str
    latency_cycles: int
    resources: ResourceUsage

    @property
    def area_percent(self) -> float:
        """Area relative to the OpenSPARC core (paper Table 3)."""
        return self.resources.area_percent

    @property
    def latency_ns(self) -> float:
        """Wall-clock classification latency at the 10 ns clock."""
        return self.latency_cycles * 10.0


class LoweringError(TypeError):
    """Raised when no lowering exists for a model type."""


# ----------------------------------------------------------------------
# decision-logic lowerings
# ----------------------------------------------------------------------

def lower_oner(model: OneR) -> HardwareDesign:
    """OneR: parallel threshold comparators + bucket table — 1 cycle."""
    model._require_fitted()
    assert model.cut_points_ is not None and model.bucket_counts_ is not None
    n_cuts = max(len(model.cut_points_), 1)
    n_buckets = model.bucket_counts_.shape[0]
    resources = (
        op_usage(OpType.CMP, n_cuts)
        + op_usage(OpType.ENCODE, 1)
        + ResourceUsage(storage_bits=n_buckets * WEIGHT_WIDTH_BITS + n_cuts * DATA_WIDTH_BITS)
    )
    return HardwareDesign(name="OneR", latency_cycles=1, resources=resources)


def _lower_tree(model: J48 | REPTree, name: str) -> HardwareDesign:
    """Decision tree as an FSM walker over a node table.

    HLS maps a tree to one comparator plus a node memory: each level
    costs a table read and a compare (2 cycles), and the whole tree —
    however many nodes — is just storage.  Node entry: threshold (32b),
    attribute id (8b), two child pointers (2 x 16b), leaf class (2b).
    """
    model._require_fitted()
    depth = max(model.depth, 1)
    node_entry_bits = DATA_WIDTH_BITS + 8 + 2 * 16 + 2
    resources = (
        op_usage(OpType.CMP, 1)
        + op_usage(OpType.TABLE_LOOKUP, 1)
        + op_usage(OpType.MUX, 2)
        + ResourceUsage(storage_bits=model.tree_size * node_entry_bits)
    )
    return HardwareDesign(name=name, latency_cycles=2 * depth, resources=resources)


def lower_j48(model: J48) -> HardwareDesign:
    """J48 as an FSM tree walker (see :func:`_lower_tree`)."""
    return _lower_tree(model, "J48")


def lower_reptree(model: REPTree) -> HardwareDesign:
    """REPTree as an FSM tree walker (see :func:`_lower_tree`)."""
    return _lower_tree(model, "REPTree")


def lower_jrip(model: JRip) -> HardwareDesign:
    """Rule list: all conditions in parallel, AND trees, priority encode."""
    model._require_fitted()
    n_conditions = max(model.n_conditions, 1)
    n_rules = max(model.n_rules, 1)
    max_conditions = max(
        (len(rule.conditions) for rule in model.rules_), default=1
    )
    # cycle 1: comparators; cycle 2: AND reduction; cycle 3: priority encode
    and_levels = max(max_conditions - 1, 0)
    latency = 2 + (1 if and_levels else 0) + (1 if n_rules > 4 else 0)
    resources = (
        op_usage(OpType.CMP, n_conditions)
        + op_usage(OpType.AND, max(n_conditions - n_rules, 0))
        + op_usage(OpType.ENCODE, n_rules)
        + ResourceUsage(
            storage_bits=n_conditions * (DATA_WIDTH_BITS + 8)
            + n_rules * WEIGHT_WIDTH_BITS
        )
    )
    return HardwareDesign(name="JRip", latency_cycles=latency, resources=resources)


def lower_bayesnet(model: BayesNet) -> HardwareDesign:
    """BayesNet: discretizers + CPT lookups + log-probability accumulation."""
    model._require_fitted()
    assert model.discretizer_ is not None
    n_attrs = len(model.cpts_)
    bins = model.discretizer_.n_bins
    total_cuts = sum(max(b - 1, 0) for b in bins)
    cpt_bits = sum(cpt.size * WEIGHT_WIDTH_BITS for cpt in model.cpts_)
    # Stage 1 (1 cycle): all attribute discretizers (parallel comparators).
    # Stage 2 (1 cycle/lookup, 2 ports): CPT log-prob lookups.
    # Stage 3: two adder trees accumulate the class log-posteriors.
    lookup_cycles = -(-n_attrs // 2)
    add_levels = max(n_attrs - 1, 1).bit_length()
    latency = 1 + lookup_cycles + add_levels + 1  # +1 final compare
    resources = (
        op_usage(OpType.CMP, max(total_cuts, 1))
        + op_usage(OpType.TABLE_LOOKUP, n_attrs)
        + op_usage(OpType.ADD, 2 * max(n_attrs - 1, 1))
        + ResourceUsage(storage_bits=cpt_bits + total_cuts * DATA_WIDTH_BITS)
    )
    return HardwareDesign(name="BayesNet", latency_cycles=latency, resources=resources)


# ----------------------------------------------------------------------
# arithmetic lowerings (dataflow + list scheduling)
# ----------------------------------------------------------------------

def _inner_product_graph(graph: DataflowGraph, n_terms: int) -> int:
    """Add an n-term multiply/add reduction; return the root node index."""
    products = [graph.add(OpType.MUL) for _ in range(n_terms)]
    return graph.reduce_tree(OpType.ADD, products)


def lower_linear(model: SGD | SMO, name: str, fabric: FabricConfig) -> HardwareDesign:
    """Linear classifier: one inner product + bias + threshold/sigmoid."""
    model._require_fitted()
    if isinstance(model, SMO) and model.kernel != "linear":
        return _lower_kernel_svm(model, fabric)
    n_features = int(model.weights_.size)  # type: ignore[union-attr]
    graph = DataflowGraph()
    dot = _inner_product_graph(graph, n_features)
    bias = graph.add(OpType.ADD, (dot,))
    graph.add(OpType.SIGMOID, (bias,))
    latency = graph.list_schedule(fabric)
    resources = (
        op_usage(OpType.MUL, min(n_features, fabric.multipliers))
        + op_usage(OpType.ADD, min(max(n_features - 1, 1), fabric.adders) + 1)
        + op_usage(OpType.SIGMOID, 1)
        + ResourceUsage(storage_bits=(n_features + 1) * WEIGHT_WIDTH_BITS)
    )
    return HardwareDesign(name=name, latency_cycles=latency, resources=resources)


def _lower_kernel_svm(model: SMO, fabric: FabricConfig) -> HardwareDesign:
    """Kernel SVM: one kernel evaluation per support vector, accumulated."""
    n_sv = max(model.n_support_vectors, 1)
    n_features = model.support_x_.shape[1]  # type: ignore[union-attr]
    graph = DataflowGraph()
    kernels = []
    for _ in range(min(n_sv, 64)):  # cap graph size; scale the rest analytically
        diff = [graph.add(OpType.ADD) for _ in range(n_features)]
        sq = [graph.add(OpType.MUL, (d,)) for d in diff]
        ssum = graph.reduce_tree(OpType.ADD, sq)
        kernels.append(graph.add(OpType.SIGMOID, (ssum,)))
    acc = graph.reduce_tree(OpType.ADD, kernels)
    graph.add(OpType.CMP, (acc,))
    latency = graph.list_schedule(fabric)
    if n_sv > 64:
        latency = int(latency * n_sv / 64)
    resources = (
        op_usage(OpType.MUL, fabric.multipliers)
        + op_usage(OpType.ADD, fabric.adders)
        + op_usage(OpType.SIGMOID, 1)
        + ResourceUsage(storage_bits=n_sv * (n_features + 1) * WEIGHT_WIDTH_BITS)
    )
    return HardwareDesign(name="SMO-RBF", latency_cycles=latency, resources=resources)


def lower_mlp(model: MLP, fabric: FabricConfig) -> HardwareDesign:
    """MLP on a single-precision floating-point datapath.

    WEKA's MultilayerPerceptron computes in floating point and the
    paper's HLS flow synthesizes it that way — which is exactly why its
    Table 3 row dwarfs every fixed-point detector.  Each neuron gets its
    own fp MAC lane (HLS unrolls the neuron loop); inner products run
    sequentially over the inputs within a lane; sigmoids are full expf
    cores.
    """
    model._require_fitted()
    d, h, o = model.layer_sizes
    graph = DataflowGraph()
    hidden_nodes = []
    for _ in range(h):
        products = [graph.add(OpType.FMUL) for _ in range(d)]
        dot = graph.reduce_tree(OpType.FADD, products)
        biased = graph.add(OpType.FADD, (dot,))
        hidden_nodes.append(graph.add(OpType.FSIGMOID, (biased,)))
    for _ in range(o):
        products = [graph.add(OpType.FMUL, (hn,)) for hn in hidden_nodes]
        dot = graph.reduce_tree(OpType.FADD, products)
        biased = graph.add(OpType.FADD, (dot,))
        graph.add(OpType.FSIGMOID, (biased,))
    latency = graph.list_schedule(fabric)
    n_weights = h * (d + 1) + o * (h + 1)
    # one fp MAC lane per neuron, plus the sigmoid cores and fp weights
    lanes = h + o
    resources = (
        op_usage(OpType.FMUL, lanes)
        + op_usage(OpType.FADD, lanes)
        + op_usage(OpType.FSIGMOID, lanes)
        + ResourceUsage(storage_bits=n_weights * DATA_WIDTH_BITS)
    )
    return HardwareDesign(name="MLP", latency_cycles=latency, resources=resources)


# ----------------------------------------------------------------------
# ensemble lowering: time-multiplexed shared fabric
# ----------------------------------------------------------------------

def _lower_ensemble(
    members: list[Classifier], name: str, fabric: FabricConfig
) -> HardwareDesign:
    if not members:
        raise LoweringError(f"{name} ensemble has no trained members")
    designs = [_lower_core(member, fabric) for member in members]
    latency = (
        sum(d.latency_cycles for d in designs)
        + MEMBER_DISPATCH_CYCLES * len(designs)
        + VOTE_COMBINE_CYCLES
    )
    # Shared fabric: the largest member's datapath is instantiated once;
    # every member's parameters are stored locally; the vote stage adds a
    # multiplier and an accumulator.
    fabric_usage = max(designs, key=lambda d: d.resources.lut_equivalent).resources
    parameter_bits = sum(d.resources.storage_bits for d in designs)
    vote = op_usage(OpType.MUL, 1) + op_usage(OpType.ADD, 1) + op_usage(OpType.CMP, 1)
    resources = ResourceUsage(
        luts=fabric_usage.luts,
        ffs=fabric_usage.ffs,
        dsps=fabric_usage.dsps,
        brams=fabric_usage.brams,
        storage_bits=parameter_bits + len(designs) * WEIGHT_WIDTH_BITS,
    ) + vote
    return HardwareDesign(name=name, latency_cycles=latency, resources=resources)


def lower(model: Classifier, fabric: FabricConfig | None = None) -> HardwareDesign:
    """Lower any trained framework classifier to a hardware design.

    The returned design includes the fixed detector shell (HPC bus
    interface + control); ensemble members inside a design share one
    shell.

    Args:
        model: a fitted classifier (base or ensemble).
        fabric: functional-unit budget for arithmetic designs.

    Raises:
        LoweringError: for unsupported model types.
    """
    fabric = fabric or FabricConfig()
    core = _lower_core(model, fabric)
    return HardwareDesign(
        name=core.name,
        latency_cycles=core.latency_cycles,
        resources=core.resources + SHELL_USAGE,
    )


def _lower_core(model: Classifier, fabric: FabricConfig) -> HardwareDesign:
    """Shell-less lowering used recursively for ensemble members."""
    if isinstance(model, OneR):
        return lower_oner(model)
    if isinstance(model, J48):
        return lower_j48(model)
    if isinstance(model, REPTree):
        return lower_reptree(model)
    if isinstance(model, JRip):
        return lower_jrip(model)
    if isinstance(model, BayesNet):
        return lower_bayesnet(model)
    if isinstance(model, SGD):
        return lower_linear(model, "SGD", fabric)
    if isinstance(model, SMO):
        return lower_linear(model, "SMO", fabric)
    if isinstance(model, MLP):
        return lower_mlp(model, fabric)
    if isinstance(model, AdaBoostM1):
        return _lower_ensemble(model.estimators_, f"Boosted-{type(model.base).__name__}", fabric)
    if isinstance(model, Bagging):
        return _lower_ensemble(model.estimators_, f"Bagging-{type(model.base).__name__}", fabric)
    raise LoweringError(f"no hardware lowering for {type(model).__name__}")
