"""Bounded in-process queue fabric for the streaming detection service.

StratosphereLinuxIPS's ensemble module subscribes to a Redis channel and
wakes on ``tw_closed`` — a time window finished, classify it.  This is
the same shape with zero dependencies: named bounded FIFO channels over
:class:`queue.Queue`, per-window samples and window-closed markers as
the message vocabulary, and *explicit* backpressure — a publisher into a
full channel blocks (and the block is counted), so a slow detector
worker throttles its producers instead of letting an unbounded queue
eat the host's memory.

Routing is sharded by host: every message for one host lands on the
same channel (CRC-32 of the host name, the same stable key
:func:`repro.hpc.faults.app_key` uses), so one worker owns each host's
assembly and sliding-vote state without cross-worker locking.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.hpc.faults import app_key

#: Control message telling a worker to exit its consume loop.  Compared
#: by identity; published once per worker at shutdown.
SHUTDOWN = object()


@dataclass(frozen=True)
class WindowSample:
    """One sampling window of one monitored execution.

    Attributes:
        host: monitored host the window was sampled on (shard key).
        execution: global index of the execution the window belongs to.
        seq: window index within the execution (0-based).
        row: raw 44-event activity of the window, shape ``(44,)``.
    """

    host: str
    execution: int
    seq: int
    row: np.ndarray = field(repr=False)


@dataclass(frozen=True)
class WindowClosed:
    """The window-closed marker: an execution finished publishing.

    Carries everything a worker needs to classify and emit the verdict
    without consulting shared state, so redelivered copies are
    self-contained.
    """

    host: str
    execution: int
    app_name: str
    n_windows: int


class Channel:
    """One bounded FIFO channel with counted blocking backpressure.

    Args:
        name: channel name (diagnostics only).
        depth: queue bound; a publish into a full channel blocks until
            a consumer frees a slot.
    """

    def __init__(self, name: str, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"channel depth must be >= 1, got {depth}")
        self.name = name
        self.depth = depth
        self._queue: queue.Queue = queue.Queue(maxsize=depth)
        self._lock = threading.Lock()
        self.published = 0
        self.backpressure_waits = 0

    def publish(self, message) -> None:
        """Enqueue a message, blocking while the channel is full.

        The fast path is a non-blocking put; only a full channel takes
        the slow path, which counts one backpressure wait before
        blocking — the service reports that count so saturation is
        visible instead of silent.
        """
        try:
            self._queue.put_nowait(message)
        except queue.Full:
            with self._lock:
                self.backpressure_waits += 1
            self._queue.put(message)
        with self._lock:
            self.published += 1

    def consume(self, timeout: float | None = None):
        """Dequeue the next message; raises :class:`queue.Empty` on timeout."""
        return self._queue.get(timeout=timeout)

    def __len__(self) -> int:
        return self._queue.qsize()


class Bus:
    """The service's channel set: one shard channel per detector worker.

    Args:
        n_shards: number of detector workers (and shard channels).
        depth: bound of every shard channel.
    """

    def __init__(self, n_shards: int, depth: int) -> None:
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        self.shards = [Channel(f"shard-{i}", depth) for i in range(n_shards)]

    def shard_for(self, host: str) -> int:
        """Stable shard index for a host (all its traffic, one worker)."""
        return app_key(host) % len(self.shards)

    def channel_for(self, host: str) -> Channel:
        return self.shards[self.shard_for(host)]

    @property
    def backpressure_waits(self) -> int:
        return sum(channel.backpressure_waits for channel in self.shards)

    @property
    def published(self) -> int:
        return sum(channel.published for channel in self.shards)
