"""The streaming detection service: ``fleet run`` becomes ``fleet serve``.

:class:`~repro.core.fleet.FleetMonitor` is a batch fan-out: a fixed job
list in, a verdict list out.  :class:`DetectionService` is the
long-running shape the paper's run-time argument actually implies —
detection *while programs execute*, as a pipeline of concurrent stages
over the bounded queue fabric in :mod:`repro.serve.bus`:

* **producers** execute applications on the container substrate and
  publish each sampling window as it happens (one
  :class:`~repro.serve.bus.WindowSample` per window, then a
  :class:`~repro.serve.bus.WindowClosed` marker), blocking on
  backpressure when the detector side is saturated;
* **sharded detector workers** each own the hosts that hash to their
  channel: they reassemble executions window by window, classify a
  closed window batch through the vectorized inference kernels
  (:func:`~repro.core.runtime.classify_trace`), emit exactly one
  :class:`~repro.core.runtime.DetectionVerdict` per closed execution,
  and maintain a per-host sliding vote window across executions that
  raises ``serve.alert`` events when a host's recent windows trip the
  vote threshold;
* a **supervisor** (the :meth:`DetectionService.run` thread) watches for
  injected worker crashes (:class:`~repro.hpc.faults.ServiceFaultPlan`,
  the same seeded-chaos discipline :class:`~repro.hpc.faults.FaultPlan`
  applies to the substrate) and keeps the verdict stream total.

Crash recovery without duplicate verdicts: before publishing anything,
a producer registers the execution's full trace in an in-memory
**ledger** (the durable store — the role Redis plays in
StratosphereLinuxIPS).  Workers assemble into per-``(execution, seq)``
dictionaries, so redelivered windows are idempotent, and a replacement
worker incarnation rebuilds its assembly state straight from the ledger
instead of republishing into a bounded channel (which could deadlock
against a full queue).  Verdict emission is a check-and-set on the
shared verdict table, so no matter how deliveries and recoveries
interleave, **every closed window yields exactly one verdict** — and
because classification is a pure function of the assembled trace, the
verdicts are bit-identical to a serial
:class:`~repro.core.runtime.RuntimeMonitor` sweep whether or not
workers crashed along the way.

Determinism contract: execution ``i`` runs in a private
:class:`~repro.hpc.lxc.ContainerPool` seeded ``pool_seed + i`` — the
same container-seed sequence a serial monitor draws from one shared
pool — so verdicts (and their order in the report, which is submission
order) are bit-identical to serial monitoring at any producer × worker
geometry.  With multiple producers the *interleaving* of per-host alert
events may vary; the verdicts never do.

Registry warm-start: workers are threads, so every worker classifies
through the *same* detector object.  A detector loaded via
:meth:`repro.registry.ModelRegistry.load_detector` keeps its compiled
inference arrays as read-only memory-mapped views of the on-disk
payload — one physical copy of the model serves all workers (and all
service processes pointed at the same registry), with zero refit or
re-flatten at startup.  Inference only reads those arrays, so the
mmap-backed detector honours the same bit-identical verdict contract
as a freshly fitted one.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.detector import HMDDetector
from repro.core.runtime import (
    DetectionVerdict,
    classify_trace,
    detection_latency_windows,
    observe_execution_quality,
    reduce_trace,
    validate_deployment,
)
from repro.hpc.events import ALL_EVENTS
from repro.hpc.faults import ServiceFaultPlan, WorkerCrashError
from repro.hpc.lxc import ContainerPool
from repro.hpc.microarch import DEFAULT_WINDOW_MS, ApplicationBehavior
from repro.obs import (
    FAST_LATENCY_BUCKETS,
    NULL_REGISTRY,
    NULL_TRACER,
    HealthEvaluator,
    QualityTracker,
    Registry,
    Tracer,
)
from repro.obs.archive import HOST_VOTE_RULE, ArchiveSink
from repro.serve.bus import SHUTDOWN, Bus, WindowClosed, WindowSample


@dataclass(frozen=True)
class ServeJob:
    """One execution submitted to the service's stream.

    Args:
        app: behaviour model to execute.
        n_windows: sampling windows to stream.
        is_malware: ground truth, used only by the execution substrate
            (container contamination), never by the detector.
        host: host identity for sharding and the sliding vote window;
            defaults to the application name.
    """

    app: ApplicationBehavior
    n_windows: int
    is_malware: bool
    host: str | None = None

    @property
    def host_name(self) -> str:
        return self.host if self.host is not None else self.app.name


@dataclass
class _ExecutionRecord:
    """Ledger entry: the authoritative copy of one execution's stream.

    ``trace`` is set (complete) before the first window is published and
    ``closed`` is set before the close marker is published, so a
    recovering worker reading the ledger always sees at least as much
    as was ever on the wire.
    """

    index: int
    job: ServeJob
    shard: int
    trace: np.ndarray | None = None
    closed: bool = False


@dataclass(frozen=True)
class ServiceReport:
    """What one :meth:`DetectionService.run` streamed and survived.

    Attributes:
        verdicts: one verdict per submitted job, in submission order.
        alerts: per-host sliding-vote alerts, as emitted.
        n_windows: sampling windows classified into verdicts.
        worker_crashes: injected worker crashes survived (each one
            forced a restart and a ledger recovery).
        recovered_windows: windows rebuilt from the ledger by restarted
            workers.
        backpressure_waits: producer publishes that blocked on a full
            channel.
        wall_seconds: end-to-end run time.
    """

    verdicts: tuple[DetectionVerdict, ...]
    alerts: tuple[dict, ...]
    n_windows: int
    worker_crashes: int
    recovered_windows: int
    backpressure_waits: int
    wall_seconds: float

    @property
    def windows_per_second(self) -> float:
        return self.n_windows / self.wall_seconds if self.wall_seconds > 0 else 0.0


class _RunState:
    """Mutable state shared by one run's producers, workers, supervisor."""

    def __init__(self, records: list[_ExecutionRecord], bus: Bus) -> None:
        self.records = records
        self.bus = bus
        self.verdicts: dict[int, DetectionVerdict] = {}
        self.verdict_lock = threading.Lock()
        self.done = threading.Event()
        self.next_job = 0
        self.job_lock = threading.Lock()
        self.host_flags: dict[str, deque] = {}
        self.alerts: list[dict] = []
        self.crashes = 0
        self.recovered_windows = 0
        self.stat_lock = threading.Lock()
        self.failures: list[BaseException] = []
        # Messages per execution (windows + close), sizing crash draws so
        # injected crashes land mid-assembly.
        self.crash_scale = 1 + max(
            (record.job.n_windows for record in records), default=0
        )

    def records_for_shard(self, shard: int) -> list[_ExecutionRecord]:
        return [record for record in self.records if record.shard == shard]


class DetectionService:
    """Long-running streaming detection over the bounded queue fabric.

    Args:
        detector: fitted detector; the register-capacity constraint of
            :class:`~repro.core.runtime.RuntimeMonitor` applies.
        producers: concurrent execution/publish threads.
        workers: sharded detector workers (and shard channels).
        queue_depth: bound of each shard channel — the backpressure
            knob: smaller depths throttle producers sooner.
        n_counters: physical counter registers per monitored host.
        vote_threshold: quorum fraction for per-execution verdicts and
            the per-host sliding vote window.
        window_ms: sampling interval.
        host_vote_windows: length (in sampling windows) of each host's
            sliding vote window; a full window whose flagged fraction
            reaches ``vote_threshold`` raises a ``serve.alert`` event.
        faults: optional seeded :class:`~repro.hpc.faults.ServiceFaultPlan`
            crashing detector workers mid-stream; None means no chaos.
        pool_seed: base seed of the per-execution container pools
            (execution ``i`` uses ``pool_seed + i``, the serial-monitor
            sequence).
        tracer: optional tracer; records a ``serve.run`` span plus
            ``serve.verdict`` / ``serve.alert`` / ``serve.worker_crash``
            events.
        metrics: optional registry (windows, executions, alarms,
            crashes, recoveries, backpressure, classify latency).
        health: optional :class:`~repro.obs.HealthEvaluator` fed every
            verdict and classify latency in-process; it observes but
            never alters verdicts.
        archive_sink: optional :class:`~repro.obs.archive.ArchiveSink`
            fed every verdict and host alert with the same timestamp the
            trace event carries, so a run archived live and the same run
            re-ingested from its dumped trace produce one identical
            (deduplicated) segment.
        quality: optional :class:`~repro.obs.QualityTracker` fed every
            emitted verdict's reduced feature windows and graded scores
            (keyed by host, so the tracker's per-host windows report
            per-host drift); observes only — verdicts stay bit-identical
            — and None costs one attribute check per execution.
    """

    def __init__(
        self,
        detector: HMDDetector,
        producers: int = 1,
        workers: int = 1,
        queue_depth: int = 64,
        n_counters: int = 4,
        vote_threshold: float = 0.5,
        window_ms: float = DEFAULT_WINDOW_MS,
        host_vote_windows: int = 16,
        faults: ServiceFaultPlan | None = None,
        pool_seed: int = 0,
        tracer: Tracer | None = None,
        metrics: Registry | None = None,
        health: HealthEvaluator | None = None,
        archive_sink: ArchiveSink | None = None,
        quality: QualityTracker | None = None,
    ) -> None:
        validate_deployment(detector, n_counters, vote_threshold)
        if producers < 1:
            raise ValueError(f"producers must be >= 1, got {producers}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if host_vote_windows < 1:
            raise ValueError(
                f"host_vote_windows must be >= 1, got {host_vote_windows}"
            )
        self.detector = detector
        self.producers = producers
        self.workers = workers
        self.queue_depth = queue_depth
        self.n_counters = n_counters
        self.vote_threshold = vote_threshold
        self.window_ms = window_ms
        self.host_vote_windows = host_vote_windows
        self.faults = faults
        self.pool_seed = pool_seed
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.health = health
        self.archive_sink = archive_sink
        self.quality = quality
        self._metrics_lock = threading.Lock()
        self._c_executions = self.metrics.counter(
            "serve_executions_total", "executions streamed to a verdict"
        )
        self._c_windows = self.metrics.counter(
            "serve_windows_total", "sampling windows classified by the service"
        )
        self._c_alarms = self.metrics.counter(
            "serve_alarms_total", "execution-level malware alarms raised"
        )
        self._c_host_alerts = self.metrics.counter(
            "serve_host_alerts_total", "per-host sliding-vote alerts raised"
        )
        self._c_crashes = self.metrics.counter(
            "serve_worker_crashes_total", "injected detector-worker crashes"
        )
        self._c_recovered = self.metrics.counter(
            "serve_recovered_windows_total",
            "windows rebuilt from the ledger by restarted workers",
        )
        self._c_backpressure = self.metrics.counter(
            "serve_backpressure_waits_total",
            "publishes that blocked on a full channel",
        )
        self._h_classify = self.metrics.histogram(
            "serve_window_classify_seconds",
            "per-window classification latency (amortized over each "
            "closed window's batch)",
            buckets=FAST_LATENCY_BUCKETS,
        )

    # -- producers ------------------------------------------------------
    def _produce(self, state: _RunState) -> None:
        """Claim executions, run them, and stream their windows."""
        while True:
            with state.job_lock:
                if state.next_job >= len(state.records):
                    return
                record = state.records[state.next_job]
                state.next_job += 1
            job = record.job
            pool = ContainerPool(seed=self.pool_seed + record.index)
            trace = pool.run(
                job.app, job.n_windows, job.is_malware, window_ms=self.window_ms
            )
            # Ledger before wire: recovery must never see less than a
            # worker could have consumed.
            record.trace = trace
            channel = state.bus.shards[record.shard]
            for seq in range(trace.shape[0]):
                channel.publish(
                    WindowSample(record.job.host_name, record.index, seq, trace[seq])
                )
            record.closed = True
            channel.publish(
                WindowClosed(
                    record.job.host_name, record.index, job.app.name, job.n_windows
                )
            )

    # -- workers --------------------------------------------------------
    def _assemble(self, rows: dict[int, np.ndarray], n_windows: int) -> np.ndarray:
        if n_windows == 0:
            return np.zeros((0, len(ALL_EVENTS)))
        return np.stack([rows[seq] for seq in range(n_windows)])

    def _emit_verdict(
        self, state: _RunState, closed: WindowClosed, verdict: DetectionVerdict,
        elapsed: float, trace: np.ndarray | None = None,
        readings: np.ndarray | None = None, scores: np.ndarray | None = None,
    ) -> None:
        """Publish one verdict exactly once, no matter who computed it."""
        with state.verdict_lock:
            if closed.execution in state.verdicts:
                return
            state.verdicts[closed.execution] = verdict
            remaining = len(state.records) - len(state.verdicts)
        n = verdict.n_windows
        with self._metrics_lock:
            self._c_executions.inc()
            self._c_windows.inc(n)
            if verdict.is_malware:
                self._c_alarms.inc()
            if n:
                self._h_classify.observe_many(elapsed / n, n)
        latency = detection_latency_windows(
            verdict.window_flags, self.vote_threshold
        )
        # One wall-clock read shared by the trace event and the archive
        # sink: both records must carry the identical timestamp so a
        # live-archived run dedupes against re-ingesting its own trace.
        ts = time.time()
        self.tracer.event(
            "serve.verdict",
            ts=ts,
            app=verdict.app_name,
            host=closed.host,
            index=closed.execution,
            is_malware=verdict.is_malware,
            malware_fraction=verdict.malware_fraction,
            n_windows=n,
            n_windows_lost=verdict.n_windows_lost,
            degraded=verdict.degraded,
            detection_latency_windows=latency,
        )
        if self.archive_sink is not None:
            self.archive_sink.observe_verdict(
                ts=ts,
                host=closed.host,
                app=verdict.app_name,
                execution=closed.execution,
                is_malware=verdict.is_malware,
                malware_fraction=verdict.malware_fraction,
                n_windows=n,
                n_windows_lost=verdict.n_windows_lost,
                degraded=verdict.degraded,
                latency=latency,
            )
        if self.health is not None:
            if n:
                self.health.observe_classify(elapsed / n, n)
            self.health.observe_verdict(
                verdict.app_name,
                is_malware=verdict.is_malware,
                degraded=verdict.degraded,
                n_windows=n,
                n_windows_lost=verdict.n_windows_lost,
            )
        if self.quality is not None and trace is not None:
            # Inside the exactly-once guard above, so a ledger-recovery
            # duplicate can never double-count drift evidence; shares
            # the verdict's timestamp so replays score identically.
            observe_execution_quality(
                self.quality, self.detector, self.n_counters, trace,
                verdict, self.vote_threshold,
                state.records[closed.execution].job.is_malware,
                closed.host, ts=ts, readings=readings, scores=scores,
            )
        self._observe_host(state, closed.host, closed.execution, verdict)
        if remaining == 0:
            state.done.set()

    def _observe_host(
        self, state: _RunState, host: str, execution: int,
        verdict: DetectionVerdict,
    ) -> None:
        """Slide the host's vote window; alert when a full window trips.

        Only the host's shard owner ever touches its deque (incarnations
        of one shard never overlap), so no lock is needed.
        """
        window = state.host_flags.get(host)
        if window is None:
            window = state.host_flags.setdefault(
                host, deque(maxlen=self.host_vote_windows)
            )
        window.extend(int(flag) for flag in verdict.window_flags)
        if len(window) < self.host_vote_windows:
            return
        fraction = sum(window) / len(window)
        if fraction >= self.vote_threshold:
            alert = {
                "host": host,
                "execution": execution,
                "fraction": fraction,
                "windows": len(window),
            }
            state.alerts.append(alert)
            with self._metrics_lock:
                self._c_host_alerts.inc()
            ts = time.time()
            self.tracer.event("serve.alert", ts=ts, **alert)
            if self.archive_sink is not None:
                self.archive_sink.observe_alert(
                    ts=ts,
                    rule=HOST_VOTE_RULE,
                    host=host,
                    severity="critical",
                    state="firing",
                    value=fraction,
                )

    def _handle_close(
        self, state: _RunState, assembly: dict[int, dict[int, np.ndarray]],
        closed: WindowClosed,
    ) -> None:
        rows = assembly.get(closed.execution, {})
        if len(rows) < closed.n_windows:
            # Torn assembly: some windows were consumed by a crashed
            # incarnation.  The recovery pass that follows every crash
            # rebuilds the full assembly from the ledger, so a complete
            # close for this execution is still coming — skip this one.
            return
        with state.verdict_lock:
            already = closed.execution in state.verdicts
        if already:
            assembly.pop(closed.execution, None)
            return
        trace = self._assemble(rows, closed.n_windows)
        start = time.perf_counter()
        readings = scores = None
        if self.quality is None or trace.shape[0] == 0:
            flags = classify_trace(self.detector, self.n_counters, trace)
        else:
            # One reduce + one probability pass serves both the verdict
            # and the drift scorer; flags stay bit-identical to the
            # quality=None classify path (the ledger trace is pristine,
            # so sharing the readings is sound here — unlike the fleet's
            # possibly-glitched register file).
            readings = reduce_trace(self.detector, self.n_counters, trace)
            flags, scores = self.detector.grade_windows(readings)
        elapsed = time.perf_counter() - start
        verdict = DetectionVerdict.from_flags(
            closed.app_name, flags, self.vote_threshold
        )
        self._emit_verdict(
            state, closed, verdict, elapsed, trace,
            readings=readings, scores=scores,
        )
        assembly.pop(closed.execution, None)

    def _recover(
        self, state: _RunState, shard: int,
        assembly: dict[int, dict[int, np.ndarray]],
    ) -> None:
        """Rebuild a restarted worker's state from the ledger.

        The previous incarnation's consumed-but-unverdicted messages
        died with it; the ledger holds every produced execution in
        full, so recovery replays from there instead of republishing
        into a bounded channel (which could deadlock against a full
        queue with no consumer).  Duplicates still in the channel are
        harmless — assembly is keyed by ``(execution, seq)`` and
        emission is check-and-set.
        """
        for record in state.records_for_shard(shard):
            trace = record.trace
            if trace is None:
                continue
            with state.verdict_lock:
                if record.index in state.verdicts:
                    continue
            assembly[record.index] = {
                seq: trace[seq] for seq in range(trace.shape[0])
            }
            with state.stat_lock:
                state.recovered_windows += trace.shape[0]
            with self._metrics_lock:
                self._c_recovered.inc(trace.shape[0])
            if record.closed:
                self._handle_close(
                    state,
                    assembly,
                    WindowClosed(
                        record.job.host_name,
                        record.index,
                        record.job.app.name,
                        record.job.n_windows,
                    ),
                )

    def _worker_incarnation(
        self, state: _RunState, worker_index: int, incarnation: int
    ) -> None:
        """One worker life: recover, then consume until shutdown or crash."""
        channel = state.bus.shards[worker_index]
        assembly: dict[int, dict[int, np.ndarray]] = {}
        if incarnation > 0:
            self._recover(state, worker_index, assembly)
        crash_after = (
            self.faults.crash_after(
                worker_index, incarnation, scale=state.crash_scale
            )
            if self.faults is not None
            else None
        )
        consumed = 0
        while True:
            message = channel.consume()
            if message is SHUTDOWN:
                return
            consumed += 1
            if crash_after is not None and consumed >= crash_after:
                # The message just consumed dies with the worker — the
                # loss the ledger recovery exists to repair.
                raise WorkerCrashError(
                    f"injected crash: worker {worker_index} incarnation "
                    f"{incarnation} after {consumed} messages"
                )
            if isinstance(message, WindowSample):
                assembly.setdefault(message.execution, {})[message.seq] = message.row
            elif isinstance(message, WindowClosed):
                self._handle_close(state, assembly, message)

    def _worker_loop(self, state: _RunState, worker_index: int) -> None:
        """Supervised worker: every injected crash becomes a restart."""
        incarnation = 0
        while True:
            try:
                self._worker_incarnation(state, worker_index, incarnation)
                return
            except WorkerCrashError:
                with state.stat_lock:
                    state.crashes += 1
                with self._metrics_lock:
                    self._c_crashes.inc()
                self.tracer.event(
                    "serve.worker_crash",
                    worker=worker_index,
                    incarnation=incarnation,
                )
                incarnation += 1
            except BaseException as exc:  # pragma: no cover - defensive
                with state.stat_lock:
                    state.failures.append(exc)
                state.done.set()
                return

    def _produce_loop(self, state: _RunState) -> None:
        try:
            self._produce(state)
        except BaseException as exc:  # pragma: no cover - defensive
            with state.stat_lock:
                state.failures.append(exc)
            state.done.set()

    # -- the service ----------------------------------------------------
    def run(self, jobs: Iterable[ServeJob | Sequence]) -> ServiceReport:
        """Stream every job through the service to exactly one verdict.

        Jobs may be :class:`ServeJob` instances or ``(app, n_windows,
        is_malware)`` tuples.  Returns when every submitted execution
        has closed and emitted its verdict — a bounded run of the
        long-running service loop, which is also how the benchmark and
        the CLI drive it.
        """
        normalized = [
            job if isinstance(job, ServeJob) else ServeJob(*job) for job in jobs
        ]
        bus = Bus(self.workers, self.queue_depth)
        records = [
            _ExecutionRecord(index=i, job=job, shard=bus.shard_for(job.host_name))
            for i, job in enumerate(normalized)
        ]
        state = _RunState(records, bus)
        started = time.perf_counter()
        with self.tracer.span(
            "serve.run",
            n_jobs=len(records),
            producers=self.producers,
            workers=self.workers,
            queue_depth=self.queue_depth,
        ) as span:
            if not records:
                state.done.set()
            worker_threads = [
                threading.Thread(
                    target=self._worker_loop, args=(state, w),
                    name=f"serve-worker-{w}", daemon=True,
                )
                for w in range(self.workers)
            ]
            producer_threads = [
                threading.Thread(
                    target=self._produce_loop, args=(state,),
                    name=f"serve-producer-{p}", daemon=True,
                )
                for p in range(self.producers)
            ]
            for thread in worker_threads + producer_threads:
                thread.start()
            state.done.wait()
            if state.failures:
                raise RuntimeError(
                    "streaming service failed"
                ) from state.failures[0]
            for thread in producer_threads:
                thread.join()
            for channel in bus.shards:
                channel.publish(SHUTDOWN)
            for thread in worker_threads:
                thread.join()
            wall = time.perf_counter() - started
            with self._metrics_lock:
                self._c_backpressure.inc(bus.backpressure_waits)
            span.set(
                crashes=state.crashes,
                backpressure_waits=bus.backpressure_waits,
            )
        if len(state.verdicts) != len(records):  # pragma: no cover - invariant
            raise RuntimeError(
                f"verdict totality violated: {len(state.verdicts)} verdicts "
                f"for {len(records)} closed windows"
            )
        verdicts = tuple(state.verdicts[i] for i in range(len(records)))
        return ServiceReport(
            verdicts=verdicts,
            alerts=tuple(state.alerts),
            n_windows=sum(v.n_windows for v in verdicts),
            worker_crashes=state.crashes,
            recovered_windows=state.recovered_windows,
            backpressure_waits=bus.backpressure_waits,
            wall_seconds=wall,
        )
