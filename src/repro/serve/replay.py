"""Capacity-planning replay: re-drive the service from archived traffic.

An archived ``serve`` segment (see :mod:`repro.obs.archive`) carries the
run's workload parameters in its manifest ``run_meta``, so the exact
job stream can be reconstructed — same corpus seed, same train/test
split, same family stride and round count, same per-execution container
pool seeds.  :func:`replay_segment` rebuilds that workload, streams it
through a fresh :class:`~repro.serve.service.DetectionService` (with
optionally scaled producer/worker/queue geometry), and compares every
replayed verdict bit-for-bit against the archived columns.

Two uses:

* **fidelity** — at ``repeat=1`` the replay must be bit-identical to
  the archived record (flag, malware fraction, window counts, detection
  latency); any mismatch raises :class:`ReplayMismatchError`.  This is
  the archive's end-to-end integrity check.
* **capacity planning** — ``repeat=N`` streams the archived day N times
  back-to-back and reports the achieved speed relative to the original
  run's recorded wall time (``speedup``), answering "could this
  geometry absorb N× the archived traffic?".

Replay is deterministic because verdicts are a pure function of the
reconstructed traces (the PR-6 determinism contract); injected worker
crashes in the original run never altered its verdicts, so replays run
fault-free and still match.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.detector import HMDDetector
from repro.core.runtime import detection_latency_windows
from repro.ml import app_level_split
from repro.obs.archive import Archive, ArchiveError, SegmentData
from repro.serve.service import DetectionService, ServeJob
from repro.workloads import BENIGN_FAMILIES, MALWARE_FAMILIES, default_corpus
from repro.workloads.dataset import MALWARE


class ReplayError(ArchiveError):
    """The segment cannot be replayed (missing/unsupported run_meta)."""


class ReplayMismatchError(ReplayError):
    """A replayed verdict differed from the archived record at 1×."""


#: run_meta keys replay needs to rebuild the workload and detector.
REQUIRED_META = (
    "seed",
    "windows",
    "split_seed",
    "classifier",
    "ensemble",
    "hpcs",
    "counters",
    "vote_threshold",
    "stride",
    "rounds",
    "host_vote_windows",
)


def serve_run_meta(
    *,
    seed: int,
    windows: int,
    split_seed: int,
    classifier: str,
    ensemble: str,
    hpcs: int,
    counters: int,
    vote_threshold: float,
    stride: int,
    rounds: int,
    host_vote_windows: int,
    producers: int,
    workers: int,
    queue_depth: int,
) -> dict:
    """The manifest ``run_meta`` dict a replayable ``serve`` run records."""
    return {
        "command": "serve",
        "seed": int(seed),
        "windows": int(windows),
        "split_seed": int(split_seed),
        "classifier": str(classifier),
        "ensemble": str(ensemble),
        "hpcs": int(hpcs),
        "counters": int(counters),
        "vote_threshold": float(vote_threshold),
        "stride": int(stride),
        "rounds": int(rounds),
        "host_vote_windows": int(host_vote_windows),
        "producers": int(producers),
        "workers": int(workers),
        "queue_depth": int(queue_depth),
    }


def build_serve_workload(run_meta: dict) -> tuple[HMDDetector, list[ServeJob]]:
    """Reconstruct the detector and job stream a ``serve`` run executed.

    Mirrors ``repro-hmd serve`` exactly: corpus from ``seed``/``windows``,
    70/30 app-level split on ``split_seed``, detector fitted on the train
    half, and one job per family (strided) per round with the family rng
    seeded ``seed + 100``.
    """
    missing = [key for key in REQUIRED_META if key not in run_meta]
    if missing:
        raise ReplayError(
            f"run_meta is missing replay keys: {', '.join(missing)}"
        )
    if run_meta.get("command") != "serve":
        raise ReplayError(
            f"only 'serve' runs can be replayed, got "
            f"{run_meta.get('command')!r}"
        )
    corpus = default_corpus(
        seed=int(run_meta["seed"]), windows_per_app=int(run_meta["windows"])
    )
    split = app_level_split(corpus, 0.7, seed=int(run_meta["split_seed"]))
    config = DetectorConfig(
        run_meta["classifier"], run_meta["ensemble"], int(run_meta["hpcs"])
    )
    detector = HMDDetector(config).fit(split.train)
    rng = np.random.default_rng(int(run_meta["seed"]) + 100)
    hosts = []
    for family in (BENIGN_FAMILIES + MALWARE_FAMILIES)[:: int(run_meta["stride"])]:
        app = family.instantiate(rng)[0]
        hosts.append((app, family.label == MALWARE))
    jobs = [
        ServeJob(app, int(run_meta["windows"]), truth)
        for _ in range(int(run_meta["rounds"]))
        for app, truth in hosts
    ]
    return detector, jobs


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying one archived segment.

    ``speedup`` is archived traffic time delivered per unit of replay
    wall time: ``repeat × archived_seconds / replay_seconds`` (0.0 when
    the archive recorded no wall time).  ``matched`` counts replayed
    verdicts compared bit-identical against the archive (every archived
    verdict, ``repeat`` times).
    """

    segment_id: str
    repeat: int
    executions: int
    n_windows: int
    matched: int
    archived_seconds: float
    replay_seconds: float
    producers: int
    workers: int
    queue_depth: int

    @property
    def speedup(self) -> float:
        if self.replay_seconds <= 0 or self.archived_seconds <= 0:
            return 0.0
        return self.repeat * self.archived_seconds / self.replay_seconds

    @property
    def windows_per_second(self) -> float:
        if self.replay_seconds <= 0:
            return 0.0
        return self.repeat * self.n_windows / self.replay_seconds


def archived_wall_seconds(segment: SegmentData) -> float:
    """The original run's recorded wall time for speed comparisons.

    Prefers the ``serve.run`` span; falls back to the verdict timestamp
    range when the segment was ingested without spans (e.g. straight
    from an :class:`~repro.obs.archive.ArchiveSink`).
    """
    wall = segment.span_seconds("serve.run")
    if wall > 0:
        return wall
    ts = segment.verdicts["ts"]
    return float(ts.max() - ts.min()) if ts.size > 1 else 0.0


def _archived_rows(segment: SegmentData) -> dict[int, dict]:
    hosts = segment.resolve(segment.verdicts["host"])
    apps = segment.resolve(segment.verdicts["app"])
    rows: dict[int, dict] = {}
    for i in range(segment.n_verdicts):
        execution = int(segment.verdicts["execution"][i])
        rows[execution] = {
            "host": str(hosts[i]),
            "app": str(apps[i]),
            "flag": bool(segment.verdicts["flag"][i]),
            "fraction": float(segment.verdicts["fraction"][i]),
            "n_windows": int(segment.verdicts["windows"][i]),
            "lost": int(segment.verdicts["lost"][i]),
            "degraded": bool(segment.verdicts["degraded"][i]),
            "latency": int(segment.verdicts["latency"][i]),
        }
    return rows


def replay_segment(
    archive: Archive,
    segment_id: str | None = None,
    repeat: int = 1,
    producers: int | None = None,
    workers: int | None = None,
    queue_depth: int | None = None,
) -> ReplayResult:
    """Re-drive the service from one archived segment and verify it.

    Args:
        archive: the fleet archive.
        segment_id: segment to replay (id or unique prefix); None picks
            the most recently ingested replayable (``serve``) segment.
        repeat: how many times to stream the archived workload
            back-to-back (capacity planning at N× archived traffic).
        producers / workers / queue_depth: geometry overrides; None
            keeps the archived run's geometry.

    Every replayed verdict is compared against the archived record —
    flag, malware fraction, window counts, lost windows, degraded bit,
    detection latency — and any difference raises
    :class:`ReplayMismatchError`.  The determinism contract makes this
    exact at every ``repeat`` and geometry, so the assertion always
    holds, not just at 1×.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    if segment_id is not None:
        entry = archive.entry(segment_id)
    else:
        candidates = [
            e for e in archive.segments()
            if (e.get("run_meta") or {}).get("command") == "serve"
        ]
        if not candidates:
            raise ReplayError("archive holds no replayable 'serve' segments")
        entry = candidates[-1]
    run_meta = entry.get("run_meta") or {}
    detector, jobs = build_serve_workload(run_meta)
    segment = archive.load_segment(entry)
    archived = _archived_rows(segment)
    if len(archived) != len(jobs):
        raise ReplayMismatchError(
            f"segment {entry['segment_id'][:12]} archives {len(archived)} "
            f"verdicts but the reconstructed workload has {len(jobs)} jobs"
        )
    service = DetectionService(
        detector,
        producers=int(producers if producers is not None
                      else run_meta.get("producers", 1)),
        workers=int(workers if workers is not None
                    else run_meta.get("workers", 1)),
        queue_depth=int(queue_depth if queue_depth is not None
                        else run_meta.get("queue_depth", 64)),
        n_counters=int(run_meta["counters"]),
        vote_threshold=float(run_meta["vote_threshold"]),
        host_vote_windows=int(run_meta["host_vote_windows"]),
        pool_seed=int(run_meta["seed"]) + 99,
    )
    matched = 0
    n_windows = 0
    started = time.perf_counter()
    for _ in range(repeat):
        report = service.run(jobs)
        for index, verdict in enumerate(report.verdicts):
            want = archived.get(index)
            if want is None:
                raise ReplayMismatchError(
                    f"archive has no verdict for execution {index}"
                )
            latency = detection_latency_windows(
                verdict.window_flags, service.vote_threshold
            )
            got = {
                "host": jobs[index].host_name,
                "app": verdict.app_name,
                "flag": bool(verdict.is_malware),
                "fraction": float(verdict.malware_fraction),
                "n_windows": int(verdict.n_windows),
                "lost": int(verdict.n_windows_lost),
                "degraded": bool(verdict.degraded),
                "latency": -1 if latency is None else int(latency),
            }
            if got != want:
                diffs = {
                    key: (got[key], want[key])
                    for key in got if got[key] != want[key]
                }
                raise ReplayMismatchError(
                    f"execution {index} diverged from the archive: {diffs}"
                )
            matched += 1
        n_windows = report.n_windows
    wall = time.perf_counter() - started
    return ReplayResult(
        segment_id=entry["segment_id"],
        repeat=repeat,
        executions=len(jobs),
        n_windows=n_windows,
        matched=matched,
        archived_seconds=archived_wall_seconds(segment),
        replay_seconds=wall,
        producers=service.producers,
        workers=service.workers,
        queue_depth=service.queue_depth,
    )
