"""Streaming detection service over a bounded in-process queue fabric.

The long-running counterpart of the batch :mod:`repro.core.fleet`
monitor: producers stream per-window HPC samples onto sharded bounded
channels (:mod:`repro.serve.bus`) and detector workers consume them,
classify closed windows through the vectorized inference kernels, and
emit exactly one verdict per execution — including under injected
worker crashes (:class:`~repro.hpc.faults.ServiceFaultPlan`), recovered
from the producer-side ledger (:mod:`repro.serve.service`).
"""

from repro.serve.bus import SHUTDOWN, Bus, Channel, WindowClosed, WindowSample
from repro.serve.replay import (
    ReplayError,
    ReplayMismatchError,
    ReplayResult,
    archived_wall_seconds,
    build_serve_workload,
    replay_segment,
    serve_run_meta,
)
from repro.serve.service import DetectionService, ServeJob, ServiceReport

__all__ = [
    "Bus",
    "Channel",
    "DetectionService",
    "ReplayError",
    "ReplayMismatchError",
    "ReplayResult",
    "SHUTDOWN",
    "ServeJob",
    "ServiceReport",
    "WindowClosed",
    "WindowSample",
    "archived_wall_seconds",
    "build_serve_workload",
    "replay_segment",
    "serve_run_meta",
]
