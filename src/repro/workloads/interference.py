"""Multi-tenant interference: detection while other programs co-run.

The paper profiles one application at a time in an isolated container,
but a deployed run-time detector watches a core that shares caches, TLBs
and memory bandwidth with neighbours.  Co-runners perturb the monitored
application's counters in two ways:

* **contention** — shared-resource misses rise with the neighbour's
  memory intensity (cache/TLB/LLC/memory events inflate);
* **counter bleed** — with per-core (not per-process) counters, a
  fraction of the neighbour's own events lands in the monitored counts
  when the OS timeslices both onto the core.

:class:`InterferenceModel` applies both effects to a clean trace, so the
robustness of a trained detector to deployment noise can be measured
without retraining the whole substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hpc.events import ALL_EVENTS, EVENT_INDEX, EventClass

#: Events inflated by shared-resource contention (caches, TLBs, memory).
_CONTENTION_CLASSES = (EventClass.CACHE, EventClass.TLB, EventClass.MEMORY)


@dataclass(frozen=True)
class InterferenceModel:
    """Perturbation applied by one co-running neighbour.

    Attributes:
        memory_intensity: how cache/TLB/memory-hungry the neighbour is,
            in [0, 1]; scales the contention inflation of shared-resource
            miss events (an intensity of 1 roughly doubles them).
        timeslice_bleed: fraction of the neighbour's events that land in
            the monitored counts via core-level counting, in [0, 0.5].
        seed: noise seed.
    """

    memory_intensity: float = 0.3
    timeslice_bleed: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.memory_intensity <= 1.0:
            raise ValueError("memory_intensity must be in [0, 1]")
        if not 0.0 <= self.timeslice_bleed <= 0.5:
            raise ValueError("timeslice_bleed must be in [0, 0.5]")

    def contention_factor(self, event: str) -> float:
        """Multiplicative inflation contention applies to one event."""
        descriptor = EVENT_INDEX[event]
        if descriptor.event_class in _CONTENTION_CLASSES and (
            "miss" in event or event in ("cache_misses", "cache_references")
        ):
            return 1.0 + self.memory_intensity
        return 1.0

    def apply(
        self,
        trace: np.ndarray,
        neighbour_trace: np.ndarray,
        event_names: tuple[str, ...] = ALL_EVENTS,
    ) -> np.ndarray:
        """Perturb a clean trace with a neighbour's co-running activity.

        Args:
            trace: monitored application's windows ``(n, len(event_names))``.
            neighbour_trace: co-runner's windows, same shape (rows beyond
                ``n`` are ignored; shorter neighbours are cycled).
            event_names: column names of both traces.

        Returns:
            Perturbed trace of the same shape.
        """
        trace = np.asarray(trace, dtype=float)
        neighbour_trace = np.asarray(neighbour_trace, dtype=float)
        if trace.shape[1] != len(event_names):
            raise ValueError("trace columns must match event_names")
        if neighbour_trace.shape[1] != trace.shape[1]:
            raise ValueError("neighbour trace must share the event space")
        n = trace.shape[0]
        if neighbour_trace.shape[0] < n:
            repeats = -(-n // neighbour_trace.shape[0])
            neighbour_trace = np.tile(neighbour_trace, (repeats, 1))
        neighbour_trace = neighbour_trace[:n]

        rng = np.random.default_rng(self.seed)
        factors = np.array([self.contention_factor(e) for e in event_names])
        jitter = np.exp(rng.normal(0.0, 0.03, size=trace.shape))
        contended = trace * factors[None, :] * jitter
        return contended + self.timeslice_bleed * neighbour_trace


def perturb_dataset_features(
    features: np.ndarray,
    event_names: tuple[str, ...],
    model: InterferenceModel,
    neighbour_features: np.ndarray,
) -> np.ndarray:
    """Apply interference window-wise to a dataset's feature matrix.

    Neighbour windows are drawn randomly (a deployed system does not
    control which neighbour phase coincides with which window).
    """
    rng = np.random.default_rng(model.seed + 1)
    rows = rng.integers(0, neighbour_features.shape[0], size=features.shape[0])
    return model.apply(features, neighbour_features[rows], event_names)
