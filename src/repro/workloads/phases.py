"""Reusable microarchitectural phase archetypes.

Benign applications and malware families are both assembled from a small
vocabulary of phase archetypes (compute kernels, streaming loops, pointer
chasing, interpreter dispatch, system-call storms, idling, encryption).
Keeping the vocabulary shared between the two classes is deliberate: a
malware sample is not microarchitecturally alien — it *reuses* ordinary
phases in unusual proportions and with unusual rate shifts, which is
precisely why single-counter detection is hard and the classification
problem is interesting.
"""

from __future__ import annotations

import dataclasses

from repro.hpc.microarch import PhaseParameters


def tinted(params: PhaseParameters, **scales: float) -> PhaseParameters:
    """Scale selected latent rates of a phase — a family's payload "tint".

    Real malware does not pause its payload while it happens to be in an
    I/O or control phase: credential scraping keeps touching pages during
    system calls, a dropper keeps interpreting bytecode while staging
    files.  ``tinted(syscall_phase(), itlb_miss_rate=1.5)`` returns the
    same phase with the iTLB pressure of that concurrent payload folded
    in.  Rates are clipped to their physical range after scaling.

    Args:
        params: base phase.
        **scales: field-name → multiplicative factor.
    """
    updates = {}
    for name, factor in scales.items():
        if not hasattr(params, name):
            raise AttributeError(f"PhaseParameters has no field {name!r}")
        ceiling = 4.0 if name in ("ipc", "prefetch_intensity") else 1.0
        updates[name] = float(min(getattr(params, name) * factor, ceiling))
    return dataclasses.replace(params, **updates)


def compute_phase(intensity: float = 1.0) -> PhaseParameters:
    """ALU-bound kernel: high IPC, few memory references, light misses."""
    return PhaseParameters(
        ipc=1.8 * intensity,
        branch_ratio=0.14,
        branch_mispred_rate=0.025,
        load_ratio=0.20,
        store_ratio=0.08,
        l1d_load_miss_rate=0.015,
        l1d_store_miss_rate=0.010,
        llc_miss_rate=0.15,
        frontend_stall_frac=0.10,
        backend_stall_frac=0.15,
    )


def streaming_phase(footprint: float = 1.0) -> PhaseParameters:
    """Sequential array traversal: prefetch-friendly, bandwidth-bound."""
    return PhaseParameters(
        ipc=1.4,
        branch_ratio=0.10,
        branch_mispred_rate=0.01,
        load_ratio=0.38,
        store_ratio=0.16,
        l1d_load_miss_rate=0.05 * footprint,
        l1d_store_miss_rate=0.03 * footprint,
        llc_miss_rate=0.45,
        prefetch_intensity=1.4,
        dtlb_load_miss_rate=0.002,
        backend_stall_frac=0.35,
    )


def pointer_chasing_phase(footprint: float = 1.0) -> PhaseParameters:
    """Linked-structure walks: latency-bound, TLB- and cache-hostile."""
    return PhaseParameters(
        ipc=0.6,
        branch_ratio=0.20,
        branch_mispred_rate=0.06,
        load_ratio=0.42,
        store_ratio=0.08,
        l1d_load_miss_rate=0.10 * footprint,
        llc_miss_rate=0.55,
        dtlb_load_miss_rate=0.015 * footprint,
        prefetch_intensity=0.2,
        backend_stall_frac=0.55,
    )


def branchy_phase(density: float = 1.0) -> PhaseParameters:
    """Control-flow-dominated code: parsers, spell checkers, searches."""
    return PhaseParameters(
        ipc=1.0,
        branch_ratio=min(0.22 * density, 0.45),
        branch_mispred_rate=0.07,
        bpu_miss_rate=0.05,
        load_ratio=0.26,
        store_ratio=0.10,
        l1d_load_miss_rate=0.025,
        l1i_miss_rate=0.015,
        frontend_stall_frac=0.30,
    )


def interpreter_phase(dispatch: float = 1.0) -> PhaseParameters:
    """Bytecode/script interpreter dispatch loop.

    Indirect branches every few instructions, large warm code footprint:
    elevated branch traffic, BPU misses, L1I and iTLB pressure — the
    signature of python/perl/bash payloads.
    """
    return PhaseParameters(
        ipc=0.9,
        branch_ratio=min(0.30 * dispatch, 0.45),
        branch_mispred_rate=0.09,
        bpu_miss_rate=0.08,
        load_ratio=0.30,
        store_ratio=0.14,
        l1d_load_miss_rate=0.03,
        l1i_miss_rate=0.04 * dispatch,
        itlb_miss_rate=0.010 * dispatch,
        dtlb_load_miss_rate=0.006,
        frontend_stall_frac=0.35,
    )


def syscall_phase(rate: float = 1.0) -> PhaseParameters:
    """System-call heavy activity: kernel crossings thrash the front end."""
    return PhaseParameters(
        ipc=0.7,
        branch_ratio=0.19,
        branch_mispred_rate=0.05,
        load_ratio=0.30,
        store_ratio=0.14,
        l1i_miss_rate=0.05 * rate,
        itlb_miss_rate=0.009 * rate,
        dtlb_load_miss_rate=0.008,
        dtlb_store_miss_rate=0.006,
        frontend_stall_frac=0.40,
    )


def idle_phase() -> PhaseParameters:
    """Blocked on input or sleeping: the core barely runs the program."""
    return PhaseParameters(
        ipc=0.4,
        utilization=0.10,
        branch_ratio=0.16,
        load_ratio=0.25,
        store_ratio=0.10,
        noise_sigma=0.20,
    )


def crypto_phase(throughput: float = 1.0) -> PhaseParameters:
    """Block cipher / hash kernel: register-resident, extremely regular."""
    return PhaseParameters(
        ipc=2.2 * throughput,
        branch_ratio=0.06,
        branch_mispred_rate=0.005,
        load_ratio=0.16,
        store_ratio=0.10,
        l1d_load_miss_rate=0.008,
        llc_miss_rate=0.10,
        frontend_stall_frac=0.05,
        backend_stall_frac=0.10,
    )


def store_heavy_phase(volume: float = 1.0) -> PhaseParameters:
    """Bulk in-place rewriting (e.g. file encryption): store-dominated."""
    return PhaseParameters(
        ipc=1.1,
        branch_ratio=0.09,
        load_ratio=0.30,
        store_ratio=min(0.30 * volume, 0.6),
        l1d_store_miss_rate=0.08 * volume,
        l1d_load_miss_rate=0.04,
        llc_miss_rate=0.50,
        dtlb_store_miss_rate=0.010 * volume,
        backend_stall_frac=0.45,
    )


def network_loop_phase(rate: float = 1.0) -> PhaseParameters:
    """Tight packet-emission loop: small, hot, branch-dense, cache-resident."""
    return PhaseParameters(
        ipc=1.5,
        branch_ratio=min(0.28 * rate, 0.45),
        branch_mispred_rate=0.02,
        bpu_miss_rate=0.015,
        load_ratio=0.22,
        store_ratio=0.12,
        l1d_load_miss_rate=0.008,
        l1i_miss_rate=0.004,
        llc_miss_rate=0.12,
        itlb_miss_rate=0.001,
        frontend_stall_frac=0.12,
    )


def mining_phase(throughput: float = 1.0) -> PhaseParameters:
    """Memory-hard proof-of-work kernel (scrypt-like).

    Distinguishes coin miners from benign crypto: the hash core is
    register-resident like :func:`crypto_phase`, but the scratchpad
    deliberately thrashes the LLC and memory controller.
    """
    return PhaseParameters(
        ipc=1.6 * throughput,
        branch_ratio=0.07,
        branch_mispred_rate=0.006,
        load_ratio=0.30,
        store_ratio=0.14,
        l1d_load_miss_rate=0.06,
        llc_miss_rate=0.70,
        dtlb_load_miss_rate=0.006,
        node_remote_ratio=0.10,
        prefetch_intensity=0.15,
        backend_stall_frac=0.40,
    )


def beacon_idle_phase() -> PhaseParameters:
    """Implant dormancy: mostly asleep, but waking to beacon home.

    Unlike a truly idle editor, the periodic wake-ups keep kernel entry
    paths warm (iTLB/branch activity at low utilization).
    """
    return PhaseParameters(
        ipc=0.5,
        utilization=0.18,
        branch_ratio=0.22,
        branch_mispred_rate=0.05,
        load_ratio=0.28,
        store_ratio=0.12,
        l1i_miss_rate=0.03,
        itlb_miss_rate=0.006,
        noise_sigma=0.18,
    )


def scanning_phase(breadth: float = 1.0) -> PhaseParameters:
    """Filesystem/memory sweep: touches many pages once, TLB-hostile."""
    return PhaseParameters(
        ipc=0.8,
        branch_ratio=0.24,
        branch_mispred_rate=0.05,
        load_ratio=0.36,
        store_ratio=0.10,
        l1d_load_miss_rate=0.07,
        llc_miss_rate=0.60,
        dtlb_load_miss_rate=0.020 * breadth,
        dtlb_store_miss_rate=0.008 * breadth,
        itlb_miss_rate=0.012 * breadth,
        node_remote_ratio=0.15,
        backend_stall_frac=0.50,
    )
