"""Evasive malware: payloads that mimic benign microarchitectural profiles.

The follow-up literature to HPC-based detection (e.g. reverse-engineering
HMDs to evade them) asks the question this module makes testable: *how
much accuracy survives when malware deliberately shapes its HPC
footprint toward benign behaviour?*  An attacker can throttle the
payload, interleave benign-looking work, and pad hot loops — all of
which pull the latent phase rates toward a benign cover profile at some
cost in payload throughput.

:func:`evasive_variant` produces an evasion-strength-parameterized copy
of any malware family: each phase's latent rates are geometrically
interpolated toward a benign *cover phase* (log-space blending keeps
rates positive and models multiplicative throttling).  Strength 0 is the
original family; strength 1 is microarchitecturally indistinguishable
from the cover — and correspondingly useless to the attacker, whose
payload throughput shrinks with the same factor.
"""

from __future__ import annotations

import dataclasses
import math

from repro.hpc.microarch import PhaseMix, PhaseParameters
from repro.workloads.corpus import FamilySpec
from repro.workloads.phases import branchy_phase


def blend_phases(
    payload: PhaseParameters, cover: PhaseParameters, strength: float
) -> PhaseParameters:
    """Geometric interpolation of latent rates from payload toward cover.

    Args:
        payload: the malware phase being disguised.
        cover: the benign profile it imitates.
        strength: 0 = payload unchanged, 1 = identical to cover.
    """
    if not 0.0 <= strength <= 1.0:
        raise ValueError("strength must be in [0, 1]")
    fields = {}
    for field in dataclasses.fields(payload):
        a = getattr(payload, field.name)
        b = getattr(cover, field.name)
        fields[field.name] = float(
            math.exp((1.0 - strength) * math.log(max(a, 1e-9))
                     + strength * math.log(max(b, 1e-9)))
        )
    return PhaseParameters(**fields)


def evasive_variant(
    family: FamilySpec,
    strength: float,
    cover: PhaseParameters | None = None,
) -> FamilySpec:
    """Evasion-strength-parameterized copy of a malware family.

    Args:
        family: original malware family.
        strength: how hard the attacker disguises (0 = not at all).
        cover: benign profile imitated; defaults to ordinary
            control-flow-heavy application code (:func:`branchy_phase`),
            the least conspicuous thing to look like.
    """
    cover = cover if cover is not None else branchy_phase()
    phases = [
        PhaseMix(params=blend_phases(mix.params, cover, strength), weight=mix.weight)
        for mix in family.phases
    ]
    return dataclasses.replace(
        family,
        name=f"{family.name}_evasive{int(round(strength * 100)):02d}",
        phases=phases,
        description=f"{family.description} [evasion strength {strength:.0%}]",
    )


def evasive_families(
    families: tuple[FamilySpec, ...] | list[FamilySpec],
    strength: float,
    cover: PhaseParameters | None = None,
) -> tuple[FamilySpec, ...]:
    """Evasive copies of a whole malware family list."""
    return tuple(evasive_variant(f, strength, cover) for f in families)


def payload_throughput(strength: float) -> float:
    """Fraction of malicious work the evasive payload still performs.

    Disguising means substituting cover activity for payload activity;
    geometric blending at strength ``s`` leaves the attacker roughly
    ``(1 - s)`` of the original payload rate.  This is the attacker's
    cost axis for the evasion trade-off curve.
    """
    if not 0.0 <= strength <= 1.0:
        raise ValueError("strength must be in [0, 1]")
    return 1.0 - strength
