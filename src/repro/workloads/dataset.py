"""Dataset container for HPC samples with CSV and WEKA ARFF input/output.

A :class:`Dataset` holds one row per sampling window: the measured event
counts, the binary class label, and provenance (application id, name,
family).  Provenance matters because the paper splits train/test *by
application* — test applications are unseen, not merely test windows —
and a container that forgets which app produced a window cannot do that
split correctly.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

import numpy as np

#: Class label values used across the framework.
BENIGN, MALWARE = 0, 1

LABEL_NAMES = {BENIGN: "benign", MALWARE: "malware"}


@dataclass(frozen=True)
class Dataset:
    """Immutable table of HPC samples with labels and provenance.

    Attributes:
        features: array ``(n_samples, n_features)`` of event counts.
        labels: array ``(n_samples,)`` of 0 (benign) / 1 (malware).
        feature_names: event name of each feature column.
        app_ids: array ``(n_samples,)`` mapping each row to an application.
        app_names: name of each application, indexed by app id.
        app_families: family of each application, indexed by app id.
    """

    features: np.ndarray
    labels: np.ndarray
    feature_names: tuple[str, ...]
    app_ids: np.ndarray
    app_names: tuple[str, ...]
    app_families: tuple[str, ...]

    def __post_init__(self) -> None:
        n = self.features.shape[0]
        if self.labels.shape != (n,):
            raise ValueError("labels must align with feature rows")
        if self.app_ids.shape != (n,):
            raise ValueError("app_ids must align with feature rows")
        if self.features.shape[1] != len(self.feature_names):
            raise ValueError("feature_names must match feature columns")
        if len(self.app_names) != len(self.app_families):
            raise ValueError("app_names and app_families must align")
        if n and int(self.app_ids.max()) >= len(self.app_names):
            raise ValueError("app_ids reference unknown applications")
        bad = set(np.unique(self.labels)) - {BENIGN, MALWARE}
        if bad:
            raise ValueError(f"labels must be 0/1, found {sorted(bad)}")

    # ------------------------------------------------------------------
    # basic views
    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        return self.features.shape[1]

    @property
    def n_apps(self) -> int:
        return len(self.app_names)

    def app_label(self, app_id: int) -> int:
        """Class label of one application (constant across its windows)."""
        rows = np.flatnonzero(self.app_ids == app_id)
        if rows.size == 0:
            raise KeyError(f"application {app_id} has no samples")
        labels = np.unique(self.labels[rows])
        if labels.size != 1:
            raise ValueError(f"application {app_id} has mixed labels")
        return int(labels[0])

    def select_features(self, names: list[str] | tuple[str, ...]) -> "Dataset":
        """Project the dataset onto a subset of event columns, in order."""
        index = {name: i for i, name in enumerate(self.feature_names)}
        missing = [name for name in names if name not in index]
        if missing:
            raise KeyError(f"unknown features: {missing}")
        cols = [index[name] for name in names]
        return Dataset(
            features=self.features[:, cols].copy(),
            labels=self.labels,
            feature_names=tuple(names),
            app_ids=self.app_ids,
            app_names=self.app_names,
            app_families=self.app_families,
        )

    def select_apps(self, app_ids: list[int] | np.ndarray) -> "Dataset":
        """Keep only the samples of the given applications."""
        keep = np.isin(self.app_ids, np.asarray(app_ids))
        return Dataset(
            features=self.features[keep],
            labels=self.labels[keep],
            feature_names=self.feature_names,
            app_ids=self.app_ids[keep],
            app_names=self.app_names,
            app_families=self.app_families,
        )

    def class_counts(self) -> dict[str, int]:
        """Sample counts per class name."""
        return {
            LABEL_NAMES[label]: int((self.labels == label).sum())
            for label in (BENIGN, MALWARE)
        }

    def summary(self) -> str:
        """One-paragraph human-readable description."""
        counts = self.class_counts()
        benign_apps = sum(1 for a in range(self.n_apps) if self.app_label(a) == BENIGN)
        return (
            f"Dataset: {self.n_samples} samples x {self.n_features} events, "
            f"{self.n_apps} applications ({benign_apps} benign, "
            f"{self.n_apps - benign_apps} malware), "
            f"{counts['benign']} benign / {counts['malware']} malware samples"
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_csv(self, path: str | Path) -> None:
        """Write the dataset (with provenance columns) to CSV."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["app_id", "app_name", "family", "label", *self.feature_names])
            for i in range(self.n_samples):
                app = int(self.app_ids[i])
                writer.writerow(
                    [
                        app,
                        self.app_names[app],
                        self.app_families[app],
                        int(self.labels[i]),
                        *(repr(float(v)) for v in self.features[i]),
                    ]
                )

    @classmethod
    def from_csv(cls, path: str | Path) -> "Dataset":
        """Load a dataset previously written by :meth:`to_csv`."""
        path = Path(path)
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            if header[:4] != ["app_id", "app_name", "family", "label"]:
                raise ValueError(f"{path} is not a repro dataset CSV")
            feature_names = tuple(header[4:])
            rows, labels, app_ids = [], [], []
            names: dict[int, str] = {}
            families: dict[int, str] = {}
            for record in reader:
                app = int(record[0])
                names[app] = record[1]
                families[app] = record[2]
                app_ids.append(app)
                labels.append(int(record[3]))
                rows.append([float(v) for v in record[4:]])
        n_apps = max(names) + 1 if names else 0
        return cls(
            features=np.array(rows) if rows else np.zeros((0, len(feature_names))),
            labels=np.array(labels, dtype=np.intp),
            feature_names=feature_names,
            app_ids=np.array(app_ids, dtype=np.intp),
            app_names=tuple(names.get(i, f"app{i}") for i in range(n_apps)),
            app_families=tuple(families.get(i, "unknown") for i in range(n_apps)),
        )

    def to_arff(self, path: str | Path, relation: str = "hmd_hpc_samples") -> None:
        """Write a WEKA ARFF file, the format the paper's toolchain consumes."""
        path = Path(path)
        with path.open("w") as handle:
            handle.write(f"@RELATION {relation}\n\n")
            for name in self.feature_names:
                handle.write(f"@ATTRIBUTE {name} NUMERIC\n")
            handle.write("@ATTRIBUTE class {benign,malware}\n\n@DATA\n")
            for i in range(self.n_samples):
                values = ",".join(repr(float(v)) for v in self.features[i])
                handle.write(f"{values},{LABEL_NAMES[int(self.labels[i])]}\n")


def concatenate(datasets: list[Dataset]) -> Dataset:
    """Stack datasets that share a feature space, re-numbering applications."""
    if not datasets:
        raise ValueError("need at least one dataset")
    names = datasets[0].feature_names
    for ds in datasets[1:]:
        if ds.feature_names != names:
            raise ValueError("datasets have different feature spaces")
    app_names: list[str] = []
    app_families: list[str] = []
    features, labels, app_ids = [], [], []
    for ds in datasets:
        offset = len(app_names)
        app_names.extend(ds.app_names)
        app_families.extend(ds.app_families)
        features.append(ds.features)
        labels.append(ds.labels)
        app_ids.append(ds.app_ids + offset)
    return Dataset(
        features=np.vstack(features),
        labels=np.concatenate(labels),
        feature_names=names,
        app_ids=np.concatenate(app_ids),
        app_names=tuple(app_names),
        app_families=tuple(app_families),
    )
