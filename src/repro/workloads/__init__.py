"""Synthetic workload corpus: benign archetypes and malware families.

Substitutes for the paper's corpus of >100 real applications (MiBench +
Linux programs, and VirusTotal Linux malware).  See DESIGN.md §2 for why
the substitution preserves the behaviour the experiments depend on.
"""

from repro.workloads.benign import BENIGN_FAMILIES
from repro.workloads.corpus import (
    DEFAULT_APP_SIGMA,
    CorpusBuilder,
    FamilySpec,
    default_corpus,
)
from repro.workloads.dataset import (
    BENIGN,
    LABEL_NAMES,
    MALWARE,
    Dataset,
    concatenate,
)
from repro.workloads.interference import (
    InterferenceModel,
    perturb_dataset_features,
)
from repro.workloads.evasion import (
    blend_phases,
    evasive_families,
    evasive_variant,
    payload_throughput,
)
from repro.workloads.malware import MALWARE_FAMILIES

__all__ = [
    "BENIGN",
    "BENIGN_FAMILIES",
    "DEFAULT_APP_SIGMA",
    "LABEL_NAMES",
    "MALWARE",
    "MALWARE_FAMILIES",
    "CorpusBuilder",
    "Dataset",
    "FamilySpec",
    "InterferenceModel",
    "blend_phases",
    "concatenate",
    "default_corpus",
    "evasive_families",
    "evasive_variant",
    "payload_throughput",
    "perturb_dataset_features",
]
