"""Corpus construction: instantiate applications and collect their HPC data.

The paper executes "more than 100 benign and malware applications", each
sampled at 10 ms through Linux ``perf`` inside throwaway LXC containers.
:class:`CorpusBuilder` reproduces that pipeline end to end on the
synthetic substrate: family specs are instantiated into concrete
applications (per-application parameter variation models the diversity of
real binaries within a family), each application is profiled through the
batched 4-counter collection, and all samples are assembled into a
:class:`~repro.workloads.dataset.Dataset` over the full 44-event space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hpc.events import ALL_EVENTS
from repro.hpc.lxc import ContainerPool
from repro.hpc.microarch import (
    DEFAULT_WINDOW_MS,
    ApplicationBehavior,
    PhaseMix,
)
from repro.hpc.perf import BatchedCollection, MultiplexedCollection
from repro.workloads.dataset import BENIGN, MALWARE, Dataset

#: Per-application log-normal variation of phase rates within a family.
DEFAULT_APP_SIGMA: float = 0.10


@dataclass(frozen=True)
class FamilySpec:
    """Template for one family of applications (benign or malicious).

    Attributes:
        name: family identifier (e.g. ``"mibench_telecomm"``).
        label: :data:`~repro.workloads.dataset.BENIGN` or
            :data:`~repro.workloads.dataset.MALWARE`.
        n_apps: how many distinct applications to instantiate.
        phases: phase mixture template shared by the family.
        description: one-line characterization, used in reports.
        mean_dwell_windows: phase dwell time of instantiated applications.
        app_sigma: per-application log-normal variation of phase rates.
    """

    name: str
    label: int
    n_apps: int
    phases: list[PhaseMix] = field(default_factory=list)
    description: str = ""
    mean_dwell_windows: float = 8.0
    app_sigma: float = DEFAULT_APP_SIGMA

    def __post_init__(self) -> None:
        if self.label not in (BENIGN, MALWARE):
            raise ValueError(f"label must be BENIGN/MALWARE, got {self.label}")
        if self.n_apps < 1:
            raise ValueError(f"n_apps must be positive, got {self.n_apps}")
        if not self.phases:
            raise ValueError(f"family {self.name!r} has no phases")

    def instantiate(self, rng: np.random.Generator) -> list[ApplicationBehavior]:
        """Create the family's concrete applications.

        Each application perturbs the template's phase rates and weights,
        so two apps of the same family are similar but not identical —
        like two different flooder binaries.
        """
        apps = []
        for i in range(self.n_apps):
            phases = []
            for mix in self.phases:
                params = mix.params.perturbed(rng, self.app_sigma)
                weight = mix.weight * float(np.exp(rng.normal(0.0, 0.25)))
                phases.append(PhaseMix(params=params, weight=weight))
            apps.append(
                ApplicationBehavior(
                    name=f"{self.name}_{i:02d}",
                    phases=phases,
                    mean_dwell_windows=self.mean_dwell_windows,
                )
            )
        return apps


class CorpusBuilder:
    """Build a labelled HPC dataset from family specifications.

    Args:
        families: the family templates to instantiate (benign + malware).
        seed: master seed controlling instantiation and collection.
        windows_per_app: 10 ms sampling windows collected per application.
        n_counters: programmable counter registers of the modelled CPU.
        window_ms: sampling interval.
        collection: ``"batched"`` (the paper's multi-run protocol) or
            ``"multiplexed"`` (single-run, duty-cycle extrapolated).
        destroy_containers: apply the paper's destroy-after-run policy.
    """

    def __init__(
        self,
        families: tuple[FamilySpec, ...] | list[FamilySpec],
        seed: int = 2018,
        windows_per_app: int = 40,
        n_counters: int = 4,
        window_ms: float = DEFAULT_WINDOW_MS,
        collection: str = "batched",
        destroy_containers: bool = True,
    ) -> None:
        if not families:
            raise ValueError("need at least one family")
        if windows_per_app < 1:
            raise ValueError("windows_per_app must be positive")
        if collection not in ("batched", "multiplexed"):
            raise ValueError(f"unknown collection mode {collection!r}")
        self.families = tuple(families)
        self.seed = seed
        self.windows_per_app = windows_per_app
        self.n_counters = n_counters
        self.window_ms = window_ms
        self.collection = collection
        self.destroy_containers = destroy_containers

    def build(self, events: tuple[str, ...] = ALL_EVENTS) -> Dataset:
        """Profile every application of every family and assemble a dataset.

        Args:
            events: which events to collect (default: all 44).

        Returns:
            Dataset with one row per (application, window).
        """
        rng = np.random.default_rng(self.seed)
        pool = ContainerPool(
            seed=self.seed + 1, destroy_after_run=self.destroy_containers
        )
        if self.collection == "batched":
            collector = BatchedCollection(self.n_counters, self.window_ms)
        else:
            collector = MultiplexedCollection(self.n_counters, self.window_ms)

        feature_blocks: list[np.ndarray] = []
        labels: list[int] = []
        app_ids: list[int] = []
        app_names: list[str] = []
        app_families: list[str] = []
        for family in self.families:
            for app in family.instantiate(rng):
                result = collector.collect(
                    app,
                    events,
                    self.windows_per_app,
                    pool,
                    is_malware=family.label == MALWARE,
                )
                app_id = len(app_names)
                app_names.append(app.name)
                app_families.append(family.name)
                feature_blocks.append(result.samples)
                labels.extend([family.label] * result.samples.shape[0])
                app_ids.extend([app_id] * result.samples.shape[0])
        return Dataset(
            features=np.vstack(feature_blocks),
            labels=np.array(labels, dtype=np.intp),
            feature_names=tuple(events),
            app_ids=np.array(app_ids, dtype=np.intp),
            app_names=tuple(app_names),
            app_families=tuple(app_families),
        )


def default_corpus(
    seed: int = 2018,
    windows_per_app: int = 40,
    collection: str = "batched",
) -> Dataset:
    """Build the paper-scale default corpus (122 apps, 44 events).

    Imports the family lists lazily to avoid a circular import between
    this module and the family definitions.
    """
    from repro.workloads.benign import BENIGN_FAMILIES
    from repro.workloads.malware import MALWARE_FAMILIES

    builder = CorpusBuilder(
        families=BENIGN_FAMILIES + MALWARE_FAMILIES,
        seed=seed,
        windows_per_app=windows_per_app,
        collection=collection,
    )
    return builder.build()
