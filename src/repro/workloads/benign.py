"""Benign application archetypes.

The paper's benign corpus is MiBench (an embedded benchmark suite spanning
automotive, network, telecomm, consumer, security, and office categories)
plus everyday Linux programs: system utilities, browsers, text editors and
a word processor.  Each family below is a phase mixture modelled on the
published characterization of those workloads.
"""

from __future__ import annotations

from repro.hpc.microarch import PhaseMix
from repro.workloads.corpus import FamilySpec
from repro.workloads.dataset import BENIGN
from repro.workloads.phases import (
    branchy_phase,
    compute_phase,
    crypto_phase,
    idle_phase,
    interpreter_phase,
    pointer_chasing_phase,
    streaming_phase,
    syscall_phase,
)

BENIGN_FAMILIES: tuple[FamilySpec, ...] = (
    FamilySpec(
        name="mibench_automotive",
        label=BENIGN,
        n_apps=8,
        phases=[
            PhaseMix(compute_phase(1.0), 0.6),
            PhaseMix(branchy_phase(0.8), 0.25),
            PhaseMix(streaming_phase(0.6), 0.15),
        ],
        description="basicmath/bitcount/qsort/susan: ALU kernels with light control",
    ),
    FamilySpec(
        name="mibench_network",
        label=BENIGN,
        n_apps=6,
        phases=[
            PhaseMix(pointer_chasing_phase(0.8), 0.55),
            PhaseMix(compute_phase(0.7), 0.30),
            PhaseMix(branchy_phase(0.9), 0.15),
        ],
        description="dijkstra/patricia: graph and trie traversal, pointer-bound",
    ),
    FamilySpec(
        name="mibench_telecomm",
        label=BENIGN,
        n_apps=8,
        phases=[
            PhaseMix(streaming_phase(0.8), 0.5),
            PhaseMix(compute_phase(1.2), 0.5),
        ],
        description="FFT/CRC32/ADPCM/GSM: regular signal-processing loops",
    ),
    FamilySpec(
        name="mibench_consumer",
        label=BENIGN,
        n_apps=8,
        phases=[
            PhaseMix(streaming_phase(1.0), 0.4),
            PhaseMix(compute_phase(0.9), 0.35),
            PhaseMix(branchy_phase(1.0), 0.25),
        ],
        description="jpeg/lame/mad/typeset: media codecs, mixed behaviour",
    ),
    FamilySpec(
        name="mibench_security",
        label=BENIGN,
        n_apps=6,
        phases=[
            PhaseMix(crypto_phase(1.0), 0.75),
            PhaseMix(streaming_phase(0.5), 0.25),
        ],
        description="blowfish/rijndael/sha: register-resident crypto kernels",
    ),
    FamilySpec(
        name="mibench_office",
        label=BENIGN,
        n_apps=6,
        phases=[
            PhaseMix(branchy_phase(1.0), 0.6),
            PhaseMix(pointer_chasing_phase(0.6), 0.2),
            PhaseMix(syscall_phase(0.6), 0.2),
        ],
        description="stringsearch/ispell/rsynth: text processing, branch dense",
    ),
    FamilySpec(
        name="system_utils",
        label=BENIGN,
        n_apps=10,
        phases=[
            PhaseMix(syscall_phase(0.8), 0.5),
            PhaseMix(branchy_phase(0.9), 0.3),
            PhaseMix(streaming_phase(0.4), 0.2),
        ],
        description="ls/ps/grep/tar/...: short-lived, kernel-crossing utilities",
    ),
    FamilySpec(
        name="browser",
        label=BENIGN,
        n_apps=4,
        phases=[
            PhaseMix(interpreter_phase(0.85), 0.35),
            PhaseMix(pointer_chasing_phase(1.0), 0.25),
            PhaseMix(idle_phase(), 0.25),
            PhaseMix(syscall_phase(0.8), 0.15),
        ],
        description="web browsers: JS interpreter + DOM walks + waits",
        mean_dwell_windows=12.0,
    ),
    FamilySpec(
        name="editor",
        label=BENIGN,
        n_apps=6,
        phases=[
            PhaseMix(idle_phase(), 0.55),
            PhaseMix(branchy_phase(0.8), 0.25),
            PhaseMix(syscall_phase(0.5), 0.20),
        ],
        description="text editors / word processor: interactive, mostly idle",
        mean_dwell_windows=15.0,
    ),
)
