"""repro — ensemble learning for run-time hardware-based malware detection.

A full reproduction of Sayadi et al., *"Ensemble Learning for Effective
Run-Time Hardware-Based Malware Detection: A Comprehensive Analysis and
Classification"* (DAC 2018), built on a synthetic hardware-performance-
counter substrate.

Subpackages:

* :mod:`repro.hpc` — 44-event catalogue, microarchitecture model, counter
  register file, Perf-style batched/multiplexed collection, LXC contexts.
* :mod:`repro.workloads` — benign archetypes and malware families,
  corpus builder, dataset container with CSV/ARFF I/O.
* :mod:`repro.ml` — the eight WEKA classifiers, AdaBoost.M1, Bagging,
  metrics, and the paper's application-level validation protocol.
* :mod:`repro.features` — correlation attribute evaluation and top-k
  feature reduction (Table 1).
* :mod:`repro.core` — detector configs, the end-to-end pipeline, and the
  run-time streaming monitor.
* :mod:`repro.hardware` — HLS-style latency/area estimation (Table 3).
* :mod:`repro.analysis` — the evaluation matrix and table/figure
  renderers for every experiment in the paper.
* :mod:`repro.obs` — zero-dependency observability: span tracer,
  metrics registry (Prometheus text / JSON snapshot exporters), and the
  ``repro-hmd stats`` renderers; everything is a no-op unless enabled.

Quickstart::

    from repro import DetectorConfig, HMDDetector, app_level_split, default_corpus

    corpus = default_corpus()
    split = app_level_split(corpus, train_fraction=0.7, seed=7)
    detector = HMDDetector(DetectorConfig("REPTree", "boosted", n_hpcs=2))
    detector.fit(split.train)
    print(detector.evaluate(split.test))
"""

from repro.analysis import MatrixRunner, pareto_front, paper_grid, table3_grid
from repro.core import (
    CLASSIFIER_NAMES,
    HPC_BUDGETS,
    DetectorConfig,
    HMDDetector,
    RuntimeMonitor,
    SpecializedEnsembleDetector,
)
from repro.features import FeatureReducer, extract, rank_features
from repro.hardware import FabricConfig, HardwareDesign, generate, lower
from repro.hpc import ALL_EVENTS, TABLE1_RANKED_EVENTS
from repro.ml import (
    BASE_CLASSIFIERS,
    AdaBoostM1,
    Bagging,
    VotingEnsemble,
    app_level_split,
    bootstrap_metric_ci,
    make_classifier,
    mcnemar_test,
)
from repro.obs import Registry, Tracer
from repro.workloads import (
    BENIGN_FAMILIES,
    MALWARE_FAMILIES,
    CorpusBuilder,
    Dataset,
    InterferenceModel,
    default_corpus,
    evasive_families,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_EVENTS",
    "BASE_CLASSIFIERS",
    "BENIGN_FAMILIES",
    "CLASSIFIER_NAMES",
    "HPC_BUDGETS",
    "MALWARE_FAMILIES",
    "TABLE1_RANKED_EVENTS",
    "AdaBoostM1",
    "Bagging",
    "CorpusBuilder",
    "Dataset",
    "DetectorConfig",
    "FabricConfig",
    "FeatureReducer",
    "HMDDetector",
    "HardwareDesign",
    "InterferenceModel",
    "MatrixRunner",
    "Registry",
    "RuntimeMonitor",
    "SpecializedEnsembleDetector",
    "Tracer",
    "VotingEnsemble",
    "__version__",
    "app_level_split",
    "bootstrap_metric_ci",
    "default_corpus",
    "evasive_families",
    "extract",
    "generate",
    "lower",
    "make_classifier",
    "mcnemar_test",
    "paper_grid",
    "pareto_front",
    "rank_features",
    "table3_grid",
]
