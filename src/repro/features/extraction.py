"""Feature extraction: turning raw per-window counts into model inputs.

The paper's Figure 2 pipeline has an explicit *feature extraction* stage
before reduction.  Raw counts conflate program behaviour with how much
the program ran in the window (an idle editor and a busy one differ in
every counter).  This module provides the standard representations the
HMD literature uses:

* **raw** — counts as measured (the paper's configuration);
* **per_kilo_instruction** — events per 1000 retired instructions (PKI),
  the architecture-normalized form: removes utilization, keeps rates;
* **per_cycle** — events per core cycle;
* **delta** — first differences between consecutive windows of one
  application (emphasizes phase changes);
* **rolling mean/std** — sliding-window aggregation that trades
  detection latency for noise suppression.

All extractors preserve the dataset's provenance so the application-level
split protocol keeps working downstream.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.dataset import Dataset

#: Events that normalizers divide by; must be present in the dataset.
INSTRUCTIONS, CYCLES = "instructions", "cpu_cycles"


def _replace_features(dataset: Dataset, features: np.ndarray, names: tuple[str, ...]) -> Dataset:
    return Dataset(
        features=features,
        labels=dataset.labels,
        feature_names=names,
        app_ids=dataset.app_ids,
        app_names=dataset.app_names,
        app_families=dataset.app_families,
    )


def per_kilo_instruction(dataset: Dataset) -> Dataset:
    """Normalize every event to occurrences per 1000 instructions.

    The ``instructions`` column itself is kept raw (it becomes the scale
    carrier); all other columns become PKI rates.

    Raises:
        KeyError: if the dataset lacks the ``instructions`` event.
    """
    if INSTRUCTIONS not in dataset.feature_names:
        raise KeyError(f"dataset lacks {INSTRUCTIONS!r}; collect it to use PKI features")
    instr_col = dataset.feature_names.index(INSTRUCTIONS)
    denominator = np.maximum(dataset.features[:, instr_col], 1.0) / 1000.0
    features = dataset.features / denominator[:, None]
    features[:, instr_col] = dataset.features[:, instr_col]
    names = tuple(
        name if i == instr_col else f"{name}_pki"
        for i, name in enumerate(dataset.feature_names)
    )
    return _replace_features(dataset, features, names)


def per_cycle(dataset: Dataset) -> Dataset:
    """Normalize every event to occurrences per core cycle."""
    if CYCLES not in dataset.feature_names:
        raise KeyError(f"dataset lacks {CYCLES!r}; collect it to use per-cycle features")
    cyc_col = dataset.feature_names.index(CYCLES)
    denominator = np.maximum(dataset.features[:, cyc_col], 1.0)
    features = dataset.features / denominator[:, None]
    features[:, cyc_col] = dataset.features[:, cyc_col]
    names = tuple(
        name if i == cyc_col else f"{name}_pc"
        for i, name in enumerate(dataset.feature_names)
    )
    return _replace_features(dataset, features, names)


def _per_app_transform(dataset: Dataset, transform) -> np.ndarray:
    """Apply a (rows,) -> (rows,) window transform within each application.

    Windows of one application are consecutive rows; transforms must not
    mix windows of different applications.
    """
    out = np.empty_like(dataset.features)
    for app in np.unique(dataset.app_ids):
        rows = np.flatnonzero(dataset.app_ids == app)
        out[rows] = transform(dataset.features[rows])
    return out


def delta_features(dataset: Dataset) -> Dataset:
    """First differences between consecutive windows, per application.

    The first window of each application keeps a zero delta (there is no
    predecessor), so row count and provenance are preserved.
    """

    def diff(block: np.ndarray) -> np.ndarray:
        out = np.zeros_like(block)
        out[1:] = np.diff(block, axis=0)
        return out

    features = _per_app_transform(dataset, diff)
    names = tuple(f"{name}_delta" for name in dataset.feature_names)
    return _replace_features(dataset, features, names)


def rolling_mean(dataset: Dataset, window: int = 4) -> Dataset:
    """Trailing moving average over ``window`` windows, per application.

    Shorter histories at the start of an app average what exists, so no
    rows are dropped.  A detector on rolled features needs ``window``
    samples of history at run time — its detection delay.
    """
    if window < 1:
        raise ValueError("window must be positive")

    def roll(block: np.ndarray) -> np.ndarray:
        out = np.empty_like(block)
        cumulative = np.cumsum(block, axis=0)
        for i in range(block.shape[0]):
            start = max(0, i - window + 1)
            total = cumulative[i] - (cumulative[start - 1] if start > 0 else 0)
            out[i] = total / (i - start + 1)
        return out

    features = _per_app_transform(dataset, roll)
    names = tuple(f"{name}_ma{window}" for name in dataset.feature_names)
    return _replace_features(dataset, features, names)


def rolling_std(dataset: Dataset, window: int = 4) -> Dataset:
    """Trailing moving standard deviation, per application.

    Captures burstiness: malware with phase-switching payloads shows
    higher within-app variance than steady benign kernels.
    """
    if window < 2:
        raise ValueError("window must be at least 2")

    def roll(block: np.ndarray) -> np.ndarray:
        out = np.zeros_like(block)
        for i in range(block.shape[0]):
            start = max(0, i - window + 1)
            out[i] = block[start : i + 1].std(axis=0)
        return out

    features = _per_app_transform(dataset, roll)
    names = tuple(f"{name}_sd{window}" for name in dataset.feature_names)
    return _replace_features(dataset, features, names)


EXTRACTORS = {
    "raw": lambda ds: ds,
    "per_kilo_instruction": per_kilo_instruction,
    "per_cycle": per_cycle,
    "delta": delta_features,
    "rolling_mean": rolling_mean,
    "rolling_std": rolling_std,
}


def extract(dataset: Dataset, mode: str = "raw", **kwargs) -> Dataset:
    """Apply one named extraction mode to a dataset."""
    if mode not in EXTRACTORS:
        raise ValueError(f"unknown extraction mode {mode!r}; choose from {sorted(EXTRACTORS)}")
    return EXTRACTORS[mode](dataset, **kwargs) if kwargs else EXTRACTORS[mode](dataset)
