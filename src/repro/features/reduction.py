"""Feature-reduction pipeline stage (paper §3.2).

Combines ranking with selection: fit on a *training* dataset (ranking on
test data would leak), then project any dataset onto the selected top-k
events.  The paper reduces 44 captured events to the 16 of Table 1, and
the 8/4/2-HPC detectors use prefixes of that ranking.
"""

from __future__ import annotations

from repro.features.correlation import FeatureRanking, rank_features
from repro.workloads.dataset import Dataset


class FeatureReducer:
    """Fit-once, apply-many feature selection.

    Args:
        n_features: events to keep (paper: 16, then 8/4/2 prefixes).
        method: ranking method, see :func:`rank_features`.
    """

    def __init__(self, n_features: int = 16, method: str = "correlation") -> None:
        if n_features < 1:
            raise ValueError("n_features must be positive")
        self.n_features = n_features
        self.method = method
        self.ranking_: FeatureRanking | None = None

    def fit(self, dataset: Dataset) -> "FeatureReducer":
        """Rank the training dataset's attributes."""
        if dataset.n_features < self.n_features:
            raise ValueError(
                f"dataset has {dataset.n_features} features, "
                f"cannot select {self.n_features}"
            )
        self.ranking_ = rank_features(dataset, self.method)
        return self

    @property
    def selected(self) -> tuple[str, ...]:
        """The selected event names, most important first."""
        if self.ranking_ is None:
            raise RuntimeError("FeatureReducer is not fitted")
        return self.ranking_.top(self.n_features)

    def transform(self, dataset: Dataset) -> Dataset:
        """Project a dataset onto the selected events."""
        return dataset.select_features(list(self.selected))

    def fit_transform(self, dataset: Dataset) -> Dataset:
        return self.fit(dataset).transform(dataset)
