"""Correlation attribute evaluation, as in WEKA's ``CorrelationAttributeEval``.

The paper's feature-reduction stage (§3.2) scores each of the 44 captured
events by the absolute Pearson correlation between the event and the
class variable, ranks them, and keeps the top 16 (Table 1).  Smaller
budgets (8/4/2) are prefixes of the same ranking, matching the paper's
"numbered in order of importance" usage.

An information-gain ranker is provided as the ablation alternative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.discretize import mdl_cut_points
from repro.workloads.dataset import Dataset

_EPS = 1e-12


def pearson_correlation(values: np.ndarray, labels: np.ndarray) -> float:
    """Pearson correlation between one numeric attribute and the 0/1 class."""
    values = np.asarray(values, dtype=float)
    labels = np.asarray(labels, dtype=float)
    vc = values - values.mean()
    lc = labels - labels.mean()
    denom = np.sqrt((vc * vc).sum() * (lc * lc).sum())
    if denom < _EPS:
        return 0.0
    return float((vc * lc).sum() / denom)


def information_gain(values: np.ndarray, labels: np.ndarray) -> float:
    """Class-entropy reduction of MDL-discretizing one attribute (bits)."""
    labels = np.asarray(labels, dtype=np.intp)
    counts = np.bincount(labels, minlength=2).astype(float)
    p = counts[counts > 0] / counts.sum()
    class_entropy = float(-(p * np.log2(p)).sum())
    cuts = mdl_cut_points(values, labels)
    if not cuts:
        return 0.0
    bins = np.searchsorted(np.asarray(cuts), values, side="right")
    conditional = 0.0
    n = len(labels)
    for b in np.unique(bins):
        mask = bins == b
        sub = np.bincount(labels[mask], minlength=2).astype(float)
        q = sub[sub > 0] / sub.sum()
        conditional += (mask.sum() / n) * float(-(q * np.log2(q)).sum())
    return class_entropy - conditional


@dataclass(frozen=True)
class FeatureRanking:
    """Scored, descending-order attribute ranking.

    Attributes:
        names: attribute names, most important first.
        scores: score of each attribute, aligned with ``names``.
        method: ``"correlation"`` or ``"information_gain"``.
    """

    names: tuple[str, ...]
    scores: tuple[float, ...]
    method: str

    def top(self, k: int) -> tuple[str, ...]:
        """The ``k`` most important attribute names (paper: 16/8/4/2)."""
        if not 1 <= k <= len(self.names):
            raise ValueError(f"k must be in [1, {len(self.names)}], got {k}")
        return self.names[:k]

    def score_of(self, name: str) -> float:
        try:
            return self.scores[self.names.index(name)]
        except ValueError:
            raise KeyError(f"attribute {name!r} not in ranking") from None

    def __str__(self) -> str:
        lines = [f"Feature ranking ({self.method}):"]
        lines += [
            f"{i + 1:3d}. {name:28s} {score:.4f}"
            for i, (name, score) in enumerate(zip(self.names, self.scores))
        ]
        return "\n".join(lines)


def rank_features(dataset: Dataset, method: str = "correlation") -> FeatureRanking:
    """Score and rank every attribute of a dataset against its class.

    Args:
        dataset: labelled samples over any event set.
        method: ``"correlation"`` (paper) or ``"information_gain"``
            (ablation alternative).
    """
    scorers = {
        "correlation": lambda v, y: abs(pearson_correlation(v, y)),
        "information_gain": information_gain,
    }
    if method not in scorers:
        raise ValueError(f"unknown ranking method {method!r}")
    scorer = scorers[method]
    scored = [
        (name, scorer(dataset.features[:, j], dataset.labels))
        for j, name in enumerate(dataset.feature_names)
    ]
    scored.sort(key=lambda pair: pair[1], reverse=True)
    return FeatureRanking(
        names=tuple(name for name, _ in scored),
        scores=tuple(score for _, score in scored),
        method=method,
    )
