"""Feature reduction: correlation attribute evaluation + top-k selection."""

from repro.features.extraction import (
    EXTRACTORS,
    delta_features,
    extract,
    per_cycle,
    per_kilo_instruction,
    rolling_mean,
    rolling_std,
)
from repro.features.correlation import (
    FeatureRanking,
    information_gain,
    pearson_correlation,
    rank_features,
)
from repro.features.reduction import FeatureReducer

__all__ = [
    "EXTRACTORS",
    "FeatureRanking",
    "FeatureReducer",
    "delta_features",
    "extract",
    "information_gain",
    "pearson_correlation",
    "per_cycle",
    "per_kilo_instruction",
    "rank_features",
    "rolling_mean",
    "rolling_std",
]
