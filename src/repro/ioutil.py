"""Crash-safe file writing and JSON payload normalization.

Every on-disk artifact this repo produces — cache records, archived
segments, reference profiles, metrics snapshots, health/quality reports,
registry payloads — must survive the process dying mid-write: a reader
(``load_metrics``, ``report --ingest-metrics``, a resumed grid run) must
observe either the previous complete file or the new complete file,
never a truncated hybrid.  This module is the single implementation of
that discipline (write a sibling temp file, flush, fsync, then
``os.replace``), shared by :mod:`repro.analysis.cache`,
:mod:`repro.obs` and :mod:`repro.registry`.

:func:`to_jsonable` is the companion payload normalizer: observability
reports are assembled from numpy arithmetic, and ``json.dumps(...,
default=str)`` would silently stringify any numpy scalar that leaks
into them (``np.float64(1.23)`` becomes ``"1.23"``), corrupting the
types downstream consumers parse.  Coercing to native Python types
keeps numbers numbers.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path

import numpy as np


def atomic_write_bytes(path: str | Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (write-temp-then-rename).

    The temporary file lives in the target directory so ``os.replace``
    stays on one filesystem; readers never observe a partial file, and
    a failure mid-write leaves the previous ``path`` (if any) intact.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` (UTF-8) to ``path`` atomically."""
    atomic_write_bytes(path, text.encode("utf-8"))


def to_jsonable(value):
    """Recursively coerce numpy scalars/arrays to native Python types.

    ``np.floating``/``np.integer``/``np.bool_`` become ``float``/``int``/
    ``bool``, arrays become (nested) lists, and containers are rebuilt
    with coerced leaves.  Non-finite floats pass through as floats —
    ``json.dumps`` renders them as ``NaN``/``Infinity`` literals, which
    the repo's readers round-trip — instead of being stringified.
    """
    if isinstance(value, dict):
        return {key: to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value
