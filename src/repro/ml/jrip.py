"""JRip: RIPPER rule induction (Cohen, 1995), as in WEKA's ``JRip``.

RIPPER learns an ordered rule list for the minority ("positive") class
and falls back to a default rule for everything else.  Each rule is grown
condition-by-condition to maximize FOIL information gain on a grow set,
then greedily suffix-pruned on a held-out prune set (IREP*'s
``(p - n) / (p + n)`` metric); rule-set construction stops when a new
rule's prune-set error exceeds 1/2 or the positives are exhausted.

This is IREP* — RIPPER without the global optimization rounds (WEKA's
``-O 2``); DESIGN.md records the simplification.  The paper's hardware
analysis notes JRip's area "highly depends on how many rules are
generated"; :attr:`JRip.rules_` exposes exactly that structure to the
cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import Classifier, check_features, check_training_set

_EPS = 1e-12
#: Cap on candidate thresholds examined per attribute per growth step.
_MAX_THRESHOLDS = 48


@dataclass(frozen=True)
class Condition:
    """One numeric test ``feature <op> threshold`` with op in {<=, >}."""

    attribute: int
    op: str
    threshold: float

    def covers(self, features: np.ndarray) -> np.ndarray:
        column = features[:, self.attribute]
        if self.op == "<=":
            return column <= self.threshold
        return column > self.threshold

    def __str__(self) -> str:
        return f"x{self.attribute} {self.op} {self.threshold:.6g}"


@dataclass
class Rule:
    """Conjunctive rule predicting the positive class.

    Attributes:
        conditions: ANDed numeric tests.
        class_counts: Laplace-ready weighted train counts of covered rows.
    """

    conditions: list[Condition]
    class_counts: np.ndarray

    def covers(self, features: np.ndarray) -> np.ndarray:
        mask = np.ones(features.shape[0], dtype=bool)
        for condition in self.conditions:
            mask &= condition.covers(features)
        return mask

    def __str__(self) -> str:
        body = " and ".join(str(c) for c in self.conditions) or "true"
        return f"({body})"


def _foil_gain(p0: float, n0: float, p1: np.ndarray, n1: np.ndarray) -> np.ndarray:
    """FOIL information gain of refining coverage (p0,n0) to (p1,n1)."""
    before = np.log2((p0 + 1.0) / (p0 + n0 + 2.0))
    after = np.log2((p1 + 1.0) / (p1 + n1 + 2.0))
    return p1 * (after - before)


class CompiledRuleList:
    """Array form of an ordered rule list for batch application.

    All conditions of all rules are stacked into parallel arrays so one
    comparison evaluates every condition on every row at once; per-rule
    conjunction is a segmented ``logical_and.reduceat`` and first-match
    assignment an ``argmax`` over the rule-hit matrix.  Because ``>`` is
    exactly ``not <=`` on finite floats (and the feature checks reject
    NaN), this is bit-identical to applying :meth:`Rule.covers` rule by
    rule — the retained scalar reference the differential tests use.
    """

    __slots__ = ("attributes", "thresholds", "negate", "offsets", "rule_counts")

    def __init__(self, rules: list[Rule]) -> None:
        conditions = [c for rule in rules for c in rule.conditions]
        self.attributes = np.array(
            [c.attribute for c in conditions], dtype=np.intp
        )
        self.thresholds = np.array([c.threshold for c in conditions])
        self.negate = np.array([c.op == ">" for c in conditions])
        lengths = [len(rule.conditions) for rule in rules]
        if any(length == 0 for length in lengths):
            raise ValueError("cannot compile an unconditional rule")
        self.offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]]).astype(np.intp)
        self.rule_counts = (
            np.vstack([rule.class_counts for rule in rules])
            if rules
            else np.zeros((0, 2))
        )

    @property
    def n_rules(self) -> int:
        return self.rule_counts.shape[0]

    def apply(self, features: np.ndarray, default_counts: np.ndarray) -> np.ndarray:
        """Class counts of the first matching rule per row (default when
        no rule fires), shape ``(n, 2)``."""
        counts = np.tile(default_counts, (features.shape[0], 1))
        if self.n_rules == 0 or features.shape[0] == 0:
            return counts
        satisfied = (
            features[:, self.attributes] <= self.thresholds
        ) ^ self.negate
        hits = np.logical_and.reduceat(satisfied, self.offsets, axis=1)
        fired = hits.any(axis=1)
        first = np.argmax(hits, axis=1)
        counts[fired] = self.rule_counts[first[fired]]
        return counts


class JRip(Classifier):
    """RIPPER (IREP*) ordered rule-list classifier.

    Args:
        folds: grow/prune split denominator; one fold prunes (WEKA ``-F`` 3).
        min_weight: minimum covered positive weight per rule (WEKA ``-N`` 2).
        seed: RNG seed for the stratified grow/prune shuffle.
        use_pruning: disable to keep grown rules verbatim (WEKA ``-P``).
    """

    supports_sample_weight = False

    def __init__(
        self,
        folds: int = 3,
        min_weight: float = 2.0,
        seed: int = 1,
        use_pruning: bool = True,
    ) -> None:
        super().__init__()
        if folds < 2:
            raise ValueError("folds must be >= 2")
        self.folds = folds
        self.min_weight = min_weight
        self.seed = seed
        self.use_pruning = use_pruning
        self.params = {
            "folds": folds,
            "min_weight": min_weight,
            "seed": seed,
            "use_pruning": use_pruning,
        }
        self.rules_: list[Rule] = []
        self.positive_class_: int = 1
        self.default_counts_: np.ndarray | None = None
        self._compiled: CompiledRuleList | None = None

    # ------------------------------------------------------------------
    def _candidate_conditions(
        self, features: np.ndarray, positives: np.ndarray, weights: np.ndarray
    ) -> tuple[Condition, float] | None:
        """Best single condition by FOIL gain over current coverage."""
        p0 = float(weights[positives].sum())
        n0 = float(weights[~positives].sum())
        if p0 <= 0:
            return None
        best: tuple[Condition, float] | None = None
        for j in range(features.shape[1]):
            column = features[:, j]
            distinct = np.unique(column)
            if distinct.size < 2:
                continue
            if distinct.size > _MAX_THRESHOLDS:
                qs = np.linspace(0, 1, _MAX_THRESHOLDS + 2)[1:-1]
                distinct = np.unique(np.quantile(column, qs))
            thresholds = (distinct[:-1] + distinct[1:]) / 2.0
            le = column[:, None] <= thresholds[None, :]
            wpos = weights * positives
            wneg = weights * (~positives)
            p_le = wpos @ le
            n_le = wneg @ le
            for op, p1, n1 in (("<=", p_le, n_le), (">", p0 - p_le, n0 - n_le)):
                gains = _foil_gain(p0, n0, p1, n1)
                k = int(np.argmax(gains))
                if gains[k] > _EPS and (best is None or gains[k] > best[1]):
                    best = (Condition(j, op, float(thresholds[k])), float(gains[k]))
        return best

    def _grow_rule(
        self, features: np.ndarray, labels: np.ndarray, weights: np.ndarray
    ) -> Rule:
        """Grow one rule on the grow set until it covers no negatives."""
        conditions: list[Condition] = []
        covered = np.ones(features.shape[0], dtype=bool)
        positives = labels == self.positive_class_
        while True:
            sub = covered
            if not (positives & sub).any():
                break
            if not (~positives & sub).any():
                break  # pure positive coverage: rule is done
            found = self._candidate_conditions(
                features[sub], positives[sub], weights[sub]
            )
            if found is None:
                break
            condition, _gain = found
            conditions.append(condition)
            covered &= condition.covers(features)
        return Rule(conditions=conditions, class_counts=np.zeros(2))

    @staticmethod
    def _prune_metric(p: float, n: float) -> float:
        return (p - n) / (p + n) if p + n > 0 else -1.0

    def _prune_rule(
        self, rule: Rule, features: np.ndarray, labels: np.ndarray, weights: np.ndarray
    ) -> Rule:
        """Suffix-prune the rule to maximize (p-n)/(p+n) on the prune set."""
        positives = labels == self.positive_class_
        best_len = len(rule.conditions)
        best_score = -np.inf
        covered = np.ones(features.shape[0], dtype=bool)
        scores = []
        for k, condition in enumerate(rule.conditions, start=1):
            covered &= condition.covers(features)
            p = float(weights[covered & positives].sum())
            n = float(weights[covered & ~positives].sum())
            scores.append(self._prune_metric(p, n))
        for k in range(len(scores), 0, -1):
            if scores[k - 1] > best_score + _EPS:
                best_score = scores[k - 1]
                best_len = k
        return Rule(conditions=rule.conditions[:best_len], class_counts=np.zeros(2))

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "JRip":
        features, labels, weights = check_training_set(features, labels, sample_weight)
        mass = [float(weights[labels == c].sum()) for c in (0, 1)]
        self.positive_class_ = int(np.argmin(mass))
        rng = np.random.default_rng(self.seed)

        remaining = np.ones(len(labels), dtype=bool)
        self.rules_ = []
        positives = labels == self.positive_class_
        while (remaining & positives).any():
            idx = np.flatnonzero(remaining)
            if idx.size < 2 * self.folds:
                break
            shuffled = rng.permutation(idx)
            n_prune = idx.size // self.folds
            prune_idx, grow_idx = shuffled[:n_prune], shuffled[n_prune:]
            rule = self._grow_rule(features[grow_idx], labels[grow_idx], weights[grow_idx])
            if self.use_pruning and n_prune > 0:
                rule = self._prune_rule(
                    rule, features[prune_idx], labels[prune_idx], weights[prune_idx]
                )
            if not rule.conditions:
                break
            covered_prune = rule.covers(features[prune_idx])
            p = float(weights[prune_idx][covered_prune & positives[prune_idx]].sum())
            n = float(weights[prune_idx][covered_prune & ~positives[prune_idx]].sum())
            if self.use_pruning and n_prune > 0 and (p + n > 0) and n > p:
                break  # prune-set error above 1/2: reject rule, stop
            covered_all = rule.covers(features) & remaining
            pos_weight = float(weights[covered_all & positives].sum())
            if pos_weight < self.min_weight:
                break
            counts = np.zeros(2)
            for c in (0, 1):
                counts[c] = float(weights[covered_all & (labels == c)].sum())
            rule.class_counts = counts
            self.rules_.append(rule)
            remaining &= ~rule.covers(features)

        default = np.zeros(2)
        for c in (0, 1):
            default[c] = float(weights[remaining & (labels == c)].sum())
        if default.sum() <= 0:
            default = np.array(mass, dtype=float)
        self.default_counts_ = default
        self._compiled = CompiledRuleList(self.rules_)
        self.fitted_ = True
        return self

    def _counts_scalar(self, features: np.ndarray) -> np.ndarray:
        """Scalar reference: first-match counts via per-rule mask loops.

        Retained (pre-vectorization prediction path) for differential
        tests and the before/after inference benchmark.
        """
        assert self.default_counts_ is not None
        counts = np.tile(self.default_counts_, (features.shape[0], 1))
        unassigned = np.ones(features.shape[0], dtype=bool)
        for rule in self.rules_:
            hit = rule.covers(features) & unassigned
            counts[hit] = rule.class_counts
            unassigned &= ~hit
        return counts

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        assert self.default_counts_ is not None
        if self._compiled is None:
            self._compiled = CompiledRuleList(self.rules_)
        counts = self._compiled.apply(features, self.default_counts_)
        smoothed = counts + 1.0
        return smoothed / smoothed.sum(axis=1, keepdims=True)

    # -- structure, for the hardware model and reports ------------------
    @property
    def n_rules(self) -> int:
        self._require_fitted()
        return len(self.rules_)

    @property
    def n_conditions(self) -> int:
        """Total condition count across all rules (hardware comparators)."""
        self._require_fitted()
        return sum(len(rule.conditions) for rule in self.rules_)

    def describe(self) -> str:
        """Human-readable ordered rule list."""
        self._require_fitted()
        lines = [
            f"{rule} => class {self.positive_class_} "
            f"[{rule.class_counts[self.positive_class_]:.1f}/"
            f"{rule.class_counts.sum():.1f}]"
            for rule in self.rules_
        ]
        assert self.default_counts_ is not None
        lines.append(f"default => class {int(np.argmax(self.default_counts_))}")
        return "\n".join(lines)
