"""JRip: RIPPER rule induction (Cohen, 1995), as in WEKA's ``JRip``.

RIPPER learns an ordered rule list for the minority ("positive") class
and falls back to a default rule for everything else.  Each rule is grown
condition-by-condition to maximize FOIL information gain on a grow set,
then greedily suffix-pruned on a held-out prune set (IREP*'s
``(p - n) / (p + n)`` metric); rule-set construction stops when a new
rule's prune-set error exceeds 1/2 or the positives are exhausted.

This is IREP* — RIPPER without the global optimization rounds (WEKA's
``-O 2``); DESIGN.md records the simplification.  The paper's hardware
analysis notes JRip's area "highly depends on how many rules are
generated"; :attr:`JRip.rules_` exposes exactly that structure to the
cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import fitmode
from repro.ml.base import Classifier, check_features, check_training_set

_EPS = 1e-12
#: Cap on candidate thresholds examined per attribute per growth step.
_MAX_THRESHOLDS = 48


#: Interior quantile grid used when an attribute has too many distinct values.
_QUANTILE_GRID = np.linspace(0, 1, _MAX_THRESHOLDS + 2)[1:-1]


def _sorted_quantiles(sorted_values: np.ndarray, qs: np.ndarray) -> np.ndarray:
    """``np.quantile(values, qs)`` on pre-sorted data, bitwise identical.

    Replicates numpy's ``linear`` method — virtual index ``q * (n - 1)``
    and its two-sided lerp (``b - diff * (1 - t)`` when ``t >= 0.5``) —
    without re-partitioning the data or the per-call dispatch overhead,
    which dominates JRip's grow loop.
    """
    n = sorted_values.size
    virtual = qs * (n - 1)
    previous = np.floor(virtual)
    t = virtual - previous
    lo = previous.astype(np.intp)
    hi = np.minimum(lo + 1, n - 1)
    a = sorted_values[lo]
    b = sorted_values[hi]
    diff = b - a
    out = a + diff * t
    upper = t >= 0.5
    out[upper] = b[upper] - diff[upper] * (1.0 - t[upper])
    return out


def _dedupe_sorted(sorted_values: np.ndarray) -> np.ndarray:
    """Distinct values of a sorted array (``np.unique`` minus the sort)."""
    if sorted_values.size == 0:
        return sorted_values
    keep = np.empty(sorted_values.size, dtype=bool)
    keep[0] = True
    np.not_equal(sorted_values[1:], sorted_values[:-1], out=keep[1:])
    return sorted_values[keep]


def _attribute_thresholds(column: np.ndarray) -> np.ndarray | None:
    """Candidate thresholds of one attribute (midpoints of distinct values).

    Shared by both fit paths so threshold construction can never differ
    between them.  Returns ``None`` when the column is constant.
    """
    sorted_values = np.sort(column)
    distinct = _dedupe_sorted(sorted_values)
    if distinct.size < 2:
        return None
    if distinct.size > _MAX_THRESHOLDS:
        # quantile output over monotone qs is already sorted
        distinct = _dedupe_sorted(_sorted_quantiles(sorted_values, _QUANTILE_GRID))
    return (distinct[:-1] + distinct[1:]) / 2.0


def _prefix_masses(
    wpos: np.ndarray, wneg: np.ndarray, prefix: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Positive/negative weight covered by each condition prefix.

    ``prefix`` is the ``(n_rows, n_conditions)`` cumulative-conjunction
    matrix.  Both prune paths call this one matvec, so gemv-vs-ddot
    rounding cannot leak into the differential comparison.
    """
    return wpos @ prefix, wneg @ prefix


@dataclass(frozen=True)
class Condition:
    """One numeric test ``feature <op> threshold`` with op in {<=, >}."""

    attribute: int
    op: str
    threshold: float

    def covers(self, features: np.ndarray) -> np.ndarray:
        column = features[:, self.attribute]
        if self.op == "<=":
            return column <= self.threshold
        return column > self.threshold

    def __str__(self) -> str:
        return f"x{self.attribute} {self.op} {self.threshold:.6g}"


@dataclass
class Rule:
    """Conjunctive rule predicting the positive class.

    Attributes:
        conditions: ANDed numeric tests.
        class_counts: Laplace-ready weighted train counts of covered rows.
    """

    conditions: list[Condition]
    class_counts: np.ndarray

    def covers(self, features: np.ndarray) -> np.ndarray:
        mask = np.ones(features.shape[0], dtype=bool)
        for condition in self.conditions:
            mask &= condition.covers(features)
        return mask

    def __str__(self) -> str:
        body = " and ".join(str(c) for c in self.conditions) or "true"
        return f"({body})"


def _foil_gain(p0: float, n0: float, p1: np.ndarray, n1: np.ndarray) -> np.ndarray:
    """FOIL information gain of refining coverage (p0,n0) to (p1,n1)."""
    before = np.log2((p0 + 1.0) / (p0 + n0 + 2.0))
    after = np.log2((p1 + 1.0) / (p1 + n1 + 2.0))
    return p1 * (after - before)


class CompiledRuleList:
    """Array form of an ordered rule list for batch application.

    All conditions of all rules are stacked into parallel arrays so one
    comparison evaluates every condition on every row at once; per-rule
    conjunction is a segmented ``logical_and.reduceat`` and first-match
    assignment an ``argmax`` over the rule-hit matrix.  Because ``>`` is
    exactly ``not <=`` on finite floats (and the feature checks reject
    NaN), this is bit-identical to applying :meth:`Rule.covers` rule by
    rule — the retained scalar reference the differential tests use.
    """

    __slots__ = ("attributes", "thresholds", "negate", "offsets", "rule_counts")

    def __init__(self, rules: list[Rule]) -> None:
        conditions = [c for rule in rules for c in rule.conditions]
        self.attributes = np.array(
            [c.attribute for c in conditions], dtype=np.intp
        )
        self.thresholds = np.array([c.threshold for c in conditions])
        self.negate = np.array([c.op == ">" for c in conditions])
        lengths = [len(rule.conditions) for rule in rules]
        if any(length == 0 for length in lengths):
            raise ValueError("cannot compile an unconditional rule")
        self.offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]]).astype(np.intp)
        self.rule_counts = (
            np.vstack([rule.class_counts for rule in rules])
            if rules
            else np.zeros((0, 2))
        )

    @classmethod
    def from_arrays(
        cls,
        attributes: np.ndarray,
        thresholds: np.ndarray,
        negate: np.ndarray,
        offsets: np.ndarray,
        rule_counts: np.ndarray,
    ) -> "CompiledRuleList":
        """Rebuild a compiled rule list from its parallel arrays.

        Inverse of the compiling constructor; the arrays become the live
        inference state verbatim (they may be read-only memory maps).
        """
        attributes = np.asanyarray(attributes)
        thresholds = np.asanyarray(thresholds)
        negate = np.asanyarray(negate)
        offsets = np.asanyarray(offsets)
        rule_counts = np.asanyarray(rule_counts)
        n_conditions = attributes.shape[0]
        if thresholds.shape != (n_conditions,) or negate.shape != (n_conditions,):
            raise ValueError("condition arrays are misaligned")
        n_rules = rule_counts.shape[0]
        if rule_counts.shape != (n_rules, 2):
            raise ValueError("rule_counts must have shape (n_rules, 2)")
        if n_rules and (
            offsets.shape != (n_rules,)
            or offsets[0] != 0
            or np.any(np.diff(offsets) <= 0)
            or offsets[-1] >= n_conditions
        ):
            raise ValueError("rule offsets are not a valid segmentation")
        compiled = cls.__new__(cls)
        compiled.attributes = attributes
        compiled.thresholds = thresholds
        compiled.negate = negate
        compiled.offsets = offsets
        compiled.rule_counts = rule_counts
        return compiled

    @property
    def n_rules(self) -> int:
        return self.rule_counts.shape[0]

    def apply(self, features: np.ndarray, default_counts: np.ndarray) -> np.ndarray:
        """Class counts of the first matching rule per row (default when
        no rule fires), shape ``(n, 2)``."""
        counts = np.tile(default_counts, (features.shape[0], 1))
        if self.n_rules == 0 or features.shape[0] == 0:
            return counts
        satisfied = (
            features[:, self.attributes] <= self.thresholds
        ) ^ self.negate
        hits = np.logical_and.reduceat(satisfied, self.offsets, axis=1)
        fired = hits.any(axis=1)
        first = np.argmax(hits, axis=1)
        counts[fired] = self.rule_counts[first[fired]]
        return counts


class JRip(Classifier):
    """RIPPER (IREP*) ordered rule-list classifier.

    Args:
        folds: grow/prune split denominator; one fold prunes (WEKA ``-F`` 3).
        min_weight: minimum covered positive weight per rule (WEKA ``-N`` 2).
        seed: RNG seed for the stratified grow/prune shuffle.
        use_pruning: disable to keep grown rules verbatim (WEKA ``-P``).
    """

    supports_sample_weight = False

    def __init__(
        self,
        folds: int = 3,
        min_weight: float = 2.0,
        seed: int = 1,
        use_pruning: bool = True,
    ) -> None:
        super().__init__()
        if folds < 2:
            raise ValueError("folds must be >= 2")
        self.folds = folds
        self.min_weight = min_weight
        self.seed = seed
        self.use_pruning = use_pruning
        self.params = {
            "folds": folds,
            "min_weight": min_weight,
            "seed": seed,
            "use_pruning": use_pruning,
        }
        self.rules_: list[Rule] = []
        self.positive_class_: int = 1
        self.default_counts_: np.ndarray | None = None
        self._compiled: CompiledRuleList | None = None

    # ------------------------------------------------------------------
    def _candidate_conditions(
        self, features: np.ndarray, positives: np.ndarray, weights: np.ndarray
    ) -> tuple[Condition, float] | None:
        """Best single condition by FOIL gain over current coverage."""
        if fitmode.scalar_fit_enabled():
            return self._candidate_conditions_scalar(features, positives, weights)
        return self._candidate_conditions_batch(features, positives, weights)

    def _candidate_conditions_scalar(
        self, features: np.ndarray, positives: np.ndarray, weights: np.ndarray
    ) -> tuple[Condition, float] | None:
        """Per-attribute coverage products (differential reference).

        Retained pre-vectorization hot path: one ``<=`` matrix and two
        weight products per attribute, with the running strict-``>``
        best-candidate update the batch path's first-argmax replicates.
        """
        p0 = float(weights[positives].sum())
        n0 = float(weights[~positives].sum())
        if p0 <= 0:
            return None
        best: tuple[Condition, float] | None = None
        for j in range(features.shape[1]):
            thresholds = _attribute_thresholds(features[:, j])
            if thresholds is None:
                continue
            le = features[:, j][:, None] <= thresholds[None, :]
            wpos = weights * positives
            wneg = weights * (~positives)
            p_le = wpos @ le
            n_le = wneg @ le
            for op, p1, n1 in (("<=", p_le, n_le), (">", p0 - p_le, n0 - n_le)):
                gains = _foil_gain(p0, n0, p1, n1)
                k = int(np.argmax(gains))
                if gains[k] > _EPS and (best is None or gains[k] > best[1]):
                    best = (Condition(j, op, float(thresholds[k])), float(gains[k]))
        return best

    def _candidate_conditions_batch(
        self, features: np.ndarray, positives: np.ndarray, weights: np.ndarray
    ) -> tuple[Condition, float] | None:
        """All attributes' conditions scored by two stacked matvecs.

        Every attribute's ``<=`` columns are packed into one boolean
        matrix so a single ``weights @ matrix`` product replaces the
        per-attribute products of the scalar reference (a contiguous
        column block of a matvec is bitwise the standalone product).
        Candidate gains are then laid out in the reference's visit order
        — per attribute, ``<=`` block then ``>`` block — so a first
        ``argmax`` reproduces its strict-``>`` tie-breaking exactly.
        """
        p0 = float(weights[positives].sum())
        n0 = float(weights[~positives].sum())
        if p0 <= 0:
            return None
        per_attr: list[tuple[int, np.ndarray]] = []
        total = 0
        for j in range(features.shape[1]):
            thresholds = _attribute_thresholds(features[:, j])
            if thresholds is None:
                continue
            per_attr.append((j, thresholds))
            total += thresholds.size
        if total == 0:
            return None
        le = np.empty((features.shape[0], total), dtype=bool)
        offset = 0
        for j, thresholds in per_attr:
            le[:, offset : offset + thresholds.size] = (
                features[:, j][:, None] <= thresholds[None, :]
            )
            offset += thresholds.size
        wpos = weights * positives
        wneg = weights * (~positives)
        p_le = wpos @ le
        n_le = wneg @ le
        gains_le = _foil_gain(p0, n0, p_le, n_le)
        gains_gt = _foil_gain(p0, n0, p0 - p_le, n0 - n_le)
        # reference visit order: per attribute, all "<=" then all ">"
        ordered = np.empty(2 * total)
        offset = 0
        for j, thresholds in per_attr:
            size = thresholds.size
            ordered[2 * offset : 2 * offset + size] = gains_le[offset : offset + size]
            ordered[2 * offset + size : 2 * (offset + size)] = gains_gt[
                offset : offset + size
            ]
            offset += size
        k = int(np.argmax(ordered))
        if ordered[k] <= _EPS:
            return None
        offset = 0
        for j, thresholds in per_attr:
            size = thresholds.size
            if k < 2 * (offset + size):
                in_attr = k - 2 * offset
                op = "<=" if in_attr < size else ">"
                threshold = thresholds[in_attr % size]
                return (Condition(j, op, float(threshold)), float(ordered[k]))
            offset += size
        raise AssertionError("argmax index out of candidate range")

    def _grow_rule(
        self, features: np.ndarray, labels: np.ndarray, weights: np.ndarray
    ) -> Rule:
        """Grow one rule on the grow set until it covers no negatives."""
        conditions: list[Condition] = []
        covered = np.ones(features.shape[0], dtype=bool)
        positives = labels == self.positive_class_
        while True:
            sub = covered
            if not (positives & sub).any():
                break
            if not (~positives & sub).any():
                break  # pure positive coverage: rule is done
            found = self._candidate_conditions(
                features[sub], positives[sub], weights[sub]
            )
            if found is None:
                break
            condition, _gain = found
            conditions.append(condition)
            covered &= condition.covers(features)
        return Rule(conditions=conditions, class_counts=np.zeros(2))

    @staticmethod
    def _prune_metric(p: float, n: float) -> float:
        return (p - n) / (p + n) if p + n > 0 else -1.0

    def _prune_rule(
        self, rule: Rule, features: np.ndarray, labels: np.ndarray, weights: np.ndarray
    ) -> Rule:
        """Suffix-prune the rule to maximize (p-n)/(p+n) on the prune set.

        Both paths build the ``(n_rows, n_conditions)`` prefix-coverage
        matrix — the scalar reference one ``covers`` conjunction at a
        time, the fast path with one stacked comparison and a segmented
        ``logical_and.accumulate`` — and feed it to the shared
        :func:`_prefix_masses` matvec, so the suffix-selection sweep sees
        bit-identical scores either way.
        """
        if not rule.conditions:
            return Rule(conditions=[], class_counts=np.zeros(2))
        positives = labels == self.positive_class_
        if fitmode.scalar_fit_enabled():
            prefix = np.empty((features.shape[0], len(rule.conditions)), dtype=bool)
            covered = np.ones(features.shape[0], dtype=bool)
            for k, condition in enumerate(rule.conditions):
                covered = covered & condition.covers(features)
                prefix[:, k] = covered
        else:
            attributes = np.array([c.attribute for c in rule.conditions], dtype=np.intp)
            thresholds = np.array([c.threshold for c in rule.conditions])
            negate = np.array([c.op == ">" for c in rule.conditions])
            satisfied = (features[:, attributes] <= thresholds) ^ negate
            prefix = np.logical_and.accumulate(satisfied, axis=1)
        p_mass, n_mass = _prefix_masses(
            weights * positives, weights * (~positives), prefix
        )
        best_len = len(rule.conditions)
        best_score = -np.inf
        scores = [
            self._prune_metric(float(p), float(n)) for p, n in zip(p_mass, n_mass)
        ]
        for k in range(len(scores), 0, -1):
            if scores[k - 1] > best_score + _EPS:
                best_score = scores[k - 1]
                best_len = k
        return Rule(conditions=rule.conditions[:best_len], class_counts=np.zeros(2))

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "JRip":
        features, labels, weights = check_training_set(features, labels, sample_weight)
        mass = [float(weights[labels == c].sum()) for c in (0, 1)]
        self.positive_class_ = int(np.argmin(mass))
        rng = np.random.default_rng(self.seed)

        remaining = np.ones(len(labels), dtype=bool)
        self.rules_ = []
        positives = labels == self.positive_class_
        while (remaining & positives).any():
            idx = np.flatnonzero(remaining)
            if idx.size < 2 * self.folds:
                break
            shuffled = rng.permutation(idx)
            n_prune = idx.size // self.folds
            prune_idx, grow_idx = shuffled[:n_prune], shuffled[n_prune:]
            rule = self._grow_rule(features[grow_idx], labels[grow_idx], weights[grow_idx])
            if self.use_pruning and n_prune > 0:
                rule = self._prune_rule(
                    rule, features[prune_idx], labels[prune_idx], weights[prune_idx]
                )
            if not rule.conditions:
                break
            covered_prune = rule.covers(features[prune_idx])
            p = float(weights[prune_idx][covered_prune & positives[prune_idx]].sum())
            n = float(weights[prune_idx][covered_prune & ~positives[prune_idx]].sum())
            if self.use_pruning and n_prune > 0 and (p + n > 0) and n > p:
                break  # prune-set error above 1/2: reject rule, stop
            covered_all = rule.covers(features) & remaining
            pos_weight = float(weights[covered_all & positives].sum())
            if pos_weight < self.min_weight:
                break
            counts = np.zeros(2)
            for c in (0, 1):
                counts[c] = float(weights[covered_all & (labels == c)].sum())
            rule.class_counts = counts
            self.rules_.append(rule)
            remaining &= ~rule.covers(features)

        default = np.zeros(2)
        for c in (0, 1):
            default[c] = float(weights[remaining & (labels == c)].sum())
        if default.sum() <= 0:
            default = np.array(mass, dtype=float)
        self.default_counts_ = default
        self._compiled = CompiledRuleList(self.rules_)
        self.fitted_ = True
        return self

    def _counts_scalar(self, features: np.ndarray) -> np.ndarray:
        """Scalar reference: first-match counts via per-rule mask loops.

        Retained (pre-vectorization prediction path) for differential
        tests and the before/after inference benchmark.
        """
        assert self.default_counts_ is not None
        counts = np.tile(self.default_counts_, (features.shape[0], 1))
        unassigned = np.ones(features.shape[0], dtype=bool)
        for rule in self.rules_:
            hit = rule.covers(features) & unassigned
            counts[hit] = rule.class_counts
            unassigned &= ~hit
        return counts

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        assert self.default_counts_ is not None
        if self._compiled is None:
            self._compiled = CompiledRuleList(self.rules_)
        counts = self._compiled.apply(features, self.default_counts_)
        smoothed = counts + 1.0
        return smoothed / smoothed.sum(axis=1, keepdims=True)

    # -- serialization ---------------------------------------------------
    def export_artifact(self) -> tuple[dict, dict[str, np.ndarray]]:
        self._require_fitted()
        assert self.default_counts_ is not None
        if self._compiled is None:
            self._compiled = CompiledRuleList(self.rules_)
        compiled = self._compiled
        spec = {
            "params": dict(self.params),
            "positive_class": int(self.positive_class_),
        }
        return spec, {
            "cond_attribute": compiled.attributes,
            "cond_threshold": compiled.thresholds,
            "cond_negate": compiled.negate,
            "rule_offsets": compiled.offsets,
            "rule_counts": compiled.rule_counts,
            "default_counts": self.default_counts_,
        }

    @classmethod
    def from_artifact(cls, spec: dict, arrays: dict) -> "JRip":
        model = cls(**spec["params"])
        compiled = CompiledRuleList.from_arrays(
            arrays["cond_attribute"],
            arrays["cond_threshold"],
            arrays["cond_negate"],
            arrays["rule_offsets"],
            arrays["rule_counts"],
        )
        # rebuild the structural rule list (hardware cost model, __str__)
        # from the compiled segmentation; prediction keeps the arrays
        bounds = np.append(compiled.offsets, compiled.attributes.shape[0])
        rules = []
        for r in range(compiled.n_rules):
            conditions = [
                Condition(
                    int(compiled.attributes[i]),
                    ">" if compiled.negate[i] else "<=",
                    float(compiled.thresholds[i]),
                )
                for i in range(int(bounds[r]), int(bounds[r + 1]))
            ]
            rules.append(
                Rule(conditions, np.array(compiled.rule_counts[r], dtype=float))
            )
        model.rules_ = rules
        model.positive_class_ = int(spec["positive_class"])
        model.default_counts_ = np.asanyarray(arrays["default_counts"])
        model._compiled = compiled
        model.fitted_ = True
        return model

    # -- structure, for the hardware model and reports ------------------
    @property
    def n_rules(self) -> int:
        self._require_fitted()
        return len(self.rules_)

    @property
    def n_conditions(self) -> int:
        """Total condition count across all rules (hardware comparators)."""
        self._require_fitted()
        return sum(len(rule.conditions) for rule in self.rules_)

    def describe(self) -> str:
        """Human-readable ordered rule list."""
        self._require_fitted()
        lines = [
            f"{rule} => class {self.positive_class_} "
            f"[{rule.class_counts[self.positive_class_]:.1f}/"
            f"{rule.class_counts.sum():.1f}]"
            for rule in self.rules_
        ]
        assert self.default_counts_ is not None
        lines.append(f"default => class {int(np.argmax(self.default_counts_))}")
        return "\n".join(lines)
