"""MLP: multi-layer perceptron, as in WEKA's ``MultilayerPerceptron``.

One sigmoid hidden layer whose width defaults to WEKA's ``'a'`` heuristic
((#attributes + #classes) / 2), trained by full-batch backpropagation
with learning rate 0.3 and momentum 0.2 (WEKA defaults), on standardized
inputs, minimizing squared error against one-hot targets — the exact
configuration behind the paper's "MultiLperc." rows.  The paper's
hardware analysis singles the MLP out as the costliest detector; the
trained weight matrices exposed here are what the cost model prices.
"""

from __future__ import annotations

import numpy as np

from repro import fitmode
from repro.ml.base import Classifier, check_features, check_training_set
from repro.ml.scaling import StandardScaler


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable sigmoid (masked two-branch reference form)."""
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _sigmoid_fast(x: np.ndarray) -> np.ndarray:
    """Branch-free sigmoid, bit-identical to :func:`_sigmoid`.

    ``exp(-|x|)`` evaluates the same ``exp`` argument as the matching
    branch of the reference (``-x`` for ``x >= 0``, ``x`` otherwise), and
    the shared denominator ``1 + exp(-|x|)`` with a numerator of ``1``
    (positive branch) or ``exp(-|x|)`` (negative branch) reproduces both
    branch formulas exactly — without the boolean-gather round trips,
    which dominate the per-batch cost at mini-batch sizes.
    """
    z = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0, z) / (1.0 + z)


class MLP(Classifier):
    """Single-hidden-layer perceptron with momentum backpropagation.

    WEKA trains online (one update per instance); for speed we use
    mini-batches, which approximates online updates while staying
    vectorized.

    Args:
        hidden_units: hidden layer width; ``None`` applies WEKA's ``'a'``
            rule, ``(n_features + 2) // 2``.
        learning_rate: backprop step size (WEKA ``-L`` 0.3).
        momentum: previous-update carry-over (WEKA ``-M`` 0.2).
        epochs: training epochs (WEKA ``-N`` 500).
        batch_size: mini-batch size approximating WEKA's online updates.
        seed: weight initialization seed.
    """

    supports_sample_weight = True

    def __init__(
        self,
        hidden_units: int | None = None,
        learning_rate: float = 0.3,
        momentum: float = 0.2,
        epochs: int = 200,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if hidden_units is not None and hidden_units < 1:
            raise ValueError("hidden_units must be positive")
        if not 0 < learning_rate:
            raise ValueError("learning_rate must be positive")
        if not 0 <= momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        if epochs < 1:
            raise ValueError("epochs must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.hidden_units = hidden_units
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.params = {
            "hidden_units": hidden_units,
            "learning_rate": learning_rate,
            "momentum": momentum,
            "epochs": epochs,
            "batch_size": batch_size,
            "seed": seed,
        }
        self.scaler_: StandardScaler | None = None
        self.w_hidden_: np.ndarray | None = None  # (d, h)
        self.b_hidden_: np.ndarray | None = None  # (h,)
        self.w_out_: np.ndarray | None = None  # (h, 2)
        self.b_out_: np.ndarray | None = None  # (2,)

    def _resolve_hidden(self, n_features: int) -> int:
        if self.hidden_units is not None:
            return self.hidden_units
        return max((n_features + 2) // 2, 2)

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "MLP":
        features, labels, weights = check_training_set(features, labels, sample_weight)
        self.scaler_ = StandardScaler.fit(features)
        x = self.scaler_.transform(features)
        n, d = x.shape
        h = self._resolve_hidden(d)
        rng = np.random.default_rng(self.seed)
        w1 = rng.uniform(-0.5, 0.5, size=(d, h))
        b1 = np.zeros(h)
        w2 = rng.uniform(-0.5, 0.5, size=(h, 2))
        b2 = np.zeros(2)
        targets = np.zeros((n, 2))
        targets[np.arange(n), labels] = 1.0
        rel_weight = (weights / weights.mean())[:, None]

        if fitmode.scalar_fit_enabled():
            w1, b1, w2, b2 = self._train_scalar(x, targets, rel_weight, rng, w1, b1, w2, b2)
        else:
            w1, b1, w2, b2 = self._train_fast(x, targets, rel_weight, rng, w1, b1, w2, b2)
        self.w_hidden_, self.b_hidden_ = w1, b1
        self.w_out_, self.b_out_ = w2, b2
        self.fitted_ = True
        return self

    def _train_scalar(
        self,
        x: np.ndarray,
        targets: np.ndarray,
        rel_weight: np.ndarray,
        rng: np.random.Generator,
        w1: np.ndarray,
        b1: np.ndarray,
        w2: np.ndarray,
        b2: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Momentum backprop, one fancy-indexed gather per mini-batch.

        Retained pre-optimization hot path: the differential reference
        for :meth:`_train_fast`.
        """
        dw1 = np.zeros_like(w1)
        db1 = np.zeros_like(b1)
        dw2 = np.zeros_like(w2)
        db2 = np.zeros_like(b2)
        lr, mom = self.learning_rate, self.momentum
        n = x.shape[0]
        for epoch in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                rows = order[start : start + self.batch_size]
                xb, tb, wb = x[rows], targets[rows], rel_weight[rows]
                hidden = _sigmoid(xb @ w1 + b1)
                out = _sigmoid(hidden @ w2 + b2)
                # squared-error gradient through output sigmoids,
                # averaged over the mini-batch
                delta_out = (out - tb) * out * (1.0 - out) * wb / len(rows)
                delta_hidden = (delta_out @ w2.T) * hidden * (1.0 - hidden)
                dw2 = mom * dw2 - lr * hidden.T @ delta_out
                db2 = mom * db2 - lr * delta_out.sum(axis=0)
                dw1 = mom * dw1 - lr * xb.T @ delta_hidden
                db1 = mom * db1 - lr * delta_hidden.sum(axis=0)
                w2 += dw2
                b2 += db2
                w1 += dw1
                b1 += db1
        return w1, b1, w2, b2

    def _train_fast(
        self,
        x: np.ndarray,
        targets: np.ndarray,
        rel_weight: np.ndarray,
        rng: np.random.Generator,
        w1: np.ndarray,
        b1: np.ndarray,
        w2: np.ndarray,
        b2: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Bit-identical optimized epoch loop.

        Same update protocol as :meth:`_train_scalar` — the rng draws,
        matmul shapes, and the arithmetic order of every momentum update
        are replicated exactly — but the whole epoch is gathered into
        permuted contiguous arrays once (mini-batches become views
        instead of three fancy-indexed copies each), the sigmoid is the
        branch-free :func:`_sigmoid_fast`, and momentum buffers update
        in place instead of rebinding fresh arrays per batch.
        """
        dw1 = np.zeros_like(w1)
        db1 = np.zeros_like(b1)
        dw2 = np.zeros_like(w2)
        db2 = np.zeros_like(b2)
        lr, mom = self.learning_rate, self.momentum
        n = x.shape[0]
        bs = self.batch_size
        for epoch in range(self.epochs):
            order = rng.permutation(n)
            xo = x[order]
            to = targets[order]
            wo = rel_weight[order]
            for start in range(0, n, bs):
                stop = start + bs
                xb, tb, wb = xo[start:stop], to[start:stop], wo[start:stop]
                hidden = _sigmoid_fast(xb @ w1 + b1)
                out = _sigmoid_fast(hidden @ w2 + b2)
                delta_out = (out - tb) * out * (1.0 - out) * wb / len(xb)
                delta_hidden = (delta_out @ w2.T) * hidden * (1.0 - hidden)
                # in-place form of `d = mom * d - (lr * a.T) @ g`:
                # identical values, no per-batch rebinding
                dw2 *= mom
                dw2 -= (lr * hidden.T) @ delta_out
                db2 *= mom
                db2 -= lr * delta_out.sum(axis=0)
                dw1 *= mom
                dw1 -= (lr * xb.T) @ delta_hidden
                db1 *= mom
                db1 -= lr * delta_hidden.sum(axis=0)
                w2 += dw2
                b2 += db2
                w1 += dw1
                b1 += db1
        return w1, b1, w2, b2

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        assert self.scaler_ is not None
        assert self.w_hidden_ is not None and self.w_out_ is not None
        assert self.b_hidden_ is not None and self.b_out_ is not None
        x = self.scaler_.transform(features)
        hidden = _sigmoid(x @ self.w_hidden_ + self.b_hidden_)
        out = _sigmoid(hidden @ self.w_out_ + self.b_out_)
        total = out.sum(axis=1, keepdims=True)
        return out / np.where(total > 0, total, 1.0)

    # -- serialization ---------------------------------------------------
    def export_artifact(self) -> tuple[dict, dict[str, np.ndarray]]:
        self._require_fitted()
        assert self.scaler_ is not None
        assert self.w_hidden_ is not None and self.w_out_ is not None
        assert self.b_hidden_ is not None and self.b_out_ is not None
        return {"params": dict(self.params)}, {
            "scaler_mean": self.scaler_.mean,
            "scaler_scale": self.scaler_.scale,
            "w_hidden": self.w_hidden_,
            "b_hidden": self.b_hidden_,
            "w_out": self.w_out_,
            "b_out": self.b_out_,
        }

    @classmethod
    def from_artifact(cls, spec: dict, arrays: dict) -> "MLP":
        model = cls(**spec["params"])
        model.scaler_ = StandardScaler(
            mean=np.asarray(arrays["scaler_mean"]),
            scale=np.asarray(arrays["scaler_scale"]),
        )
        model.w_hidden_ = np.asarray(arrays["w_hidden"])
        model.b_hidden_ = np.asarray(arrays["b_hidden"])
        model.w_out_ = np.asarray(arrays["w_out"])
        model.b_out_ = np.asarray(arrays["b_out"])
        model.fitted_ = True
        return model

    # -- structure, for the hardware model -------------------------------
    @property
    def layer_sizes(self) -> tuple[int, int, int]:
        """(inputs, hidden units, outputs) of the trained network."""
        self._require_fitted()
        assert self.w_hidden_ is not None and self.w_out_ is not None
        return (
            self.w_hidden_.shape[0],
            self.w_hidden_.shape[1],
            self.w_out_.shape[1],
        )
