"""Statistical comparison of detectors: McNemar's test, bootstrap CIs.

The paper compares detectors by point estimates; a production evaluation
needs to know whether "boosted 2HPC beats general 8HPC" survives sampling
noise.  This module provides:

* :func:`mcnemar_test` — the standard paired test on disagreeing
  predictions of two classifiers over the same test windows;
* :func:`bootstrap_metric_ci` — percentile bootstrap confidence interval
  for any label/score metric (accuracy, AUC, ACC×AUC), resampling *by
  application* so the interval respects the paper's unknown-apps
  protocol rather than pretending windows are independent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class McNemarResult:
    """Outcome of McNemar's paired test.

    Attributes:
        b: windows classifier A got right and B got wrong.
        c: windows B got right and A got wrong.
        statistic: continuity-corrected chi-squared statistic.
        p_value: two-sided p-value (chi-squared with 1 dof; exact
            binomial when b + c is small).
    """

    b: int
    c: int
    statistic: float
    p_value: float

    @property
    def significant(self) -> bool:
        """Conventional 5% significance."""
        return self.p_value < 0.05


def _chi2_sf_1dof(x: float) -> float:
    """Survival function of chi-squared with 1 dof: erfc(sqrt(x/2))."""
    return math.erfc(math.sqrt(max(x, 0.0) / 2.0))


def mcnemar_test(
    y_true: np.ndarray, pred_a: np.ndarray, pred_b: np.ndarray
) -> McNemarResult:
    """Paired comparison of two classifiers on the same test set.

    Uses the exact binomial test when the disagreement count is below
    25 (the chi-squared approximation is unreliable there), otherwise
    the continuity-corrected chi-squared form.
    """
    y_true = np.asarray(y_true)
    pred_a = np.asarray(pred_a)
    pred_b = np.asarray(pred_b)
    if not (y_true.shape == pred_a.shape == pred_b.shape):
        raise ValueError("all three vectors must align")
    a_right = pred_a == y_true
    b_right = pred_b == y_true
    b = int(np.sum(a_right & ~b_right))
    c = int(np.sum(~a_right & b_right))
    n = b + c
    if n == 0:
        return McNemarResult(b=b, c=c, statistic=0.0, p_value=1.0)
    if n < 25:
        # exact two-sided binomial test with p = 0.5
        k = min(b, c)
        tail = sum(math.comb(n, i) for i in range(0, k + 1)) / 2.0**n
        p_value = min(1.0, 2.0 * tail)
        statistic = float(n and (abs(b - c) - 1) ** 2 / n)
    else:
        statistic = (abs(b - c) - 1.0) ** 2 / n
        p_value = _chi2_sf_1dof(statistic)
    return McNemarResult(b=b, c=c, statistic=float(statistic), p_value=float(p_value))


@dataclass(frozen=True)
class BootstrapCI:
    """Percentile bootstrap confidence interval for one metric."""

    point: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def __str__(self) -> str:
        pct = int(self.confidence * 100)
        return f"{self.point:.3f} [{self.low:.3f}, {self.high:.3f}] ({pct}% CI)"


def bootstrap_metric_ci(
    metric: Callable[[np.ndarray, np.ndarray], float],
    y_true: np.ndarray,
    scores: np.ndarray,
    groups: np.ndarray | None = None,
    confidence: float = 0.95,
    n_resamples: int = 1000,
    seed: int = 0,
) -> BootstrapCI:
    """Bootstrap CI of ``metric(y_true, scores)``.

    Args:
        metric: e.g. ``repro.ml.metrics.roc_auc`` or ``accuracy``.
        y_true: test labels.
        scores: test scores or predictions (whatever ``metric`` expects).
        groups: optional per-sample group ids (application ids); when
            given, resampling draws whole groups, respecting the fact
            that windows of one application are correlated.
        confidence: interval mass.
        n_resamples: bootstrap replicates.
        seed: resampling seed.
    """
    y_true = np.asarray(y_true)
    scores = np.asarray(scores)
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must align")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    point = float(metric(y_true, scores))

    if groups is None:
        # IID bootstrap: every sample is its own resampling unit.
        index_pool = [np.array([i]) for i in range(len(y_true))]
    else:
        groups = np.asarray(groups)
        if groups.shape != y_true.shape:
            raise ValueError("groups must align with y_true")
        index_pool = [np.flatnonzero(groups == g) for g in np.unique(groups)]

    replicates = []
    attempts = 0
    while len(replicates) < n_resamples and attempts < n_resamples * 3:
        attempts += 1
        chosen = rng.integers(0, len(index_pool), size=len(index_pool))
        rows = np.concatenate([index_pool[i] for i in chosen])
        try:
            replicates.append(float(metric(y_true[rows], scores[rows])))
        except ValueError:
            continue  # a resample can lose one class entirely; redraw
    if not replicates:
        raise RuntimeError("no valid bootstrap replicate produced")
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(replicates, [alpha, 1.0 - alpha])
    return BootstrapCI(
        point=point,
        low=float(low),
        high=float(high),
        confidence=confidence,
        n_resamples=len(replicates),
    )
